/**
 * @file
 * carf_sweep — sharded, resumable sweep orchestrator over the
 * content-addressed result store.
 *
 * Reads a file-driven job set (replacing hard-coded bench grids),
 * resolves every job against the store (sim/result_store.hh), runs
 * only the misses — partitioned into config-parallel lockstep groups
 * and sharded across the ExperimentRunner worker pool — and streams
 * one NDJSON line per result to stdout as it lands. Completed results
 * are flushed to the store's shards immediately, so a killed run
 * resumes where it left off: re-invoking with the same store_dir
 * skips every cached key. The merged output file is written
 * temp-then-rename, in job order, without host-time fields, so an
 * interrupted-and-resumed sweep produces output bit-identical to an
 * uninterrupted one.
 *
 * Usage: carf_sweep sweep=FILE [key=value...]
 *   sweep=FILE        job-set file (required; format below)
 *   store_dir=DIR     result store directory (default carf_sweep_store)
 *   out=PATH          merged NDJSON output (default SWEEP_results.ndjson)
 *   jobs=N            worker threads (default: hardware threads)
 *   insts=N           default instruction budget (default 500000;
 *                     per-line insts= overrides)
 *   times=1           keep host-time fields in the merged output
 *                     (default 0: deterministic output)
 *   quiet=1           suppress per-result streaming lines
 *   trace_cache=0     disable the shared trace cache (default on)
 *   trace_cache_mb=N  trace cache budget (default 512)
 *   lockstep=0        disable lockstep grouping (default on)
 *   lockstep_group=N  cap lockstep group size (default unbounded)
 *   fingerprint=1     print the build fingerprint and exit
 *
 * Sweep-file format: one job template per line; '#' starts a comment.
 * Each line is whitespace-separated key=value tokens; a comma-
 * separated value list expands as a cross-product with every other
 * list on the line. Keys:
 *   workload=NAME|suite:int|suite:fp|suite:all   (required)
 *   config=BACKEND       registry backend/config name (required;
 *                        CoreParams::forBackend semantics)
 *   d_plus_n=N n=N long=N stall=N   content-aware geometry
 *   shared_read_ports=N  port-reduction pool size
 *   phys_int_regs=N read_ports=N write_ports=N   flat-file geometry
 *   insts=N fast_forward=N          per-job run window
 *
 * Example:
 *   workload=suite:int config=baseline,unlimited
 *   workload=suite:int config=content-aware d_plus_n=8,16,24,32
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "emu/trace_cache.hh"
#include "sim/experiment_runner.hh"
#include "sim/reporting.hh"
#include "sim/result_store.hh"
#include "workloads/workload.hh"

using namespace carf;

namespace
{

std::vector<std::string>
splitCommas(const std::string &value)
{
    std::vector<std::string> out;
    for (size_t start = 0; start <= value.size();) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            out.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

const char *const kSweepKeys[] = {
    "workload", "config", "d_plus_n", "n", "long", "stall",
    "shared_read_ports", "phys_int_regs", "read_ports", "write_ports",
    "insts", "fast_forward",
};

bool
knownSweepKey(const std::string &key)
{
    for (const char *k : kSweepKeys)
        if (key == k)
            return true;
    return false;
}

u64
parseU64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 0);
    if (!end || *end != '\0' || value.empty())
        fatal("carf_sweep: bad value '%s' for key '%s'", value.c_str(),
              key.c_str());
    return v;
}

/** The workloads a sweep-file workload token names. */
std::vector<workloads::Workload>
resolveWorkloads(const std::string &token)
{
    if (token == "suite:int")
        return workloads::intSuite();
    if (token == "suite:fp")
        return workloads::fpSuite();
    if (token == "suite:stall")
        return workloads::stallSuite();
    if (token == "suite:all")
        return workloads::allWorkloads();
    if (token.rfind("suite:", 0) == 0)
        fatal("carf_sweep: unknown suite '%s' (suite:int, suite:fp, "
              "suite:stall, suite:all)",
              token.c_str());
    return {workloads::findWorkload(token)};
}

/** One fully resolved assignment of a line's keys to single values. */
core::CoreParams
buildParams(const std::map<std::string, std::string> &kv)
{
    auto params = core::CoreParams::forBackend(kv.at("config"));
    unsigned dn = params.ca.sim.d() + params.ca.sim.n();
    unsigned n = params.ca.sim.n();
    bool sim_touched = false;
    for (const auto &[key, value] : kv) {
        if (key == "workload" || key == "config")
            continue;
        u64 v = parseU64(key, value);
        if (key == "d_plus_n") {
            dn = static_cast<unsigned>(v);
            sim_touched = true;
        } else if (key == "n") {
            n = static_cast<unsigned>(v);
            sim_touched = true;
        } else if (key == "long") {
            params.ca.longEntries = static_cast<unsigned>(v);
        } else if (key == "stall") {
            params.ca.issueStallThreshold = static_cast<unsigned>(v);
        } else if (key == "shared_read_ports") {
            params.portRed.sharedReadPorts = static_cast<unsigned>(v);
        } else if (key == "phys_int_regs") {
            params.physIntRegs = static_cast<unsigned>(v);
        } else if (key == "read_ports") {
            params.intRfReadPorts = static_cast<unsigned>(v);
        } else if (key == "write_ports") {
            params.intRfWritePorts = static_cast<unsigned>(v);
        }
    }
    if (sim_touched) {
        if (n >= dn)
            fatal("carf_sweep: d_plus_n=%u must exceed n=%u", dn, n);
        params.ca.sim = regfile::SimilarityParams(dn - n, n);
        params.ca.sim.validate();
    }
    return params;
}

/**
 * Parse @p path into one ExperimentJob per expanded grid point, in
 * file order (lines top to bottom, comma lists left to right, suites
 * in registry order) — the deterministic order the merged output
 * keeps.
 */
std::vector<sim::ExperimentJob>
parseSweepFile(const std::string &path, const sim::SimOptions &defaults)
{
    std::ifstream file(path);
    if (!file)
        fatal("carf_sweep: cannot read sweep file '%s'", path.c_str());

    std::vector<sim::ExperimentJob> jobs;
    std::string line;
    size_t line_no = 0;
    while (std::getline(file, line)) {
        ++line_no;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);

        // Tokenize on whitespace.
        std::vector<std::pair<std::string, std::vector<std::string>>>
            keys;
        for (size_t pos = 0; pos < line.size();) {
            while (pos < line.size() &&
                   (line[pos] == ' ' || line[pos] == '\t'))
                ++pos;
            size_t end = pos;
            while (end < line.size() && line[end] != ' ' &&
                   line[end] != '\t')
                ++end;
            if (end > pos) {
                std::string token = line.substr(pos, end - pos);
                size_t eq = token.find('=');
                if (eq == std::string::npos || eq == 0)
                    fatal("%s:%zu: token '%s' is not key=value",
                          path.c_str(), line_no, token.c_str());
                std::string key = token.substr(0, eq);
                if (!knownSweepKey(key))
                    fatal("%s:%zu: unknown sweep key '%s'", path.c_str(),
                          line_no, key.c_str());
                keys.emplace_back(key,
                                  splitCommas(token.substr(eq + 1)));
                if (keys.back().second.empty())
                    fatal("%s:%zu: key '%s' has no value", path.c_str(),
                          line_no, key.c_str());
            }
            pos = end;
        }
        if (keys.empty())
            continue;

        std::map<std::string, std::string> kv;
        for (const auto &[key, values] : keys) {
            (void)values;
            if (kv.count(key))
                fatal("%s:%zu: duplicate key '%s'", path.c_str(),
                      line_no, key.c_str());
            kv[key] = "";
        }
        if (!kv.count("workload") || !kv.count("config"))
            fatal("%s:%zu: every job line needs workload= and config=",
                  path.c_str(), line_no);

        // Cross-product expansion, first key outermost.
        std::vector<std::map<std::string, std::string>> combos{{}};
        for (const auto &[key, values] : keys) {
            std::vector<std::map<std::string, std::string>> next;
            next.reserve(combos.size() * values.size());
            for (const auto &combo : combos) {
                for (const std::string &value : values) {
                    auto extended = combo;
                    extended[key] = value;
                    next.push_back(std::move(extended));
                }
            }
            combos = std::move(next);
        }

        for (const auto &combo : combos) {
            core::CoreParams params = buildParams(combo);
            sim::SimOptions options = defaults;
            if (auto it = combo.find("insts"); it != combo.end())
                options.maxInsts = parseU64("insts", it->second);
            if (auto it = combo.find("fast_forward"); it != combo.end())
                options.fastForward =
                    parseU64("fast_forward", it->second);
            for (const auto &w : resolveWorkloads(combo.at("workload")))
                jobs.push_back({w, params, options,
                                w.name + "/" + combo.at("config"),
                                nullptr});
        }
    }
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    if (config.getBool("fingerprint", false)) {
        std::printf("%s\n", buildFingerprint());
        return 0;
    }

    std::string sweep_path = config.getString("sweep", "");
    if (sweep_path.empty())
        fatal("carf_sweep: sweep=FILE is required (fingerprint=1 to "
              "print the build fingerprint)");
    std::string store_dir =
        config.getString("store_dir", "carf_sweep_store");
    std::string out = config.getString("out", "SWEEP_results.ndjson");
    bool times = config.getBool("times", false);
    bool quiet = config.getBool("quiet", false);
    unsigned jobs = static_cast<unsigned>(
        config.getU64("jobs", sim::ExperimentRunner::hardwareJobs()));

    sim::SimOptions defaults;
    defaults.maxInsts = config.getU64("insts", 500000);
    defaults.lockstep = config.getBool("lockstep", true);
    defaults.lockstepMaxGroup =
        static_cast<unsigned>(config.getU64("lockstep_group", 0));
    std::shared_ptr<emu::TraceCache> trace_cache;
    if (config.getBool("trace_cache", true)) {
        u64 budget_mb = config.getU64(
            "trace_cache_mb", emu::TraceCache::kDefaultByteBudget >> 20);
        trace_cache = std::make_shared<emu::TraceCache>(budget_mb << 20);
        defaults.traceCache = trace_cache.get();
    }

    sim::ResultStore store(store_dir, buildFingerprint(), jobs);
    defaults.resultStore = &store;

    std::vector<sim::ExperimentJob> batch =
        parseSweepFile(sweep_path, defaults);
    if (batch.empty())
        fatal("carf_sweep: '%s' expands to zero jobs",
              sweep_path.c_str());

    std::printf("sweep-fingerprint: %s\n", buildFingerprint());
    std::printf("sweep-store: %s (%zu entries on open)\n",
                store_dir.c_str(), store.size());
    std::printf("sweep-jobs: %zu\n", batch.size());
    std::fflush(stdout);

    // Stream one NDJSON line per result as it lands (cache hits
    // first, then computed results in completion order). The runner
    // has already flushed computed results into the store's shards by
    // the time the callback fires, so a kill during the stream loses
    // nothing.
    sim::ExperimentRunner runner(jobs);
    sim::ExperimentRunner::ProgressFn progress;
    if (!quiet) {
        const sim::ExperimentJob *base = batch.data();
        progress = [&, base](const sim::ExperimentProgress &p) {
            size_t index = static_cast<size_t>(&p.job - base);
            std::printf(
                "{\"job\":%zu,\"tag\":\"%s\",\"cached\":%s,"
                "\"result\":%s}\n",
                index, p.job.tag.c_str(), p.cached ? "true" : "false",
                sim::runResultJsonFull(p.result).c_str());
            std::fflush(stdout);
        };
    }

    auto start = std::chrono::steady_clock::now();
    std::vector<core::RunResult> results = runner.run(batch, progress);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    store.writeIndex();

    // Merged output: job order, deterministic serialization (host
    // times off by default), written temp-then-rename so readers
    // never observe a partial file and a crash leaves the previous
    // merge intact.
    std::string tmp = out + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        if (!file)
            fatal("carf_sweep: cannot write '%s'", tmp.c_str());
        for (size_t i = 0; i < batch.size(); ++i) {
            const sim::ExperimentJob &job = batch[i];
            file << "{\"key\":\""
                 << store.key(job.workload.name, job.params, job.options)
                 << "\",\"result\":"
                 << sim::runResultJsonFull(results[i], times) << "}\n";
        }
        file.flush();
        if (!file)
            fatal("carf_sweep: short write to '%s'", tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, out, ec);
    if (ec)
        fatal("carf_sweep: cannot rename '%s' to '%s': %s", tmp.c_str(),
              out.c_str(), ec.message().c_str());

    std::printf("sweep-total: %zu\n", batch.size());
    std::printf("sweep-hits: %llu\n", (unsigned long long)store.hits());
    std::printf("sweep-misses: %llu\n",
                (unsigned long long)store.misses());
    std::printf("sweep-seconds: %.3f\n", seconds);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
