/**
 * @file
 * Deterministic re-execution of a fuzz counterexample seed file.
 *
 * Usage: carf_fuzz_replay [--shrink] <seed-file>
 *
 * Loads a seed file written by the fuzz harness (bench/fuzz_regfile or
 * the gtest cases), replays the op sequence against a fresh register
 * file + shadow oracle, and reports the verdict. Exit status: 0 when
 * every check passes, 1 when the counterexample still reproduces,
 * 2 on malformed input. With --shrink, a reproducing case is first
 * reduced further and the minimal form is printed.
 */

#include <cstdio>
#include <cstring>

#include "testing/fuzzer.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    bool shrink = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shrink") == 0)
            shrink = true;
        else
            path = argv[i];
    }
    if (!path) {
        std::fprintf(stderr,
                     "usage: carf_fuzz_replay [--shrink] <seed-file>\n");
        return 2;
    }

    std::string error;
    auto fuzz_case = testing::FuzzCase::loadFile(path, &error);
    if (!fuzz_case) {
        std::fprintf(stderr, "carf_fuzz_replay: %s\n", error.c_str());
        return 2;
    }

    std::printf("replaying %s: %s file, %u entries, %zu ops\n", path,
                fuzz_case->config.backend.c_str(),
                fuzz_case->config.entries, fuzz_case->ops.size());

    auto failure = testing::runCase(*fuzz_case);
    if (!failure) {
        std::printf("PASS: all checks hold\n");
        return 0;
    }

    std::printf("FAIL at op %zu (%s tag=%u value=0x%llx): %s\n",
                failure->opIndex, fuzzOpName(failure->op.kind),
                failure->op.tag,
                (unsigned long long)failure->op.value,
                failure->message.c_str());

    if (shrink) {
        testing::FuzzCase minimal = testing::shrinkCase(*fuzz_case);
        std::printf("shrunk to %zu ops:\n%s", minimal.ops.size(),
                    minimal.serialize().c_str());
    }
    return 1;
}
