/**
 * @file
 * Trace inspection tool.
 *
 *   carf_trace_dump record <workload> <path> [insts]
 *       Emulate <workload> for [insts] (default 2M) instructions and
 *       write the trace to <path>.
 *
 *   carf_trace_dump footprint <workload>|<path> [insts]
 *       Build the in-memory TraceBuffer for a workload (by name) or a
 *       recorded trace file and print its memory footprint: record
 *       count, per-field byte breakdown of the structure-of-arrays
 *       encoding, bytes per record, and the ratio to the naive DynOp
 *       array a streaming replayer would hold.
 *
 *   carf_trace_dump head <path> [count]
 *       Print the first [count] (default 10) records of a trace file.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "emu/trace_buffer.hh"
#include "emu/trace_file.hh"
#include "isa/opcode.hh"
#include "workloads/workload.hh"

using namespace carf;

namespace
{

bool
isTraceFile(const std::string &arg)
{
    std::FILE *file = std::fopen(arg.c_str(), "rb");
    if (!file)
        return false;
    char magic[8] = {};
    bool ok = std::fread(magic, sizeof(magic), 1, file) == 1 &&
              std::memcmp(magic, "CARFTRC1", 8) == 0;
    std::fclose(file);
    return ok;
}

std::unique_ptr<emu::TraceBuffer>
buildBuffer(const std::string &arg, u64 insts)
{
    if (isTraceFile(arg))
        return emu::readTraceBuffer(arg, arg, insts);
    auto trace = workloads::makeTrace(workloads::findWorkload(arg), insts);
    return emu::TraceBuffer::build(*trace, arg, insts);
}

void
printSize(const char *label, u64 bytes, u64 records)
{
    std::printf("  %-10s %10.2f KiB  (%5.2f B/record)\n", label,
                bytes / 1024.0, records ? double(bytes) / records : 0.0);
}

int
cmdFootprint(const std::string &arg, u64 insts)
{
    auto buffer = buildBuffer(arg, insts);
    u64 records = buffer->size();
    auto sizes = buffer->fieldSizes();

    std::printf("trace '%s': %llu records%s\n", buffer->name().c_str(),
                (unsigned long long)records,
                buffer->sawHalt() ? " (source ended before budget)" : "");
    printSize("pc", sizes.pc, records);
    printSize("decode", sizes.decode, records);
    printSize("flags", sizes.flags, records);
    printSize("values", sizes.values, records);
    printSize("effaddr", sizes.effAddr, records);
    printSize("total", sizes.total(), records);
    std::printf("  resident   %10.2f KiB (incl. vector overhead)\n",
                buffer->memoryBytes() / 1024.0);

    u64 naive = records * sizeof(emu::DynOp);
    std::printf("naive DynOp array: %.2f KiB (%zu B/record); "
                "SoA encoding is %.2fx smaller\n",
                naive / 1024.0, sizeof(emu::DynOp),
                sizes.total() ? double(naive) / sizes.total() : 0.0);
    return 0;
}

int
cmdRecord(const std::string &workload, const std::string &path, u64 insts)
{
    auto trace =
        workloads::makeTrace(workloads::findWorkload(workload), insts);
    u64 written = emu::TraceWriter::record(*trace, path);
    std::printf("wrote %llu records to %s\n",
                (unsigned long long)written, path.c_str());
    return 0;
}

int
cmdHead(const std::string &path, u64 count)
{
    emu::TraceReader reader(path, path, count);
    emu::DynOp op;
    while (reader.next(op)) {
        std::printf("%8llu  pc %6llu  %-6s rd %2u rs1 %2u rs2 %2u  "
                    "rd=%016llx%s\n",
                    (unsigned long long)op.seq,
                    (unsigned long long)op.pc,
                    isa::opcodeName(op.op).c_str(), op.rd, op.rs1,
                    op.rs2, (unsigned long long)op.rdValue,
                    op.taken ? "  taken" : "");
    }
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: carf_trace_dump record <workload> <path> "
                 "[insts]\n"
                 "       carf_trace_dump footprint <workload>|<path> "
                 "[insts]\n"
                 "       carf_trace_dump head <path> [count]\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "record" && (argc == 4 || argc == 5)) {
        u64 insts = argc == 5 ? std::strtoull(argv[4], nullptr, 0)
                              : 2'000'000;
        return cmdRecord(argv[2], argv[3], insts);
    }
    if (cmd == "footprint" && (argc == 3 || argc == 4)) {
        u64 insts = argc == 4 ? std::strtoull(argv[3], nullptr, 0)
                              : 2'000'000;
        return cmdFootprint(argv[2], insts);
    }
    if (cmd == "head" && (argc == 3 || argc == 4)) {
        u64 count = argc == 4 ? std::strtoull(argv[3], nullptr, 0) : 10;
        return cmdHead(argv[2], count);
    }
    return usage();
}
