/**
 * @file
 * Fluent in-code assembler for the CARF ISA.
 *
 * Workload kernels are written directly against this API:
 *
 * @code
 *   Assembler a;
 *   a.movi(R1, 0);
 *   a.label("loop");
 *   a.addi(R1, R1, 1);
 *   a.blt(R1, R2, "loop");
 *   a.halt();
 *   Program p = a.finish();
 * @endcode
 *
 * Forward label references are recorded as fixups and resolved by
 * finish(), which also validates the program.
 */

#ifndef CARF_ISA_ASSEMBLER_HH
#define CARF_ISA_ASSEMBLER_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace carf::isa
{

/** Integer register names. R0 is hardwired to zero. */
enum IntReg : u8
{
    R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14,
    R15, R16, R17, R18, R19, R20, R21, R22, R23, R24, R25, R26, R27, R28,
    R29, R30, R31,
};

/** Floating-point register names. */
enum FpReg : u8
{
    F0 = 0, F1, F2, F3, F4, F5, F6, F7, F8, F9, F10, F11, F12, F13, F14,
    F15, F16, F17, F18, F19, F20, F21, F22, F23, F24, F25, F26, F27, F28,
    F29, F30, F31,
};

/** Label-resolving instruction stream builder. */
class Assembler
{
  public:
    /** Bind a label to the next emitted instruction. */
    void label(const std::string &name);

    // Integer register-register ALU.
    void add(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::ADD, rd, rs1, rs2); }
    void sub(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::SUB, rd, rs1, rs2); }
    void and_(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::AND, rd, rs1, rs2); }
    void or_(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::OR, rd, rs1, rs2); }
    void xor_(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::XOR, rd, rs1, rs2); }
    void sll(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::SLL, rd, rs1, rs2); }
    void srl(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::SRL, rd, rs1, rs2); }
    void sra(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::SRA, rd, rs1, rs2); }
    void slt(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::SLT, rd, rs1, rs2); }
    void sltu(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::SLTU, rd, rs1, rs2); }
    void mul(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::MUL, rd, rs1, rs2); }
    void divx(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::DIVX, rd, rs1, rs2); }
    void remx(u8 rd, u8 rs1, u8 rs2) { emit3(Opcode::REMX, rd, rs1, rs2); }

    // Integer register-immediate ALU.
    void addi(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::ADDI, rd, rs1, imm); }
    void andi(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::ANDI, rd, rs1, imm); }
    void ori(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::ORI, rd, rs1, imm); }
    void xori(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::XORI, rd, rs1, imm); }
    void slli(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::SLLI, rd, rs1, imm); }
    void srli(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::SRLI, rd, rs1, imm); }
    void srai(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::SRAI, rd, rs1, imm); }
    void slti(u8 rd, u8 rs1, i64 imm) { emitImm(Opcode::SLTI, rd, rs1, imm); }
    void movi(u8 rd, i64 imm) { emitImm(Opcode::MOVI, rd, 0, imm); }
    /** rd := rs1 (assembles to addi rd, rs1, 0). */
    void mov(u8 rd, u8 rs1) { addi(rd, rs1, 0); }

    // Memory. Loads: rd := mem[rs1 + off]. Stores: mem[base + off] := src.
    void ld(u8 rd, u8 base, i64 off) { emitImm(Opcode::LD, rd, base, off); }
    void lw(u8 rd, u8 base, i64 off) { emitImm(Opcode::LW, rd, base, off); }
    void lb(u8 rd, u8 base, i64 off) { emitImm(Opcode::LB, rd, base, off); }
    void st(u8 src, u8 base, i64 off) { emitStore(Opcode::ST, src, base, off); }
    void sw(u8 src, u8 base, i64 off) { emitStore(Opcode::SW, src, base, off); }
    void sb(u8 src, u8 base, i64 off) { emitStore(Opcode::SB, src, base, off); }
    void fld(u8 frd, u8 base, i64 off) { emitImm(Opcode::FLD, frd, base, off); }
    void fst(u8 fsrc, u8 base, i64 off)
    {
        emitStore(Opcode::FST, fsrc, base, off);
    }

    // Control flow. Targets are labels (may be forward references).
    void beq(u8 rs1, u8 rs2, const std::string &target)
    {
        emitBranch(Opcode::BEQ, rs1, rs2, target);
    }
    void bne(u8 rs1, u8 rs2, const std::string &target)
    {
        emitBranch(Opcode::BNE, rs1, rs2, target);
    }
    void blt(u8 rs1, u8 rs2, const std::string &target)
    {
        emitBranch(Opcode::BLT, rs1, rs2, target);
    }
    void bge(u8 rs1, u8 rs2, const std::string &target)
    {
        emitBranch(Opcode::BGE, rs1, rs2, target);
    }
    void bltu(u8 rs1, u8 rs2, const std::string &target)
    {
        emitBranch(Opcode::BLTU, rs1, rs2, target);
    }
    void bgeu(u8 rs1, u8 rs2, const std::string &target)
    {
        emitBranch(Opcode::BGEU, rs1, rs2, target);
    }
    void jal(u8 rd, const std::string &target);
    void jalr(u8 rd, u8 rs1, i64 off) { emitImm(Opcode::JALR, rd, rs1, off); }
    /** Unconditional jump (jal with discarded link). */
    void jmp(const std::string &target) { jal(R0, target); }

    // Floating point.
    void fadd(u8 frd, u8 frs1, u8 frs2) { emit3(Opcode::FADD, frd, frs1, frs2); }
    void fsub(u8 frd, u8 frs1, u8 frs2) { emit3(Opcode::FSUB, frd, frs1, frs2); }
    void fmul(u8 frd, u8 frs1, u8 frs2) { emit3(Opcode::FMUL, frd, frs1, frs2); }
    void fdiv(u8 frd, u8 frs1, u8 frs2) { emit3(Opcode::FDIV, frd, frs1, frs2); }
    void fneg(u8 frd, u8 frs1) { emit3(Opcode::FNEG, frd, frs1, 0); }
    void fcvtif(u8 frd, u8 rs1) { emit3(Opcode::FCVTIF, frd, rs1, 0); }
    void fcvtfi(u8 rd, u8 frs1) { emit3(Opcode::FCVTFI, rd, frs1, 0); }
    void fmov(u8 frd, u8 frs1) { emit3(Opcode::FMOV, frd, frs1, 0); }

    void nop() { emit3(Opcode::NOP, 0, 0, 0); }
    void halt() { emit3(Opcode::HALT, 0, 0, 0); }

    /** Preload raw bytes at a data address. */
    void data(Addr base, std::vector<u8> bytes);
    /** Preload 64-bit words at a data address. */
    void dataU64(Addr base, const std::vector<u64> &words);
    /** Preload doubles at a data address. */
    void dataF64(Addr base, const std::vector<double> &values);

    /** Number of instructions emitted so far. */
    size_t pc() const { return code_.size(); }

    /**
     * Resolve all pending label references, validate, and return the
     * program. The assembler must not be reused afterwards.
     */
    Program finish();

  private:
    struct Fixup
    {
        size_t pc;
        std::string target;
    };

    void emit3(Opcode op, u8 rd, u8 rs1, u8 rs2);
    void emitImm(Opcode op, u8 rd, u8 rs1, i64 imm);
    void emitStore(Opcode op, u8 src, u8 base, i64 off);
    void emitBranch(Opcode op, u8 rs1, u8 rs2, const std::string &target);

    std::vector<Instruction> code_;
    std::vector<std::pair<std::string, size_t>> labels_;
    std::vector<Program::DataSegment> data_;
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace carf::isa

#endif // CARF_ISA_ASSEMBLER_HH
