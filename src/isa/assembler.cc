#include "isa/assembler.hh"

#include <cstring>
#include <unordered_map>

#include "common/logging.hh"

namespace carf::isa
{

void
Assembler::label(const std::string &name)
{
    labels_.emplace_back(name, code_.size());
}

void
Assembler::jal(u8 rd, const std::string &target)
{
    Instruction inst;
    inst.op = Opcode::JAL;
    inst.rd = rd;
    inst.imm = 0;
    fixups_.push_back({code_.size(), target});
    code_.push_back(inst);
}

void
Assembler::data(Addr base, std::vector<u8> bytes)
{
    data_.push_back({base, std::move(bytes)});
}

void
Assembler::dataU64(Addr base, const std::vector<u64> &words)
{
    std::vector<u8> bytes(words.size() * 8);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    data(base, std::move(bytes));
}

void
Assembler::dataF64(Addr base, const std::vector<double> &values)
{
    std::vector<u8> bytes(values.size() * 8);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    data(base, std::move(bytes));
}

void
Assembler::emit3(Opcode op, u8 rd, u8 rs1, u8 rs2)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    code_.push_back(inst);
}

void
Assembler::emitImm(Opcode op, u8 rd, u8 rs1, i64 imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = imm;
    code_.push_back(inst);
}

void
Assembler::emitStore(Opcode op, u8 src, u8 base, i64 off)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = base;
    inst.rs2 = src;
    inst.imm = off;
    code_.push_back(inst);
}

void
Assembler::emitBranch(Opcode op, u8 rs1, u8 rs2, const std::string &target)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    fixups_.push_back({code_.size(), target});
    code_.push_back(inst);
}

Program
Assembler::finish()
{
    if (finished_)
        panic("Assembler::finish called twice");
    finished_ = true;

    std::unordered_map<std::string, size_t> label_map;
    for (const auto &[name, pc] : labels_) {
        if (label_map.count(name))
            fatal("duplicate label '%s'", name.c_str());
        label_map[name] = pc;
    }

    for (const Fixup &fix : fixups_) {
        auto it = label_map.find(fix.target);
        if (it == label_map.end())
            fatal("unresolved label '%s'", fix.target.c_str());
        code_[fix.pc].imm = static_cast<i64>(it->second);
    }

    Program program;
    for (const Instruction &inst : code_)
        program.append(inst);
    for (const auto &[name, pc] : labels_)
        program.addLabel(name, pc);
    for (auto &seg : data_)
        program.addDataSegment(seg.base, std::move(seg.bytes));

    program.validate();
    return program;
}

} // namespace carf::isa
