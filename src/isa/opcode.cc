#include "isa/opcode.hh"

#include "common/logging.hh"

namespace carf::isa
{

namespace detail
{

// Unsized here so a drift from the Opcode enum (which sizes the
// header declaration) is a compile error, like the old static_assert.
const OpInfo kOpTable[] = {
    // mnemonic  class            rd             rs1            rs2           imm    mem lat
    {"add",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"sub",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"and",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"or",     OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"xor",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"sll",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"srl",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"sra",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"slt",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"sltu",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 1},
    {"mul",    OpClass::IntMul, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 3},
    {"divx",   OpClass::IntDiv, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 12},
    {"remx",   OpClass::IntDiv, RegClass::Int, RegClass::Int, RegClass::Int, false, 0, 12},
    {"addi",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"andi",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"ori",    OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"xori",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"slli",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"srli",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"srai",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"slti",   OpClass::IntAlu, RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"movi",   OpClass::IntAlu, RegClass::Int, RegClass::None, RegClass::None, true, 0, 1},
    {"ld",     OpClass::Load,   RegClass::Int, RegClass::Int, RegClass::None, true, 8, 1},
    {"lw",     OpClass::Load,   RegClass::Int, RegClass::Int, RegClass::None, true, 4, 1},
    {"lb",     OpClass::Load,   RegClass::Int, RegClass::Int, RegClass::None, true, 1, 1},
    {"st",     OpClass::Store,  RegClass::None, RegClass::Int, RegClass::Int, true, 8, 1},
    {"sw",     OpClass::Store,  RegClass::None, RegClass::Int, RegClass::Int, true, 4, 1},
    {"sb",     OpClass::Store,  RegClass::None, RegClass::Int, RegClass::Int, true, 1, 1},
    {"fld",    OpClass::Load,   RegClass::Fp,  RegClass::Int, RegClass::None, true, 8, 1},
    {"fst",    OpClass::Store,  RegClass::None, RegClass::Int, RegClass::Fp, true, 8, 1},
    {"beq",    OpClass::Branch, RegClass::None, RegClass::Int, RegClass::Int, true, 0, 1},
    {"bne",    OpClass::Branch, RegClass::None, RegClass::Int, RegClass::Int, true, 0, 1},
    {"blt",    OpClass::Branch, RegClass::None, RegClass::Int, RegClass::Int, true, 0, 1},
    {"bge",    OpClass::Branch, RegClass::None, RegClass::Int, RegClass::Int, true, 0, 1},
    {"bltu",   OpClass::Branch, RegClass::None, RegClass::Int, RegClass::Int, true, 0, 1},
    {"bgeu",   OpClass::Branch, RegClass::None, RegClass::Int, RegClass::Int, true, 0, 1},
    {"jal",    OpClass::Jump,   RegClass::Int, RegClass::None, RegClass::None, true, 0, 1},
    {"jalr",   OpClass::Jump,   RegClass::Int, RegClass::Int, RegClass::None, true, 0, 1},
    {"fadd",   OpClass::FpAlu,  RegClass::Fp,  RegClass::Fp,  RegClass::Fp,  false, 0, 2},
    {"fsub",   OpClass::FpAlu,  RegClass::Fp,  RegClass::Fp,  RegClass::Fp,  false, 0, 2},
    {"fmul",   OpClass::FpMul,  RegClass::Fp,  RegClass::Fp,  RegClass::Fp,  false, 0, 2},
    {"fdiv",   OpClass::FpDiv,  RegClass::Fp,  RegClass::Fp,  RegClass::Fp,  false, 0, 12},
    {"fneg",   OpClass::FpAlu,  RegClass::Fp,  RegClass::Fp,  RegClass::None, false, 0, 2},
    {"fcvtif", OpClass::FpCvt,  RegClass::Fp,  RegClass::Int, RegClass::None, false, 0, 2},
    {"fcvtfi", OpClass::FpCvt,  RegClass::Int, RegClass::Fp,  RegClass::None, false, 0, 2},
    {"fmov",   OpClass::FpAlu,  RegClass::Fp,  RegClass::Fp,  RegClass::None, false, 0, 1},
    {"nop",    OpClass::Nop,    RegClass::None, RegClass::None, RegClass::None, false, 0, 1},
    {"halt",   OpClass::Halt,   RegClass::None, RegClass::None, RegClass::None, false, 0, 1},
};

void
badOpcode(size_t idx)
{
    panic("opInfo: bad opcode %zu", idx);
}

} // namespace detail

std::string
opcodeName(Opcode op)
{
    return opInfo(op).mnemonic;
}

} // namespace carf::isa
