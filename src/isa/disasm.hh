/**
 * @file
 * Disassembler: renders instructions and programs for diagnostics.
 */

#ifndef CARF_ISA_DISASM_HH
#define CARF_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"

namespace carf::isa
{

/** Render one instruction, e.g.\ "add r3, r1, r2" or "ld r4, 16(r2)". */
std::string disassemble(const Instruction &inst);

/** Render a whole program with pc prefixes, one instruction per line. */
std::string disassemble(const Program &program);

} // namespace carf::isa

#endif // CARF_ISA_DISASM_HH
