#include "isa/instruction.hh"

#include "common/logging.hh"

namespace carf::isa
{

void
Program::addLabel(const std::string &name, size_t pc)
{
    if (labels_.count(name))
        fatal("duplicate label '%s'", name.c_str());
    labels_[name] = pc;
}

bool
Program::hasLabel(const std::string &name) const
{
    return labels_.count(name) != 0;
}

size_t
Program::labelPc(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        fatal("unknown label '%s'", name.c_str());
    return it->second;
}

void
Program::addDataSegment(Addr base, std::vector<u8> bytes)
{
    data_.push_back({base, std::move(bytes)});
}

void
Program::validate() const
{
    for (size_t pc = 0; pc < code_.size(); ++pc) {
        const Instruction &inst = code_[pc];
        const OpInfo &info = inst.info();
        if (info.rdClass != RegClass::None && inst.rd >= numArchRegs)
            fatal("pc %zu: rd %u out of range", pc, inst.rd);
        if (info.rs1Class != RegClass::None && inst.rs1 >= numArchRegs)
            fatal("pc %zu: rs1 %u out of range", pc, inst.rs1);
        if (info.rs2Class != RegClass::None && inst.rs2 >= numArchRegs)
            fatal("pc %zu: rs2 %u out of range", pc, inst.rs2);
        if (isBranch(inst.op) && inst.op != Opcode::JALR) {
            if (inst.imm < 0 ||
                static_cast<size_t>(inst.imm) >= code_.size()) {
                fatal("pc %zu: branch target %lld out of range",
                      pc, static_cast<long long>(inst.imm));
            }
        }
    }
}

} // namespace carf::isa
