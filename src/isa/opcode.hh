/**
 * @file
 * Opcode set and static per-opcode metadata for the CARF RISC ISA.
 *
 * The ISA is a 64-bit load/store architecture with 32 integer and 32
 * floating-point architectural registers. It is deliberately small —
 * just enough to express realistic integer and numerical kernels whose
 * dynamic value streams exhibit the partial value locality the paper
 * studies (addresses, loop counters, flags, hashes, FP payloads).
 */

#ifndef CARF_ISA_OPCODE_HH
#define CARF_ISA_OPCODE_HH

#include <string>

#include "common/types.hh"

namespace carf::isa
{

/** All opcodes. Immediate forms take rs2 := imm. */
enum class Opcode : u8
{
    // Integer ALU, register-register.
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU, MUL, DIVX, REMX,
    // Integer ALU, register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // 64-bit immediate materialisation (pseudo-op; one cycle).
    MOVI,
    // Memory. LD/ST move 8 bytes, LW/SW 4 (sign-extending load),
    // LB/SB 1. Address is rs1 + imm.
    LD, LW, LB, ST, SW, SB,
    // FP memory (64-bit); address from integer rs1 + imm.
    FLD, FST,
    // Control. Conditional branches compare rs1 against rs2 and jump
    // to the absolute instruction index in imm. JAL writes the link
    // (pc+1) into integer rd; JALR jumps to rs1 + imm.
    BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR,
    // FP arithmetic on fp registers.
    FADD, FSUB, FMUL, FDIV, FNEG,
    // Conversions / moves between files.
    FCVTIF, // fp rd := (double) int rs1
    FCVTFI, // int rd := (i64) fp rs1
    FMOV,   // fp rd := fp rs1
    // Misc.
    NOP, HALT,
    NumOpcodes,
};

/** Broad execution class, used for FU selection and latency. */
enum class OpClass : u8
{
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Branch,
    Jump,
    FpAlu,
    FpMul,
    FpDiv,
    FpCvt,
    Nop,
    Halt,
};

/** Register file a register operand belongs to. */
enum class RegClass : u8
{
    None,
    Int,
    Fp,
};

/** Static description of one opcode. */
struct OpInfo
{
    const char *mnemonic;
    OpClass opClass;
    RegClass rdClass;
    RegClass rs1Class;
    RegClass rs2Class;
    bool usesImm;
    /** Bytes moved by memory ops; 0 otherwise. */
    u8 memBytes;
    /** Result latency in cycles, from issue to completion. */
    u8 latency;
};

namespace detail
{

/** Static metadata, indexed by opcode (defined in opcode.cc). */
extern const OpInfo kOpTable[static_cast<size_t>(Opcode::NumOpcodes)];

/** Cold path: diagnose an out-of-range opcode. Never returns. */
[[noreturn]] void badOpcode(size_t idx);

} // namespace detail

/**
 * Metadata lookup; valid for every opcode below NumOpcodes. Inline —
 * the cycle loop calls this tens of millions of times per run — with
 * the range check kept on a cold out-of-line path.
 */
inline const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    if (idx >= static_cast<size_t>(Opcode::NumOpcodes))
        detail::badOpcode(idx);
    return detail::kOpTable[idx];
}

/** Mnemonic string for diagnostics. */
std::string opcodeName(Opcode op);

inline bool
isLoad(Opcode op)
{
    return opInfo(op).opClass == OpClass::Load;
}

inline bool
isStore(Opcode op)
{
    return opInfo(op).opClass == OpClass::Store;
}

inline bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

inline bool
isBranch(Opcode op)
{
    OpClass c = opInfo(op).opClass;
    return c == OpClass::Branch || c == OpClass::Jump;
}

inline bool
isConditionalBranch(Opcode op)
{
    return opInfo(op).opClass == OpClass::Branch;
}

/** True when the op writes an integer destination register. */
inline bool
writesIntReg(Opcode op)
{
    return opInfo(op).rdClass == RegClass::Int;
}

/** True when the op writes an fp destination register. */
inline bool
writesFpReg(Opcode op)
{
    return opInfo(op).rdClass == RegClass::Fp;
}

/** Number of architectural registers per class. */
inline constexpr unsigned numArchRegs = 32;

} // namespace carf::isa

#endif // CARF_ISA_OPCODE_HH
