#include "isa/disasm.hh"

#include <sstream>

#include "common/logging.hh"

namespace carf::isa
{

namespace
{

std::string
regName(RegClass cls, u8 idx)
{
    switch (cls) {
      case RegClass::Int:
        return "r" + std::to_string(idx);
      case RegClass::Fp:
        return "f" + std::to_string(idx);
      case RegClass::None:
        return "-";
    }
    return "?";
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    const OpInfo &info = inst.info();
    std::ostringstream os;
    os << info.mnemonic;

    switch (info.opClass) {
      case OpClass::Load:
        os << ' ' << regName(info.rdClass, inst.rd) << ", " << inst.imm
           << '(' << regName(info.rs1Class, inst.rs1) << ')';
        break;
      case OpClass::Store:
        os << ' ' << regName(info.rs2Class, inst.rs2) << ", " << inst.imm
           << '(' << regName(info.rs1Class, inst.rs1) << ')';
        break;
      case OpClass::Branch:
        os << ' ' << regName(info.rs1Class, inst.rs1) << ", "
           << regName(info.rs2Class, inst.rs2) << ", @" << inst.imm;
        break;
      case OpClass::Jump:
        if (inst.op == Opcode::JAL) {
            os << ' ' << regName(RegClass::Int, inst.rd) << ", @"
               << inst.imm;
        } else {
            os << ' ' << regName(RegClass::Int, inst.rd) << ", "
               << regName(RegClass::Int, inst.rs1) << ", " << inst.imm;
        }
        break;
      case OpClass::Nop:
      case OpClass::Halt:
        break;
      default:
        if (info.rdClass != RegClass::None)
            os << ' ' << regName(info.rdClass, inst.rd);
        if (info.rs1Class != RegClass::None)
            os << ", " << regName(info.rs1Class, inst.rs1);
        if (info.usesImm)
            os << ", " << inst.imm;
        else if (info.rs2Class != RegClass::None)
            os << ", " << regName(info.rs2Class, inst.rs2);
        break;
    }
    return os.str();
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    for (size_t pc = 0; pc < program.size(); ++pc) {
        os << strprintf("%6zu: ", pc) << disassemble(program.at(pc))
           << '\n';
    }
    return os.str();
}

} // namespace carf::isa
