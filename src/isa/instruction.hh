/**
 * @file
 * Static instruction representation and the Program container.
 */

#ifndef CARF_ISA_INSTRUCTION_HH
#define CARF_ISA_INSTRUCTION_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/opcode.hh"

namespace carf::isa
{

/**
 * One static instruction. Register fields are indices within the
 * register class given by the opcode's OpInfo; unused fields are 0.
 * Branch/jump targets are absolute instruction indices held in imm.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i64 imm = 0;

    const OpInfo &info() const { return opInfo(op); }
};

/**
 * An assembled program: code plus named labels (already resolved to
 * instruction indices by the Assembler) and initial data segments.
 */
class Program
{
  public:
    /** A block of bytes to preload into data memory before running. */
    struct DataSegment
    {
        Addr base;
        std::vector<u8> bytes;
    };

    void append(const Instruction &inst) { code_.push_back(inst); }

    const std::vector<Instruction> &code() const { return code_; }
    const Instruction &at(size_t pc) const { return code_.at(pc); }
    size_t size() const { return code_.size(); }

    void addLabel(const std::string &name, size_t pc);
    bool hasLabel(const std::string &name) const;
    size_t labelPc(const std::string &name) const;

    void addDataSegment(Addr base, std::vector<u8> bytes);
    const std::vector<DataSegment> &dataSegments() const { return data_; }

    /** Validate register indices and branch targets; fatal() on error. */
    void validate() const;

  private:
    std::vector<Instruction> code_;
    std::unordered_map<std::string, size_t> labels_;
    std::vector<DataSegment> data_;
};

} // namespace carf::isa

#endif // CARF_ISA_INSTRUCTION_HH
