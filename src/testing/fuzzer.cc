#include "testing/fuzzer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace carf::testing
{

using regfile::ValueType;

namespace
{

/**
 * Size the oracle's books from a *fresh* model's structureCounts():
 * the Short file has one slot per reported refcount, and every real
 * Long entry of an unused file is free, so freeLong is K.
 */
ShadowRegFile
makeShadow(const regfile::RegisterFile &file, unsigned entries)
{
    regfile::RegisterFile::StructureCounts sc = file.structureCounts();
    return ShadowRegFile(
        entries, static_cast<unsigned>(sc.shortRefCounts.size()),
        sc.freeLong);
}

} // namespace

FuzzHarness::FuzzHarness(const FuzzConfig &config)
    : config_(config),
      file_(config.makeFile("fuzz")),
      shadow_(makeShadow(*file_, config.entries))
{
    if (config_.threads > 1)
        file_->setThreadCount(config_.threads);
}

std::string
FuzzHarness::step(const FuzzOp &op)
{
    if (config_.threads > 1)
        file_->setActiveThread(op.tid % config_.threads);
    u32 tag = op.tag % config_.entries;
    switch (op.kind) {
      case FuzzOpKind::Write:
      case FuzzOpKind::WriteForced: {
        // Skipping state-invalid ops (instead of faulting) keeps every
        // subsequence of a failing sequence executable, which makes
        // delta-debugging shrinks sound.
        if (file_->peekLive(tag))
            break;
        regfile::WriteAccess access =
            op.kind == FuzzOpKind::WriteForced
                ? file_->writeForced(tag, op.value)
                : file_->write(tag, op.value);
        if (!access.stalled)
            shadow_.noteWrite(tag, op.value, access.type,
                              file_->peekSubIndex(tag));
        break;
      }
      case FuzzOpKind::Read: {
        if (!file_->peekLive(tag))
            break;
        if (!shadow_.live(tag))
            return strprintf("read tag %u: impl live, oracle dead", tag);
        regfile::ReadAccess access = file_->read(tag);
        if (access.value != shadow_.value(tag))
            return strprintf("read tag %u: impl %llx != oracle %llx",
                             tag, (unsigned long long)access.value,
                             (unsigned long long)shadow_.value(tag));
        if (access.type != shadow_.type(tag))
            return strprintf("read tag %u: impl type %s != oracle %s",
                             tag, valueTypeName(access.type),
                             valueTypeName(shadow_.type(tag)));
        break;
      }
      case FuzzOpKind::Release:
        file_->release(tag);
        shadow_.noteRelease(tag);
        break;
      case FuzzOpKind::NoteAddress:
        file_->noteAddress(op.value);
        break;
      case FuzzOpKind::RobInterval:
        file_->onRobInterval();
        break;
      case FuzzOpKind::Reset:
        file_->reset();
        shadow_.reset();
        break;
      case FuzzOpKind::InjectShortRefLeak:
        // Deliberate corruption, invisible to the oracle: the next
        // check must report the reference-count divergence.
        file_->debugInjectFault(op.value);
        break;
    }

    std::string err = file_->checkInvariants();
    if (!err.empty())
        return err;
    if (config_.threads > 1) {
        // Cross-thread accounting sanity on the shared file: a share
        // is a subset of the hits that produced it, per thread.
        auto sharing = file_->sharingStats();
        for (size_t t = 0; t < sharing.crossShortHits.size(); ++t) {
            if (t >= sharing.shortHits.size() ||
                sharing.crossShortHits[t] > sharing.shortHits[t])
                return strprintf("thread %zu: cross-thread shares "
                                 "exceed its Short hits",
                                 t);
        }
    }
    return shadow_.check(*file_);
}

std::optional<FuzzFailure>
runCase(const FuzzCase &fuzz_case)
{
    FuzzHarness harness(fuzz_case.config);
    for (size_t i = 0; i < fuzz_case.ops.size(); ++i) {
        std::string err = harness.step(fuzz_case.ops[i]);
        if (!err.empty())
            return FuzzFailure{i, fuzz_case.ops[i], err};
    }
    return std::nullopt;
}

std::vector<FuzzOp>
generateOps(const FuzzConfig &config, Rng &rng,
            const FuzzGenOptions &options)
{
    if (config.threads > 1) {
        // Multithreaded mode: N independent single-thread streams
        // over disjoint tag slices (each thread keeps its own live-tag
        // book, like a private rename partition), randomly interleaved
        // into one sequence against the one shared file. Still a pure
        // function of @p rng, and any subsequence stays executable, so
        // shrinking works on interleavings too.
        unsigned num_threads = config.threads;
        u32 slice = std::max(1u, config.entries / num_threads);
        FuzzConfig sliced = config;
        sliced.threads = 1;
        sliced.entries = slice;
        FuzzGenOptions per = options;
        per.ops = (options.ops + num_threads - 1) / num_threads;

        size_t remaining = 0;
        std::vector<std::vector<FuzzOp>> streams(num_threads);
        for (unsigned t = 0; t < num_threads; ++t) {
            streams[t] = generateOps(sliced, rng, per);
            for (FuzzOp &op : streams[t]) {
                op.tid = t;
                if (op.kind == FuzzOpKind::Write ||
                    op.kind == FuzzOpKind::WriteForced ||
                    op.kind == FuzzOpKind::Read ||
                    op.kind == FuzzOpKind::Release)
                    op.tag += t * slice;
            }
            remaining += streams[t].size();
        }

        std::vector<FuzzOp> ops;
        ops.reserve(remaining);
        std::vector<size_t> pos(num_threads, 0);
        while (remaining > 0) {
            unsigned t = static_cast<unsigned>(
                rng.nextBounded(num_threads));
            if (pos[t] < streams[t].size()) {
                ops.push_back(streams[t][pos[t]++]);
                --remaining;
            }
        }
        return ops;
    }

    const regfile::SimilarityParams &sim = config.ca.sim;
    unsigned field_bits = sim.simpleFieldBits();

    // (64-d)-similar cluster bases, plus siblings that share the
    // Short index bits [d, d+n) but differ in the high tag — the
    // direct-mapped collision case.
    std::vector<u64> bases;
    unsigned base_count = std::max(1u, options.clusterBases);
    for (unsigned i = 0; i < base_count; ++i) {
        u64 base = rng.next() | (u64{1} << 62);
        bases.push_back(base);
        if (rng.chance(0.5) && field_bits + 2 < 62) {
            unsigned flip = field_bits + 1 +
                static_cast<unsigned>(
                    rng.nextBounded(61 - field_bits));
            bases.push_back(base ^ (u64{1} << flip));
        }
    }

    // Values hugging the sign-extension boundary of the Simple field
    // (and its one-off neighbors), both positive and negative.
    auto edge_value = [&]() {
        unsigned width = field_bits - 1 +
            static_cast<unsigned>(rng.nextBounded(3));
        u64 value = (u64{1} << (width - 1)) + (rng.next() & 7) - 4;
        if (rng.chance(0.5))
            value = ~value + 1;
        return value;
    };

    auto pick_value = [&]() -> u64 {
        switch (rng.pickWeighted({0.25, 0.2, 0.25, 0.15, 0.15})) {
          case 0:
            return edge_value();
          case 1: // comfortably simple
            return static_cast<u64>(rng.nextRange(-4096, 4096));
          case 2: // cluster member: short candidate
            return bases[rng.nextBounded(bases.size())] +
                   rng.nextBounded(u64{1} << sim.d());
          case 3: // wide: long with near certainty
            return rng.next() | (u64{1} << 63);
          default:
            return rng.nextMagnitudeBiased();
        }
    };

    std::vector<FuzzOp> ops;
    ops.reserve(options.ops);
    // Tags the generator believes are live; mispredictions (e.g.\ a
    // stalled write) only cost a skipped op at execution time.
    std::vector<u32> maybe_live;
    unsigned exhaustion = 0;

    auto pick_tag = [&]() -> u32 {
        if (!maybe_live.empty() && rng.chance(0.75))
            return maybe_live[rng.nextBounded(maybe_live.size())];
        return static_cast<u32>(rng.nextBounded(config.entries));
    };

    for (size_t i = 0; i < options.ops; ++i) {
        if (exhaustion == 0 && rng.chance(options.exhaustionChance))
            exhaustion = 50 + static_cast<unsigned>(rng.nextBounded(100));

        // write, read, release, noteAddress, robInterval, reset,
        // writeForced. Exhaustion phases pile up Long writes and
        // suppress releases to drain the free list.
        size_t kind;
        if (exhaustion > 0) {
            --exhaustion;
            kind = rng.pickWeighted(
                {0.55, 0.1, 0.05, 0.02, 0.03, 0.0, 0.25});
        } else {
            kind = rng.pickWeighted(
                {0.34, 0.24, 0.22, 0.1, 0.06, 0.003, 0.03});
        }

        FuzzOp op;
        switch (kind) {
          case 0:
          case 6: {
            op.kind = kind == 0 ? FuzzOpKind::Write
                                : FuzzOpKind::WriteForced;
            op.tag = static_cast<u32>(rng.nextBounded(config.entries));
            op.value = exhaustion > 0 ? rng.next() | (u64{1} << 63)
                                      : pick_value();
            maybe_live.push_back(op.tag);
            break;
          }
          case 1:
            op.kind = FuzzOpKind::Read;
            op.tag = pick_tag();
            break;
          case 2: {
            op.kind = FuzzOpKind::Release;
            op.tag = pick_tag();
            auto it = std::find(maybe_live.begin(), maybe_live.end(),
                                op.tag);
            if (it != maybe_live.end())
                maybe_live.erase(it);
            break;
          }
          case 3:
            op.kind = FuzzOpKind::NoteAddress;
            op.value = rng.chance(0.7)
                ? bases[rng.nextBounded(bases.size())] +
                      rng.nextBounded(u64{1} << sim.d())
                : pick_value();
            break;
          case 4:
            op.kind = FuzzOpKind::RobInterval;
            break;
          default:
            op.kind = FuzzOpKind::Reset;
            maybe_live.clear();
            break;
        }
        ops.push_back(op);
    }
    return ops;
}

FuzzCase
shrinkCase(const FuzzCase &failing)
{
    FuzzCase current = failing;
    auto failure = runCase(current);
    if (!failure)
        return current;
    // Everything after the failing op is noise by construction.
    current.ops.resize(failure->opIndex + 1);

    auto fails = [](const FuzzCase &candidate) {
        return runCase(candidate).has_value();
    };

    // ddmin-style: greedily remove chunks, halving the chunk size down
    // to single ops, then iterate 1-op passes to a fixpoint. Every
    // candidate re-runs from scratch, so the result is replayable.
    size_t chunk = std::max<size_t>(current.ops.size() / 2, 1);
    for (;;) {
        bool removed = false;
        for (size_t start = 0; start < current.ops.size();) {
            FuzzCase candidate = current;
            size_t len = std::min(chunk, candidate.ops.size() - start);
            candidate.ops.erase(
                candidate.ops.begin() + static_cast<long>(start),
                candidate.ops.begin() + static_cast<long>(start + len));
            if (fails(candidate)) {
                current = std::move(candidate);
                removed = true;
            } else {
                start += chunk;
            }
        }
        if (chunk == 1) {
            if (!removed)
                break;
        } else {
            chunk = std::max<size_t>(1, chunk / 2);
        }
    }

    // Value simplification: prefer the smallest constant that still
    // reproduces the failure.
    for (size_t i = 0; i < current.ops.size(); ++i) {
        FuzzOp &op = current.ops[i];
        if (op.kind != FuzzOpKind::Write &&
            op.kind != FuzzOpKind::WriteForced &&
            op.kind != FuzzOpKind::NoteAddress)
            continue;
        for (u64 simple : {u64{0}, u64{1}, op.value & 0xffff}) {
            if (simple == op.value)
                continue;
            FuzzCase candidate = current;
            candidate.ops[i].value = simple;
            if (fails(candidate)) {
                current = std::move(candidate);
                break;
            }
        }
    }
    return current;
}

FuzzRoundResult
fuzzOneSeed(const FuzzConfig &config, u64 seed,
            const FuzzGenOptions &options)
{
    Rng rng(seed);
    FuzzCase fuzz_case{config, generateOps(config, rng, options)};
    FuzzRoundResult result;
    result.failure = runCase(fuzz_case);
    result.opsRun = result.failure ? result.failure->opIndex
                                   : fuzz_case.ops.size();
    if (result.failure)
        result.shrunk = shrinkCase(fuzz_case);
    return result;
}

} // namespace carf::testing
