#include "testing/fuzz_ops.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace carf::testing
{

const char *
fuzzOpName(FuzzOpKind kind)
{
    switch (kind) {
      case FuzzOpKind::Write: return "write";
      case FuzzOpKind::WriteForced: return "write-forced";
      case FuzzOpKind::Read: return "read";
      case FuzzOpKind::Release: return "release";
      case FuzzOpKind::NoteAddress: return "note-address";
      case FuzzOpKind::RobInterval: return "rob-interval";
      case FuzzOpKind::Reset: return "reset";
      case FuzzOpKind::InjectShortRefLeak: return "inject-short-ref-leak";
    }
    return "?";
}

std::unique_ptr<regfile::RegisterFile>
FuzzConfig::makeFile(const std::string &name) const
{
    regfile::RegFileParams params;
    params.entries = entries;
    params.ca = ca;
    params.portRed = portRed;
    return regfile::makeRegFile(backend, params, name);
}

std::vector<FuzzConfig>
standardFuzzConfigs()
{
    std::vector<FuzzConfig> configs;
    for (const std::string &name : regfile::registry().names()) {
        // The default ca is the paper configuration: d+n=20, M=8, K=48.
        FuzzConfig config;
        config.backend = name;
        configs.push_back(config);
        if (name == "content-aware") {
            FuzzConfig assoc = config;
            assoc.ca.associativeShort = true;
            configs.push_back(assoc);

            FuzzConfig alloc_any = config;
            alloc_any.ca.allocShortOnAnyResult = true;
            configs.push_back(alloc_any);
        }
    }
    return configs;
}

namespace
{

/** Single-letter opcodes of the seed-file grammar. */
char
opLetter(FuzzOpKind kind)
{
    switch (kind) {
      case FuzzOpKind::Write: return 'W';
      case FuzzOpKind::WriteForced: return 'F';
      case FuzzOpKind::Read: return 'R';
      case FuzzOpKind::Release: return 'L';
      case FuzzOpKind::NoteAddress: return 'A';
      case FuzzOpKind::RobInterval: return 'I';
      case FuzzOpKind::Reset: return 'Z';
      case FuzzOpKind::InjectShortRefLeak: return 'X';
    }
    return '?';
}

bool
opFromLetter(char letter, FuzzOpKind &kind_out)
{
    switch (letter) {
      case 'W': kind_out = FuzzOpKind::Write; return true;
      case 'F': kind_out = FuzzOpKind::WriteForced; return true;
      case 'R': kind_out = FuzzOpKind::Read; return true;
      case 'L': kind_out = FuzzOpKind::Release; return true;
      case 'A': kind_out = FuzzOpKind::NoteAddress; return true;
      case 'I': kind_out = FuzzOpKind::RobInterval; return true;
      case 'Z': kind_out = FuzzOpKind::Reset; return true;
      case 'X': kind_out = FuzzOpKind::InjectShortRefLeak; return true;
    }
    return false;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

std::string
FuzzCase::serialize() const
{
    std::string out = "carf-fuzz-seed v1\n";
    out += strprintf("kind %s\n", config.backend.c_str());
    out += strprintf("entries %u\n", config.entries);
    if (config.threads > 1)
        out += strprintf("threads %u\n", config.threads);
    out += strprintf("d %u\n", config.ca.sim.d());
    out += strprintf("n %u\n", config.ca.sim.n());
    out += strprintf("long %u\n", config.ca.longEntries);
    out += strprintf("stall %u\n", config.ca.issueStallThreshold);
    out += strprintf("assoc %u\n", config.ca.associativeShort ? 1 : 0);
    out += strprintf("allocany %u\n",
                     config.ca.allocShortOnAnyResult ? 1 : 0);
    out += strprintf("ports %u\n", config.portRed.sharedReadPorts);
    out += strprintf("ops %zu\n", ops.size());
    for (const FuzzOp &op : ops) {
        if (op.tid > 0)
            out += strprintf("%u ", op.tid);
        switch (op.kind) {
          case FuzzOpKind::Write:
          case FuzzOpKind::WriteForced:
            out += strprintf("%c %u 0x%llx\n", opLetter(op.kind), op.tag,
                             (unsigned long long)op.value);
            break;
          case FuzzOpKind::Read:
          case FuzzOpKind::Release:
            out += strprintf("%c %u\n", opLetter(op.kind), op.tag);
            break;
          case FuzzOpKind::NoteAddress:
          case FuzzOpKind::InjectShortRefLeak:
            out += strprintf("%c 0x%llx\n", opLetter(op.kind),
                             (unsigned long long)op.value);
            break;
          case FuzzOpKind::RobInterval:
          case FuzzOpKind::Reset:
            out += strprintf("%c\n", opLetter(op.kind));
            break;
        }
    }
    return out;
}

std::optional<FuzzCase>
FuzzCase::parse(const std::string &text, std::string *error)
{
    std::istringstream in(text);
    std::string line;

    auto bad = [&](const std::string &message) -> std::optional<FuzzCase> {
        if (error)
            *error = message;
        return std::nullopt;
    };

    if (!std::getline(in, line) || line != "carf-fuzz-seed v1")
        return bad("missing 'carf-fuzz-seed v1' header");

    FuzzCase fuzz_case;
    size_t op_count = 0;
    bool saw_ops = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "kind") {
            std::string kind;
            fields >> kind;
            if (!regfile::registry().find(kind))
                return bad("unknown file kind '" + kind + "'");
            fuzz_case.config.backend = kind;
        } else if (key == "entries") {
            fields >> fuzz_case.config.entries;
        } else if (key == "threads") {
            fields >> fuzz_case.config.threads;
        } else if (key == "d") {
            unsigned d = 0;
            fields >> d;
            fuzz_case.config.ca.sim = regfile::SimilarityParams(
                d, fuzz_case.config.ca.sim.n());
        } else if (key == "n") {
            unsigned n = 0;
            fields >> n;
            fuzz_case.config.ca.sim = regfile::SimilarityParams(
                fuzz_case.config.ca.sim.d(), n);
        } else if (key == "long") {
            fields >> fuzz_case.config.ca.longEntries;
        } else if (key == "stall") {
            fields >> fuzz_case.config.ca.issueStallThreshold;
        } else if (key == "assoc") {
            unsigned flag = 0;
            fields >> flag;
            fuzz_case.config.ca.associativeShort = flag != 0;
        } else if (key == "allocany") {
            unsigned flag = 0;
            fields >> flag;
            fuzz_case.config.ca.allocShortOnAnyResult = flag != 0;
        } else if (key == "ports") {
            fields >> fuzz_case.config.portRed.sharedReadPorts;
        } else if (key == "ops") {
            fields >> op_count;
            saw_ops = true;
            break;
        } else {
            return bad("unknown header key '" + key + "'");
        }
        if (fields.fail())
            return bad("malformed header line '" + line + "'");
    }
    if (!saw_ops)
        return bad("missing 'ops <count>' line");

    fuzz_case.ops.reserve(op_count);
    while (fuzz_case.ops.size() < op_count && std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string letter;
        fields >> letter;
        FuzzOp op;
        // Multithreaded op lines lead with the issuing thread index.
        if (!letter.empty() && letter[0] >= '0' && letter[0] <= '9') {
            op.tid = static_cast<u32>(
                std::strtoul(letter.c_str(), nullptr, 10));
            fields >> letter;
        }
        if (letter.size() != 1 || !opFromLetter(letter[0], op.kind))
            return bad("unknown op '" + line + "'");
        switch (op.kind) {
          case FuzzOpKind::Write:
          case FuzzOpKind::WriteForced:
            fields >> op.tag >> std::hex >> op.value;
            break;
          case FuzzOpKind::Read:
          case FuzzOpKind::Release:
            fields >> op.tag;
            break;
          case FuzzOpKind::NoteAddress:
          case FuzzOpKind::InjectShortRefLeak:
            fields >> std::hex >> op.value;
            break;
          case FuzzOpKind::RobInterval:
          case FuzzOpKind::Reset:
            break;
        }
        if (fields.fail())
            return bad("malformed op line '" + line + "'");
        fuzz_case.ops.push_back(op);
    }
    if (fuzz_case.ops.size() != op_count)
        return bad(strprintf("expected %zu ops, found %zu", op_count,
                             fuzz_case.ops.size()));
    return fuzz_case;
}

bool
FuzzCase::writeFile(const std::string &path, std::string *error) const
{
    std::ofstream file(path, std::ios::trunc);
    if (!file)
        return fail(error, "cannot open '" + path + "' for writing");
    file << serialize();
    if (!file.flush())
        return fail(error, "short write to '" + path + "'");
    return true;
}

std::optional<FuzzCase>
FuzzCase::loadFile(const std::string &path, std::string *error)
{
    std::ifstream file(path);
    if (!file) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream text;
    text << file.rdbuf();
    return parse(text.str(), error);
}

} // namespace carf::testing
