/**
 * @file
 * Fuzz operation vocabulary and seed-file format for the register-file
 * model-checking harness.
 *
 * A FuzzCase is a register-file configuration plus a flat op sequence;
 * it is the unit of generation, execution, shrinking, and replay. The
 * textual seed-file format is deliberately line-based and stable so a
 * counterexample found by a nightly fuzz run can be attached to a bug
 * report and re-executed bit-identically by `carf_fuzz_replay`.
 */

#ifndef CARF_TESTING_FUZZ_OPS_HH
#define CARF_TESTING_FUZZ_OPS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "regfile/registry.hh"

namespace carf::testing
{

/** One step of the register-file interface driven by the fuzzer. */
enum class FuzzOpKind : u8
{
    /** write(tag, value) at writeback. */
    Write,
    /** writeForced(tag, value): §3.2 pseudo-deadlock recovery. */
    WriteForced,
    /** read(tag), checked bit-exact against the shadow oracle. */
    Read,
    /** release(tag) at commit. */
    Release,
    /** noteAddress(value): LD/ST effective-address Short allocation. */
    NoteAddress,
    /** onRobInterval(): Tcur/Told epoch tick. */
    RobInterval,
    /** reset() of both implementation and oracle. */
    Reset,
    /**
     * Fault injection: debugInjectFault(value) on the model (e.g. a
     * leaked Short-file reference), bypassing the oracle. Only emitted
     * by tests that prove the harness catches internal-state
     * corruption; never generated.
     */
    InjectShortRefLeak,
};

const char *fuzzOpName(FuzzOpKind kind);

/** A single operation; value doubles as address / injection slot. */
struct FuzzOp
{
    FuzzOpKind kind = FuzzOpKind::RobInterval;
    u32 tag = 0;
    u64 value = 0;
    /**
     * Issuing hardware thread (multithreaded mode): the harness sets
     * the file's active thread before applying the op. 0 in
     * single-threaded cases; serialized as a leading index on the op
     * line only when nonzero, so old seed files parse unchanged.
     */
    u32 tid = 0;

    bool operator==(const FuzzOp &) const = default;
};

/** Register-file configuration of a fuzz case. */
struct FuzzConfig
{
    /** Registry name of the model this case drives. */
    std::string backend = "content-aware";
    /** Physical tags. */
    unsigned entries = 64;
    /**
     * Hardware threads interleaving on the one shared file (and one
     * shared shadow oracle). With threads > 1 the generator emits N
     * independent op streams over disjoint tag slices and interleaves
     * them randomly; per-step checks then cover Short refcounts and
     * Long free-list integrity across every interleaving.
     */
    unsigned threads = 1;
    regfile::ContentAwareParams ca;
    regfile::PortReductionParams portRed;

    /** Instantiate the configured register file via the registry. */
    std::unique_ptr<regfile::RegisterFile>
    makeFile(const std::string &name) const;
};

/**
 * The standard configurations the bounded fuzz tests cover: every
 * registered backend (so a newly registered model is fuzzed with no
 * harness changes), plus the associative-Short and alloc-on-any-result
 * ablation variants of the content-aware file.
 */
std::vector<FuzzConfig> standardFuzzConfigs();

/** A deterministic, replayable fuzz case. */
struct FuzzCase
{
    FuzzConfig config;
    std::vector<FuzzOp> ops;

    /** Render as seed-file text (see parse for the grammar). */
    std::string serialize() const;

    /**
     * Parse seed-file text; returns std::nullopt and fills @p error
     * on malformed input. parse(serialize()) is the identity.
     */
    static std::optional<FuzzCase> parse(const std::string &text,
                                         std::string *error);

    /** Write the seed file; false (with @p error) on I/O failure. */
    bool writeFile(const std::string &path, std::string *error) const;

    /** Load a seed file written by writeFile. */
    static std::optional<FuzzCase> loadFile(const std::string &path,
                                            std::string *error);
};

} // namespace carf::testing

#endif // CARF_TESTING_FUZZ_OPS_HH
