#include "testing/shadow_regfile.hh"

#include "common/logging.hh"

namespace carf::testing
{

using regfile::ValueType;

ShadowRegFile::ShadowRegFile(unsigned entries, unsigned short_entries,
                             unsigned long_entries)
    : regs_(entries), shortRefs_(short_entries, 0),
      longEntries_(long_entries), freeLong_(long_entries)
{
}

void
ShadowRegFile::reset()
{
    regs_.assign(regs_.size(), Reg{});
    shortRefs_.assign(shortRefs_.size(), 0);
    freeLong_ = longEntries_;
}

void
ShadowRegFile::noteWrite(u32 tag, u64 value, ValueType type,
                         unsigned sub_index)
{
    Reg &reg = regs_.at(tag);
    if (reg.live)
        panic("ShadowRegFile: write of live tag %u", tag);
    reg.live = true;
    reg.value = value;
    reg.type = type;
    reg.subIndex = sub_index;
    if (type == ValueType::Short)
        ++shortRefs_.at(sub_index);
    // Overflow entries (index >= K) come from pseudo-deadlock recovery
    // and never touch the real free list.
    if (type == ValueType::Long && sub_index < longEntries_)
        --freeLong_;
}

void
ShadowRegFile::noteRelease(u32 tag)
{
    Reg &reg = regs_.at(tag);
    if (!reg.live)
        return;
    if (reg.type == ValueType::Short) {
        unsigned &refs = shortRefs_.at(reg.subIndex);
        if (refs == 0)
            panic("ShadowRegFile: releasing tag %u would drop Short "
                  "slot %u below zero refs", tag, reg.subIndex);
        --refs;
    }
    if (reg.type == ValueType::Long && reg.subIndex < longEntries_)
        ++freeLong_;
    reg.live = false;
}

unsigned
ShadowRegFile::liveLongEntries() const
{
    unsigned live = 0;
    for (const Reg &reg : regs_)
        live += reg.live && reg.type == ValueType::Long ? 1 : 0;
    return live;
}

std::string
ShadowRegFile::check(const regfile::RegisterFile &file) const
{
    for (u32 tag = 0; tag < regs_.size(); ++tag) {
        const Reg &reg = regs_[tag];
        if (file.peekLive(tag) != reg.live)
            return strprintf("tag %u: impl live=%d oracle live=%d", tag,
                             file.peekLive(tag) ? 1 : 0,
                             reg.live ? 1 : 0);
        if (!reg.live)
            continue;
        if (file.peekValue(tag) != reg.value)
            return strprintf("tag %u: impl value %llx != oracle %llx",
                             tag,
                             (unsigned long long)file.peekValue(tag),
                             (unsigned long long)reg.value);
        if (file.peekType(tag) != reg.type)
            return strprintf("tag %u: impl type %s != oracle %s", tag,
                             valueTypeName(file.peekType(tag)),
                             valueTypeName(reg.type));
    }

    regfile::RegisterFile::StructureCounts sc = file.structureCounts();
    if (sc.shortRefCounts.size() != shortRefs_.size())
        return strprintf("Short file: impl %zu slots != oracle %zu",
                         sc.shortRefCounts.size(), shortRefs_.size());
    for (unsigned i = 0; i < shortRefs_.size(); ++i) {
        if (sc.shortRefCounts[i] != shortRefs_[i])
            return strprintf("Short slot %u: impl refcount %u != "
                             "oracle %u", i, sc.shortRefCounts[i],
                             shortRefs_[i]);
    }
    if (!sc.hasLongFile)
        return "";
    if (sc.freeLong != freeLong_)
        return strprintf("Long free list: impl %u != oracle %u",
                         sc.freeLong, freeLong_);
    if (sc.liveLong != liveLongEntries())
        return strprintf("live Long entries: impl %u != oracle %u",
                         sc.liveLong, liveLongEntries());
    return "";
}

} // namespace carf::testing
