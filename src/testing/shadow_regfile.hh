/**
 * @file
 * Shadow oracle for register-file model checking.
 *
 * The content-aware file reconstructs every read from sub-file fields
 * and stores no copy of the full 64-bit value, so the oracle keeps the
 * plain representation the implementation deliberately gave up: one
 * 64-bit word per live tag, plus independent double-entry accounting
 * of Short-group reference counts and Long free-list occupancy. The
 * harness feeds the oracle the same operation stream it applies to the
 * implementation; after every step `check()` cross-examines the
 * implementation's observable state against the oracle's books.
 *
 * The accounting is independent in the sense that matters: the oracle
 * only ever increments/decrements its own counters from the op stream,
 * so a missed `dropRef`, a double free, or a leaked Long entry in the
 * implementation diverges from the oracle at the first check after the
 * buggy step.
 */

#ifndef CARF_TESTING_SHADOW_REGFILE_HH
#define CARF_TESTING_SHADOW_REGFILE_HH

#include <string>
#include <vector>

#include "regfile/regfile.hh"

namespace carf::testing
{

/** Plain-storage mirror of any RegisterFile implementation. */
class ShadowRegFile
{
  public:
    /**
     * @param entries physical tags mirrored
     * @param short_entries Short file size M (0 for models without a
     *        Short file, e.g.\ the baseline)
     * @param long_entries Long file size K (0 likewise)
     */
    ShadowRegFile(unsigned entries, unsigned short_entries,
                  unsigned long_entries);

    void reset();

    /**
     * Record a completed (non-stalled) write. @p type and @p sub_index
     * are the implementation's placement decision; the oracle's
     * reference counts advance from them independently of the
     * implementation's internal bookkeeping.
     */
    void noteWrite(u32 tag, u64 value, regfile::ValueType type,
                   unsigned sub_index);

    /** Record a release; no-op for tags the oracle holds dead. */
    void noteRelease(u32 tag);

    bool live(u32 tag) const { return regs_.at(tag).live; }
    u64 value(u32 tag) const { return regs_.at(tag).value; }
    regfile::ValueType type(u32 tag) const { return regs_.at(tag).type; }

    /** Expected reference count of Short slot @p idx. */
    unsigned shortRefs(unsigned idx) const { return shortRefs_.at(idx); }
    /** Expected number of free (real, non-overflow) Long entries. */
    unsigned freeLongEntries() const { return freeLong_; }
    /** Expected number of live Long-typed tags (overflow included). */
    unsigned liveLongEntries() const;

    /**
     * Cross-check @p file against the oracle: per-tag liveness, type,
     * and bit-exact value, plus — through the model's
     * structureCounts() hook, with no knowledge of the concrete
     * backend — Short reference counts and Long free-list occupancy.
     * Returns an empty string when everything matches, else a
     * description of the first divergence.
     */
    std::string check(const regfile::RegisterFile &file) const;

  private:
    struct Reg
    {
        bool live = false;
        u64 value = 0;
        regfile::ValueType type = regfile::ValueType::Simple;
        unsigned subIndex = 0;
    };

    std::vector<Reg> regs_;
    std::vector<unsigned> shortRefs_;
    unsigned longEntries_;
    unsigned freeLong_;
};

} // namespace carf::testing

#endif // CARF_TESTING_SHADOW_REGFILE_HH
