/**
 * @file
 * Stateful register-file fuzzer with shadow-oracle checking and
 * counterexample shrinking.
 *
 * The generator emits biased random op sequences (sign-extension
 * edges, (64-d)-similar clusters, Short-index collisions, Long
 * exhaustion phases); the harness drives implementation and
 * ShadowRegFile through the sequence and cross-checks bit-exact reads
 * plus structural invariants after every step. Any subsequence of a
 * generated sequence is executable — the harness skips ops that are
 * invalid in the current state (write of a live tag, read of a dead
 * one) instead of faulting — which is what makes delta-debugging
 * shrinks sound.
 */

#ifndef CARF_TESTING_FUZZER_HH
#define CARF_TESTING_FUZZER_HH

#include "common/random.hh"
#include "testing/fuzz_ops.hh"
#include "testing/shadow_regfile.hh"

namespace carf::testing
{

/** A tripped check: which op exposed it and what diverged. */
struct FuzzFailure
{
    /** Index into FuzzCase::ops of the op after which a check failed. */
    size_t opIndex = 0;
    FuzzOp op;
    std::string message;
};

/**
 * Executes one fuzz case step by step against a fresh implementation
 * and shadow oracle.
 */
class FuzzHarness
{
  public:
    explicit FuzzHarness(const FuzzConfig &config);

    /**
     * Apply @p op to implementation and oracle, then run every check.
     * Returns the failure description, or an empty string while the
     * models still agree. Ops invalid in the current state are skipped.
     */
    std::string step(const FuzzOp &op);

    const regfile::RegisterFile &file() const { return *file_; }
    const ShadowRegFile &shadow() const { return shadow_; }

  private:
    FuzzConfig config_;
    std::unique_ptr<regfile::RegisterFile> file_;
    ShadowRegFile shadow_;
};

/** Run @p fuzz_case from scratch; nullopt when every check passes. */
std::optional<FuzzFailure> runCase(const FuzzCase &fuzz_case);

/** Knobs of the biased op generator. */
struct FuzzGenOptions
{
    /** Ops to generate. */
    size_t ops = 10000;
    /** Base addresses forming (64-d)-similar clusters. */
    unsigned clusterBases = 6;
    /**
     * Probability of entering a Long-exhaustion phase at any step
     * (wide values, releases suppressed) — drives the free list to
     * empty so stall/recovery edges are exercised.
     */
    double exhaustionChance = 0.002;
};

/**
 * Generate a biased op sequence for @p config. Pure function of
 * @p rng: the same generator state yields the same sequence.
 */
std::vector<FuzzOp> generateOps(const FuzzConfig &config, Rng &rng,
                                const FuzzGenOptions &options);

/**
 * Shrink a failing case to a locally minimal one: ddmin-style chunk
 * removal down to single ops, then a value-simplification pass, each
 * candidate re-executed from scratch. The result still fails (possibly
 * with a different message — any failure counts) and removing any
 * single remaining op makes it pass.
 */
FuzzCase shrinkCase(const FuzzCase &failing);

/** Outcome of one seeded fuzz round. */
struct FuzzRoundResult
{
    /** Ops executed (pass) or index of the failing op. */
    size_t opsRun = 0;
    /** Set when a check tripped; `shrunk` then holds the minimal case. */
    std::optional<FuzzFailure> failure;
    FuzzCase shrunk;
};

/**
 * One deterministic fuzz round: generate a sequence from @p seed, run
 * it, and shrink the counterexample on failure.
 */
FuzzRoundResult fuzzOneSeed(const FuzzConfig &config, u64 seed,
                            const FuzzGenOptions &options);

} // namespace carf::testing

#endif // CARF_TESTING_FUZZER_HH
