/**
 * @file
 * Suite-level experiment helpers: run a configuration over a whole
 * workload suite and aggregate the metrics the paper reports.
 */

#ifndef CARF_SIM_EXPERIMENTS_HH
#define CARF_SIM_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "sim/experiment_runner.hh"
#include "sim/simulator.hh"

namespace carf::sim
{

/** Results of one configuration across one suite. */
struct SuiteRun
{
    std::vector<core::RunResult> results;

    /** Arithmetic mean of per-workload IPC. */
    double meanIpc() const;
    /** Summed integer register file access counts. */
    regfile::AccessCounts totalAccesses() const;
    u64 totalShortWrites() const;
    /** Operand-bypass fraction over all operands in the suite. */
    double bypassFraction() const;
    /** Summed operand-mix buckets (Table 4). */
    core::OperandMix totalOperandMix() const;
    /** Summed §6 clustering-communication estimate. */
    core::ClusterStats totalClusterStats() const;
    u64 totalRecoveries() const;
    u64 totalLongAllocStalls() const;
    double meanAvgLiveLong() const;
};

/** One ExperimentJob per workload in @p suite, all under @p params. */
std::vector<ExperimentJob>
suiteJobs(const std::vector<workloads::Workload> &suite,
          const core::CoreParams &params, const SimOptions &options = {},
          const std::string &tag = "");

/**
 * Simulate every workload in @p suite under @p params using @p jobs
 * worker threads (1 = serial on the calling thread, 0 = one per
 * hardware thread). Results are in suite order and bit-identical for
 * every worker count.
 */
SuiteRun runSuite(const std::vector<workloads::Workload> &suite,
                  const core::CoreParams &params,
                  const SimOptions &options = {}, unsigned jobs = 1);

/** As above, on an existing runner (shared pool sizing/progress). */
SuiteRun runSuite(const std::vector<workloads::Workload> &suite,
                  const core::CoreParams &params,
                  const SimOptions &options,
                  const ExperimentRunner &runner,
                  const ExperimentRunner::ProgressFn &progress = {});

/**
 * Mean of per-workload IPC ratios test/reference (the paper's
 * "average relative IPC"). The two runs must cover the same suite in
 * the same order.
 */
double meanRelativeIpc(const SuiteRun &test, const SuiteRun &reference);

} // namespace carf::sim

#endif // CARF_SIM_EXPERIMENTS_HH
