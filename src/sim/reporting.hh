/**
 * @file
 * Shared result-rendering helpers for the benchmark harnesses and
 * examples.
 */

#ifndef CARF_SIM_REPORTING_HH
#define CARF_SIM_REPORTING_HH

#include <optional>
#include <string>

#include "common/table.hh"
#include "core/core_stats.hh"
#include "core/params.hh"
#include "sim/experiments.hh"

namespace carf::sim
{

/** One-line human-readable configuration summary. */
std::string describeConfig(const core::CoreParams &params);

/** Per-workload IPC table for a suite run. */
Table suiteIpcTable(const std::string &title, const SuiteRun &run);

/** Render one run's headline numbers. */
std::string summarizeRun(const core::RunResult &result);

/**
 * Machine-readable JSON object for one run (flat keys; counts and
 * rates). Stable field names — downstream tooling parses this.
 */
std::string runResultJson(const core::RunResult &result);

/** JSON array of runResultJson objects for a whole suite run. */
std::string suiteRunJson(const SuiteRun &run);

/**
 * Full-fidelity JSON object for one run: every RunResult field, in a
 * fixed order, with doubles printed at %.17g so parsing recovers the
 * exact bit pattern. This is the result-store value format and the
 * carf_sweep NDJSON record; runResultJson() above stays the compact
 * report format.
 *
 * @param include_host_times emit the nondeterministic wall/trace/sim
 *        second fields (stored entries keep them; merged sweep output
 *        drops them so interrupted-and-resumed runs compare
 *        bit-identical to uninterrupted ones)
 */
std::string runResultJsonFull(const core::RunResult &result,
                              bool include_host_times = true);

/**
 * Parse a runResultJsonFull() object back into a RunResult.
 * Strict about the fixed field order; the host-time tail is optional
 * (absent fields stay 0). Returns nullopt on any malformed input —
 * the result store treats that as a corrupt shard line and skips it.
 */
std::optional<core::RunResult>
parseRunResultJson(std::string_view json);

/** JSON string literal (quotes and escapes @p s). */
std::string jsonString(const std::string &s);

/**
 * JSON object for a rendered Table:
 * {"title":..., "columns":[...], "rows":[[...],...]}. Cells are the
 * formatted strings the ASCII renderer prints, so a table serialized
 * from a jobs=1 run and a jobs=N run compare byte-identical.
 */
std::string tableJson(const Table &table);

} // namespace carf::sim

#endif // CARF_SIM_REPORTING_HH
