#include "sim/result_store.hh"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/experiment_runner.hh"
#include "sim/reporting.hh"

namespace carf::sim
{

namespace fs = std::filesystem;

std::vector<std::pair<std::string, std::string>>
resultKeyFields(const std::string &workload_name,
                const core::CoreParams &params, const SimOptions &options,
                const std::string &fingerprint)
{
    std::vector<std::pair<std::string, std::string>> f;
    f.reserve(64);
    auto add = [&](const char *name, const std::string &value) {
        f.emplace_back(name, value);
    };
    auto addU = [&](const char *name, u64 value) {
        add(name, strprintf("%llu", (unsigned long long)value));
    };

    add("fingerprint", fingerprint);
    add("workload", workload_name);

    // Run options that shape the simulated window. The execution knobs
    // (traceCache, lockstep, lockstepMaxGroup, resultStore) are
    // bit-identical by contract and deliberately left out.
    addU("max_insts", options.maxInsts);
    addU("fast_forward", options.fastForward);
    addU("opt_oracle_period", options.oracleSamplePeriod);

    // Statistical-sampling shape. The period is keyed unconditionally
    // so a sampled run (estimated IPC over measured windows) can never
    // alias the full run of the same point. The interval geometry is
    // keyed only when sampling is on — with period 0 the warm-up and
    // measure knobs are inert, and the run must share the plain full
    // run's key (the smt_mix pattern). The fastPath flag is
    // bit-identical by contract and deliberately NOT keyed.
    addU("sampling_period", options.samplingPeriod);
    addU("sampling_warmup",
         options.samplingPeriod ? options.samplingWarmup : 0);
    addU("sampling_measure",
         options.samplingPeriod ? options.samplingMeasure : 0);

    // SMT axis: thread count plus the partner-workload mix. Keyed
    // unconditionally so a solo job (smt_threads=1, empty mix) can
    // never alias an SMT job over the same workload. The mix is
    // keyed only when it takes effect (smtThreads > 1): simulateSmt
    // ignores it for one thread, so a T=1 job with a populated mix
    // is the same simulated point as the plain solo job and must
    // share its key.
    addU("smt_threads", params.smtThreads);
    std::string mix;
    if (params.smtThreads > 1) {
        for (const std::string &name : options.smtMix) {
            if (!mix.empty())
                mix += "+";
            mix += name;
        }
    }
    add("smt_mix", mix);

    // Core timing parameters, exhaustively.
    addU("fetch_width", params.fetchWidth);
    addU("issue_width", params.issueWidth);
    addU("commit_width", params.commitWidth);
    addU("rob_size", params.robSize);
    addU("lsq_size", params.lsqSize);
    addU("int_iq_size", params.intIqSize);
    addU("fp_iq_size", params.fpIqSize);
    addU("phys_int_regs", params.physIntRegs);
    addU("phys_fp_regs", params.physFpRegs);
    addU("int_rf_read_ports", params.intRfReadPorts);
    addU("int_rf_write_ports", params.intRfWritePorts);
    addU("fp_rf_read_ports", params.fpRfReadPorts);
    addU("fp_rf_write_ports", params.fpRfWritePorts);
    addU("int_fu_count", params.intFuCount);
    addU("fp_fu_count", params.fpFuCount);
    addU("reg_read_stages", params.regReadStages);
    addU("int_wb_stages", params.intWbStages);
    addU("extra_bypass_level", params.extraBypassLevel ? 1 : 0);
    addU("frontend_depth", params.frontendDepth);
    addU("gshare_history_bits", params.gshareHistoryBits);
    addU("btb_entries", params.btbEntries);
    addU("ras_depth", params.rasDepth);
    addU("core_oracle_period", params.oracleSamplePeriod);

    // Register-file backend and every backend parameter bundle. All
    // bundles are keyed unconditionally (they are cheap), so a backend
    // switch and a parameter change can never alias.
    add("regfile_backend", params.regFileBackend);
    addU("ca_d", params.ca.sim.d());
    addU("ca_n", params.ca.sim.n());
    addU("ca_long_entries", params.ca.longEntries);
    addU("ca_issue_stall_threshold", params.ca.issueStallThreshold);
    addU("ca_associative_short", params.ca.associativeShort ? 1 : 0);
    addU("ca_alloc_any_result", params.ca.allocShortOnAnyResult ? 1 : 0);
    addU("pr_shared_read_ports", params.portRed.sharedReadPorts);

    // Memory hierarchy geometry and timing.
    auto addCache = [&](const char *prefix, const mem::CacheParams &c) {
        addU((std::string(prefix) + "_size").c_str(), c.sizeBytes);
        addU((std::string(prefix) + "_assoc").c_str(), c.assoc);
        addU((std::string(prefix) + "_line").c_str(), c.lineBytes);
        addU((std::string(prefix) + "_latency").c_str(), c.hitLatency);
    };
    addCache("il1", params.memory.il1);
    addCache("dl1", params.memory.dl1);
    addCache("l2", params.memory.l2);
    addU("memory_latency", params.memory.memoryLatency);
    addU("dl1_ports", params.memory.dl1Ports);

    return f;
}

std::string
resultKeyFromFields(
    std::vector<std::pair<std::string, std::string>> fields)
{
    std::sort(fields.begin(), fields.end());
    Sha256 hash;
    for (const auto &[name, value] : fields) {
        hash.update(name);
        hash.update("=", 1);
        hash.update(value);
        hash.update("\n", 1);
    }
    return hash.hexDigest();
}

ResultStore::ResultStore(std::string dir, std::string fingerprint,
                         unsigned shards)
    : dir_(std::move(dir)), fingerprint_(std::move(fingerprint)),
      shards_(shards ? shards
                     : std::min(8u, ExperimentRunner::hardwareJobs()))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("ResultStore: cannot create '%s': %s", dir_.c_str(),
              ec.message().c_str());
    shardFiles_.reserve(shards_);
    for (unsigned s = 0; s < shards_; ++s)
        shardFiles_.push_back(std::make_unique<Shard>());
    loadShards();
}

ResultStore::~ResultStore()
{
    writeIndex();
}

std::string
ResultStore::shardPath(unsigned shard) const
{
    return dir_ + strprintf("/shard-%03u.ndjson", shard);
}

namespace
{

/**
 * Parse one shard line:
 *   {"v":1,"fingerprint":"<hex>","key":"<hex>","result":{...}}
 * Fingerprints and keys are hex digests, so no escape handling is
 * needed before the result object.
 */
bool
parseShardLine(const std::string &line, std::string &fingerprint,
               std::string &key, core::RunResult &result)
{
    constexpr std::string_view head = "{\"v\":1,\"fingerprint\":\"";
    if (line.rfind(head, 0) != 0)
        return false;
    size_t fp_begin = head.size();
    size_t fp_end = line.find('"', fp_begin);
    if (fp_end == std::string::npos)
        return false;

    constexpr std::string_view key_head = "\",\"key\":\"";
    // find() from fp_end would also work, but the format is fixed:
    if (line.compare(fp_end, key_head.size(), key_head) != 0)
        return false;
    size_t key_begin = fp_end + key_head.size();
    size_t key_end = line.find('"', key_begin);
    if (key_end == std::string::npos)
        return false;

    constexpr std::string_view result_head = "\",\"result\":";
    if (line.compare(key_end, result_head.size(), result_head) != 0)
        return false;
    size_t obj_begin = key_end + result_head.size();
    if (line.empty() || line.back() != '}' || obj_begin >= line.size())
        return false;
    std::string_view obj(line.data() + obj_begin,
                         line.size() - obj_begin - 1);

    auto parsed = parseRunResultJson(obj);
    if (!parsed)
        return false;
    fingerprint = line.substr(fp_begin, fp_end - fp_begin);
    key = line.substr(key_begin, key_end - key_begin);
    result = std::move(*parsed);
    return true;
}

} // namespace

void
ResultStore::loadShards()
{
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) == 0 &&
            name.size() > 7 /* ".ndjson" */ &&
            name.compare(name.size() - 7, 7, ".ndjson") == 0)
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());

    for (const std::string &path : paths) {
        std::ifstream file(path);
        if (!file) {
            warn("ResultStore: cannot read shard '%s'; skipping",
                 path.c_str());
            continue;
        }
        std::string line;
        size_t line_no = 0;
        while (std::getline(file, line)) {
            ++line_no;
            if (line.empty())
                continue;
            std::string fp, key;
            core::RunResult result;
            if (!parseShardLine(line, fp, key, result)) {
                // Expected after a SIGKILL tore the final append;
                // anything else in the middle of a shard is worth the
                // same skip-and-continue treatment.
                warn("ResultStore: skipping corrupt line %zu of '%s'",
                     line_no, path.c_str());
                ++skippedLines_;
                continue;
            }
            auto [it, inserted] =
                entries_.insert_or_assign(std::move(key),
                                          std::move(result));
            (void)it;
            if (inserted)
                ++perFingerprint_[fp];
        }
    }
}

std::string
ResultStore::key(const std::string &workload_name,
                 const core::CoreParams &params,
                 const SimOptions &options) const
{
    return resultKeyFromFields(
        resultKeyFields(workload_name, params, options, fingerprint_));
}

std::optional<core::RunResult>
ResultStore::get(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mapMutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
ResultStore::put(const std::string &key, const core::RunResult &result)
{
    std::string line = "{\"v\":1,\"fingerprint\":\"" + fingerprint_ +
                       "\",\"key\":\"" + key +
                       "\",\"result\":" + runResultJsonFull(result) +
                       "}\n";

    // One writer slot per worker thread (hashed), so pool workers
    // append to distinct shards almost always and only ever contend on
    // a shard mutex, never on interleaved writes.
    unsigned shard = static_cast<unsigned>(
        std::hash<std::thread::id>()(std::this_thread::get_id()) %
        shards_);
    {
        Shard &s = *shardFiles_[shard];
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.file.is_open()) {
            std::string path = shardPath(shard);
            // Seal a torn final line left by a SIGKILL mid-append:
            // the fragment becomes one corrupt line (skipped on load)
            // instead of corrupting the next record.
            std::error_code ec;
            u64 size = fs::exists(path, ec) ? fs::file_size(path, ec) : 0;
            bool needs_seal = false;
            if (!ec && size > 0) {
                std::ifstream tail(path, std::ios::binary);
                tail.seekg(static_cast<std::streamoff>(size - 1));
                char last = '\n';
                tail.get(last);
                needs_seal = last != '\n';
            }
            s.file.open(path, std::ios::app);
            if (!s.file)
                fatal("ResultStore: cannot append to '%s'",
                      path.c_str());
            if (needs_seal)
                s.file << '\n';
        }
        s.file << line;
        s.file.flush();
        if (!s.file)
            fatal("ResultStore: short write to shard %u of '%s'", shard,
                  dir_.c_str());
    }

    std::lock_guard<std::mutex> lock(mapMutex_);
    bool inserted = entries_.insert_or_assign(key, result).second;
    if (inserted)
        ++perFingerprint_[fingerprint_];
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mapMutex_);
    return entries_.size();
}

void
ResultStore::writeIndex() const
{
    std::string json;
    u64 total = 0;
    {
        std::lock_guard<std::mutex> lock(mapMutex_);
        json = "{\"v\":1";
        json += strprintf(",\"shards\":%u", shards_);
        json += ",\"fingerprints\":{";
        bool first = true;
        for (const auto &[fp, count] : perFingerprint_) {
            json += strprintf("%s\"%s\":%llu", first ? "" : ",",
                              fp.c_str(), (unsigned long long)count);
            total += count;
            first = false;
        }
        json += strprintf("},\"entries\":%llu}",
                          (unsigned long long)total);
    }

    std::string path = dir_ + "/index.json";
    std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::trunc);
        if (!file) {
            warn("ResultStore: cannot write '%s'", tmp.c_str());
            return;
        }
        file << json << "\n";
        file.flush();
        if (!file) {
            warn("ResultStore: short write to '%s'", tmp.c_str());
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        warn("ResultStore: cannot rename '%s' into place: %s",
             tmp.c_str(), ec.message().c_str());
}

} // namespace carf::sim
