#include "sim/oracle.hh"

#include <algorithm>
#include <unordered_map>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace carf::sim
{

const char *
GroupAccumulator::bucketName(unsigned bucket)
{
    switch (bucket) {
      case 0: return "group 1";
      case 1: return "group 2";
      case 2: return "group 3..4";
      case 3: return "group 5..8";
      case 4: return "group 9..16";
      case 5: return "rest";
    }
    return "?";
}

namespace
{

unsigned
rankBucket(size_t rank)
{
    // rank is 1-based.
    if (rank == 1)
        return 0;
    if (rank == 2)
        return 1;
    if (rank <= 4)
        return 2;
    if (rank <= 8)
        return 3;
    if (rank <= 16)
        return 4;
    return 5;
}

} // namespace

void
GroupAccumulator::addSample(std::vector<u32> &group_sizes)
{
    std::sort(group_sizes.begin(), group_sizes.end(),
              std::greater<u32>());
    for (size_t i = 0; i < group_sizes.size(); ++i) {
        buckets_[rankBucket(i + 1)] += group_sizes[i];
        total_ += group_sizes[i];
    }
}

void
GroupAccumulator::merge(const GroupAccumulator &other)
{
    for (unsigned b = 0; b < numBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    total_ += other.total_;
}

double
GroupAccumulator::fraction(unsigned bucket) const
{
    return total_ ? static_cast<double>(buckets_.at(bucket)) / total_
                  : 0.0;
}

LiveValueOracle::LiveValueOracle(std::vector<unsigned> similarity_ds)
    : ds_(std::move(similarity_ds)), similarity_(ds_.size())
{
}

void
LiveValueOracle::sampleCycle(Cycle cycle,
                             const regfile::RegisterFile &int_rf)
{
    (void)cycle;
    std::vector<u64> live;
    live.reserve(int_rf.entries());
    for (u32 tag = 0; tag < int_rf.entries(); ++tag) {
        if (int_rf.peekLive(tag))
            live.push_back(int_rf.peekValue(tag));
    }
    ++samples_;
    liveRegSum_ += live.size();
    if (live.empty())
        return;

    std::unordered_map<u64, u32> groups;
    std::vector<u32> sizes;

    groups.reserve(live.size() * 2);
    for (u64 v : live)
        ++groups[v];
    sizes.reserve(groups.size());
    for (const auto &[key, count] : groups)
        sizes.push_back(count);
    exact_.addSample(sizes);

    for (size_t i = 0; i < ds_.size(); ++i) {
        groups.clear();
        for (u64 v : live)
            ++groups[similarityTag(v, ds_[i])];
        sizes.clear();
        for (const auto &[key, count] : groups)
            sizes.push_back(count);
        similarity_[i].addSample(sizes);
    }
}

void
LiveValueOracle::merge(const LiveValueOracle &other)
{
    if (other.ds_ != ds_)
        panic("LiveValueOracle::merge: mismatched similarity d lists");
    exact_.merge(other.exact_);
    for (size_t i = 0; i < similarity_.size(); ++i)
        similarity_[i].merge(other.similarity_[i]);
    samples_ += other.samples_;
    liveRegSum_ += other.liveRegSum_;
}

double
LiveValueOracle::avgLiveRegs() const
{
    return samples_ ? static_cast<double>(liveRegSum_) / samples_ : 0.0;
}

} // namespace carf::sim
