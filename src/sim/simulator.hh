/**
 * @file
 * Top-level simulation facade: one call simulates one workload on one
 * core configuration. This is the library's primary entry point.
 */

#ifndef CARF_SIM_SIMULATOR_HH
#define CARF_SIM_SIMULATOR_HH

#include "core/pipeline.hh"
#include "emu/trace_cache.hh"
#include "sim/oracle.hh"
#include "workloads/workload.hh"

namespace carf::sim
{

class ResultStore;

/** Run-level options independent of the core configuration. */
struct SimOptions
{
    /** Dynamic instruction budget (the paper simulated 300M). */
    u64 maxInsts = 2'000'000;
    /** Oracle sampling period in cycles; 0 disables sampling. */
    unsigned oracleSamplePeriod = 0;
    /**
     * Instructions to fast-forward (functional warm-up of caches,
     * predictor, Short file, and architectural state) before the
     * timed window — the SimPoint-style skip the paper used.
     */
    u64 fastForward = 0;
    /**
     * Optional shared trace cache. When set, the workload's dynamic
     * trace is built (or fetched) through the cache and replayed
     * zero-copy; statistics are bit-identical to streaming emulation.
     * When the trace cannot fit the cache's byte budget the run falls
     * back to streaming transparently (the cache logs the fallback).
     */
    emu::TraceCache *traceCache = nullptr;
    /**
     * Allow ExperimentRunner to batch this job with others sharing
     * its workload and run options into one lockstep group (see
     * simulateGroup()). Results are bit-identical either way; off is
     * for A/B timing comparisons.
     */
    bool lockstep = true;
    /** Lockstep lanes per group; 0 means unbounded. */
    unsigned lockstepMaxGroup = 0;
    /**
     * Optional content-addressed result cache (sim/result_store.hh).
     * ExperimentRunner::run() resolves each job's key against it
     * before simulating: a hit fills the result slot with the stored
     * bit-identical RunResult, a miss simulates and writes back. Jobs
     * carrying a live-value oracle bypass the store (a cache hit
     * would skip the oracle's samples). simulate() itself ignores
     * this field — read-through lives in the runner.
     */
    ResultStore *resultStore = nullptr;
    /**
     * Partner workloads for SMT runs (workload registry names; see
     * workloads::findWorkload()). Thread 0 always runs the job's own
     * workload; thread t > 0 runs smtMix[(t - 1) % smtMix.size()],
     * so a single partner name describes any thread count. Empty
     * means a homogeneous mix (every thread runs the job workload).
     * Ignored unless CoreParams::smtThreads > 1.
     */
    std::vector<std::string> smtMix;

    /**
     * Exact idle-cycle skip in the solo cycle loop (Pipeline
     * fast path). Results are bit-identical either way; off is for
     * differential tests and honest speedup measurement.
     */
    bool fastPath = true;

    /**
     * SMARTS-style statistical sampling: instructions per sampling
     * period (0 = full detailed simulation). Each period runs
     * (period - warmup - measure) instructions functionally (caches,
     * predictor, and architectural state stay warm), then
     * samplingWarmup detailed instructions to refill the pipeline,
     * then samplingMeasure measured instructions. The reported
     * cycles/IPC/cycle buckets cover the measured windows only;
     * samplingIpcCi95 carries the 95% confidence half-width over
     * per-interval IPCs. Solo-pipeline only; requires lockstep=false
     * and excludes the oracle and fastForward (validate()).
     */
    u64 samplingPeriod = 0;
    /** Detailed warm-up instructions at the head of each episode. */
    u64 samplingWarmup = 2000;
    /** Measured detailed instructions following the warm-up. */
    u64 samplingMeasure = 1000;

    /**
     * Fatal on incompatible option combinations (sampling with the
     * oracle, lockstep, fast-forward, or a malformed interval shape).
     * Every simulate entry point calls this first.
     */
    void validate() const;
};

/**
 * Simulate @p workload on a core configured by @p params.
 *
 * @param oracle optional live-value oracle (requires
 *        options.oracleSamplePeriod > 0 to receive samples)
 */
core::RunResult simulate(const workloads::Workload &workload,
                         const core::CoreParams &params,
                         const SimOptions &options = {},
                         LiveValueOracle *oracle = nullptr);

/**
 * Simulate @p workload on an SMT core with params.smtThreads hardware
 * threads (core/smt.hh). Thread 0 runs @p workload; partner threads
 * run options.smtMix (see SimOptions::smtMix). Returns the aggregate
 * RunResult (summed per-thread counters plus the smt* fields).
 *
 * With smtThreads == 1 this delegates to simulate() — a one-thread
 * SMT job is by definition the solo pipeline, and the delegation
 * makes the T=1 column of any sweep bit-identical to a solo sweep.
 * Incompatible with fastForward and the live-value oracle (both are
 * solo-pipeline features); fatal if requested.
 */
core::RunResult simulateSmt(const workloads::Workload &workload,
                            const core::CoreParams &params,
                            const SimOptions &options = {});

/**
 * Simulate @p workload with SMARTS-style statistical sampling
 * (options.samplingPeriod > 0 required; see SimOptions). Returns a
 * RunResult whose cycles, committedInsts, ipc, and cycleAccounting
 * describe the measured windows only (the buckets still sum exactly
 * to cycles); the sampling* fields record the interval shape, the
 * interval count, the functionally skipped instructions, and the 95%
 * confidence half-width on IPC. All other counters (bypass mix,
 * register file accesses, branch statistics) cover every *detailed*
 * instruction — warm-up and measured — plus the handful of
 * architectural-value installs between episodes; they are reported
 * for orientation, not as calibrated estimates.
 */
core::RunResult simulateSampled(const workloads::Workload &workload,
                                const core::CoreParams &params,
                                const SimOptions &options);

/**
 * Simulate @p workload under every configuration in @p configs in
 * lockstep over one shared trace replay: each record is decoded and
 * branch-predicted once, then consumed by every per-config pipeline
 * lane (src/sim/lockstep.cc). Results are in @p configs order and
 * bit-identical to calling simulate() per configuration — only the
 * host-time fields differ (the shared front-end cost is split evenly
 * across lanes).
 *
 * Falls back to per-config serial simulate() calls when lockstep
 * cannot share the front end: fewer than two configs, an oracle
 * sampling period, mismatched branch-predictor geometry across
 * configs, or a trace cache that declined to materialize the trace
 * (streaming replay cannot be shared).
 */
std::vector<core::RunResult>
simulateGroup(const workloads::Workload &workload,
              const std::vector<core::CoreParams> &configs,
              const SimOptions &options = {});

} // namespace carf::sim

#endif // CARF_SIM_SIMULATOR_HH
