/**
 * @file
 * Top-level simulation facade: one call simulates one workload on one
 * core configuration. This is the library's primary entry point.
 */

#ifndef CARF_SIM_SIMULATOR_HH
#define CARF_SIM_SIMULATOR_HH

#include "core/pipeline.hh"
#include "emu/trace_cache.hh"
#include "sim/oracle.hh"
#include "workloads/workload.hh"

namespace carf::sim
{

/** Run-level options independent of the core configuration. */
struct SimOptions
{
    /** Dynamic instruction budget (the paper simulated 300M). */
    u64 maxInsts = 2'000'000;
    /** Oracle sampling period in cycles; 0 disables sampling. */
    unsigned oracleSamplePeriod = 0;
    /**
     * Instructions to fast-forward (functional warm-up of caches,
     * predictor, Short file, and architectural state) before the
     * timed window — the SimPoint-style skip the paper used.
     */
    u64 fastForward = 0;
    /**
     * Optional shared trace cache. When set, the workload's dynamic
     * trace is built (or fetched) through the cache and replayed
     * zero-copy; statistics are bit-identical to streaming emulation.
     * When the trace cannot fit the cache's byte budget the run falls
     * back to streaming transparently (the cache logs the fallback).
     */
    emu::TraceCache *traceCache = nullptr;
};

/**
 * Simulate @p workload on a core configured by @p params.
 *
 * @param oracle optional live-value oracle (requires
 *        options.oracleSamplePeriod > 0 to receive samples)
 */
core::RunResult simulate(const workloads::Workload &workload,
                         const core::CoreParams &params,
                         const SimOptions &options = {},
                         LiveValueOracle *oracle = nullptr);

} // namespace carf::sim

#endif // CARF_SIM_SIMULATOR_HH
