#include "sim/experiments.hh"

#include "common/logging.hh"

namespace carf::sim
{

double
SuiteRun::meanIpc() const
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.ipc;
    return sum / results.size();
}

regfile::AccessCounts
SuiteRun::totalAccesses() const
{
    regfile::AccessCounts total;
    for (const auto &r : results) {
        for (unsigned t = 0; t < 3; ++t) {
            total.reads[t] += r.intRfAccesses.reads[t];
            total.writes[t] += r.intRfAccesses.writes[t];
        }
        total.shortProbeReads += r.intRfAccesses.shortProbeReads;
    }
    return total;
}

u64
SuiteRun::totalShortWrites() const
{
    u64 total = 0;
    for (const auto &r : results)
        total += r.shortFileWrites;
    return total;
}

double
SuiteRun::bypassFraction() const
{
    u64 bypassed = 0, from_rf = 0;
    for (const auto &r : results) {
        bypassed += r.bypass.totalBypassed();
        from_rf += r.bypass.totalRegFile();
    }
    u64 total = bypassed + from_rf;
    return total ? static_cast<double>(bypassed) / total : 0.0;
}

core::OperandMix
SuiteRun::totalOperandMix() const
{
    core::OperandMix mix;
    for (const auto &r : results) {
        for (unsigned b = 0; b < core::OperandMix::NumBuckets; ++b)
            mix.counts[b] += r.operandMix.counts[b];
    }
    return mix;
}

core::ClusterStats
SuiteRun::totalClusterStats() const
{
    core::ClusterStats total;
    for (const auto &r : results) {
        total.localOperands += r.cluster.localOperands;
        total.crossOperands += r.cluster.crossOperands;
    }
    return total;
}

u64
SuiteRun::totalRecoveries() const
{
    u64 total = 0;
    for (const auto &r : results)
        total += r.recoveries;
    return total;
}

u64
SuiteRun::totalLongAllocStalls() const
{
    u64 total = 0;
    for (const auto &r : results)
        total += r.longAllocStalls;
    return total;
}

double
SuiteRun::meanAvgLiveLong() const
{
    if (results.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : results)
        sum += r.avgLiveLong;
    return sum / results.size();
}

std::vector<ExperimentJob>
suiteJobs(const std::vector<workloads::Workload> &suite,
          const core::CoreParams &params, const SimOptions &options,
          const std::string &tag)
{
    std::vector<ExperimentJob> jobs;
    jobs.reserve(suite.size());
    for (const auto &workload : suite)
        jobs.push_back({workload, params, options, tag, nullptr});
    return jobs;
}

SuiteRun
runSuite(const std::vector<workloads::Workload> &suite,
         const core::CoreParams &params, const SimOptions &options,
         unsigned jobs)
{
    return runSuite(suite, params, options, ExperimentRunner(jobs));
}

SuiteRun
runSuite(const std::vector<workloads::Workload> &suite,
         const core::CoreParams &params, const SimOptions &options,
         const ExperimentRunner &runner,
         const ExperimentRunner::ProgressFn &progress)
{
    SuiteRun run;
    run.results = runner.run(suiteJobs(suite, params, options), progress);
    return run;
}

double
meanRelativeIpc(const SuiteRun &test, const SuiteRun &reference)
{
    if (test.results.size() != reference.results.size())
        fatal("meanRelativeIpc: mismatched suites (%zu vs %zu)",
              test.results.size(), reference.results.size());
    if (test.results.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < test.results.size(); ++i) {
        if (test.results[i].workload != reference.results[i].workload)
            fatal("meanRelativeIpc: workload order mismatch at %zu", i);
        if (reference.results[i].ipc <= 0.0)
            fatal("meanRelativeIpc: reference run of '%s' has zero "
                  "IPC (%llu insts in %llu cycles); cannot normalize",
                  reference.results[i].workload.c_str(),
                  (unsigned long long)reference.results[i].committedInsts,
                  (unsigned long long)reference.results[i].cycles);
        sum += test.results[i].ipc / reference.results[i].ipc;
    }
    return sum / test.results.size();
}

} // namespace carf::sim
