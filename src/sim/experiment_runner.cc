#include "sim/experiment_runner.hh"

#include <atomic>
#include <mutex>
#include <thread>

namespace carf::sim
{

unsigned
ExperimentRunner::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

std::vector<core::RunResult>
ExperimentRunner::run(const std::vector<ExperimentJob> &batch,
                      const ProgressFn &progress) const
{
    std::vector<core::RunResult> results(batch.size());

    // Serial fast path: no pool, no synchronization.
    if (jobs_ <= 1 || batch.size() <= 1) {
        for (size_t i = 0; i < batch.size(); ++i) {
            const ExperimentJob &job = batch[i];
            results[i] = simulate(job.workload, job.params,
                                  job.options, job.oracle);
            if (progress)
                progress({i + 1, batch.size(), job, results[i]});
        }
        return results;
    }

    // Work-stealing over an atomic cursor: each worker claims the
    // next unclaimed index and writes its result into that slot, so
    // submission order is preserved no matter which worker finishes
    // first. The calling thread participates as a worker.
    std::atomic<size_t> next{0};
    std::mutex progress_mutex;
    size_t completed = 0;

    auto work = [&]() {
        for (size_t i = next.fetch_add(1); i < batch.size();
             i = next.fetch_add(1)) {
            const ExperimentJob &job = batch[i];
            core::RunResult result = simulate(job.workload, job.params,
                                              job.options, job.oracle);
            std::lock_guard<std::mutex> lock(progress_mutex);
            results[i] = std::move(result);
            ++completed;
            if (progress)
                progress({completed, batch.size(), job, results[i]});
        }
    };

    size_t workers = std::min<size_t>(jobs_, batch.size());
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        pool.emplace_back(work);
    work();
    for (auto &thread : pool)
        thread.join();
    return results;
}

} // namespace carf::sim
