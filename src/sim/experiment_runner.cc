#include "sim/experiment_runner.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "sim/result_store.hh"

namespace carf::sim
{

unsigned
ExperimentRunner::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

void
ExperimentRunner::runTasks(size_t count,
                           const std::function<void(size_t)> &task) const
{
    // Serial fast path: no pool, no synchronization.
    if (jobs_ <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            task(i);
        return;
    }

    // Work-stealing over an atomic cursor: each worker claims the
    // next unclaimed index, so every index runs exactly once. The
    // calling thread participates as a worker.
    std::atomic<size_t> next{0};
    auto work = [&]() {
        for (size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1))
            task(i);
    };

    size_t workers = std::min<size_t>(jobs_, count);
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        pool.emplace_back(work);
    work();
    for (auto &thread : pool)
        thread.join();
}

namespace
{

/** A job the lockstep engine could ever share a front end for. */
bool
lockstepEligible(const ExperimentJob &job)
{
    // SMT jobs interleave multiple traces, so there is no single
    // front end to share; they always run as singletons. Sampled jobs
    // alternate functional and detailed phases per lane, so no shared
    // front end exists for them either (validate() also rejects
    // lockstep=true with sampling, but a runner batch may legitimately
    // mix sampled and full jobs).
    return job.options.lockstep && !job.oracle &&
           job.options.oracleSamplePeriod == 0 &&
           job.options.samplingPeriod == 0 &&
           job.params.smtThreads <= 1;
}

/** Whether two eligible jobs can share one lockstep replay. */
bool
sameLockstepGroup(const ExperimentJob &a, const ExperimentJob &b)
{
    return a.workload.name == b.workload.name &&
           a.options.maxInsts == b.options.maxInsts &&
           a.options.fastForward == b.options.fastForward &&
           a.options.traceCache == b.options.traceCache &&
           a.params.gshareHistoryBits == b.params.gshareHistoryBits &&
           a.params.btbEntries == b.params.btbEntries &&
           a.params.rasDepth == b.params.rasDepth;
}

/**
 * Partition the jobs named by @p pending (submission indices into
 * @p batch) into schedulable units: each unit is the list of indices
 * that run together through one simulateGroup() call (or a singleton
 * running plain simulate()). Greedy in submission order — a unit
 * collects every later compatible job up to lockstepMaxGroup — so
 * unit membership is deterministic.
 */
std::vector<std::vector<size_t>>
partitionBatch(const std::vector<ExperimentJob> &batch,
               const std::vector<size_t> &pending)
{
    std::vector<std::vector<size_t>> units;
    std::vector<bool> assigned(pending.size(), false);
    for (size_t a = 0; a < pending.size(); ++a) {
        if (assigned[a])
            continue;
        size_t i = pending[a];
        std::vector<size_t> unit{i};
        assigned[a] = true;
        if (lockstepEligible(batch[i])) {
            size_t cap = batch[i].options.lockstepMaxGroup
                             ? batch[i].options.lockstepMaxGroup
                             : pending.size();
            for (size_t b = a + 1;
                 b < pending.size() && unit.size() < cap; ++b) {
                size_t j = pending[b];
                if (!assigned[b] && lockstepEligible(batch[j]) &&
                    sameLockstepGroup(batch[i], batch[j])) {
                    unit.push_back(j);
                    assigned[b] = true;
                }
            }
        }
        units.push_back(std::move(unit));
    }
    return units;
}

/** Whether @p job may read/write its options.resultStore. */
bool
storeEligible(const ExperimentJob &job)
{
    // An oracle is an out-of-band side channel: serving the run from
    // the cache would silently skip its samples.
    return job.options.resultStore && !job.oracle;
}

} // namespace

std::vector<core::RunResult>
ExperimentRunner::run(const std::vector<ExperimentJob> &batch,
                      const ProgressFn &progress) const
{
    std::vector<core::RunResult> results(batch.size());

    // Resolve content-addressed cache hits up front: a hit fills its
    // submission slot with the stored bit-identical result and never
    // reaches the pool, so a fully warm batch costs one key
    // derivation plus one map lookup per job. Misses keep their key
    // so completion can write straight back.
    std::vector<std::string> keys(batch.size());
    std::vector<char> cached(batch.size(), 0);
    std::vector<size_t> pending;
    pending.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        const ExperimentJob &job = batch[i];
        if (storeEligible(job)) {
            keys[i] = job.options.resultStore->key(job.workload.name,
                                                   job.params,
                                                   job.options);
            if (auto hit = job.options.resultStore->get(keys[i])) {
                results[i] = std::move(*hit);
                cached[i] = 1;
                continue;
            }
        }
        pending.push_back(i);
    }

    // Jobs sharing a workload and run options collapse into lockstep
    // units (decode once, step every config — see simulateGroup());
    // the pool then schedules whole units. Results still land in
    // submission-order slots, and lockstep replay is bit-identical to
    // solo simulation, so the result vector is unchanged by grouping.
    std::vector<std::vector<size_t>> units = partitionBatch(batch,
                                                            pending);

    // The mutex both serializes progress callbacks and publishes each
    // result slot.
    std::mutex progress_mutex;
    size_t completed = 0;

    // Cached jobs report first, in submission order.
    for (size_t i = 0; i < batch.size(); ++i) {
        if (!cached[i])
            continue;
        ++completed;
        if (progress)
            progress({completed, batch.size(), batch[i], results[i],
                      true});
    }

    runTasks(units.size(), [&](size_t u) {
        const std::vector<size_t> &unit = units[u];
        std::vector<core::RunResult> unit_results;
        if (unit.size() == 1) {
            const ExperimentJob &job = batch[unit[0]];
            if (job.options.samplingPeriod > 0)
                unit_results.push_back(simulateSampled(
                    job.workload, job.params, job.options));
            else if (job.params.smtThreads > 1)
                unit_results.push_back(
                    simulateSmt(job.workload, job.params, job.options));
            else
                unit_results.push_back(simulate(job.workload, job.params,
                                                job.options, job.oracle));
        } else {
            std::vector<core::CoreParams> configs;
            configs.reserve(unit.size());
            for (size_t i : unit)
                configs.push_back(batch[i].params);
            unit_results = simulateGroup(
                batch[unit[0]].workload, configs, batch[unit[0]].options);
        }
        // Write-back before the results are even published: a kill
        // between here and the progress callback loses nothing.
        for (size_t k = 0; k < unit.size(); ++k) {
            size_t i = unit[k];
            if (storeEligible(batch[i]))
                batch[i].options.resultStore->put(keys[i],
                                                  unit_results[k]);
        }
        std::lock_guard<std::mutex> lock(progress_mutex);
        for (size_t k = 0; k < unit.size(); ++k) {
            size_t i = unit[k];
            results[i] = std::move(unit_results[k]);
            ++completed;
            if (progress)
                progress({completed, batch.size(), batch[i], results[i]});
        }
    });
    return results;
}

} // namespace carf::sim
