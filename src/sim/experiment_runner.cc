#include "sim/experiment_runner.hh"

#include <atomic>
#include <mutex>
#include <thread>

namespace carf::sim
{

unsigned
ExperimentRunner::hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

void
ExperimentRunner::runTasks(size_t count,
                           const std::function<void(size_t)> &task) const
{
    // Serial fast path: no pool, no synchronization.
    if (jobs_ <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            task(i);
        return;
    }

    // Work-stealing over an atomic cursor: each worker claims the
    // next unclaimed index, so every index runs exactly once. The
    // calling thread participates as a worker.
    std::atomic<size_t> next{0};
    auto work = [&]() {
        for (size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1))
            task(i);
    };

    size_t workers = std::min<size_t>(jobs_, count);
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        pool.emplace_back(work);
    work();
    for (auto &thread : pool)
        thread.join();
}

std::vector<core::RunResult>
ExperimentRunner::run(const std::vector<ExperimentJob> &batch,
                      const ProgressFn &progress) const
{
    std::vector<core::RunResult> results(batch.size());

    // Results land in submission-order slots no matter which worker
    // finishes first, so a parallel batch is bit-identical to a
    // serial one. The mutex both serializes progress callbacks and
    // publishes each result slot.
    std::mutex progress_mutex;
    size_t completed = 0;

    runTasks(batch.size(), [&](size_t i) {
        const ExperimentJob &job = batch[i];
        core::RunResult result = simulate(job.workload, job.params,
                                          job.options, job.oracle);
        std::lock_guard<std::mutex> lock(progress_mutex);
        results[i] = std::move(result);
        ++completed;
        if (progress)
            progress({completed, batch.size(), job, results[i]});
    });
    return results;
}

} // namespace carf::sim
