#include "sim/reporting.hh"

#include "common/logging.hh"

namespace carf::sim
{

std::string
describeConfig(const core::CoreParams &params)
{
    std::string desc = params.regFileBackend;
    desc += strprintf(" (%u regs, %uR/%uW", params.physIntRegs,
                      params.intRfReadPorts, params.intRfWritePorts);
    // The model knows its own parameters: "d+n=20, M=8, K=48" for the
    // content-aware file, "shared-rd=4" for port reduction, nothing
    // for plain files.
    desc += regfile::makeRegFile(params.regFileBackend,
                                 params.regFileParams(), "describe")
                ->describeExtra();
    desc += ")";
    return desc;
}

Table
suiteIpcTable(const std::string &title, const SuiteRun &run)
{
    Table table(title);
    table.setColumns({"workload", "insts", "cycles", "IPC",
                      "br-mispred", "bypass%"});
    for (const auto &r : run.results) {
        table.addRow({r.workload,
                      Table::intNum(static_cast<long long>(
                          r.committedInsts)),
                      Table::intNum(static_cast<long long>(r.cycles)),
                      Table::num(r.ipc, 3),
                      Table::pct(r.branchMispredictRate()),
                      Table::pct(r.bypass.bypassFraction())});
    }
    return table;
}

std::string
runResultJson(const core::RunResult &result)
{
    const auto &c = result.intRfAccesses;
    std::string json = "{";
    json += "\"workload\":" + jsonString(result.workload) + ",";
    json += "\"config\":" + jsonString(result.config) + ",";
    json += strprintf("\"cycles\":%llu,",
                      (unsigned long long)result.cycles);
    json += strprintf("\"insts\":%llu,",
                      (unsigned long long)result.committedInsts);
    json += strprintf("\"ipc\":%.6f,", result.ipc);
    json += strprintf("\"branch_mispredict_rate\":%.6f,",
                      result.branchMispredictRate());
    json += strprintf("\"bypass_fraction\":%.6f,",
                      result.bypass.bypassFraction());
    json += strprintf(
        "\"rf_reads\":[%llu,%llu,%llu],",
        (unsigned long long)c.reads[0], (unsigned long long)c.reads[1],
        (unsigned long long)c.reads[2]);
    json += strprintf("\"rf_writes\":[%llu,%llu,%llu],",
                      (unsigned long long)c.writes[0],
                      (unsigned long long)c.writes[1],
                      (unsigned long long)c.writes[2]);
    json += strprintf("\"short_probe_reads\":%llu,",
                      (unsigned long long)c.shortProbeReads);
    json += strprintf("\"short_file_writes\":%llu,",
                      (unsigned long long)result.shortFileWrites);
    json += strprintf("\"long_alloc_stalls\":%llu,",
                      (unsigned long long)result.longAllocStalls);
    json += strprintf("\"recoveries\":%llu,",
                      (unsigned long long)result.recoveries);
    json += strprintf("\"avg_live_long\":%.3f,", result.avgLiveLong);
    json += strprintf("\"avg_live_short\":%.3f,", result.avgLiveShort);
    // Host-time fields are nondeterministic; they sit together at the
    // tail so determinism checks can strip them in one cut.
    json += strprintf("\"wall_seconds\":%.6f,", result.wallSeconds);
    json += strprintf("\"trace_build_seconds\":%.6f,",
                      result.traceBuildSeconds);
    json += strprintf("\"sim_seconds\":%.6f", result.simSeconds);
    json += "}";
    return json;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += "\"";
    return out;
}

std::string
tableJson(const Table &table)
{
    std::string json = "{\"title\":" + jsonString(table.title());
    json += ",\"columns\":[";
    for (size_t c = 0; c < table.columnCount(); ++c) {
        if (c)
            json += ",";
        json += jsonString(table.header(c));
    }
    json += "],\"rows\":[";
    for (size_t r = 0; r < table.rowCount(); ++r) {
        if (r)
            json += ",";
        json += "[";
        for (size_t c = 0; c < table.columnCount(); ++c) {
            if (c)
                json += ",";
            json += jsonString(table.cell(r, c));
        }
        json += "]";
    }
    json += "]}";
    return json;
}

std::string
suiteRunJson(const SuiteRun &run)
{
    std::string json = "[";
    for (size_t i = 0; i < run.results.size(); ++i) {
        if (i)
            json += ",";
        json += runResultJson(run.results[i]);
    }
    json += "]";
    return json;
}

std::string
summarizeRun(const core::RunResult &result)
{
    return strprintf(
        "%s on %s: %llu insts in %llu cycles (IPC %.3f), "
        "bypass %.1f%%, mispredict %.2f%%",
        result.workload.c_str(), result.config.c_str(),
        (unsigned long long)result.committedInsts,
        (unsigned long long)result.cycles, result.ipc,
        100.0 * result.bypass.bypassFraction(),
        100.0 * result.branchMispredictRate());
}

} // namespace carf::sim
