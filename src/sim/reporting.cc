#include "sim/reporting.hh"

#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/logging.hh"

namespace carf::sim
{

std::string
describeConfig(const core::CoreParams &params)
{
    std::string desc = params.regFileBackend;
    desc += strprintf(" (%u regs, %uR/%uW", params.physIntRegs,
                      params.intRfReadPorts, params.intRfWritePorts);
    // The model knows its own parameters: "d+n=20, M=8, K=48" for the
    // content-aware file, "shared-rd=4" for port reduction, nothing
    // for plain files.
    desc += regfile::makeRegFile(params.regFileBackend,
                                 params.regFileParams(), "describe")
                ->describeExtra();
    desc += ")";
    return desc;
}

Table
suiteIpcTable(const std::string &title, const SuiteRun &run)
{
    Table table(title);
    table.setColumns({"workload", "insts", "cycles", "IPC",
                      "br-mispred", "bypass%"});
    for (const auto &r : run.results) {
        table.addRow({r.workload,
                      Table::intNum(static_cast<long long>(
                          r.committedInsts)),
                      Table::intNum(static_cast<long long>(r.cycles)),
                      Table::num(r.ipc, 3),
                      Table::pct(r.branchMispredictRate()),
                      Table::pct(r.bypass.bypassFraction())});
    }
    return table;
}

std::string
runResultJson(const core::RunResult &result)
{
    const auto &c = result.intRfAccesses;
    std::string json = "{";
    json += "\"workload\":" + jsonString(result.workload) + ",";
    json += "\"config\":" + jsonString(result.config) + ",";
    json += strprintf("\"cycles\":%llu,",
                      (unsigned long long)result.cycles);
    json += strprintf("\"insts\":%llu,",
                      (unsigned long long)result.committedInsts);
    json += strprintf("\"ipc\":%.6f,", result.ipc);
    json += strprintf("\"branch_mispredict_rate\":%.6f,",
                      result.branchMispredictRate());
    json += strprintf("\"bypass_fraction\":%.6f,",
                      result.bypass.bypassFraction());
    json += strprintf(
        "\"rf_reads\":[%llu,%llu,%llu],",
        (unsigned long long)c.reads[0], (unsigned long long)c.reads[1],
        (unsigned long long)c.reads[2]);
    json += strprintf("\"rf_writes\":[%llu,%llu,%llu],",
                      (unsigned long long)c.writes[0],
                      (unsigned long long)c.writes[1],
                      (unsigned long long)c.writes[2]);
    json += strprintf("\"short_probe_reads\":%llu,",
                      (unsigned long long)c.shortProbeReads);
    json += strprintf("\"short_file_writes\":%llu,",
                      (unsigned long long)result.shortFileWrites);
    json += strprintf("\"long_alloc_stalls\":%llu,",
                      (unsigned long long)result.longAllocStalls);
    json += strprintf("\"recoveries\":%llu,",
                      (unsigned long long)result.recoveries);
    json += strprintf("\"avg_live_long\":%.3f,", result.avgLiveLong);
    json += strprintf("\"avg_live_short\":%.3f,", result.avgLiveShort);
    json += "\"cycle_buckets\":{";
    for (unsigned b = 0; b < core::CycleAccounting::NumBuckets; ++b) {
        json += strprintf(
            "%s\"%s\":%llu", b ? "," : "",
            core::CycleAccounting::bucketName(b),
            (unsigned long long)result.cycleAccounting.counts[b]);
    }
    json += "},";
    if (result.samplingPeriod > 0) {
        json += strprintf("\"sampling_period\":%llu,",
                          (unsigned long long)result.samplingPeriod);
        json += strprintf("\"sampling_intervals\":%llu,",
                          (unsigned long long)result.samplingIntervals);
        json += strprintf("\"sampling_ipc_ci95\":%.6f,",
                          result.samplingIpcCi95);
    }
    // Host-time fields are nondeterministic; they sit together at the
    // tail so determinism checks can strip them in one cut.
    json += strprintf("\"wall_seconds\":%.6f,", result.wallSeconds);
    json += strprintf("\"trace_build_seconds\":%.6f,",
                      result.traceBuildSeconds);
    json += strprintf("\"sim_seconds\":%.6f", result.simSeconds);
    json += "}";
    return json;
}

std::string
runResultJsonFull(const core::RunResult &result, bool include_host_times)
{
    const auto &c = result.intRfAccesses;
    auto u = [](u64 v) {
        return strprintf("%llu", (unsigned long long)v);
    };
    // %.17g round-trips IEEE doubles exactly through a correctly
    // rounded strtod, which is what "hit returns a bit-identical
    // RunResult" requires.
    auto d = [](double v) { return strprintf("%.17g", v); };

    std::string json = "{";
    json += "\"workload\":" + jsonString(result.workload) + ",";
    json += "\"config\":" + jsonString(result.config) + ",";
    json += "\"cycles\":" + u(result.cycles) + ",";
    json += "\"committed_insts\":" + u(result.committedInsts) + ",";
    json += "\"ipc\":" + d(result.ipc) + ",";
    json += "\"cond_branches\":" + u(result.condBranches) + ",";
    json += "\"branch_mispredicts\":" + u(result.branchMispredicts) + ",";
    json += "\"bypass\":[" + u(result.bypass.bypassed(false)) + "," +
            u(result.bypass.bypassed(true)) + "," +
            u(result.bypass.regFileReads(false)) + "," +
            u(result.bypass.regFileReads(true)) + "],";
    json += "\"operand_mix\":[";
    for (unsigned b = 0; b < core::OperandMix::NumBuckets; ++b)
        json += (b ? "," : "") + u(result.operandMix.counts[b]);
    json += "],";
    json += "\"cluster\":[" + u(result.cluster.localOperands) + "," +
            u(result.cluster.crossOperands) + "],";
    json += "\"rf_reads\":[" + u(c.reads[0]) + "," + u(c.reads[1]) + "," +
            u(c.reads[2]) + "],";
    json += "\"rf_writes\":[" + u(c.writes[0]) + "," + u(c.writes[1]) +
            "," + u(c.writes[2]) + "],";
    json += "\"short_probe_reads\":" + u(c.shortProbeReads) + ",";
    json += "\"short_file_writes\":" + u(result.shortFileWrites) + ",";
    json += "\"long_alloc_stalls\":" + u(result.longAllocStalls) + ",";
    json += "\"recoveries\":" + u(result.recoveries) + ",";
    json += "\"issue_stall_cycles\":" + u(result.issueStallCycles) + ",";
    json += "\"avg_live_long\":" + d(result.avgLiveLong) + ",";
    json += "\"avg_live_short\":" + d(result.avgLiveShort) + ",";
    json += "\"port_conflict_ops\":" + u(result.portConflictOps) + ",";
    json += "\"port_conflict_cycles\":" + u(result.portConflictCycles) +
            ",";
    json += "\"cycle_buckets\":[";
    for (unsigned b = 0; b < core::CycleAccounting::NumBuckets; ++b)
        json += (b ? "," : "") + u(result.cycleAccounting.counts[b]);
    json += "]";
    // SMT aggregates only appear for multithreaded runs, keeping solo
    // records byte-identical to the pre-SMT layout (and a T=1 sweep
    // byte-identical to a solo sweep).
    if (result.smtThreads > 1) {
        json += ",\"smt_threads\":" + u(result.smtThreads);
        json += ",\"smt_thread_insts\":[";
        for (size_t t = 0; t < result.smtThreadInsts.size(); ++t)
            json += (t ? "," : "") + u(result.smtThreadInsts[t]);
        json += "],\"smt_thread_ipc\":[";
        for (size_t t = 0; t < result.smtThreadIpc.size(); ++t)
            json += (t ? "," : "") + d(result.smtThreadIpc[t]);
        json += "],";
        json += "\"smt_short_hits\":" + u(result.smtShortHits) + ",";
        json += "\"smt_cross_short_hits\":" + u(result.smtCrossShortHits) +
                ",";
        json += "\"smt_max_recovery_wait\":" + u(result.smtMaxRecoveryWait);
    }
    // Sampling block: present only for sampled runs, so full runs
    // keep the pre-sampling layout byte-identical.
    if (result.samplingPeriod > 0) {
        json += ",\"sampling_period\":" + u(result.samplingPeriod);
        json += ",\"sampling_warmup\":" + u(result.samplingWarmup);
        json += ",\"sampling_measure\":" + u(result.samplingMeasure);
        json += ",\"sampling_intervals\":" + u(result.samplingIntervals);
        json += ",\"sampling_skipped_insts\":" +
                u(result.samplingSkippedInsts);
        json += ",\"sampling_ipc_ci95\":" + d(result.samplingIpcCi95);
    }
    if (include_host_times) {
        json += ",\"wall_seconds\":" + d(result.wallSeconds);
        json += ",\"trace_build_seconds\":" + d(result.traceBuildSeconds);
        json += ",\"sim_seconds\":" + d(result.simSeconds);
    }
    json += "}";
    return json;
}

namespace
{

/**
 * Minimal strict scanner for the fixed runResultJsonFull() layout.
 * Every helper returns false (and poisons the cursor) on mismatch, so
 * a truncated or corrupted line fails cleanly instead of fataling.
 */
struct JsonCursor
{
    const char *p;
    const char *end;

    bool
    literal(std::string_view text)
    {
        if (static_cast<size_t>(end - p) < text.size() ||
            std::string_view(p, text.size()) != text)
            return false;
        p += text.size();
        return true;
    }

    bool
    string(std::string &out)
    {
        if (p == end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p != end && *p != '"') {
            char ch = *p++;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (p == end)
                return false;
            char esc = *p++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (end - p < 4)
                      return false;
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = *p++;
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else
                          return false;
                  }
                  // jsonString() only emits \u00xx control escapes.
                  if (code > 0xff)
                      return false;
                  out += static_cast<char>(code);
                  break;
              }
              default: return false;
            }
        }
        if (p == end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    number(u64 &out)
    {
        const char *start = p;
        u64 v = 0;
        while (p != end && *p >= '0' && *p <= '9')
            v = v * 10 + static_cast<u64>(*p++ - '0');
        if (p == start)
            return false;
        out = v;
        return true;
    }

    bool
    number(double &out)
    {
        // strtod needs a terminated buffer; numbers are short.
        char buf[64];
        size_t n = 0;
        while (p != end && n < sizeof(buf) - 1 &&
               (*p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                *p == 'E' || (*p >= '0' && *p <= '9')))
            buf[n++] = *p++;
        if (!n)
            return false;
        buf[n] = '\0';
        char *parse_end = nullptr;
        out = std::strtod(buf, &parse_end);
        return parse_end == buf + n;
    }

    template <typename T, size_t N>
    bool
    array(T (&out)[N])
    {
        if (!literal("["))
            return false;
        for (size_t i = 0; i < N; ++i) {
            if (i && !literal(","))
                return false;
            if (!number(out[i]))
                return false;
        }
        return literal("]");
    }

    /** Variable-length numeric array (per-thread SMT vectors). */
    template <typename T>
    bool
    array(std::vector<T> &out)
    {
        if (!literal("["))
            return false;
        out.clear();
        if (p != end && *p == ']')
            return literal("]");
        for (;;) {
            T v;
            if (!number(v))
                return false;
            out.push_back(v);
            if (p != end && *p == ',') {
                ++p;
                continue;
            }
            return literal("]");
        }
    }

    /** Non-consuming lookahead at the remaining input. */
    bool
    peek(std::string_view text) const
    {
        return static_cast<size_t>(end - p) >= text.size() &&
               std::string_view(p, text.size()) == text;
    }
};

} // namespace

std::optional<core::RunResult>
parseRunResultJson(std::string_view json)
{
    JsonCursor cur{json.data(), json.data() + json.size()};
    core::RunResult r;

    auto str_field = [&](std::string_view key, std::string &out,
                         bool leading_comma) {
        return cur.literal(leading_comma ? ",\"" : "\"") &&
               cur.literal(key) && cur.literal("\":") && cur.string(out);
    };
    auto u64_field = [&](std::string_view key, u64 &out) {
        return cur.literal(",\"") && cur.literal(key) &&
               cur.literal("\":") && cur.number(out);
    };
    auto dbl_field = [&](std::string_view key, double &out) {
        return cur.literal(",\"") && cur.literal(key) &&
               cur.literal("\":") && cur.number(out);
    };

    u64 bypass[4];
    u64 cluster[2];
    if (!(cur.literal("{") &&
          str_field("workload", r.workload, false) &&
          str_field("config", r.config, true) &&
          u64_field("cycles", r.cycles) &&
          u64_field("committed_insts", r.committedInsts) &&
          dbl_field("ipc", r.ipc) &&
          u64_field("cond_branches", r.condBranches) &&
          u64_field("branch_mispredicts", r.branchMispredicts) &&
          cur.literal(",\"bypass\":") && cur.array(bypass) &&
          cur.literal(",\"operand_mix\":") &&
          cur.array(r.operandMix.counts) &&
          cur.literal(",\"cluster\":") && cur.array(cluster) &&
          cur.literal(",\"rf_reads\":") &&
          cur.array(r.intRfAccesses.reads) &&
          cur.literal(",\"rf_writes\":") &&
          cur.array(r.intRfAccesses.writes) &&
          u64_field("short_probe_reads",
                    r.intRfAccesses.shortProbeReads) &&
          u64_field("short_file_writes", r.shortFileWrites) &&
          u64_field("long_alloc_stalls", r.longAllocStalls) &&
          u64_field("recoveries", r.recoveries) &&
          u64_field("issue_stall_cycles", r.issueStallCycles) &&
          dbl_field("avg_live_long", r.avgLiveLong) &&
          dbl_field("avg_live_short", r.avgLiveShort) &&
          u64_field("port_conflict_ops", r.portConflictOps) &&
          u64_field("port_conflict_cycles", r.portConflictCycles) &&
          cur.literal(",\"cycle_buckets\":") &&
          cur.array(r.cycleAccounting.counts)))
        return std::nullopt;

    // Optional SMT block (multithreaded runs only; solo records keep
    // the pre-SMT layout).
    if (cur.peek(",\"smt_threads\"")) {
        u64 smt_threads = 0;
        if (!(u64_field("smt_threads", smt_threads) &&
              cur.literal(",\"smt_thread_insts\":") &&
              cur.array(r.smtThreadInsts) &&
              cur.literal(",\"smt_thread_ipc\":") &&
              cur.array(r.smtThreadIpc) &&
              u64_field("smt_short_hits", r.smtShortHits) &&
              u64_field("smt_cross_short_hits", r.smtCrossShortHits) &&
              u64_field("smt_max_recovery_wait", r.smtMaxRecoveryWait)))
            return std::nullopt;
        r.smtThreads = static_cast<unsigned>(smt_threads);
    }

    // Optional sampling block (sampled runs only).
    if (cur.peek(",\"sampling_period\"")) {
        if (!(u64_field("sampling_period", r.samplingPeriod) &&
              u64_field("sampling_warmup", r.samplingWarmup) &&
              u64_field("sampling_measure", r.samplingMeasure) &&
              u64_field("sampling_intervals", r.samplingIntervals) &&
              u64_field("sampling_skipped_insts",
                        r.samplingSkippedInsts) &&
              dbl_field("sampling_ipc_ci95", r.samplingIpcCi95)))
            return std::nullopt;
    }

    // Optional host-time tail.
    if (cur.p != cur.end && *cur.p == ',') {
        if (!(dbl_field("wall_seconds", r.wallSeconds) &&
              dbl_field("trace_build_seconds", r.traceBuildSeconds) &&
              dbl_field("sim_seconds", r.simSeconds)))
            return std::nullopt;
    }
    if (!cur.literal("}") || cur.p != cur.end)
        return std::nullopt;

    r.bypass.restore(bypass[0], bypass[1], bypass[2], bypass[3]);
    r.cluster.localOperands = cluster[0];
    r.cluster.crossOperands = cluster[1];
    return r;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    out += "\"";
    return out;
}

std::string
tableJson(const Table &table)
{
    std::string json = "{\"title\":" + jsonString(table.title());
    json += ",\"columns\":[";
    for (size_t c = 0; c < table.columnCount(); ++c) {
        if (c)
            json += ",";
        json += jsonString(table.header(c));
    }
    json += "],\"rows\":[";
    for (size_t r = 0; r < table.rowCount(); ++r) {
        if (r)
            json += ",";
        json += "[";
        for (size_t c = 0; c < table.columnCount(); ++c) {
            if (c)
                json += ",";
            json += jsonString(table.cell(r, c));
        }
        json += "]";
    }
    json += "]}";
    return json;
}

std::string
suiteRunJson(const SuiteRun &run)
{
    std::string json = "[";
    for (size_t i = 0; i < run.results.size(); ++i) {
        if (i)
            json += ",";
        json += runResultJson(run.results[i]);
    }
    json += "]";
    return json;
}

std::string
summarizeRun(const core::RunResult &result)
{
    return strprintf(
        "%s on %s: %llu insts in %llu cycles (IPC %.3f), "
        "bypass %.1f%%, mispredict %.2f%%",
        result.workload.c_str(), result.config.c_str(),
        (unsigned long long)result.committedInsts,
        (unsigned long long)result.cycles, result.ipc,
        100.0 * result.bypass.bypassFraction(),
        100.0 * result.branchMispredictRate());
}

} // namespace carf::sim
