/**
 * @file
 * Content-addressed, on-disk simulation result cache.
 *
 * Key = SHA-256 over the canonicalized (CoreParams, SimOptions)
 * fields that can affect simulation output, the workload name, and
 * the build fingerprint (cmake/fingerprint.cmake's hash of src/).
 * Value = the full RunResult, serialized by runResultJsonFull() so a
 * hit returns a bit-identical result — host-time fields included, the
 * seconds the original computation took.
 *
 * On-disk layout under the store directory:
 *   shard-NNN.ndjson   one append-only NDJSON file per writer slot;
 *                      each line {"v":1,"fingerprint":...,"key":...,
 *                      "result":{...}}. Appends are flushed per
 *                      record, so a SIGKILL loses at most the line
 *                      being written; loading skips (and counts) any
 *                      line that does not parse, and reopening a
 *                      shard whose last write was torn first seals it
 *                      with a newline so the next append starts
 *                      clean.
 *   index.json         advisory summary (entry/shard/fingerprint
 *                      counts), written atomically via
 *                      write-temp-then-rename. Loading always scans
 *                      the shards — the index is for humans and
 *                      tooling, never a source of truth, so a stale
 *                      or missing index cannot corrupt anything.
 *
 * Thread safety: get()/put() may be called concurrently from any
 * number of threads (the ExperimentRunner pool does). Multi-process
 * sharing of one live store directory is NOT supported — the sweep
 * orchestrator owns a store per run and reopens it on restart.
 */

#ifndef CARF_SIM_RESULT_STORE_HH
#define CARF_SIM_RESULT_STORE_HH

#include <atomic>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/params.hh"
#include "sim/simulator.hh"

namespace carf::sim
{

/**
 * Canonical key material for one simulation job: every simulation-
 * relevant field as a (name, value) pair, including @p fingerprint.
 * Deliberately excludes the execution knobs that are bit-identical by
 * contract (trace cache, lockstep grouping, worker count).
 */
std::vector<std::pair<std::string, std::string>>
resultKeyFields(const std::string &workload_name,
                const core::CoreParams &params, const SimOptions &options,
                const std::string &fingerprint);

/**
 * Content-addressed key from @p fields: the pairs are sorted by name
 * before hashing, so the key is independent of the order callers
 * assemble the fields in (field reordering never invalidates a
 * cache).
 */
std::string
resultKeyFromFields(std::vector<std::pair<std::string, std::string>> fields);

/** Persistent result cache; see the file comment for the layout. */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store at @p dir and load every
     * entry from its shards. @p shards is the writer-slot count (0
     * selects a default sized for the hardware thread count).
     */
    ResultStore(std::string dir, std::string fingerprint,
                unsigned shards = 0);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return dir_; }
    const std::string &fingerprint() const { return fingerprint_; }

    /** Key for one job under this store's build fingerprint. */
    std::string key(const std::string &workload_name,
                    const core::CoreParams &params,
                    const SimOptions &options) const;

    /**
     * Look up @p key; counts a hit or a miss. The returned RunResult
     * is bit-identical to the one put() stored (every counter and
     * every double, host times included).
     */
    std::optional<core::RunResult> get(const std::string &key) const;

    /**
     * Insert (or overwrite) @p key. The entry is appended to a shard
     * and flushed before put() returns, so a later SIGKILL cannot
     * lose it.
     */
    void put(const std::string &key, const core::RunResult &result);

    /** Entries currently loaded/inserted (all fingerprints). */
    size_t size() const;
    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    u64 misses() const { return misses_.load(std::memory_order_relaxed); }
    /** Shard lines skipped as corrupt/truncated during open. */
    u64 skippedLines() const { return skippedLines_; }

    /** Write index.json atomically (temp + rename). */
    void writeIndex() const;

  private:
    void loadShards();
    std::string shardPath(unsigned shard) const;

    std::string dir_;
    std::string fingerprint_;
    unsigned shards_;

    mutable std::mutex mapMutex_;
    std::map<std::string, core::RunResult> entries_;
    /** Entry count per fingerprint, for the index. */
    std::map<std::string, u64> perFingerprint_;

    struct Shard
    {
        std::mutex mutex;
        std::ofstream file;
    };
    std::vector<std::unique_ptr<Shard>> shardFiles_;

    mutable std::atomic<u64> hits_{0};
    mutable std::atomic<u64> misses_{0};
    u64 skippedLines_ = 0;
};

} // namespace carf::sim

#endif // CARF_SIM_RESULT_STORE_HH
