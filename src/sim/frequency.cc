#include "sim/frequency.hh"

#include "common/logging.hh"

namespace carf::sim
{

double
potentialFrequencyGain(double baseline_time, double ca_time)
{
    if (ca_time <= 0.0 || baseline_time <= 0.0)
        fatal("potentialFrequencyGain: non-positive access time");
    double gain = baseline_time / ca_time - 1.0;
    return gain > 0.0 ? gain : 0.0;
}

double
frequencyScaledSpeedup(double relative_ipc, double freq_gain)
{
    return relative_ipc * (1.0 + freq_gain) - 1.0;
}

} // namespace carf::sim
