/**
 * @file
 * Config-parallel lockstep replay: one trace, N pipeline lanes.
 *
 * simulateGroup() advances an array of per-config Pipeline lanes over
 * a single materialized TraceBuffer. The work that is identical
 * across configurations — record decode and the gshare/BTB/RAS front
 * end, which consume the trace strictly in program order with no
 * timing inputs — runs once per record in a SharedFrontend; each lane
 * replays the resulting FetchEntry window through its own timing
 * model (register files, caches, ROB/issue state stay per-lane: the
 * unified L2 makes data-access order config-dependent).
 *
 * Lanes proceed through the trace in bounded chunks. A chunk
 * materializes records [start, end) into the shared window; a lane
 * steps whole cycles while a full fetch group is guaranteed to lie
 * inside the window (one cycle consumes at most fetchWidth records),
 * then pauses. When every lane has either paused or finished the
 * window slides forward from the minimum lane position — pausing
 * never splits a cycle, so each lane executes exactly the cycle
 * sequence a solo run would, and results are bit-identical to
 * serial simulate() calls.
 */

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/fetch_stream.hh"
#include "emu/trace_buffer.hh"
#include "sim/simulator.hh"

namespace carf::sim
{

namespace
{

/**
 * Decode-window chunk size in records. Bounds the shared window's
 * footprint (~72 B per entry) while keeping the per-chunk pause
 * overhead negligible against thousands of simulated cycles.
 */
constexpr u64 chunkRecords = 4096;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * The decode-once front end: materializes trace records into
 * FetchEntry form and runs branch prediction over them, strictly in
 * program order, exactly once per record. Holds the sliding window
 * [start, end) that lane streams read from.
 */
class SharedFrontend
{
  public:
    SharedFrontend(const emu::TraceBuffer &buffer, u64 limit,
                   const core::CoreParams &branch_geometry)
        : cursor_(buffer, limit), predictors_(branch_geometry)
    {
        entries_.reserve(chunkRecords + 16);
    }

    /**
     * Slide the window to [new_start, new_end): drop records before
     * new_start, decode+predict records from the previous end to
     * new_end. Retained records keep their original prediction —
     * re-predicting would corrupt the trace-order predictor state.
     */
    void
    advance(u64 new_start, u64 new_end)
    {
        if (new_start < start_ || new_start > end_ || new_end < end_)
            panic("SharedFrontend: window [%llu,%llu) -> [%llu,%llu)",
                  (unsigned long long)start_, (unsigned long long)end_,
                  (unsigned long long)new_start,
                  (unsigned long long)new_end);
        entries_.erase(entries_.begin(),
                       entries_.begin() +
                           static_cast<long>(new_start - start_));
        start_ = new_start;
        for (u64 i = end_; i < new_end; ++i) {
            core::FetchEntry entry;
            if (!cursor_.next(entry.op))
                panic("SharedFrontend: trace ended at %llu, window "
                      "end %llu",
                      (unsigned long long)i,
                      (unsigned long long)new_end);
            predictors_.predict(entry.op, entry);
            entries_.push_back(entry);
        }
        end_ = new_end;
    }

    const core::FetchEntry &
    at(u64 index) const
    {
        if (index < start_ || index >= end_)
            panic("SharedFrontend: read %llu outside window "
                  "[%llu,%llu)",
                  (unsigned long long)index, (unsigned long long)start_,
                  (unsigned long long)end_);
        return entries_[index - start_];
    }

    u64 windowEnd() const { return end_; }

  private:
    emu::TraceBuffer::Cursor cursor_;
    core::BranchPredictors predictors_;
    std::vector<core::FetchEntry> entries_;
    u64 start_ = 0;
    u64 end_ = 0;
};

/**
 * One lane's view of the shared window: a FetchStream whose position
 * is the lane's private progress through the common record sequence.
 */
class WindowFetchStream final : public core::FetchStream
{
  public:
    WindowFetchStream(const SharedFrontend &frontend, u64 limit,
                      std::string name)
        : frontend_(&frontend), limit_(limit), name_(std::move(name))
    {
    }

    bool
    next(core::FetchEntry &out) override
    {
        if (pos_ >= limit_)
            return false;
        out = frontend_->at(pos_);
        ++pos_;
        return true;
    }

    std::string name() const override { return name_; }

    u64 position() const { return pos_; }

  private:
    const SharedFrontend *frontend_;
    u64 limit_;
    u64 pos_ = 0;
    std::string name_;
};

/** Branch-front-end geometry must match for predictions to be shared. */
bool
uniformBranchGeometry(const std::vector<core::CoreParams> &configs)
{
    const core::CoreParams &ref = configs.front();
    for (const core::CoreParams &c : configs) {
        if (c.gshareHistoryBits != ref.gshareHistoryBits ||
            c.btbEntries != ref.btbEntries || c.rasDepth != ref.rasDepth)
            return false;
    }
    return true;
}

} // namespace

std::vector<core::RunResult>
simulateGroup(const workloads::Workload &workload,
              const std::vector<core::CoreParams> &configs,
              const SimOptions &options)
{
    auto serial_fallback = [&] {
        std::vector<core::RunResult> results;
        results.reserve(configs.size());
        for (const core::CoreParams &params : configs)
            results.push_back(
                simulate(workload, params, options, nullptr));
        return results;
    };

    options.validate();
    if (configs.size() < 2 || options.oracleSamplePeriod != 0 ||
        !uniformBranchGeometry(configs))
        return serial_fallback();

    auto acquire_start = std::chrono::steady_clock::now();
    u64 total_insts = options.fastForward + options.maxInsts;
    std::shared_ptr<const emu::TraceBuffer> buffer;
    if (options.traceCache) {
        buffer = options.traceCache->acquire(
            workload.name, total_insts, [&workload, total_insts] {
                return workloads::makeTrace(workload, total_insts);
            });
        if (!buffer) {
            // Over the cache's byte budget: streaming replay cannot
            // be shared across lanes, so honour the budget serially.
            return serial_fallback();
        }
    } else {
        auto trace = workloads::makeTrace(workload, total_insts);
        buffer = emu::TraceBuffer::build(*trace, workload.name,
                                         total_insts);
    }
    double acquire_seconds = secondsSince(acquire_start);

    const size_t lanes = configs.size();
    const u64 limit = std::min<u64>(total_insts, buffer->size());

    struct Lane
    {
        std::unique_ptr<core::Pipeline> pipe;
        std::unique_ptr<WindowFetchStream> stream;
        double seconds = 0.0;
        bool done = false;
    };

    SharedFrontend frontend(*buffer, limit, configs.front());
    double shared_seconds = 0.0;

    std::vector<Lane> group(lanes);
    for (size_t i = 0; i < lanes; ++i) {
        core::CoreParams run_params = configs[i];
        run_params.oracleSamplePeriod = options.oracleSamplePeriod;
        group[i].pipe = std::make_unique<core::Pipeline>(run_params);
        group[i].pipe->setFastPath(options.fastPath);
        group[i].stream = std::make_unique<WindowFetchStream>(
            frontend, limit, workload.name);
    }

    // Fast-forward: every lane consumes the same warm-up prefix, so
    // the window slides in uniform chunks.
    if (options.fastForward > 0) {
        const u64 warm_end = std::min<u64>(options.fastForward, limit);
        std::vector<core::Pipeline::WarmupScratch> scratch(lanes);
        u64 pos = 0;
        while (pos < warm_end) {
            u64 chunk_end = std::min<u64>(pos + chunkRecords, warm_end);
            auto t0 = std::chrono::steady_clock::now();
            frontend.advance(pos, chunk_end);
            shared_seconds += secondsSince(t0);
            for (size_t i = 0; i < lanes; ++i) {
                auto t1 = std::chrono::steady_clock::now();
                group[i].pipe->warmUpRange(*group[i].stream,
                                           chunk_end - pos, scratch[i]);
                group[i].seconds += secondsSince(t1);
            }
            pos = chunk_end;
        }
        for (size_t i = 0; i < lanes; ++i)
            group[i].pipe->finishWarmUp(scratch[i]);
    }

    for (Lane &lane : group)
        lane.pipe->beginRun(workload.name);

    // Timed window: chunked lockstep. A cycle consumes at most
    // fetchWidth records, so a lane stepping only while
    // position + fetchWidth <= window end can never read past it —
    // and never pauses mid-cycle. On the final chunk the stream
    // simply runs dry and each lane drains to completion.
    size_t active_lanes = lanes;
    while (active_lanes > 0) {
        u64 min_pos = ~u64{0};
        for (Lane &lane : group) {
            if (!lane.done && lane.stream->position() < limit)
                min_pos = std::min(min_pos, lane.stream->position());
        }

        bool last_chunk = true;
        if (min_pos != ~u64{0}) {
            u64 chunk_end =
                std::min<u64>(min_pos + chunkRecords, limit);
            auto t0 = std::chrono::steady_clock::now();
            frontend.advance(min_pos, chunk_end);
            shared_seconds += secondsSince(t0);
            last_chunk = chunk_end == limit;
        }

        const u64 window_end = frontend.windowEnd();
        for (Lane &lane : group) {
            if (lane.done)
                continue;
            core::Pipeline &pipe = *lane.pipe;
            WindowFetchStream &stream = *lane.stream;
            const u64 fetch_width = pipe.params().fetchWidth;
            auto t1 = std::chrono::steady_clock::now();
            if (last_chunk || stream.position() >= limit) {
                while (pipe.active())
                    pipe.stepCycle(stream);
            } else {
                while (pipe.active() &&
                       stream.position() + fetch_width <= window_end)
                    pipe.stepCycle(stream);
            }
            lane.seconds += secondsSince(t1);
            if (!pipe.active()) {
                lane.done = true;
                --active_lanes;
            }
        }
    }

    std::vector<core::RunResult> results;
    results.reserve(lanes);
    for (size_t i = 0; i < lanes; ++i) {
        core::RunResult result = group[i].pipe->finishRun();
        // Shared work is split evenly: summing wallSeconds over the
        // group reproduces the group's true wall time.
        result.traceBuildSeconds =
            acquire_seconds / static_cast<double>(lanes);
        result.simSeconds = group[i].seconds +
                            shared_seconds / static_cast<double>(lanes);
        result.wallSeconds =
            result.traceBuildSeconds + result.simSeconds;
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace carf::sim
