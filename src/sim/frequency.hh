/**
 * @file
 * Frequency-scaling speed-up estimation (paper §5): if the slower of
 * the content-aware sub-files is faster than the baseline file, the
 * clock may be raised and the small IPC loss turns into a speed-up.
 */

#ifndef CARF_SIM_FREQUENCY_HH
#define CARF_SIM_FREQUENCY_HH

namespace carf::sim
{

/**
 * Potential clock frequency gain from an access-time reduction,
 * assuming the register file sets the critical path.
 *
 * @param baseline_time baseline file access time
 * @param ca_time slowest content-aware sub-file access time
 * @return fractional frequency gain (e.g.\ 0.15 for +15%)
 */
double potentialFrequencyGain(double baseline_time, double ca_time);

/**
 * Wall-clock speed-up over the baseline when the clock is raised by
 * @p freq_gain and the relative IPC is @p relative_ipc.
 *
 * @return fractional speed-up (positive) or slowdown (negative)
 */
double frequencyScaledSpeedup(double relative_ipc, double freq_gain);

} // namespace carf::sim

#endif // CARF_SIM_FREQUENCY_HH
