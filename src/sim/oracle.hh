/**
 * @file
 * Live-value oracle (paper Figures 1 and 2).
 *
 * Each sampled cycle the oracle walks the live entries of the integer
 * physical register file, groups the values — by exact value for
 * Figure 1, by (64-d)-similarity for Figure 2 — ranks the groups by
 * population, and accumulates how many live registers fall in the
 * rank buckets {1, 2, 3-4, 5-8, 9-16, REST}.
 */

#ifndef CARF_SIM_ORACLE_HH
#define CARF_SIM_ORACLE_HH

#include <array>
#include <vector>

#include "core/pipeline.hh"

namespace carf::sim
{

/** Rank-bucket accumulator for one grouping criterion. */
class GroupAccumulator
{
  public:
    static constexpr unsigned numBuckets = 6;

    static const char *bucketName(unsigned bucket);

    /** Add one sample: @p group_sizes is the per-group populations. */
    void addSample(std::vector<u32> &group_sizes);

    /** Fold another accumulator's samples into this one. */
    void merge(const GroupAccumulator &other);

    /** Fraction of live registers in @p bucket across all samples. */
    double fraction(unsigned bucket) const;
    u64 total() const { return total_; }

  private:
    std::array<u64, numBuckets> buckets_{};
    u64 total_ = 0;
};

/** CycleObserver sampling exact-value and d-similarity groupings. */
class LiveValueOracle : public core::CycleObserver
{
  public:
    explicit LiveValueOracle(std::vector<unsigned> similarity_ds =
                                 {8, 12, 16});

    void sampleCycle(Cycle cycle,
                     const regfile::RegisterFile &int_rf) override;

    const GroupAccumulator &exactGroups() const { return exact_; }
    const std::vector<unsigned> &similarityDs() const { return ds_; }
    const GroupAccumulator &similarityGroups(unsigned d_index) const
    {
        return similarity_.at(d_index);
    }

    u64 samples() const { return samples_; }
    /** Mean number of live integer registers per sample. */
    double avgLiveRegs() const;

    /**
     * Fold another oracle's accumulated samples into this one; the
     * two must have been built with the same similarity d list. Lets
     * parallel per-workload runs (one oracle each) reduce to the
     * suite-level aggregate the serial loop produced.
     */
    void merge(const LiveValueOracle &other);

  private:
    std::vector<unsigned> ds_;
    GroupAccumulator exact_;
    std::vector<GroupAccumulator> similarity_;
    u64 samples_ = 0;
    u64 liveRegSum_ = 0;
};

} // namespace carf::sim

#endif // CARF_SIM_ORACLE_HH
