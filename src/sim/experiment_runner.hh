/**
 * @file
 * Thread-pooled experiment engine.
 *
 * Every figure/table reproduction evaluates an embarrassingly
 * parallel (workload x configuration) grid; ExperimentRunner turns
 * that grid into declarative jobs executed by a worker pool. Results
 * are returned indexed by submission order, so a batch run with N
 * workers is bit-identical to the same batch run serially — the only
 * thing parallelism changes is wall-clock time.
 *
 * Jobs that share a workload and run options additionally collapse
 * into config-parallel lockstep units (SimOptions::lockstep, on by
 * default): the trace is decoded and branch-predicted once and every
 * configuration's pipeline lane steps over the shared window
 * (simulateGroup()). Lockstep replay is bit-identical to solo
 * simulation, so this too only changes wall-clock time.
 */

#ifndef CARF_SIM_EXPERIMENT_RUNNER_HH
#define CARF_SIM_EXPERIMENT_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace carf::sim
{

class LiveValueOracle;

/** One simulation to run: a workload on a configuration. */
struct ExperimentJob
{
    workloads::Workload workload;
    core::CoreParams params;
    SimOptions options;
    /** Caller grouping key, copied into nothing — purely for the
     *  caller's bookkeeping and progress display. */
    std::string tag;
    /**
     * Optional live-value oracle receiving this job's samples. Each
     * job needs its own instance (oracles are not thread-safe); merge
     * them after run() returns for suite-level aggregates.
     */
    LiveValueOracle *oracle = nullptr;
};

/** Progress report delivered after each job completes. */
struct ExperimentProgress
{
    /** Jobs finished so far (including this one). */
    size_t completed;
    /** Total jobs in the batch. */
    size_t total;
    /** The job that just finished. */
    const ExperimentJob &job;
    /** Its result. */
    const core::RunResult &result;
    /**
     * True when the result came from the job's result store instead
     * of a simulation (SimOptions::resultStore). Cached jobs report
     * first, in submission order, before any simulation starts.
     */
    bool cached = false;
};

/**
 * Executes batches of simulation jobs on a pool of worker threads.
 *
 * Determinism contract: run() returns results in submission order,
 * and each simulation is a pure function of its job (no shared
 * mutable state in the simulator), so the result vector is identical
 * for any worker count.
 */
class ExperimentRunner
{
  public:
    /**
     * Invoked after each job completes. Serialized by the runner (at
     * most one callback at a time) but called from worker threads in
     * completion order, which under contention differs from
     * submission order.
     */
    using ProgressFn = std::function<void(const ExperimentProgress &)>;

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareJobs();

    /** @param jobs worker count; 0 selects hardwareJobs(). */
    explicit ExperimentRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Execute @p batch and return one RunResult per job, in
     * submission order. Jobs with options.lockstep that share a
     * workload, instruction budget, trace cache, and branch-predictor
     * geometry run as one lockstep group (capped by
     * options.lockstepMaxGroup); the pool schedules whole units. With
     * jobs()==1 (or a single-unit batch) units run inline on the
     * calling thread with no pool at all. Each result's wallSeconds
     * covers that job alone (a group's shared front-end time is split
     * evenly across its members).
     *
     * Jobs with options.resultStore first resolve their content-
     * addressed key against the store: hits fill their slots without
     * simulating (reported to @p progress first, cached=true, in
     * submission order), misses run as usual and are written back as
     * they complete — so a killed batch resumes by skipping every key
     * it already stored. Oracle-carrying jobs bypass the store.
     */
    std::vector<core::RunResult>
    run(const std::vector<ExperimentJob> &batch,
        const ProgressFn &progress = {}) const;

    /**
     * Generic fan-out: invoke @p task(0) .. @p task(count-1) on the
     * worker pool, each index exactly once. Tasks must be mutually
     * independent (no shared mutable state without their own
     * synchronization). With jobs()==1 or count<=1 the tasks run
     * inline, in index order, with no pool. Used by run() and by
     * non-simulation batch work such as the register-file fuzz driver
     * (one seed stream per task).
     */
    void runTasks(size_t count,
                  const std::function<void(size_t)> &task) const;

  private:
    unsigned jobs_;
};

} // namespace carf::sim

#endif // CARF_SIM_EXPERIMENT_RUNNER_HH
