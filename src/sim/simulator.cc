#include "sim/simulator.hh"

#include <chrono>

namespace carf::sim
{

core::RunResult
simulate(const workloads::Workload &workload,
         const core::CoreParams &params, const SimOptions &options,
         LiveValueOracle *oracle)
{
    auto start = std::chrono::steady_clock::now();

    core::CoreParams run_params = params;
    run_params.oracleSamplePeriod = options.oracleSamplePeriod;

    auto trace = workloads::makeTrace(
        workload, options.fastForward + options.maxInsts);
    core::Pipeline pipeline(run_params);
    if (options.fastForward > 0)
        pipeline.warmUp(*trace, options.fastForward);
    core::RunResult result = pipeline.run(*trace, oracle);

    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

} // namespace carf::sim
