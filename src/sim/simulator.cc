#include "sim/simulator.hh"

#include <chrono>

namespace carf::sim
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

core::RunResult
simulate(const workloads::Workload &workload,
         const core::CoreParams &params, const SimOptions &options,
         LiveValueOracle *oracle)
{
    auto start = std::chrono::steady_clock::now();

    core::CoreParams run_params = params;
    run_params.oracleSamplePeriod = options.oracleSamplePeriod;

    u64 total_insts = options.fastForward + options.maxInsts;

    // Obtain the dynamic trace. With a cache, the (possibly shared)
    // buffer is materialized up front and replayed zero-copy; without
    // one, the emulator streams lazily inside the cycle loop exactly
    // as before.
    std::shared_ptr<const emu::TraceBuffer> buffer;
    if (options.traceCache) {
        buffer = options.traceCache->acquire(
            workload.name, total_insts, [&workload, total_insts] {
                return workloads::makeTrace(workload, total_insts);
            });
    }
    double trace_build_seconds = buffer ? secondsSince(start) : 0.0;

    auto sim_start = std::chrono::steady_clock::now();
    core::Pipeline pipeline(run_params);
    core::RunResult result;
    if (buffer) {
        emu::TraceBuffer::Cursor cursor(*buffer, total_insts);
        if (options.fastForward > 0)
            pipeline.warmUp(cursor, options.fastForward);
        result = pipeline.run(cursor, oracle);
    } else {
        auto trace = workloads::makeTrace(workload, total_insts);
        if (options.fastForward > 0)
            pipeline.warmUp(*trace, options.fastForward);
        result = pipeline.run(*trace, oracle);
    }

    result.traceBuildSeconds = trace_build_seconds;
    result.simSeconds = secondsSince(sim_start);
    result.wallSeconds = result.traceBuildSeconds + result.simSeconds;
    return result;
}

} // namespace carf::sim
