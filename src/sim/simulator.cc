#include "sim/simulator.hh"

namespace carf::sim
{

core::RunResult
simulate(const workloads::Workload &workload,
         const core::CoreParams &params, const SimOptions &options,
         LiveValueOracle *oracle)
{
    core::CoreParams run_params = params;
    run_params.oracleSamplePeriod = options.oracleSamplePeriod;

    auto trace = workloads::makeTrace(
        workload, options.fastForward + options.maxInsts);
    core::Pipeline pipeline(run_params);
    if (options.fastForward > 0)
        pipeline.warmUp(*trace, options.fastForward);
    return pipeline.run(*trace, oracle);
}

} // namespace carf::sim
