#include "sim/simulator.hh"

#include <chrono>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/smt.hh"

namespace carf::sim
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Wraps a streaming trace source and accumulates the host time spent
 * producing records, so the emulation cost interleaved with the cycle
 * loop can be attributed to traceBuildSeconds instead of silently
 * inflating simSeconds (the buffered path measures its build up
 * front; this is the streaming path's equivalent).
 */
class TimedSource final : public emu::TraceSource
{
  public:
    explicit TimedSource(emu::TraceSource &inner) : inner_(&inner) {}

    bool
    next(emu::DynOp &out) override
    {
        auto start = std::chrono::steady_clock::now();
        bool ok = inner_->next(out);
        seconds_ += secondsSince(start);
        return ok;
    }

    std::string name() const override { return inner_->name(); }

    double seconds() const { return seconds_; }

  private:
    emu::TraceSource *inner_;
    double seconds_ = 0.0;
};

} // namespace

core::RunResult
simulate(const workloads::Workload &workload,
         const core::CoreParams &params, const SimOptions &options,
         LiveValueOracle *oracle)
{
    auto start = std::chrono::steady_clock::now();

    core::CoreParams run_params = params;
    run_params.oracleSamplePeriod = options.oracleSamplePeriod;

    u64 total_insts = options.fastForward + options.maxInsts;

    // Obtain the dynamic trace. With a cache, the (possibly shared)
    // buffer is materialized up front and replayed zero-copy; without
    // one, the emulator streams lazily inside the cycle loop exactly
    // as before.
    std::shared_ptr<const emu::TraceBuffer> buffer;
    if (options.traceCache) {
        buffer = options.traceCache->acquire(
            workload.name, total_insts, [&workload, total_insts] {
                return workloads::makeTrace(workload, total_insts);
            });
    }
    double trace_build_seconds = buffer ? secondsSince(start) : 0.0;

    auto sim_start = std::chrono::steady_clock::now();
    core::Pipeline pipeline(run_params);
    core::RunResult result;
    if (buffer) {
        emu::TraceBuffer::Cursor cursor(*buffer, total_insts);
        if (options.fastForward > 0)
            pipeline.warmUp(cursor, options.fastForward);
        result = pipeline.run(cursor, oracle);
        result.traceBuildSeconds = trace_build_seconds;
        result.simSeconds = secondsSince(sim_start);
    } else {
        // Streaming: emulation happens inside the cycle loop, so
        // meter it at the source to keep the simulate-vs-build split
        // honest.
        auto trace = workloads::makeTrace(workload, total_insts);
        TimedSource timed(*trace);
        if (options.fastForward > 0)
            pipeline.warmUp(timed, options.fastForward);
        result = pipeline.run(timed, oracle);
        result.traceBuildSeconds = timed.seconds();
        result.simSeconds =
            secondsSince(sim_start) - result.traceBuildSeconds;
    }

    result.wallSeconds = result.traceBuildSeconds + result.simSeconds;
    return result;
}

core::RunResult
simulateSmt(const workloads::Workload &workload,
            const core::CoreParams &params, const SimOptions &options)
{
    unsigned num_threads = params.smtThreads > 0 ? params.smtThreads : 1;
    if (num_threads == 1)
        return simulate(workload, params, options);
    if (options.fastForward > 0)
        fatal("simulateSmt: fast-forward is a solo-pipeline feature");
    if (options.oracleSamplePeriod > 0)
        fatal("simulateSmt: the live-value oracle is a solo-pipeline "
              "feature");

    auto start = std::chrono::steady_clock::now();

    // Resolve the per-thread workload list: thread 0 runs the job's
    // workload, partners cycle through the mix.
    std::vector<const workloads::Workload *> mix(num_threads, &workload);
    if (!options.smtMix.empty()) {
        for (unsigned t = 1; t < num_threads; ++t)
            mix[t] = &workloads::findWorkload(
                options.smtMix[(t - 1) % options.smtMix.size()]);
    }

    // Obtain one trace per thread. Each thread gets its own source
    // over its own functional memory; with a cache, threads running
    // the same workload share the underlying buffer through distinct
    // cursors.
    std::vector<std::shared_ptr<const emu::TraceBuffer>> buffers;
    std::vector<std::unique_ptr<emu::TraceBuffer::Cursor>> cursors;
    std::vector<std::unique_ptr<emu::TraceSource>> streams;
    std::vector<std::unique_ptr<TimedSource>> timed;
    std::vector<emu::TraceSource *> sources(num_threads, nullptr);
    for (unsigned t = 0; t < num_threads; ++t) {
        const workloads::Workload &w = *mix[t];
        std::shared_ptr<const emu::TraceBuffer> buffer;
        if (options.traceCache) {
            buffer = options.traceCache->acquire(
                w.name, options.maxInsts, [&w, &options] {
                    return workloads::makeTrace(w, options.maxInsts);
                });
        }
        if (buffer) {
            cursors.push_back(std::make_unique<emu::TraceBuffer::Cursor>(
                *buffer, options.maxInsts));
            sources[t] = cursors.back().get();
            buffers.push_back(std::move(buffer));
        } else {
            streams.push_back(workloads::makeTrace(w, options.maxInsts));
            timed.push_back(std::make_unique<TimedSource>(*streams.back()));
            sources[t] = timed.back().get();
        }
    }
    double trace_build_seconds = secondsSince(start);

    auto sim_start = std::chrono::steady_clock::now();
    core::SmtPipeline pipeline(params, num_threads);
    core::SmtResult smt = pipeline.run(sources);
    core::RunResult result = smt.aggregate();

    double stream_seconds = 0.0;
    for (const auto &src : timed)
        stream_seconds += src->seconds();
    result.traceBuildSeconds = trace_build_seconds + stream_seconds;
    result.simSeconds = secondsSince(sim_start) - stream_seconds;
    result.wallSeconds = result.traceBuildSeconds + result.simSeconds;
    return result;
}

} // namespace carf::sim
