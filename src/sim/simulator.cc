#include "sim/simulator.hh"

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/smt.hh"

namespace carf::sim
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Wraps a streaming trace source and accumulates the host time spent
 * producing records, so the emulation cost interleaved with the cycle
 * loop can be attributed to traceBuildSeconds instead of silently
 * inflating simSeconds (the buffered path measures its build up
 * front; this is the streaming path's equivalent).
 */
class TimedSource final : public emu::TraceSource
{
  public:
    explicit TimedSource(emu::TraceSource &inner) : inner_(&inner) {}

    bool
    next(emu::DynOp &out) override
    {
        auto start = std::chrono::steady_clock::now();
        bool ok = inner_->next(out);
        seconds_ += secondsSince(start);
        return ok;
    }

    std::string name() const override { return inner_->name(); }

    double seconds() const { return seconds_; }

  private:
    emu::TraceSource *inner_;
    double seconds_ = 0.0;
};

/**
 * Caps the records one sampling phase may pull from the predicted
 * stream, and remembers when the underlying stream itself ran dry
 * (the pipeline cannot distinguish a closed window from a finished
 * trace — both end the episode; the engine needs to).
 */
class WindowedStream final : public core::FetchStream
{
  public:
    explicit WindowedStream(core::FetchStream &inner) : inner_(&inner)
    {
    }

    void allow(u64 n) { left_ = n; }
    u64 left() const { return left_; }
    bool exhausted() const { return exhausted_; }

    bool
    next(core::FetchEntry &out) override
    {
        if (left_ == 0 || exhausted_)
            return false;
        if (!inner_->next(out)) {
            exhausted_ = true;
            return false;
        }
        --left_;
        return true;
    }

    std::string name() const override { return inner_->name(); }

  private:
    core::FetchStream *inner_;
    u64 left_ = 0;
    bool exhausted_ = false;
};

} // namespace

void
SimOptions::validate() const
{
    if (samplingPeriod == 0)
        return;
    if (oracleSamplePeriod > 0) {
        fatal("SimOptions: statistical sampling is incompatible with "
              "the live-value oracle (oracleSamplePeriod > 0) — the "
              "oracle needs every cycle of one continuous window");
    }
    if (lockstep) {
        fatal("SimOptions: statistical sampling cannot join lockstep "
              "groups; set lockstep = false for sampled runs");
    }
    if (fastForward > 0) {
        fatal("SimOptions: fastForward overlaps the sampling engine's "
              "own functional gaps; use samplingPeriod/samplingWarmup/"
              "samplingMeasure alone");
    }
    if (samplingMeasure == 0)
        fatal("SimOptions: samplingMeasure must be > 0");
    if (samplingWarmup + samplingMeasure > samplingPeriod) {
        fatal("SimOptions: samplingWarmup + samplingMeasure (%llu) "
              "exceeds samplingPeriod (%llu)",
              (unsigned long long)(samplingWarmup + samplingMeasure),
              (unsigned long long)samplingPeriod);
    }
}

core::RunResult
simulate(const workloads::Workload &workload,
         const core::CoreParams &params, const SimOptions &options,
         LiveValueOracle *oracle)
{
    options.validate();
    if (options.samplingPeriod > 0)
        fatal("simulate: sampled runs go through simulateSampled()");

    auto start = std::chrono::steady_clock::now();

    core::CoreParams run_params = params;
    run_params.oracleSamplePeriod = options.oracleSamplePeriod;

    u64 total_insts = options.fastForward + options.maxInsts;

    // Obtain the dynamic trace. With a cache, the (possibly shared)
    // buffer is materialized up front and replayed zero-copy; without
    // one, the emulator streams lazily inside the cycle loop exactly
    // as before.
    std::shared_ptr<const emu::TraceBuffer> buffer;
    if (options.traceCache) {
        buffer = options.traceCache->acquire(
            workload.name, total_insts, [&workload, total_insts] {
                return workloads::makeTrace(workload, total_insts);
            });
    }
    double trace_build_seconds = buffer ? secondsSince(start) : 0.0;

    auto sim_start = std::chrono::steady_clock::now();
    core::Pipeline pipeline(run_params);
    pipeline.setFastPath(options.fastPath);
    core::RunResult result;
    if (buffer) {
        emu::TraceBuffer::Cursor cursor(*buffer, total_insts);
        if (options.fastForward > 0)
            pipeline.warmUp(cursor, options.fastForward);
        result = pipeline.run(cursor, oracle);
        result.traceBuildSeconds = trace_build_seconds;
        result.simSeconds = secondsSince(sim_start);
    } else {
        // Streaming: emulation happens inside the cycle loop, so
        // meter it at the source to keep the simulate-vs-build split
        // honest.
        auto trace = workloads::makeTrace(workload, total_insts);
        TimedSource timed(*trace);
        if (options.fastForward > 0)
            pipeline.warmUp(timed, options.fastForward);
        result = pipeline.run(timed, oracle);
        result.traceBuildSeconds = timed.seconds();
        result.simSeconds =
            secondsSince(sim_start) - result.traceBuildSeconds;
    }

    result.wallSeconds = result.traceBuildSeconds + result.simSeconds;
    return result;
}

core::RunResult
simulateSmt(const workloads::Workload &workload,
            const core::CoreParams &params, const SimOptions &options)
{
    unsigned num_threads = params.smtThreads > 0 ? params.smtThreads : 1;
    if (num_threads == 1)
        return simulate(workload, params, options);
    if (options.fastForward > 0)
        fatal("simulateSmt: fast-forward is a solo-pipeline feature");
    if (options.oracleSamplePeriod > 0)
        fatal("simulateSmt: the live-value oracle is a solo-pipeline "
              "feature");
    if (options.samplingPeriod > 0)
        fatal("simulateSmt: statistical sampling is a solo-pipeline "
              "feature");

    auto start = std::chrono::steady_clock::now();

    // Resolve the per-thread workload list: thread 0 runs the job's
    // workload, partners cycle through the mix.
    std::vector<const workloads::Workload *> mix(num_threads, &workload);
    if (!options.smtMix.empty()) {
        for (unsigned t = 1; t < num_threads; ++t)
            mix[t] = &workloads::findWorkload(
                options.smtMix[(t - 1) % options.smtMix.size()]);
    }

    // Obtain one trace per thread. Each thread gets its own source
    // over its own functional memory; with a cache, threads running
    // the same workload share the underlying buffer through distinct
    // cursors.
    std::vector<std::shared_ptr<const emu::TraceBuffer>> buffers;
    std::vector<std::unique_ptr<emu::TraceBuffer::Cursor>> cursors;
    std::vector<std::unique_ptr<emu::TraceSource>> streams;
    std::vector<std::unique_ptr<TimedSource>> timed;
    std::vector<emu::TraceSource *> sources(num_threads, nullptr);
    for (unsigned t = 0; t < num_threads; ++t) {
        const workloads::Workload &w = *mix[t];
        std::shared_ptr<const emu::TraceBuffer> buffer;
        if (options.traceCache) {
            buffer = options.traceCache->acquire(
                w.name, options.maxInsts, [&w, &options] {
                    return workloads::makeTrace(w, options.maxInsts);
                });
        }
        if (buffer) {
            cursors.push_back(std::make_unique<emu::TraceBuffer::Cursor>(
                *buffer, options.maxInsts));
            sources[t] = cursors.back().get();
            buffers.push_back(std::move(buffer));
        } else {
            streams.push_back(workloads::makeTrace(w, options.maxInsts));
            timed.push_back(std::make_unique<TimedSource>(*streams.back()));
            sources[t] = timed.back().get();
        }
    }
    double trace_build_seconds = secondsSince(start);

    auto sim_start = std::chrono::steady_clock::now();
    core::SmtPipeline pipeline(params, num_threads);
    core::SmtResult smt = pipeline.run(sources);
    core::RunResult result = smt.aggregate();

    double stream_seconds = 0.0;
    for (const auto &src : timed)
        stream_seconds += src->seconds();
    result.traceBuildSeconds = trace_build_seconds + stream_seconds;
    result.simSeconds = secondsSince(sim_start) - stream_seconds;
    result.wallSeconds = result.traceBuildSeconds + result.simSeconds;
    return result;
}

core::RunResult
simulateSampled(const workloads::Workload &workload,
                const core::CoreParams &params,
                const SimOptions &options)
{
    options.validate();
    if (options.samplingPeriod == 0)
        fatal("simulateSampled: samplingPeriod must be > 0");
    if (params.smtThreads > 1)
        fatal("simulateSampled: sampling is a solo-pipeline feature");

    auto start = std::chrono::steady_clock::now();

    std::shared_ptr<const emu::TraceBuffer> buffer;
    if (options.traceCache) {
        buffer = options.traceCache->acquire(
            workload.name, options.maxInsts, [&workload, &options] {
                return workloads::makeTrace(workload, options.maxInsts);
            });
    }
    double trace_build_seconds = buffer ? secondsSince(start) : 0.0;

    auto sim_start = std::chrono::steady_clock::now();
    std::unique_ptr<emu::TraceSource> owned;
    std::unique_ptr<emu::TraceBuffer::Cursor> cursor;
    std::unique_ptr<TimedSource> metered;
    emu::TraceSource *source = nullptr;
    if (buffer) {
        cursor = std::make_unique<emu::TraceBuffer::Cursor>(
            *buffer, options.maxInsts);
        source = cursor.get();
    } else {
        owned = workloads::makeTrace(workload, options.maxInsts);
        metered = std::make_unique<TimedSource>(*owned);
        source = metered.get();
    }

    core::Pipeline pipeline(params);
    pipeline.setFastPath(options.fastPath);
    core::PredictingFetchStream predicted(*source, params);
    WindowedStream window(predicted);

    pipeline.beginRun(workload.name);

    u64 gap = options.samplingPeriod - options.samplingWarmup -
              options.samplingMeasure;
    u64 measured_cycles = 0;
    u64 measured_insts = 0;
    u64 skipped_insts = 0;
    core::CycleAccounting measured_acc;
    std::vector<double> interval_ipc;

    while (!window.exhausted()) {
        // Functional gap: emulate through the predictor so the
        // caches, branch state, the Short file's address heuristics,
        // and the architectural register values all stay warm at zero
        // cycle cost.
        if (gap > 0) {
            core::Pipeline::WarmupScratch scratch;
            window.allow(gap);
            pipeline.warmUpRange(window, gap, scratch);
            skipped_insts += gap - window.left();
            if (window.exhausted())
                break;
            pipeline.installWarmState(scratch);
        }
        pipeline.resetForResume();

        // Detailed episode: the warm-up portion refills the pipeline
        // after the gap; the measured portion is delimited by commit
        // marks. The lane then drains (all fetched records commit),
        // so the next gap resumes from clean in-flight state.
        window.allow(options.samplingWarmup + options.samplingMeasure);
        u64 warm_mark =
            pipeline.committedInsts() + options.samplingWarmup;
        u64 end_mark = warm_mark + options.samplingMeasure;
        while (pipeline.active() &&
               pipeline.committedInsts() < warm_mark) {
            pipeline.stepCycle(window);
        }
        if (pipeline.committedInsts() < warm_mark)
            break; // trace dried inside the warm-up: nothing to measure

        Cycle c0 = pipeline.currentCycle();
        core::CycleAccounting a0 = pipeline.cycleAccounting();
        u64 i0 = pipeline.committedInsts();
        while (pipeline.active() &&
               pipeline.committedInsts() < end_mark) {
            pipeline.stepCycle(window);
        }
        u64 insts = pipeline.committedInsts() - i0;
        Cycle cycles = pipeline.currentCycle() - c0;
        const core::CycleAccounting &a1 = pipeline.cycleAccounting();
        for (unsigned b = 0; b < core::CycleAccounting::NumBuckets; ++b)
            measured_acc.counts[b] += a1.counts[b] - a0.counts[b];
        measured_insts += insts;
        measured_cycles += cycles;
        if (insts > 0 && cycles > 0) {
            interval_ipc.push_back(static_cast<double>(insts) /
                                   static_cast<double>(cycles));
        }

        // Drain any leftover in-flight work outside the measurement.
        while (pipeline.active())
            pipeline.stepCycle(window);
    }

    core::RunResult result = pipeline.finishRun();
    result.cycles = measured_cycles;
    result.committedInsts = measured_insts;
    result.ipc = measured_cycles
                     ? static_cast<double>(measured_insts) /
                           static_cast<double>(measured_cycles)
                     : 0.0;
    result.cycleAccounting = measured_acc;
    result.samplingPeriod = options.samplingPeriod;
    result.samplingWarmup = options.samplingWarmup;
    result.samplingMeasure = options.samplingMeasure;
    result.samplingIntervals = interval_ipc.size();
    result.samplingSkippedInsts = skipped_insts;
    if (interval_ipc.size() >= 2) {
        double mean = 0.0;
        for (double x : interval_ipc)
            mean += x;
        mean /= static_cast<double>(interval_ipc.size());
        double var = 0.0;
        for (double x : interval_ipc)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(interval_ipc.size() - 1);
        result.samplingIpcCi95 =
            1.96 * std::sqrt(var /
                             static_cast<double>(interval_ipc.size()));
    }

    if (metered) {
        result.traceBuildSeconds = metered->seconds();
        result.simSeconds =
            secondsSince(sim_start) - result.traceBuildSeconds;
    } else {
        result.traceBuildSeconds = trace_build_seconds;
        result.simSeconds = secondsSince(sim_start);
    }
    result.wallSeconds = result.traceBuildSeconds + result.simSeconds;
    return result;
}

} // namespace carf::sim
