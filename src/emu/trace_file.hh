/**
 * @file
 * Binary dynamic-trace files: record a DynOp stream once, replay it
 * across many configurations without re-emulating.
 *
 * Format: a fixed magic/version header followed by packed little-
 * endian DynOp records. Readers validate the header and refuse
 * truncated records, so version skew fails loudly.
 */

#ifndef CARF_EMU_TRACE_FILE_HH
#define CARF_EMU_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "emu/trace.hh"
#include "emu/trace_buffer.hh"

namespace carf::emu
{

/** Writes a DynOp stream to a trace file. */
class TraceWriter
{
  public:
    /** Opens (truncates) @p path; fatal() on I/O errors. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const DynOp &op);
    u64 recordCount() const { return count_; }

    /** Flush and close; called by the destructor if needed. */
    void close();

    /** Drain an entire source into @p path; returns records written. */
    static u64 record(TraceSource &source, const std::string &path);

    /** Write @p buffer's records to @p path; returns records written. */
    static u64 record(const TraceBuffer &buffer, const std::string &path);

  private:
    std::string path_;
    std::FILE *file_;
    u64 count_ = 0;
};

/** Streams DynOps back from a trace file. */
class TraceReader : public TraceSource
{
  public:
    /**
     * @param path trace file written by TraceWriter
     * @param name workload name to report (defaults to the path)
     * @param max_insts optional cap on replayed records
     */
    explicit TraceReader(const std::string &path, std::string name = "",
                         u64 max_insts = ~u64{0});
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(DynOp &out) override;
    std::string name() const override { return name_; }

    /** Total records in the file (from the header). */
    u64 recordCount() const { return total_; }

  private:
    std::string name_;
    std::FILE *file_;
    u64 total_ = 0;
    u64 read_ = 0;
    u64 maxInsts_;
};

/**
 * Load a trace file into an in-memory TraceBuffer. Round-trip
 * guarantee: for any program-order stream S,
 * readTraceBuffer(record(S)) replays records identical to S — the
 * buffer's derived-field encoding (seq, nextPc) is validated against
 * the file as it loads, so a malformed file fails loudly instead of
 * replaying garbage.
 *
 * @param name workload name the buffer reports (defaults to the path)
 * @param max_insts optional cap on loaded records
 */
std::unique_ptr<TraceBuffer>
readTraceBuffer(const std::string &path, std::string name = "",
                u64 max_insts = ~u64{0});

} // namespace carf::emu

#endif // CARF_EMU_TRACE_FILE_HH
