/**
 * @file
 * Shared, thread-safe memoization of dynamic traces.
 *
 * A configuration sweep simulates C configurations over W workloads;
 * without a cache every job re-runs the functional emulator, paying
 * C*W emulations for what are only W distinct traces. TraceCache
 * stores each workload's TraceBuffer once:
 *
 *  - **build-once**: concurrent jobs that miss on the same workload
 *    block on a shared future while exactly one of them emulates;
 *  - **budget-aware**: an entry built to budget B serves any request
 *    with budget <= B (traces are deterministic prefixes), and any
 *    budget at all once the program has halted; a larger request
 *    rebuilds and replaces the entry;
 *  - **bounded**: total resident bytes are capped by an LRU byte
 *    budget. A trace too large to ever fit is not built at all — the
 *    caller falls back to streaming emulation, and the fallback is
 *    logged (once per workload) so cache behavior is never silent.
 *
 * The cache lives in emu and is keyed by workload name, taking a
 * builder callback instead of a Workload so it does not depend on the
 * workload registry.
 */

#ifndef CARF_EMU_TRACE_CACHE_HH
#define CARF_EMU_TRACE_CACHE_HH

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "emu/trace_buffer.hh"

namespace carf::emu
{

class TraceCache
{
  public:
    /** Default LRU byte budget: 512 MiB of encoded trace. */
    static constexpr u64 kDefaultByteBudget = u64{512} << 20;

    /** Produces a fresh stream for a workload (typically makeTrace). */
    using Builder = std::function<std::unique_ptr<TraceSource>()>;

    explicit TraceCache(u64 byte_budget = kDefaultByteBudget);

    u64 byteBudget() const { return byteBudget_; }

    /**
     * Return a buffer covering the first @p max_insts instructions of
     * workload @p name, building it from @p builder at most once per
     * (workload, sufficient-budget) across all threads.
     *
     * @retval nullptr when the trace cannot fit the byte budget; the
     *         caller must fall back to streaming emulation. Replay the
     *         returned buffer through a Cursor capped at @p max_insts.
     */
    std::shared_ptr<const TraceBuffer>
    acquire(const std::string &name, u64 max_insts,
            const Builder &builder);

    /** Cache effectiveness counters (monotonic over the lifetime). */
    struct Stats
    {
        u64 hits = 0;        //!< served without building
        u64 builds = 0;      //!< emulations performed
        u64 evictions = 0;   //!< entries dropped by the LRU budget
        u64 fallbacks = 0;   //!< requests answered "stream instead"
        u64 bytesCached = 0; //!< current resident bytes
        u64 entries = 0;     //!< current entry count
    };
    Stats stats() const;

    /**
     * Emulations performed for @p name (testing hook for the
     * "one build per workload" contract).
     */
    u64 buildCount(const std::string &name) const;

  private:
    struct Entry
    {
        /** Waiters block here while a build is in flight. */
        std::shared_future<std::shared_ptr<const TraceBuffer>> future;
        /** Cached buffer; null while building or after fallback. */
        std::shared_ptr<const TraceBuffer> ready;
        /** True while one thread is emulating this workload. */
        bool building = false;
        /** Fallback already logged for this workload. */
        bool warned = false;
        /** Budget the in-flight build was started with. */
        u64 buildBudget = 0;
        /** Smallest budget known not to fit the byte budget. */
        u64 tooBigBudget = ~u64{0};
        /** LRU clock of the most recent acquire. */
        u64 lastUse = 0;
        /** Resident bytes once built (0 while building). */
        u64 bytes = 0;
    };

    /** True when a ready @p entry can serve @p max_insts. */
    static bool serves(const TraceBuffer &buffer, u64 max_insts);

    /** Evict least-recently-used complete entries over budget. */
    void evictLocked(const std::string &keep);

    mutable std::mutex mutex_;
    u64 byteBudget_;
    u64 clock_ = 0;
    std::map<std::string, Entry> entries_;
    /** Per-workload emulation counts; survives LRU eviction. */
    std::map<std::string, u64> buildCounts_;
    Stats stats_;
};

} // namespace carf::emu

#endif // CARF_EMU_TRACE_CACHE_HH
