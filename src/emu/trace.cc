#include "emu/trace.hh"

// TraceSource is an interface; DynOp is a plain record. This
// translation unit exists to anchor the vtable.

namespace carf::emu
{
} // namespace carf::emu
