/**
 * @file
 * In-memory dynamic trace storage in a compact structure-of-arrays
 * encoding, plus a zero-copy replay cursor.
 *
 * A TraceBuffer captures a workload's dynamic instruction stream once
 * and replays it any number of times; replay never touches the
 * functional emulator. The encoding splits the hot decode fields
 * (pc/opcode/register indices/branch outcome) from the cold 64-bit
 * value fields (operand values, result, effective address), and drops
 * the two derivable DynOp fields entirely:
 *
 *  - seq is the record's position plus the stream's base sequence
 *    number (the emulator numbers ops densely from 0);
 *  - nextPc of record i is pc of record i+1 — the definition of a
 *    program-order trace — so only the final record's nextPc is kept.
 *
 * That packs a 64-byte DynOp into ~41 bytes per record, and the
 * hot fields touched by fetch/decode into ~9 of them. DynOp records
 * are materialized only at the replay cursor.
 */

#ifndef CARF_EMU_TRACE_BUFFER_HH
#define CARF_EMU_TRACE_BUFFER_HH

#include <memory>
#include <vector>

#include "emu/trace.hh"

namespace carf::emu
{

/** One workload's dynamic trace, stored once, replayed many times. */
class TraceBuffer
{
  public:
    /** An empty buffer to fill via append() (see build()). */
    explicit TraceBuffer(std::string name,
                         u64 requested_budget = ~u64{0});

    /**
     * Drain @p source (up to @p max_insts records) into a new buffer.
     *
     * @param source any program-order DynOp stream (emulator, trace
     *        file reader, another cursor)
     * @param name workload name reported by replay cursors
     * @param max_insts the instruction budget the buffer was built
     *        for; recorded so callers can tell a budget-capped buffer
     *        from one that ran to program halt
     */
    static std::unique_ptr<TraceBuffer> build(TraceSource &source,
                                              std::string name,
                                              u64 max_insts);

    /** Append one record; ops must arrive in program order. */
    void append(const DynOp &op);

    const std::string &name() const { return name_; }
    u64 size() const { return pc_.size(); }
    bool empty() const { return pc_.empty(); }

    /** Budget the buffer was built with (see build()). */
    u64 requestedBudget() const { return requestedBudget_; }
    /**
     * True when the source ran dry before the budget: the program
     * halted, so this buffer also serves any larger budget.
     */
    bool sawHalt() const { return size() < requestedBudget_; }

    /** Sequence number of the first record. */
    u64 baseSeq() const { return baseSeq_; }

    /** Reconstruct record @p index into @p out. */
    void materialize(u64 index, DynOp &out) const;

    /** Resident bytes of the encoded trace (capacity, not size). */
    u64 memoryBytes() const;

    /** Per-field byte breakdown, for the trace-dump tool. */
    struct FieldSizes
    {
        u64 pc;       //!< 4 B/record program counters
        u64 decode;   //!< opcode + rd/rs1/rs2 indices
        u64 flags;    //!< bit-packed branch outcomes
        u64 values;   //!< rs1/rs2/rd value words
        u64 effAddr;  //!< effective addresses
        u64 total() const { return pc + decode + flags + values + effAddr; }
    };
    FieldSizes fieldSizes() const;

    /** Pre-size every field array for @p records appends. */
    void reserve(u64 records);

    /** Drop excess vector capacity after a build completes. */
    void shrinkToFit();

    /**
     * Zero-copy replay: a TraceSource view over a buffer. Cheap to
     * construct; many cursors may read one buffer concurrently (the
     * buffer is immutable after build). reset()/skip() let one buffer
     * back both the warm-up and the timed window of a run.
     */
    class Cursor : public TraceSource
    {
      public:
        /**
         * @param buffer replayed buffer; the caller keeps it alive
         * @param max_insts cap on replayed records — a cursor capped
         *        at N yields exactly the stream a fresh emulation with
         *        budget N would (traces are deterministic prefixes)
         */
        explicit Cursor(const TraceBuffer &buffer,
                        u64 max_insts = ~u64{0});

        bool next(DynOp &out) override;
        std::string name() const override { return buffer_->name(); }

        /** Rewind to the first record. */
        void reset() { pos_ = 0; }
        /** Advance past @p n records (clamped to the end). */
        void skip(u64 n);
        u64 position() const { return pos_; }

      private:
        const TraceBuffer *buffer_;
        u64 limit_;
        u64 pos_ = 0;
    };

  private:
    std::string name_;
    u64 requestedBudget_ = 0;
    u64 baseSeq_ = 0;
    /** nextPc of the final record (every other nextPc is derived). */
    u64 lastNextPc_ = 0;

    // Hot fields (one entry per record).
    std::vector<u32> pc_;
    std::vector<u8> op_;
    std::vector<u8> rd_;
    std::vector<u8> rs1_;
    std::vector<u8> rs2_;
    /** Branch outcomes, bit-packed 64 per word. */
    std::vector<u64> taken_;

    // Cold 64-bit value fields.
    std::vector<u64> rs1Value_;
    std::vector<u64> rs2Value_;
    std::vector<u64> rdValue_;
    std::vector<u64> effAddr_;
};

} // namespace carf::emu

#endif // CARF_EMU_TRACE_BUFFER_HH
