/**
 * @file
 * Functional emulator: executes a Program and streams DynOp records.
 *
 * Integer register 0 is hardwired to zero. Floating-point registers
 * hold IEEE-754 doubles, stored as raw 64-bit patterns so the value
 * oracle can inspect their bits uniformly.
 */

#ifndef CARF_EMU_EMULATOR_HH
#define CARF_EMU_EMULATOR_HH

#include <array>
#include <string>

#include "emu/memory_image.hh"
#include "emu/trace.hh"
#include "isa/instruction.hh"

namespace carf::emu
{

/** Architectural state + program-order executor. */
class Emulator : public TraceSource
{
  public:
    /**
     * @param program assembled program (owned; data segments are
     *        preloaded)
     * @param name workload name for reports
     * @param max_insts hard cap on emitted dynamic instructions; the
     *        stream ends at the cap even if the program has not halted
     */
    Emulator(isa::Program program, std::string name,
             u64 max_insts = ~u64{0});

    bool next(DynOp &out) override;
    std::string name() const override { return name_; }

    /** True once HALT executed or the budget is exhausted. */
    bool halted() const { return halted_; }
    u64 executedInsts() const { return executed_; }

    /** Architectural register access (testing / verification). */
    u64 intReg(unsigned idx) const { return intRegs_.at(idx); }
    u64 fpRegBits(unsigned idx) const { return fpRegs_.at(idx); }
    double fpReg(unsigned idx) const;

    MemoryImage &memory() { return memory_; }
    const MemoryImage &memory() const { return memory_; }

  private:
    /** Execute the instruction at pc_, filling @p out. */
    void step(DynOp &out);

    void setIntReg(unsigned idx, u64 value);

    isa::Program program_;
    std::string name_;
    u64 maxInsts_;
    MemoryImage memory_;
    std::array<u64, isa::numArchRegs> intRegs_{};
    std::array<u64, isa::numArchRegs> fpRegs_{};
    u64 pc_ = 0;
    u64 executed_ = 0;
    bool halted_ = false;
};

} // namespace carf::emu

#endif // CARF_EMU_EMULATOR_HH
