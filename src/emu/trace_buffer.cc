#include "emu/trace_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace carf::emu
{

TraceBuffer::TraceBuffer(std::string name, u64 requested_budget)
    : name_(std::move(name)), requestedBudget_(requested_budget)
{
}

std::unique_ptr<TraceBuffer>
TraceBuffer::build(TraceSource &source, std::string name, u64 max_insts)
{
    auto buffer =
        std::make_unique<TraceBuffer>(std::move(name), max_insts);
    // Reserving up front roughly halves build time for multi-million
    // record traces (no geometric-growth copies, and shrinkToFit
    // becomes a no-op when the budget is reached exactly). The cap
    // bounds the transient overcommit for huge budgets on short
    // programs; past it, geometric growth takes over as usual.
    buffer->reserve(std::min(max_insts, u64{1} << 22));
    DynOp op;
    for (u64 i = 0; i < max_insts && source.next(op); ++i)
        buffer->append(op);
    buffer->shrinkToFit();
    return buffer;
}

void
TraceBuffer::append(const DynOp &op)
{
    if (empty()) {
        baseSeq_ = op.seq;
    } else {
        // The derived-field encoding requires a well-formed
        // program-order stream: dense sequence numbers, and each
        // record's pc equal to its predecessor's nextPc.
        u64 expect_seq = baseSeq_ + size();
        if (op.seq != expect_seq)
            panic("TraceBuffer '%s': non-contiguous seq %llu "
                  "(expected %llu)",
                  name_.c_str(), (unsigned long long)op.seq,
                  (unsigned long long)expect_seq);
        if (op.pc != lastNextPc_)
            panic("TraceBuffer '%s': record %llu pc %llu does not "
                  "follow predecessor nextPc %llu",
                  name_.c_str(), (unsigned long long)size(),
                  (unsigned long long)op.pc,
                  (unsigned long long)lastNextPc_);
    }
    if (op.pc > ~u32{0} || op.nextPc > ~u32{0})
        panic("TraceBuffer '%s': pc %llx exceeds the 32-bit encoding",
              name_.c_str(), (unsigned long long)op.pc);

    u64 index = size();
    pc_.push_back(static_cast<u32>(op.pc));
    op_.push_back(static_cast<u8>(op.op));
    rd_.push_back(op.rd);
    rs1_.push_back(op.rs1);
    rs2_.push_back(op.rs2);
    if ((index & 63) == 0)
        taken_.push_back(0);
    if (op.taken)
        taken_[index >> 6] |= u64{1} << (index & 63);
    rs1Value_.push_back(op.rs1Value);
    rs2Value_.push_back(op.rs2Value);
    rdValue_.push_back(op.rdValue);
    effAddr_.push_back(op.effAddr);
    lastNextPc_ = op.nextPc;
}

void
TraceBuffer::materialize(u64 index, DynOp &out) const
{
    out.seq = baseSeq_ + index;
    out.pc = pc_[index];
    out.op = static_cast<isa::Opcode>(op_[index]);
    out.rd = rd_[index];
    out.rs1 = rs1_[index];
    out.rs2 = rs2_[index];
    out.taken = (taken_[index >> 6] >> (index & 63)) & 1;
    out.rs1Value = rs1Value_[index];
    out.rs2Value = rs2Value_[index];
    out.rdValue = rdValue_[index];
    out.effAddr = effAddr_[index];
    out.nextPc = index + 1 < size() ? pc_[index + 1] : lastNextPc_;
}

u64
TraceBuffer::memoryBytes() const
{
    auto bytes = [](const auto &v) {
        return v.capacity() * sizeof(v[0]);
    };
    return bytes(pc_) + bytes(op_) + bytes(rd_) + bytes(rs1_) +
           bytes(rs2_) + bytes(taken_) + bytes(rs1Value_) +
           bytes(rs2Value_) + bytes(rdValue_) + bytes(effAddr_) +
           sizeof(*this) + name_.capacity();
}

TraceBuffer::FieldSizes
TraceBuffer::fieldSizes() const
{
    auto bytes = [](const auto &v) {
        return v.capacity() * sizeof(v[0]);
    };
    FieldSizes sizes;
    sizes.pc = bytes(pc_);
    sizes.decode = bytes(op_) + bytes(rd_) + bytes(rs1_) + bytes(rs2_);
    sizes.flags = bytes(taken_);
    sizes.values =
        bytes(rs1Value_) + bytes(rs2Value_) + bytes(rdValue_);
    sizes.effAddr = bytes(effAddr_);
    return sizes;
}

void
TraceBuffer::reserve(u64 records)
{
    pc_.reserve(records);
    op_.reserve(records);
    rd_.reserve(records);
    rs1_.reserve(records);
    rs2_.reserve(records);
    taken_.reserve((records + 63) / 64);
    rs1Value_.reserve(records);
    rs2Value_.reserve(records);
    rdValue_.reserve(records);
    effAddr_.reserve(records);
}

void
TraceBuffer::shrinkToFit()
{
    pc_.shrink_to_fit();
    op_.shrink_to_fit();
    rd_.shrink_to_fit();
    rs1_.shrink_to_fit();
    rs2_.shrink_to_fit();
    taken_.shrink_to_fit();
    rs1Value_.shrink_to_fit();
    rs2Value_.shrink_to_fit();
    rdValue_.shrink_to_fit();
    effAddr_.shrink_to_fit();
}

TraceBuffer::Cursor::Cursor(const TraceBuffer &buffer, u64 max_insts)
    : buffer_(&buffer), limit_(std::min(buffer.size(), max_insts))
{
}

bool
TraceBuffer::Cursor::next(DynOp &out)
{
    if (pos_ >= limit_)
        return false;
    buffer_->materialize(pos_, out);
    ++pos_;
    return true;
}

void
TraceBuffer::Cursor::skip(u64 n)
{
    // pos_ <= limit_ holds, so the subtraction cannot underflow; the
    // sum pos_ + n could wrap for huge n, hence this form.
    pos_ = n >= limit_ - pos_ ? limit_ : pos_ + n;
}

} // namespace carf::emu
