#include "emu/memory_image.hh"

#include <cstring>

namespace carf::emu
{

MemoryImage::Page &
MemoryImage::page(Addr addr)
{
    u64 key = addr >> pageShift;
    auto it = pages_.find(key);
    if (it == pages_.end()) {
        auto fresh = std::make_unique<Page>();
        fresh->fill(0);
        it = pages_.emplace(key, std::move(fresh)).first;
    }
    return *it->second;
}

const MemoryImage::Page *
MemoryImage::pageIfPresent(Addr addr) const
{
    auto it = pages_.find(addr >> pageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

u8
MemoryImage::readU8(Addr addr) const
{
    const Page *p = pageIfPresent(addr);
    if (!p)
        return 0;
    return (*p)[addr & (pageSize - 1)];
}

void
MemoryImage::writeU8(Addr addr, u8 value)
{
    page(addr)[addr & (pageSize - 1)] = value;
}

u64
MemoryImage::read(Addr addr, unsigned bytes) const
{
    u64 value = 0;
    for (unsigned i = 0; i < bytes; ++i)
        value |= static_cast<u64>(readU8(addr + i)) << (8 * i);
    return value;
}

void
MemoryImage::write(Addr addr, u64 value, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        writeU8(addr + i, static_cast<u8>(value >> (8 * i)));
}

double
MemoryImage::readF64(Addr addr) const
{
    u64 raw = readU64(addr);
    double d;
    std::memcpy(&d, &raw, sizeof(d));
    return d;
}

void
MemoryImage::writeF64(Addr addr, double value)
{
    u64 raw;
    std::memcpy(&raw, &value, sizeof(raw));
    writeU64(addr, raw);
}

void
MemoryImage::load(Addr base, const std::vector<u8> &bytes)
{
    for (size_t i = 0; i < bytes.size(); ++i)
        writeU8(base + i, bytes[i]);
}

} // namespace carf::emu
