/**
 * @file
 * Dynamic instruction records and the streaming trace interface that
 * connects functional execution (or the synthetic generator) to the
 * timing simulator and the value oracle.
 */

#ifndef CARF_EMU_TRACE_HH
#define CARF_EMU_TRACE_HH

#include "isa/opcode.hh"

namespace carf::emu
{

/**
 * One dynamic instruction with its resolved operand and result
 * values. The timing model replays these in program order; values
 * flow through the modelled physical register files so the
 * content-aware classification sees exactly what the machine would.
 */
struct DynOp
{
    InstSeqNum seq = 0;
    /** Static instruction index (word-addressed pc). */
    u64 pc = 0;
    isa::Opcode op = isa::Opcode::NOP;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    /** Resolved source operand values (0 when the operand is unused). */
    u64 rs1Value = 0;
    u64 rs2Value = 0;
    /** Result value, when the op writes a register. */
    u64 rdValue = 0;
    /** Effective address for loads/stores. */
    Addr effAddr = 0;
    /** Conditional-branch outcome; jumps are always taken. */
    bool taken = false;
    /** pc of the next dynamic instruction (the branch target). */
    u64 nextPc = 0;

    const isa::OpInfo &info() const { return isa::opInfo(op); }
    bool isLoad() const { return isa::isLoad(op); }
    bool isStore() const { return isa::isStore(op); }
    bool isBranch() const { return isa::isBranch(op); }
    bool writesIntReg() const
    {
        return isa::writesIntReg(op) && rd != 0;
    }
    bool writesFpReg() const { return isa::writesFpReg(op); }
    bool writesReg() const { return writesIntReg() || writesFpReg(); }
};

/**
 * Pull-based dynamic instruction source. The emulator and the
 * synthetic generator both implement this; the Simulator consumes it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction in program order.
     * @retval false when the stream is exhausted (program halted or
     *         instruction budget reached).
     */
    virtual bool next(DynOp &out) = 0;

    /** Human-readable source name for reports. */
    virtual std::string name() const = 0;
};

} // namespace carf::emu

#endif // CARF_EMU_TRACE_HH
