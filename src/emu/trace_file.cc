#include "emu/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace carf::emu
{

namespace
{

constexpr char kMagic[8] = {'C', 'A', 'R', 'F', 'T', 'R', 'C', '1'};

/** On-disk record layout (host endianness; 64 bytes). */
struct Record
{
    u64 seq;
    u64 pc;
    u64 rs1Value;
    u64 rs2Value;
    u64 rdValue;
    u64 effAddr;
    u64 nextPc;
    u8 op;
    u8 rd;
    u8 rs1;
    u8 rs2;
    u8 taken;
    u8 pad[3];
};
static_assert(sizeof(Record) == 64, "trace record layout changed");

Record
pack(const DynOp &op)
{
    Record r{};
    r.seq = op.seq;
    r.pc = op.pc;
    r.rs1Value = op.rs1Value;
    r.rs2Value = op.rs2Value;
    r.rdValue = op.rdValue;
    r.effAddr = op.effAddr;
    r.nextPc = op.nextPc;
    r.op = static_cast<u8>(op.op);
    r.rd = op.rd;
    r.rs1 = op.rs1;
    r.rs2 = op.rs2;
    r.taken = op.taken ? 1 : 0;
    return r;
}

DynOp
unpack(const Record &r)
{
    DynOp op;
    op.seq = r.seq;
    op.pc = r.pc;
    op.rs1Value = r.rs1Value;
    op.rs2Value = r.rs2Value;
    op.rdValue = r.rdValue;
    op.effAddr = r.effAddr;
    op.nextPc = r.nextPc;
    op.op = static_cast<isa::Opcode>(r.op);
    op.rd = r.rd;
    op.rs1 = r.rs1;
    op.rs2 = r.rs2;
    op.taken = r.taken != 0;
    return op;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        fatal("TraceWriter: cannot open '%s'", path.c_str());
    u64 count_placeholder = 0;
    if (std::fwrite(kMagic, sizeof(kMagic), 1, file_) != 1 ||
        std::fwrite(&count_placeholder, sizeof(count_placeholder), 1,
                    file_) != 1) {
        fatal("TraceWriter: header write failed for '%s'",
              path.c_str());
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const DynOp &op)
{
    if (!file_)
        panic("TraceWriter: append after close");
    Record r = pack(op);
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        fatal("TraceWriter: write failed for '%s'", path_.c_str());
    ++count_;
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // Patch the record count into the header.
    if (std::fseek(file_, sizeof(kMagic), SEEK_SET) != 0 ||
        std::fwrite(&count_, sizeof(count_), 1, file_) != 1) {
        fatal("TraceWriter: header patch failed for '%s'",
              path_.c_str());
    }
    std::fclose(file_);
    file_ = nullptr;
}

u64
TraceWriter::record(TraceSource &source, const std::string &path)
{
    TraceWriter writer(path);
    DynOp op;
    while (source.next(op))
        writer.append(op);
    writer.close();
    return writer.recordCount();
}

u64
TraceWriter::record(const TraceBuffer &buffer, const std::string &path)
{
    TraceBuffer::Cursor cursor(buffer);
    return record(cursor, path);
}

TraceReader::TraceReader(const std::string &path, std::string name,
                         u64 max_insts)
    : name_(name.empty() ? path : std::move(name)),
      file_(std::fopen(path.c_str(), "rb")),
      maxInsts_(max_insts)
{
    if (!file_)
        fatal("TraceReader: cannot open '%s'", path.c_str());
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, file_) != 1 ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        fatal("TraceReader: '%s' is not a CARF trace", path.c_str());
    }
    if (std::fread(&total_, sizeof(total_), 1, file_) != 1)
        fatal("TraceReader: truncated header in '%s'", path.c_str());
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(DynOp &out)
{
    if (read_ >= total_ || read_ >= maxInsts_)
        return false;
    Record r;
    if (std::fread(&r, sizeof(r), 1, file_) != 1)
        fatal("TraceReader: truncated record %llu in '%s'",
              (unsigned long long)read_, name_.c_str());
    out = unpack(r);
    ++read_;
    return true;
}

std::unique_ptr<TraceBuffer>
readTraceBuffer(const std::string &path, std::string name, u64 max_insts)
{
    TraceReader reader(path, std::move(name), max_insts);
    // build() appends record by record, so TraceBuffer::append's
    // seq/nextPc chain checks validate the file against the
    // derived-field encoding as it loads.
    return TraceBuffer::build(reader, reader.name(), max_insts);
}

} // namespace carf::emu
