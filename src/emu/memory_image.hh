/**
 * @file
 * Sparse, page-granular functional memory image.
 *
 * Pages are allocated lazily on first touch and zero-filled, so
 * kernels can use widely separated heap/stack/global regions without
 * cost. This is the *functional* store; timing is modelled separately
 * by the cache hierarchy in src/mem.
 */

#ifndef CARF_EMU_MEMORY_IMAGE_HH
#define CARF_EMU_MEMORY_IMAGE_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace carf::emu
{

/** Lazily allocated paged memory with little-endian scalar access. */
class MemoryImage
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr size_t pageSize = size_t{1} << pageShift;

    u8 readU8(Addr addr) const;
    void writeU8(Addr addr, u8 value);

    /** Little-endian multi-byte access; may straddle page boundaries. */
    u64 read(Addr addr, unsigned bytes) const;
    void write(Addr addr, u64 value, unsigned bytes);

    u64 readU64(Addr addr) const { return read(addr, 8); }
    void writeU64(Addr addr, u64 value) { write(addr, value, 8); }
    double readF64(Addr addr) const;
    void writeF64(Addr addr, double value);

    /** Bulk preload used for program data segments. */
    void load(Addr base, const std::vector<u8> &bytes);

    /** Number of distinct pages touched (allocated). */
    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<u8, pageSize>;

    Page &page(Addr addr);
    const Page *pageIfPresent(Addr addr) const;

    std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

} // namespace carf::emu

#endif // CARF_EMU_MEMORY_IMAGE_HH
