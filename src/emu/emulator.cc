#include "emu/emulator.hh"

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace carf::emu
{

using isa::Opcode;

namespace
{

double
bitsToDouble(u64 raw)
{
    double d;
    std::memcpy(&d, &raw, sizeof(d));
    return d;
}

u64
doubleToBits(double d)
{
    u64 raw;
    std::memcpy(&raw, &d, sizeof(raw));
    return raw;
}

} // namespace

Emulator::Emulator(isa::Program program, std::string name, u64 max_insts)
    : program_(std::move(program)), name_(std::move(name)),
      maxInsts_(max_insts)
{
    for (const auto &seg : program_.dataSegments())
        memory_.load(seg.base, seg.bytes);
}

double
Emulator::fpReg(unsigned idx) const
{
    return bitsToDouble(fpRegs_.at(idx));
}

void
Emulator::setIntReg(unsigned idx, u64 value)
{
    if (idx != 0)
        intRegs_[idx] = value;
}

bool
Emulator::next(DynOp &out)
{
    if (halted_ || executed_ >= maxInsts_) {
        halted_ = true;
        return false;
    }
    if (pc_ >= program_.size()) {
        // Running off the end of the program is a kernel bug.
        panic("emulator '%s': pc %llu past end of program (%zu insts)",
              name_.c_str(), static_cast<unsigned long long>(pc_),
              program_.size());
    }
    step(out);
    ++executed_;
    if (out.op == Opcode::HALT)
        halted_ = true;
    return true;
}

void
Emulator::step(DynOp &out)
{
    const isa::Instruction &inst = program_.at(pc_);
    const isa::OpInfo &info = inst.info();

    out = DynOp{};
    out.seq = executed_;
    out.pc = pc_;
    out.op = inst.op;
    out.rd = inst.rd;
    out.rs1 = inst.rs1;
    out.rs2 = inst.rs2;

    // Resolve sources.
    u64 s1 = 0, s2 = 0;
    if (info.rs1Class == isa::RegClass::Int)
        s1 = intRegs_[inst.rs1];
    else if (info.rs1Class == isa::RegClass::Fp)
        s1 = fpRegs_[inst.rs1];
    if (info.rs2Class == isa::RegClass::Int)
        s2 = intRegs_[inst.rs2];
    else if (info.rs2Class == isa::RegClass::Fp)
        s2 = fpRegs_[inst.rs2];
    out.rs1Value = s1;
    out.rs2Value = s2;

    u64 imm = static_cast<u64>(inst.imm);
    u64 next_pc = pc_ + 1;
    u64 result = 0;
    bool has_result = info.rdClass != isa::RegClass::None;

    switch (inst.op) {
      case Opcode::ADD: result = s1 + s2; break;
      case Opcode::SUB: result = s1 - s2; break;
      case Opcode::AND: result = s1 & s2; break;
      case Opcode::OR: result = s1 | s2; break;
      case Opcode::XOR: result = s1 ^ s2; break;
      case Opcode::SLL: result = s1 << (s2 & 63); break;
      case Opcode::SRL: result = s1 >> (s2 & 63); break;
      case Opcode::SRA:
        result = static_cast<u64>(static_cast<i64>(s1) >> (s2 & 63));
        break;
      case Opcode::SLT:
        result = static_cast<i64>(s1) < static_cast<i64>(s2);
        break;
      case Opcode::SLTU: result = s1 < s2; break;
      case Opcode::MUL: result = s1 * s2; break;
      case Opcode::DIVX:
        result = s2 == 0 ? ~u64{0}
                         : static_cast<u64>(static_cast<i64>(s1) /
                                            static_cast<i64>(s2));
        break;
      case Opcode::REMX:
        result = s2 == 0 ? s1
                         : static_cast<u64>(static_cast<i64>(s1) %
                                            static_cast<i64>(s2));
        break;
      case Opcode::ADDI: result = s1 + imm; break;
      case Opcode::ANDI: result = s1 & imm; break;
      case Opcode::ORI: result = s1 | imm; break;
      case Opcode::XORI: result = s1 ^ imm; break;
      case Opcode::SLLI: result = s1 << (imm & 63); break;
      case Opcode::SRLI: result = s1 >> (imm & 63); break;
      case Opcode::SRAI:
        result = static_cast<u64>(static_cast<i64>(s1) >> (imm & 63));
        break;
      case Opcode::SLTI:
        result = static_cast<i64>(s1) < inst.imm;
        break;
      case Opcode::MOVI: result = imm; break;

      case Opcode::LD:
      case Opcode::LW:
      case Opcode::LB: {
        out.effAddr = s1 + imm;
        u64 raw = memory_.read(out.effAddr, info.memBytes);
        result = info.memBytes == 8
                     ? raw
                     : signExtend(raw, info.memBytes * 8);
        break;
      }
      case Opcode::FLD:
        out.effAddr = s1 + imm;
        result = memory_.read(out.effAddr, 8);
        break;
      case Opcode::ST:
      case Opcode::SW:
      case Opcode::SB:
      case Opcode::FST:
        out.effAddr = s1 + imm;
        memory_.write(out.effAddr, s2, info.memBytes);
        break;

      case Opcode::BEQ: out.taken = s1 == s2; break;
      case Opcode::BNE: out.taken = s1 != s2; break;
      case Opcode::BLT:
        out.taken = static_cast<i64>(s1) < static_cast<i64>(s2);
        break;
      case Opcode::BGE:
        out.taken = static_cast<i64>(s1) >= static_cast<i64>(s2);
        break;
      case Opcode::BLTU: out.taken = s1 < s2; break;
      case Opcode::BGEU: out.taken = s1 >= s2; break;

      case Opcode::JAL:
        out.taken = true;
        result = pc_ + 1;
        next_pc = imm;
        break;
      case Opcode::JALR:
        out.taken = true;
        result = pc_ + 1;
        next_pc = s1 + imm;
        break;

      case Opcode::FADD:
        result = doubleToBits(bitsToDouble(s1) + bitsToDouble(s2));
        break;
      case Opcode::FSUB:
        result = doubleToBits(bitsToDouble(s1) - bitsToDouble(s2));
        break;
      case Opcode::FMUL:
        result = doubleToBits(bitsToDouble(s1) * bitsToDouble(s2));
        break;
      case Opcode::FDIV:
        result = doubleToBits(bitsToDouble(s1) / bitsToDouble(s2));
        break;
      case Opcode::FNEG:
        result = doubleToBits(-bitsToDouble(s1));
        break;
      case Opcode::FCVTIF:
        result = doubleToBits(static_cast<double>(static_cast<i64>(s1)));
        break;
      case Opcode::FCVTFI:
        result = static_cast<u64>(static_cast<i64>(bitsToDouble(s1)));
        break;
      case Opcode::FMOV:
        result = s1;
        break;

      case Opcode::NOP:
      case Opcode::HALT:
        break;

      default:
        panic("emulator: unimplemented opcode %u",
              static_cast<unsigned>(inst.op));
    }

    if (isa::isConditionalBranch(inst.op) && out.taken)
        next_pc = imm;

    if (has_result) {
        if (info.rdClass == isa::RegClass::Int) {
            setIntReg(inst.rd, result);
            out.rdValue = inst.rd == 0 ? 0 : result;
        } else {
            fpRegs_[inst.rd] = result;
            out.rdValue = result;
        }
    }

    out.nextPc = next_pc;
    pc_ = next_pc;
}

} // namespace carf::emu
