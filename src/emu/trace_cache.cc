#include "emu/trace_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace carf::emu
{

namespace
{

/**
 * Conservative encoded-bytes-per-record estimate used to refuse
 * hopeless builds up front (pc 4 + decode 4 + flags ~1/8 + values 32,
 * rounded up). The post-build check uses exact sizes.
 */
constexpr u64 kEstBytesPerRecord = 41;

u64
estimateBytes(u64 max_insts)
{
    if (max_insts > ~u64{0} / kEstBytesPerRecord)
        return ~u64{0};
    return max_insts * kEstBytesPerRecord;
}

} // namespace

TraceCache::TraceCache(u64 byte_budget) : byteBudget_(byte_budget)
{
}

bool
TraceCache::serves(const TraceBuffer &buffer, u64 max_insts)
{
    // A deterministic trace built to budget N is a prefix of any
    // longer run, so a buffer serves every request it is at least as
    // long as — and every request at all once the program halted.
    return buffer.size() >= max_insts || buffer.sawHalt();
}

std::shared_ptr<const TraceBuffer>
TraceCache::acquire(const std::string &name, u64 max_insts,
                    const Builder &builder)
{
    for (;;) {
        std::shared_future<std::shared_ptr<const TraceBuffer>> wait_on;
        std::promise<std::shared_ptr<const TraceBuffer>> promise;
        bool build_here = false;

        {
            std::lock_guard<std::mutex> lock(mutex_);
            Entry &entry = entries_[name];
            entry.lastUse = ++clock_;

            if (entry.ready && serves(*entry.ready, max_insts)) {
                ++stats_.hits;
                return entry.ready;
            }
            if (max_insts >= entry.tooBigBudget) {
                ++stats_.fallbacks;
                return nullptr;
            }
            if (entry.building) {
                // Wait for the in-flight build; re-evaluate after (a
                // smaller build can still serve us if the program
                // halted inside it).
                wait_on = entry.future;
            } else if (estimateBytes(max_insts) > byteBudget_) {
                entry.tooBigBudget =
                    std::min(entry.tooBigBudget, max_insts);
                if (!entry.warned) {
                    entry.warned = true;
                    warn("TraceCache: trace '%s' (%llu insts) cannot "
                         "fit the %llu MiB budget; falling back to "
                         "streaming emulation",
                         name.c_str(),
                         (unsigned long long)max_insts,
                         (unsigned long long)(byteBudget_ >> 20));
                }
                ++stats_.fallbacks;
                return nullptr;
            } else {
                // Become the builder. Any previous (too short) buffer
                // is replaced wholesale.
                if (entry.ready) {
                    stats_.bytesCached -= entry.bytes;
                    entry.ready.reset();
                    entry.bytes = 0;
                }
                entry.future = promise.get_future().share();
                entry.building = true;
                entry.buildBudget = max_insts;
                ++stats_.builds;
                ++buildCounts_[name];
                build_here = true;
            }
        }

        if (build_here) {
            auto source = builder();
            std::shared_ptr<const TraceBuffer> buffer =
                TraceBuffer::build(*source, name, max_insts);
            u64 bytes = buffer->memoryBytes();
            bool too_big = bytes > byteBudget_;

            {
                std::lock_guard<std::mutex> lock(mutex_);
                Entry &entry = entries_[name];
                entry.building = false;
                if (too_big) {
                    entry.tooBigBudget =
                        std::min(entry.tooBigBudget, max_insts);
                    if (!entry.warned) {
                        entry.warned = true;
                        warn("TraceCache: built trace '%s' is %llu "
                             "MiB, over the %llu MiB budget; "
                             "falling back to streaming emulation",
                             name.c_str(),
                             (unsigned long long)(bytes >> 20),
                             (unsigned long long)(byteBudget_ >> 20));
                    }
                    ++stats_.fallbacks;
                } else {
                    entry.ready = buffer;
                    entry.bytes = bytes;
                    stats_.bytesCached += bytes;
                    evictLocked(name);
                }
            }
            promise.set_value(too_big ? nullptr : buffer);
            return too_big ? nullptr : buffer;
        }

        // Waiter path: block on the in-flight build, then loop to
        // re-evaluate (hit, rebuild-bigger, or fallback).
        std::shared_ptr<const TraceBuffer> buffer = wait_on.get();
        if (buffer && serves(*buffer, max_insts)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
            return buffer;
        }
    }
}

void
TraceCache::evictLocked(const std::string &keep)
{
    while (stats_.bytesCached > byteBudget_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep || it->second.building ||
                !it->second.ready) {
                continue;
            }
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        if (victim == entries_.end())
            break; // nothing evictable (all building or pinned)
        stats_.bytesCached -= victim->second.bytes;
        ++stats_.evictions;
        entries_.erase(victim);
    }
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.entries = 0;
    for (const auto &kv : entries_) {
        if (kv.second.ready)
            ++out.entries;
    }
    return out;
}

u64
TraceCache::buildCount(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buildCounts_.find(name);
    return it == buildCounts_.end() ? 0 : it->second;
}

} // namespace carf::emu
