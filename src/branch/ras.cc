#include "branch/ras.hh"

#include <cassert>

namespace carf::branch
{

Ras::Ras(size_t depth) : stack_(depth)
{
    assert(depth >= 1);
}

void
Ras::push(u64 return_pc)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = return_pc;
    if (count_ < stack_.size())
        ++count_;
}

bool
Ras::pop(u64 &return_pc)
{
    if (count_ == 0)
        return false;
    return_pc = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --count_;
    return true;
}

} // namespace carf::branch
