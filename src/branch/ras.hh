/**
 * @file
 * Return address stack used for JALR return prediction.
 */

#ifndef CARF_BRANCH_RAS_HH
#define CARF_BRANCH_RAS_HH

#include <vector>

#include "common/types.hh"

namespace carf::branch
{

/** Circular return address stack. Overflow wraps (oldest lost). */
class Ras
{
  public:
    explicit Ras(size_t depth = 16);

    void push(u64 return_pc);

    /**
     * Pop the predicted return address.
     * @retval false when the stack is empty (no prediction).
     */
    bool pop(u64 &return_pc);

    bool empty() const { return count_ == 0; }
    size_t depth() const { return stack_.size(); }

  private:
    std::vector<u64> stack_;
    size_t top_ = 0;
    size_t count_ = 0;
};

} // namespace carf::branch

#endif // CARF_BRANCH_RAS_HH
