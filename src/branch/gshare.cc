#include "branch/gshare.hh"

#include <cassert>

namespace carf::branch
{

Gshare::Gshare(unsigned history_bits)
    : historyBits_(history_bits),
      pht_(size_t{1} << history_bits, 1) // weakly not-taken
{
    assert(history_bits >= 1 && history_bits <= 24);
}

size_t
Gshare::index(u64 pc) const
{
    u64 m = (u64{1} << historyBits_) - 1;
    return static_cast<size_t>((pc ^ history_) & m);
}

bool
Gshare::predict(u64 pc) const
{
    return pht_[index(pc)] >= 2;
}

void
Gshare::update(u64 pc, bool taken)
{
    u8 &ctr = pht_[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    u64 m = (u64{1} << historyBits_) - 1;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & m;
}

} // namespace carf::branch
