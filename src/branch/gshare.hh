/**
 * @file
 * Gshare conditional branch direction predictor (Table 1: gshare with
 * 14-bit history) with 2-bit saturating counters.
 */

#ifndef CARF_BRANCH_GSHARE_HH
#define CARF_BRANCH_GSHARE_HH

#include <vector>

#include "common/types.hh"

namespace carf::branch
{

/** Global-history XOR-indexed pattern history table. */
class Gshare
{
  public:
    /** @param history_bits global history length; PHT has 2^bits entries */
    explicit Gshare(unsigned history_bits = 14);

    /** Predict the direction of the branch at @p pc. */
    bool predict(u64 pc) const;

    /**
     * Train with the resolved outcome and advance the global history.
     * Call exactly once per dynamic conditional branch, in program
     * order (the timing model trains speculatively at fetch and this
     * simulator never fetches wrong-path instructions).
     */
    void update(u64 pc, bool taken);

    unsigned historyBits() const { return historyBits_; }

  private:
    size_t index(u64 pc) const;

    unsigned historyBits_;
    u64 history_ = 0;
    std::vector<u8> pht_;
};

} // namespace carf::branch

#endif // CARF_BRANCH_GSHARE_HH
