/**
 * @file
 * Branch target buffer: direct-mapped pc -> target cache with tags.
 */

#ifndef CARF_BRANCH_BTB_HH
#define CARF_BRANCH_BTB_HH

#include <vector>

#include "common/types.hh"

namespace carf::branch
{

/** Direct-mapped BTB. A miss means the front end cannot redirect. */
class Btb
{
  public:
    explicit Btb(size_t entries = 2048);

    /**
     * Look up the predicted target for the branch at @p pc.
     * @param target filled with the cached target on a hit
     * @retval true on a tag hit
     */
    bool lookup(u64 pc, u64 &target) const;

    /** Install/refresh the target for @p pc. */
    void update(u64 pc, u64 target);

    size_t entries() const { return entriesMask_ + 1; }

  private:
    struct Entry
    {
        bool valid = false;
        u64 tag = 0;
        u64 target = 0;
    };

    size_t entriesMask_;
    std::vector<Entry> table_;
};

} // namespace carf::branch

#endif // CARF_BRANCH_BTB_HH
