#include "branch/btb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace carf::branch
{

Btb::Btb(size_t entries)
{
    if (!isPowerOf2(entries))
        fatal("BTB entries must be a power of two (got %zu)", entries);
    entriesMask_ = entries - 1;
    table_.resize(entries);
}

bool
Btb::lookup(u64 pc, u64 &target) const
{
    const Entry &e = table_[pc & entriesMask_];
    if (!e.valid || e.tag != pc)
        return false;
    target = e.target;
    return true;
}

void
Btb::update(u64 pc, u64 target)
{
    Entry &e = table_[pc & entriesMask_];
    e.valid = true;
    e.tag = pc;
    e.target = target;
}

} // namespace carf::branch
