/**
 * @file
 * Fundamental scalar type aliases used across the CARF library.
 *
 * The library models a 64-bit machine: architectural and physical
 * register values, memory addresses, and cycle counts are all 64 bits
 * wide. Narrow aliases exist for compact table fields.
 */

#ifndef CARF_COMMON_TYPES_HH
#define CARF_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace carf
{

using std::size_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated machine address. */
using Addr = u64;

/** Simulation cycle count. */
using Cycle = u64;

/** Dynamic instruction sequence number (program order). */
using InstSeqNum = u64;

/** Invalid/unassigned marker for indices stored as 32-bit ints. */
inline constexpr u32 invalidIndex = 0xffffffffu;

} // namespace carf

#endif // CARF_COMMON_TYPES_HH
