#include "common/random.hh"

#include <cassert>

#include "common/logging.hh"

namespace carf
{

namespace
{

u64
splitmix64(u64 &state)
{
    state += 0x9e3779b97f4a7c15ull;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

inline u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

u64
Rng::next()
{
    u64 result = rotl(state_[1] * 5, 7) * 9;
    u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

u64
Rng::nextBounded(u64 bound)
{
    assert(bound > 0);
    // Rejection sampling to remove modulo bias.
    u64 threshold = (~bound + 1) % bound; // = 2^64 mod bound
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

i64
Rng::nextRange(i64 lo, i64 hi)
{
    assert(lo <= hi);
    u64 span = static_cast<u64>(hi) - static_cast<u64>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<i64>(next());
    return lo + static_cast<i64>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

size_t
Rng::pickWeighted(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    if (total <= 0.0)
        panic("pickWeighted: all weights zero");
    double r = nextDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

unsigned
Rng::geometric(double p, unsigned cap)
{
    unsigned n = 0;
    while (n < cap && chance(p))
        ++n;
    return n;
}

Rng
Rng::split()
{
    // One draw advances the parent, so successive splits yield
    // distinct children; the golden-ratio xor decorrelates the child
    // seed from the parent's raw output stream.
    return Rng(next() ^ 0x9e3779b97f4a7c15ull);
}

u64
Rng::nextMagnitudeBiased()
{
    unsigned width = 1 + static_cast<unsigned>(nextBounded(64));
    u64 value = width == 64 ? next() : next() & ((u64{1} << width) - 1);
    // Nudge onto the 2^(width-1) boundary some of the time.
    if (chance(0.25))
        value = (u64{1} << (width - 1)) + (next() & 3) - 2;
    if (chance(0.5))
        value = ~value + 1; // negate: all-ones high bits
    return value;
}

} // namespace carf
