#include "common/config.hh"

#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace carf
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::setU64(const std::string &key, u64 value)
{
    values_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    values_[key] = os.str();
}

void
Config::setBool(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

u64
Config::getU64(const std::string &key, u64 def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    u64 v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config %s: '%s' is not an unsigned integer",
              key.c_str(), it->second.c_str());
    return v;
}

i64
Config::getI64(const std::string &key, i64 def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    i64 v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config %s: '%s' is not an integer",
              key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config %s: '%s' is not a number",
              key.c_str(), it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config %s: '%s' is not a boolean", key.c_str(), s.c_str());
}

bool
Config::parseToken(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(token.substr(0, eq), token.substr(eq + 1));
    return true;
}

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!parseToken(argv[i]))
            fatal("malformed argument '%s' (expected key=value)", argv[i]);
    }
}

std::string
Config::dump() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values_)
        os << k << '=' << v << '\n';
    return os.str();
}

} // namespace carf
