/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by
 * the synthetic workload generator and the property tests.
 *
 * A dedicated generator (instead of <random>) keeps workload streams
 * reproducible across standard library implementations.
 */

#ifndef CARF_COMMON_RANDOM_HH
#define CARF_COMMON_RANDOM_HH

#include <vector>

#include "common/types.hh"

namespace carf
{

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit word. */
    u64 next();

    /** Uniform integer in [0, bound) via rejection sampling. */
    u64 nextBounded(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. */
    i64 nextRange(i64 lo, i64 hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Draw an index according to the (unnormalised) weights; used to
     * sample value/operation classes from calibrated distributions.
     */
    size_t pickWeighted(const std::vector<double> &weights);

    /** Geometric-ish small integer: number of trailing successes. */
    unsigned geometric(double p, unsigned cap);

    /**
     * Derive a statistically independent child generator. Used to give
     * each parallel job (e.g.\ one fuzz seed stream per worker) its own
     * deterministic stream: splitting is a draw on the parent, so the
     * sequence of children depends only on the parent seed.
     */
    Rng split();

    /**
     * A 64-bit value whose bit width is itself uniform in [1, 64]:
     * heavily biased toward small magnitudes and power-of-two
     * boundaries, where sign-extension and field-width bugs live.
     * Occasionally negates the draw to cover the all-ones high halves.
     */
    u64 nextMagnitudeBiased();

  private:
    u64 state_[4];
};

} // namespace carf

#endif // CARF_COMMON_RANDOM_HH
