#include "common/bitutil.hh"

#include <bit>

namespace carf
{

bool
fitsSigned(u64 value, unsigned width)
{
    assert(width >= 1 && width <= 64);
    if (width == 64)
        return true;
    i64 as_signed = static_cast<i64>(value);
    i64 shifted = as_signed >> (width - 1);
    return shifted == 0 || shifted == -1;
}

unsigned
log2Ceil(u64 value)
{
    assert(value >= 1);
    if (value == 1)
        return 0;
    return 64 - std::countl_zero(value - 1);
}

unsigned
popCount(u64 value)
{
    return static_cast<unsigned>(std::popcount(value));
}

} // namespace carf
