/**
 * @file
 * Bit-manipulation helpers used by the value classifier, the
 * content-aware register file, and the energy model.
 */

#ifndef CARF_COMMON_BITUTIL_HH
#define CARF_COMMON_BITUTIL_HH

#include <cassert>

#include "common/types.hh"

namespace carf
{

/**
 * Extract bits [lo, lo+len) of value, right-justified.
 *
 * @param value source word
 * @param lo index of the least significant extracted bit (0..63)
 * @param len number of bits to extract (1..64)
 */
inline u64
bits(u64 value, unsigned lo, unsigned len)
{
    assert(lo < 64 && len >= 1 && len <= 64 && lo + len <= 64);
    u64 shifted = value >> lo;
    if (len == 64)
        return shifted;
    return shifted & ((u64{1} << len) - 1);
}

/** Mask with bits [lo, lo+len) set. */
inline u64
mask(unsigned lo, unsigned len)
{
    assert(lo < 64 && len >= 1 && lo + len <= 64);
    if (len == 64)
        return ~u64{0} << lo;
    return ((u64{1} << len) - 1) << lo;
}

/**
 * Sign-extend the low @p width bits of @p value to a full 64-bit word.
 */
inline u64
signExtend(u64 value, unsigned width)
{
    assert(width >= 1 && width <= 64);
    if (width == 64)
        return value;
    u64 sign_bit = u64{1} << (width - 1);
    u64 low = value & ((u64{1} << width) - 1);
    return (low ^ sign_bit) - sign_bit;
}

/**
 * True when @p value is representable as a sign-extended @p width-bit
 * integer, i.e.\ its high (64-width) bits are all zero or all one and
 * equal to the sign bit of the low field.
 */
bool fitsSigned(u64 value, unsigned width);

/** Ceiling of log2; log2Ceil(1) == 0. */
unsigned log2Ceil(u64 value);

/** True when value is a power of two (and nonzero). */
inline bool
isPowerOf2(u64 value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Number of set bits. */
unsigned popCount(u64 value);

/**
 * High-order field shared by a (64-d)-similarity group: the top 64-d
 * bits of the value. Two values are (64-d)-similar iff these match.
 */
inline u64
similarityTag(u64 value, unsigned d)
{
    assert(d >= 1 && d < 64);
    return value >> d;
}

} // namespace carf

#endif // CARF_COMMON_BITUTIL_HH
