/**
 * @file
 * Lightweight statistics package: named scalar counters, averages,
 * distributions, and a group container that can render itself.
 *
 * Modelled loosely after gem5's stats but kept minimal: every stat is
 * a named member of a StatGroup and is dumped in declaration order.
 */

#ifndef CARF_COMMON_STATS_HH
#define CARF_COMMON_STATS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace carf::stats
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    u64 value() const { return value_; }

  private:
    u64 value_ = 0;
};

/** Running mean of sampled values. */
class Average
{
  public:
    void sample(double v) { sum_ += v; ++count_; }
    /**
     * Record n identical samples of v in one shot. Bit-identical to n
     * sample(v) calls for integer-valued v (double addition of
     * integers below 2^53 is exact, so the running sum matches).
     */
    void sampleN(double v, u64 n) { sum_ += v * static_cast<double>(n); count_ += n; }
    void reset() { sum_ = 0.0; count_ = 0; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    u64 count() const { return count_; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0.0;
    u64 count_ = 0;
};

/** Fixed-bucket histogram over [0, buckets). Out-of-range clamps. */
class Distribution
{
  public:
    explicit Distribution(size_t buckets = 0) : buckets_(buckets, 0) {}

    void resize(size_t buckets) { buckets_.assign(buckets, 0); }
    void sample(size_t bucket, u64 n = 1);
    void reset();

    u64 bucket(size_t i) const { return buckets_.at(i); }
    size_t size() const { return buckets_.size(); }
    u64 total() const;
    /** Fraction of samples in bucket i (0 when empty). */
    double fraction(size_t i) const;

  private:
    std::vector<u64> buckets_;
};

/**
 * Named collection of stats. Members register themselves with a name
 * and are rendered by dump(). Values are also queryable by name, which
 * the tests use to assert on simulator behaviour.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &addCounter(const std::string &name, const std::string &desc);
    Average &addAverage(const std::string &name, const std::string &desc);

    /** Value of a registered counter; fatal if unknown. */
    u64 counterValue(const std::string &name) const;
    /** Mean of a registered average; fatal if unknown. */
    double averageValue(const std::string &name) const;
    bool hasCounter(const std::string &name) const;

    /** Render "name value # desc" lines. */
    std::string dump() const;

    const std::string &name() const { return name_; }

    void resetAll();

  private:
    struct NamedCounter
    {
        std::string name;
        std::string desc;
        Counter counter;
    };
    struct NamedAverage
    {
        std::string name;
        std::string desc;
        Average average;
    };

    std::string name_;
    // Deques-by-index via unique ptr stability: use std::map keyed by
    // insertion order would lose order; store in vectors of pointers.
    std::vector<std::unique_ptr<NamedCounter>> counters_;
    std::vector<std::unique_ptr<NamedAverage>> averages_;
    std::map<std::string, NamedCounter *> counterIndex_;
    std::map<std::string, NamedAverage *> averageIndex_;
};

} // namespace carf::stats

#endif // CARF_COMMON_STATS_HH
