/**
 * @file
 * ASCII/CSV table rendering used by the benchmark harnesses to print
 * the paper's tables and figure series in a uniform format.
 */

#ifndef CARF_COMMON_TABLE_HH
#define CARF_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace carf
{

/**
 * A rectangular table of string cells with a header row. Cells are
 * typically produced via the addRow(...) overloads that format
 * numeric values; render() aligns columns for terminal output and
 * renderCsv() emits machine-readable output.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    void setColumns(std::vector<std::string> headers);
    void addRow(std::vector<std::string> cells);

    /** Format helpers for cell construction. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);
    static std::string intNum(long long v);

    std::string render() const;
    std::string renderCsv() const;

    size_t rowCount() const { return rows_.size(); }
    size_t columnCount() const { return headers_.size(); }
    const std::string &cell(size_t row, size_t col) const;
    const std::string &header(size_t col) const;
    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace carf

#endif // CARF_COMMON_TABLE_HH
