#include "common/hash.hh"

#include <cassert>
#include <cstring>

namespace carf
{

namespace
{

constexpr u32 kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr u32 kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

inline u32
rotr(u32 x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

Sha256::Sha256()
{
    std::memcpy(state_, kInit, sizeof(state_));
}

void
Sha256::processBlock(const u8 *block)
{
    u32 w[64];
    for (unsigned i = 0; i < 16; ++i) {
        w[i] = (u32(block[4 * i]) << 24) | (u32(block[4 * i + 1]) << 16) |
               (u32(block[4 * i + 2]) << 8) | u32(block[4 * i + 3]);
    }
    for (unsigned i = 16; i < 64; ++i) {
        u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                 (w[i - 15] >> 3);
        u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    u32 a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    u32 e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (unsigned i = 0; i < 64; ++i) {
        u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        u32 ch = (e & f) ^ (~e & g);
        u32 temp1 = h + s1 + ch + kRound[i] + w[i];
        u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        u32 maj = (a & b) ^ (a & c) ^ (b & c);
        u32 temp2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::update(const void *data, size_t len)
{
    assert(!finalized_);
    const u8 *bytes = static_cast<const u8 *>(data);
    totalBytes_ += len;
    if (bufferLen_) {
        size_t take = std::min<size_t>(len, 64 - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, bytes, take);
        bufferLen_ += take;
        bytes += take;
        len -= take;
        if (bufferLen_ == 64) {
            processBlock(buffer_);
            bufferLen_ = 0;
        }
    }
    while (len >= 64) {
        processBlock(bytes);
        bytes += 64;
        len -= 64;
    }
    if (len) {
        std::memcpy(buffer_, bytes, len);
        bufferLen_ = len;
    }
}

std::string
Sha256::hexDigest()
{
    assert(!finalized_);
    finalized_ = true;

    u64 bit_len = totalBytes_ * 8;
    u8 pad[72];
    size_t pad_len = (bufferLen_ < 56 ? 56 : 120) - bufferLen_;
    pad[0] = 0x80;
    std::memset(pad + 1, 0, pad_len - 1);
    finalized_ = false; // allow the padding updates below
    update(pad, pad_len);
    u8 len_be[8];
    for (unsigned i = 0; i < 8; ++i)
        len_be[i] = static_cast<u8>(bit_len >> (56 - 8 * i));
    update(len_be, 8);
    finalized_ = true;

    static const char hex[] = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (u32 word : state_) {
        for (int shift = 28; shift >= 0; shift -= 4)
            out += hex[(word >> shift) & 0xf];
    }
    return out;
}

std::string
Sha256::hashHex(std::string_view data)
{
    Sha256 h;
    h.update(data);
    return h.hexDigest();
}

} // namespace carf
