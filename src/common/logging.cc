#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace carf
{

namespace
{

// The experiment engine calls into logging from worker threads:
// verbosity is atomic and message emission is serialized so
// concurrent warn()/inform() lines never interleave mid-line.
std::atomic<int> g_verbosity{1};

std::mutex &
outputMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data());
}

} // namespace

void
setLogVerbosity(int level)
{
    g_verbosity.store(level, std::memory_order_relaxed);
}

int
logVerbosity()
{
    return g_verbosity.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("panic", msg);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("fatal", msg);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (logVerbosity() < 1)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("warn", msg);
}

void
inform(const char *fmt, ...)
{
    if (logVerbosity() < 1)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("info", msg);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace carf
