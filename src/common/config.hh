/**
 * @file
 * Simple typed key/value configuration store with string parsing.
 *
 * Experiment binaries accept "key=value" overrides on the command
 * line; Config centralises parsing and validation so every bench and
 * example shares the same syntax.
 */

#ifndef CARF_COMMON_CONFIG_HH
#define CARF_COMMON_CONFIG_HH

#include <map>
#include <string>

#include "common/types.hh"

namespace carf
{

/** String-backed configuration dictionary with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Set raw value (overwrites). */
    void set(const std::string &key, const std::string &value);
    void setU64(const std::string &key, u64 value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    bool has(const std::string &key) const;

    /** Typed getters with defaults; fatal() on unparsable values. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    u64 getU64(const std::string &key, u64 def) const;
    i64 getI64(const std::string &key, i64 def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse a "key=value" token into the store.
     * @retval false when the token has no '='.
     */
    bool parseToken(const std::string &token);

    /** Parse argv[1..argc) tokens; fatal() on malformed tokens. */
    void parseArgs(int argc, char **argv);

    /** Render "key=value" lines in key order. */
    std::string dump() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace carf

#endif // CARF_COMMON_CONFIG_HH
