/**
 * @file
 * Simulation-relevant code version, exported from CMake.
 *
 * The definition is generated at build time by cmake/fingerprint.cmake:
 * a SHA-256 over the contents of every .cc and .hh file under src/.
 * Result-store keys mix this digest in, so cached results survive
 * doc/bench/test edits but are invalidated by any change that could
 * alter simulator output.
 */

#ifndef CARF_COMMON_FINGERPRINT_HH
#define CARF_COMMON_FINGERPRINT_HH

namespace carf
{

/** 64-char hex SHA-256 of the src/ tree this binary was built from. */
const char *buildFingerprint();

} // namespace carf

#endif // CARF_COMMON_FINGERPRINT_HH
