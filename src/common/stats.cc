#include "common/stats.hh"

#include <memory>
#include <sstream>

#include "common/logging.hh"

namespace carf::stats
{

void
Distribution::sample(size_t bucket, u64 n)
{
    if (buckets_.empty())
        panic("Distribution::sample on unsized distribution");
    if (bucket >= buckets_.size())
        bucket = buckets_.size() - 1;
    buckets_[bucket] += n;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
}

u64
Distribution::total() const
{
    u64 t = 0;
    for (u64 b : buckets_)
        t += b;
    return t;
}

double
Distribution::fraction(size_t i) const
{
    u64 t = total();
    return t ? static_cast<double>(buckets_.at(i)) / t : 0.0;
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    if (counterIndex_.count(name))
        panic("duplicate counter %s.%s", name_.c_str(), name.c_str());
    counters_.push_back(
        std::make_unique<NamedCounter>(NamedCounter{name, desc, {}}));
    counterIndex_[name] = counters_.back().get();
    return counters_.back()->counter;
}

Average &
StatGroup::addAverage(const std::string &name, const std::string &desc)
{
    if (averageIndex_.count(name))
        panic("duplicate average %s.%s", name_.c_str(), name.c_str());
    averages_.push_back(
        std::make_unique<NamedAverage>(NamedAverage{name, desc, {}}));
    averageIndex_[name] = averages_.back().get();
    return averages_.back()->average;
}

u64
StatGroup::counterValue(const std::string &name) const
{
    auto it = counterIndex_.find(name);
    if (it == counterIndex_.end())
        fatal("unknown counter %s.%s", name_.c_str(), name.c_str());
    return it->second->counter.value();
}

double
StatGroup::averageValue(const std::string &name) const
{
    auto it = averageIndex_.find(name);
    if (it == averageIndex_.end())
        fatal("unknown average %s.%s", name_.c_str(), name.c_str());
    return it->second->average.mean();
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counterIndex_.count(name) != 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &c : counters_) {
        os << name_ << '.' << c->name << ' ' << c->counter.value()
           << "  # " << c->desc << '\n';
    }
    for (const auto &a : averages_) {
        os << name_ << '.' << a->name << ' ' << a->average.mean()
           << "  # " << a->desc << '\n';
    }
    return os.str();
}

void
StatGroup::resetAll()
{
    for (auto &c : counters_)
        c->counter.reset();
    for (auto &a : averages_)
        a->average.reset();
}

} // namespace carf::stats
