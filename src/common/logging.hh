/**
 * @file
 * Minimal gem5-style logging: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn() and
 * inform() for status output.
 */

#ifndef CARF_COMMON_LOGGING_HH
#define CARF_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace carf
{

/** Verbosity of inform()/warn() output; 0 silences both. */
void setLogVerbosity(int level);
int logVerbosity();

/** Abort with a formatted message: an internal simulator bug. */
[[noreturn]] void panic(const char *fmt, ...);

/** Exit(1) with a formatted message: a user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Non-fatal suspicious condition. */
void warn(const char *fmt, ...);

/** Status message. */
void inform(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...);

} // namespace carf

#endif // CARF_COMMON_LOGGING_HH
