/**
 * @file
 * Stable content hashing (SHA-256) for the result store.
 *
 * Cached simulation results are addressed by the hash of their inputs
 * (canonicalized configuration + workload identity + build
 * fingerprint), so the digest must be stable across platforms,
 * compilers, and process runs — std::hash guarantees none of that.
 * This is a plain FIPS 180-4 SHA-256; speed is irrelevant here (one
 * digest per simulation job, over ~1 KB of canonical text).
 */

#ifndef CARF_COMMON_HASH_HH
#define CARF_COMMON_HASH_HH

#include <cstddef>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace carf
{

/** Incremental SHA-256; one-shot via Sha256::hashHex(). */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. Must not be called after hexDigest(). */
    void update(const void *data, size_t len);
    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the 64-char lowercase hex digest. */
    std::string hexDigest();

    /** One-shot digest of @p data. */
    static std::string hashHex(std::string_view data);

  private:
    void processBlock(const u8 *block);

    u32 state_[8];
    u64 totalBytes_ = 0;
    u8 buffer_[64];
    size_t bufferLen_ = 0;
    bool finalized_ = false;
};

} // namespace carf

#endif // CARF_COMMON_HASH_HH
