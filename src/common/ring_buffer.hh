/**
 * @file
 * Fixed-capacity circular FIFO used on the simulator's hot data paths
 * (fetch buffer, reorder buffer). Storage is allocated once at
 * construction, so steady-state push/pop never touches the allocator —
 * unlike std::deque, whose chunk management shows up in the cycle
 * loop's profile.
 *
 * References to elements stay valid from push until the element is
 * popped (slots are reused in place, never moved), which lets the
 * pipeline keep raw pointers to in-flight instructions.
 */

#ifndef CARF_COMMON_RING_BUFFER_HH
#define CARF_COMMON_RING_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <vector>

namespace carf
{

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(size_t capacity) : slots_(capacity)
    {
        assert(capacity > 0);
    }

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ >= slots_.size(); }
    size_t size() const { return count_; }
    size_t capacity() const { return slots_.size(); }

    T &front()
    {
        assert(count_ > 0);
        return slots_[head_];
    }
    const T &front() const
    {
        assert(count_ > 0);
        return slots_[head_];
    }

    /** Append a default-reset element and return it for filling in. */
    T &
    pushBack()
    {
        assert(!full());
        T &slot = slots_[wrap(head_ + count_)];
        slot = T{};
        ++count_;
        return slot;
    }

    void
    pushBack(const T &value)
    {
        assert(!full());
        slots_[wrap(head_ + count_)] = value;
        ++count_;
    }

    void
    popFront()
    {
        assert(count_ > 0);
        head_ = wrap(head_ + 1);
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Oldest-to-newest forward iteration (FIFO order). */
    template <typename Ring, typename Value>
    class Iter
    {
      public:
        Iter(Ring *ring, size_t index) : ring_(ring), index_(index) {}

        Value &operator*() const
        {
            return ring_->slots_[ring_->wrap(ring_->head_ + index_)];
        }
        Value *operator->() const { return &**this; }
        Iter &
        operator++()
        {
            ++index_;
            return *this;
        }
        bool operator==(const Iter &o) const { return index_ == o.index_; }
        bool operator!=(const Iter &o) const { return index_ != o.index_; }

      private:
        Ring *ring_;
        size_t index_;
    };

    using iterator = Iter<RingBuffer, T>;
    using const_iterator = Iter<const RingBuffer, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count_}; }

  private:
    size_t
    wrap(size_t index) const
    {
        // Capacity is a runtime parameter (ROB sizes are swept by the
        // ablation harnesses), so no power-of-two masking.
        return index < slots_.size() ? index : index - slots_.size();
    }

    std::vector<T> slots_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace carf

#endif // CARF_COMMON_RING_BUFFER_HH
