#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace carf
{

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setColumns(std::vector<std::string> headers)
{
    headers_ = std::move(headers);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table '%s': row with %zu cells, expected %zu",
              title_.c_str(), cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
Table::intNum(long long v)
{
    return std::to_string(v);
}

const std::string &
Table::cell(size_t row, size_t col) const
{
    return rows_.at(row).at(col);
}

const std::string &
Table::header(size_t col) const
{
    return headers_.at(col);
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

} // namespace carf
