/**
 * @file
 * Derived energy/area/time reports for the paper's configurations:
 * geometry builders for the content-aware sub-files and the combined
 * per-run energy accounting that multiplies per-access energies by
 * the simulator's access counts (paper §5).
 */

#ifndef CARF_ENERGY_REPORT_HH
#define CARF_ENERGY_REPORT_HH

#include "energy/rixner.hh"
#include "regfile/content_aware.hh"
#include "regfile/regfile.hh"

namespace carf::energy
{

/** Geometries of the three content-aware sub-files. */
struct CaGeometry
{
    RegFileGeometry simple;
    RegFileGeometry shortFile;
    RegFileGeometry longFile;
};

/**
 * Build sub-file geometries from the content-aware parameters.
 *
 * @param phys_regs number of physical tags (Simple file entries)
 * @param params similarity / sizing parameters
 * @param read_ports core read ports (baseline: 8)
 * @param write_ports core write ports (baseline: 6)
 *
 * The Short file gets one extra read port per write port (the WR1
 * comparison probes, §3.2) and two write ports (the load/store
 * address allocation path).
 */
CaGeometry caGeometry(unsigned phys_regs,
                      const regfile::ContentAwareParams &params,
                      unsigned read_ports = 8, unsigned write_ports = 6);

/** Total area of the three sub-files. */
double caTotalArea(const RixnerModel &model, const CaGeometry &g);

/** Slowest sub-file access time (sets the register read stage). */
double caMaxAccessTime(const RixnerModel &model, const CaGeometry &g);

/**
 * Total register file energy of a run on a conventional file:
 * reads x readEnergy + writes x writeEnergy.
 */
double conventionalEnergy(const RixnerModel &model,
                          const RegFileGeometry &g,
                          const regfile::AccessCounts &counts);

// --- model-hook evaluation (any registered backend) ---
//
// These evaluate a RegFileModel's banks()/energyTerms() hooks against
// the Rixner model, so callers need no knowledge of the backend's
// internal organization. For the built-in backends the results are
// bit-identical to the legacy helpers above: banks() mirrors
// caGeometry()/the flat geometry, terms are summed in the same order,
// and each term is the same count-times-energy product.

/** Rixner geometry of one model bank. */
RegFileGeometry bankGeometry(const regfile::BankGeometry &bank);

/** Total area of a model's banks (ordered sum). */
double modelArea(const RixnerModel &model,
                 const std::vector<regfile::BankGeometry> &banks);

/** Slowest bank access time (sets the register read stage). */
double modelMaxAccessTime(const RixnerModel &model,
                          const std::vector<regfile::BankGeometry> &banks);

/** Total energy of a run: the model's ordered energy terms. */
double modelEnergy(const RixnerModel &model,
                   const std::vector<regfile::EnergyTerm> &terms);

/**
 * Total register file energy of a run on the content-aware file.
 * Every read/write touches the Simple file; short/long-typed
 * accesses additionally touch their sub-file; WR1 classification
 * probes are charged as Short file reads; Short allocations as Short
 * file writes.
 *
 * @param short_writes Short-file allocation writes (address path)
 */
double contentAwareEnergy(const RixnerModel &model, const CaGeometry &g,
                          const regfile::AccessCounts &counts,
                          u64 short_writes);

} // namespace carf::energy

#endif // CARF_ENERGY_REPORT_HH
