#include "energy/rixner.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace carf::energy
{

RixnerModel::RixnerModel(const TechParams &tech) : tech_(tech)
{
}

double
RixnerModel::cellWidthTracks(const RegFileGeometry &g) const
{
    return tech_.cellBaseTracks + tech_.trackPerPort * g.totalPorts();
}

double
RixnerModel::cellHeightTracks(const RegFileGeometry &g) const
{
    return tech_.cellBaseTracks + tech_.trackPerPort * g.totalPorts();
}

double
RixnerModel::area(const RegFileGeometry &g) const
{
    if (g.entries == 0 || g.widthBits == 0)
        fatal("RixnerModel::area: empty geometry");
    double cell = cellWidthTracks(g) * cellHeightTracks(g) *
                  tech_.areaPerTrackSq;
    double array = cell * g.entries * g.widthBits;
    return array * (1.0 + tech_.peripheryOverhead) +
           tech_.fixedAreaOverhead;
}

double
RixnerModel::readEnergy(const RegFileGeometry &g) const
{
    double log_r = g.entries > 1 ? log2Ceil(g.entries) : 1.0;
    double e_decode = tech_.decodeEnergyPerBit * log_r;
    double e_wordline =
        tech_.wordlineEnergyPerCell * g.widthBits * cellWidthTracks(g);
    // Bitline term grows as W^1.5: wider arrays drive longer
    // wordlines whose RC forces larger drivers and overlapping
    // precharge, a superlinearity the Rixner model's wire equations
    // exhibit; the exponent is part of the calibration.
    double e_bitline = tech_.bitlineEnergyCoeff *
                       std::pow(static_cast<double>(g.widthBits), 1.5) *
                       g.entries * cellHeightTracks(g);
    double e_sense = tech_.senseEnergyPerBit * g.widthBits;
    return e_decode + e_wordline + e_bitline + e_sense;
}

double
RixnerModel::writeEnergy(const RegFileGeometry &g) const
{
    return readEnergy(g) * tech_.writeFactor;
}

double
RixnerModel::accessTime(const RegFileGeometry &g) const
{
    double log_r = g.entries > 1 ? log2Ceil(g.entries) : 1.0;
    double t_decode = tech_.decodeDelayPerBit * log_r;
    // Repeatered wires: flight time grows as sqrt(length).
    double t_wordline = tech_.wordlineDelayCoeff *
        std::sqrt(g.widthBits * cellWidthTracks(g));
    double t_bitline = tech_.bitlineDelayCoeff *
        std::sqrt(g.entries * cellHeightTracks(g));
    return t_decode + t_wordline + t_bitline + tech_.senseDelay;
}

RegFileGeometry
unlimitedGeometry()
{
    // ROB(128) + 32 architectural = 160 registers, 2x8 read, 8 write.
    return {160, 64, 16, 8};
}

RegFileGeometry
baselineGeometry()
{
    // §4: 112 physical registers, 8 read / 6 write ports.
    return {112, 64, 8, 6};
}

} // namespace carf::energy
