#include "energy/report.hh"

#include <algorithm>

namespace carf::energy
{

CaGeometry
caGeometry(unsigned phys_regs, const regfile::ContentAwareParams &params,
           unsigned read_ports, unsigned write_ports)
{
    const regfile::SimilarityParams &sim = params.sim;
    CaGeometry g;
    // Simple: RD field (2 bits) + d+n-bit value field, one entry per
    // physical tag.
    g.simple = {phys_regs, sim.simpleFieldBits() + 2, read_ports,
                write_ports};
    // Short: M entries of the high 64-d-n bits; extra read ports for
    // the WR1 compares (one per core write port), two write ports for
    // the address-allocation path.
    g.shortFile = {sim.shortEntries(), sim.shortEntryBits(),
                   read_ports + write_ports, 2};
    // Long: K entries of 64-d-n+m bits.
    g.longFile = {params.longEntries, params.longEntryBits(), read_ports,
                  write_ports};
    return g;
}

double
caTotalArea(const RixnerModel &model, const CaGeometry &g)
{
    return model.area(g.simple) + model.area(g.shortFile) +
           model.area(g.longFile);
}

double
caMaxAccessTime(const RixnerModel &model, const CaGeometry &g)
{
    return std::max({model.accessTime(g.simple),
                     model.accessTime(g.shortFile),
                     model.accessTime(g.longFile)});
}

RegFileGeometry
bankGeometry(const regfile::BankGeometry &bank)
{
    return {bank.entries, bank.widthBits, bank.readPorts,
            bank.writePorts};
}

double
modelArea(const RixnerModel &model,
          const std::vector<regfile::BankGeometry> &banks)
{
    double area = 0.0;
    for (const regfile::BankGeometry &bank : banks)
        area += model.area(bankGeometry(bank));
    return area;
}

double
modelMaxAccessTime(const RixnerModel &model,
                   const std::vector<regfile::BankGeometry> &banks)
{
    double worst = 0.0;
    for (const regfile::BankGeometry &bank : banks)
        worst = std::max(worst, model.accessTime(bankGeometry(bank)));
    return worst;
}

double
modelEnergy(const RixnerModel &model,
            const std::vector<regfile::EnergyTerm> &terms)
{
    double energy = 0.0;
    for (const regfile::EnergyTerm &t : terms) {
        RegFileGeometry g = bankGeometry(t.bank);
        energy += t.accesses *
                  (t.isWrite ? model.writeEnergy(g) : model.readEnergy(g));
    }
    return energy;
}

double
conventionalEnergy(const RixnerModel &model, const RegFileGeometry &g,
                   const regfile::AccessCounts &counts)
{
    return counts.totalReads() * model.readEnergy(g) +
           counts.totalWrites() * model.writeEnergy(g);
}

double
contentAwareEnergy(const RixnerModel &model, const CaGeometry &g,
                   const regfile::AccessCounts &counts, u64 short_writes)
{
    using regfile::ValueType;
    auto idx = [](ValueType t) { return static_cast<unsigned>(t); };

    double energy = 0.0;
    // Every architectural read first reads the Simple entry (RF1).
    energy += counts.totalReads() * model.readEnergy(g.simple);
    // RF2 touches the typed sub-file for short/long values.
    energy += counts.reads[idx(ValueType::Short)] *
              model.readEnergy(g.shortFile);
    energy += counts.reads[idx(ValueType::Long)] *
              model.readEnergy(g.longFile);
    // Every writeback writes the Simple entry (RD + value field).
    energy += counts.totalWrites() * model.writeEnergy(g.simple);
    // Long-typed writebacks write the Long file.
    energy += counts.writes[idx(ValueType::Long)] *
              model.writeEnergy(g.longFile);
    // WR1 classification probes read the Short file.
    energy += counts.shortProbeReads * model.readEnergy(g.shortFile);
    // Address-path allocations write the Short file.
    energy += short_writes * model.writeEnergy(g.shortFile);
    return energy;
}

} // namespace carf::energy
