/**
 * @file
 * Analytic multi-ported register file area/delay/energy model in the
 * style of Rixner et al., "Register Organization for Media
 * Processing" (HPCA 2000), which the paper uses for its §5 results.
 *
 * The model captures the first-order physics of a multi-ported SRAM
 * array:
 *  - each port adds a wordline (horizontal track) and a bitline pair
 *    (vertical tracks) to every cell, so cell width and height grow
 *    linearly with the port count P, and cell area grows as ~P^2;
 *  - a read drives one wordline (length ∝ W·cellWidth) and W bitline
 *    pairs (length ∝ R·cellHeight);
 *  - the decoder contributes ∝ log2(R) delay and energy.
 *
 * Constants are calibrated (see TechParams) so the paper's baseline
 * file (112 x 64b, 8R/6W) lands at its reported 48.8% per-access
 * energy relative to the unlimited file (160 x 64b, 16R/8W). All
 * paper results are relative, so only ratios matter; nominal units
 * are arbitrary-but-consistent (fJ / um^2 / ps scale).
 */

#ifndef CARF_ENERGY_RIXNER_HH
#define CARF_ENERGY_RIXNER_HH

#include "common/types.hh"

namespace carf::energy
{

/** Geometry of one register sub-file. */
struct RegFileGeometry
{
    unsigned entries = 0;
    unsigned widthBits = 0;
    unsigned readPorts = 0;
    unsigned writePorts = 0;

    unsigned totalPorts() const { return readPorts + writePorts; }
};

/** Technology/calibration constants of the analytic model. */
struct TechParams
{
    /** Cell width/height base in port-pitch units (tracks occupied by
     *  the storage cell itself, before per-port wiring). Calibrated so
     *  the baseline/unlimited per-access energy ratio is ~0.488. */
    double cellBaseTracks = 7.0;
    /** Track pitch contribution per port (width and height). */
    double trackPerPort = 1.0;

    /** Energy coefficients (arbitrary fJ-scale units). */
    double decodeEnergyPerBit = 6.0;    //!< × log2(entries)
    double wordlineEnergyPerCell = 0.05; //!< × width × cellWidth
    double bitlineEnergyCoeff = 0.0025; //!< × width^1.5 × entries × cellH
    double senseEnergyPerBit = 1.2;     //!< × width
    /** Write drivers swing full rail: relative cost vs read bitline. */
    double writeFactor = 1.1;

    /** Delay coefficients (arbitrary ps-scale units). */
    double decodeDelayPerBit = 9.0;    //!< × log2(entries)
    double wordlineDelayCoeff = 6.0;   //!< × sqrt(width × cellWidth)
    double bitlineDelayCoeff = 6.0;    //!< × sqrt(entries × cellHeight)
    double senseDelay = 30.0;          //!< constant

    /** Area coefficients (arbitrary um^2-scale units per track^2). */
    double areaPerTrackSq = 1.0;
    /** Decoder/periphery overhead fraction of the cell array. */
    double peripheryOverhead = 0.10;
    /** Per-file decoder/control block area (favors fewer files). */
    double fixedAreaOverhead = 120000.0;
};

/** Analytic area / per-access energy / access time evaluator. */
class RixnerModel
{
  public:
    explicit RixnerModel(const TechParams &tech = {});

    /** Cell array + periphery area. */
    double area(const RegFileGeometry &g) const;
    /** Energy of one read access through one read port. */
    double readEnergy(const RegFileGeometry &g) const;
    /** Energy of one write access through one write port. */
    double writeEnergy(const RegFileGeometry &g) const;
    /** Decoder + wordline + bitline + sense critical path. */
    double accessTime(const RegFileGeometry &g) const;

    const TechParams &tech() const { return tech_; }

    /** Cell dimensions in tracks (exposed for tests). */
    double cellWidthTracks(const RegFileGeometry &g) const;
    double cellHeightTracks(const RegFileGeometry &g) const;

  private:
    TechParams tech_;
};

/** The paper's reference files (§4): unlimited and baseline. */
RegFileGeometry unlimitedGeometry();
RegFileGeometry baselineGeometry();

} // namespace carf::energy

#endif // CARF_ENERGY_RIXNER_HH
