/**
 * @file
 * Integer kernel programs (the SPECint2000 stand-in suite).
 *
 * Every kernel runs an unbounded outer loop — the trace cap set by
 * the caller bounds simulation, mirroring the paper's fixed
 * instruction windows. Data regions live at distinct high heap bases
 * so address values are non-simple and cluster into (64-d)-similar
 * groups, exactly the behaviour §3.2 exploits for the Short file.
 */

#ifndef CARF_WORKLOADS_INT_KERNELS_HH
#define CARF_WORKLOADS_INT_KERNELS_HH

#include "isa/instruction.hh"

namespace carf::workloads
{

/** Random-cycle linked-list traversal (mcf-like memory behaviour). */
isa::Program buildPointerChase(unsigned nodes = 1 << 14);

/** Open-addressing hash table updates with xorshift keys (long
 *  values) over a large table region. */
isa::Program buildHashTable(unsigned log2_slots = 16);

/** Repeated bubble-sort passes over a pseudo-random i64 array
 *  (compare/branch/swap heavy, gcc-like control). */
isa::Program buildSortPasses(unsigned elems = 2048);

/** Byte-wise string compare + copy loops over two buffers. */
isa::Program buildStringOps(unsigned bytes = 1 << 16);

/** CSR graph out-edge sweep (sparse, indirect loads). */
isa::Program buildGraphWalk(unsigned vertices = 4096,
                            unsigned avg_degree = 8);

/** Run-length encoding of a runs-filled byte buffer (branchy). */
isa::Program buildRle(unsigned bytes = 1 << 16);

/** Integer matrix-vector product (mul-heavy, regular addresses). */
isa::Program buildMatVecInt(unsigned dim = 192);

/** Table-free CRC-style bit mixing over a buffer (long values). */
isa::Program buildCrc(unsigned bytes = 1 << 16);

/** Nested counter loops over a low-address array (simple values). */
isa::Program buildCounters(unsigned elems = 256);

/** Binary search tree lookups (pointer chasing with compares,
 *  twolf/vortex-like). */
isa::Program buildBstSearch(unsigned nodes = 1 << 13);

/** Table-driven DFA over a byte stream (parser/gcc-like control). */
isa::Program buildDfaScan(unsigned bytes = 1 << 16,
                          unsigned states = 16);

/** Variable-width bit packing of small symbols (compression-like
 *  shift/mask work). */
isa::Program buildBitPack(unsigned symbols = 1 << 14);

} // namespace carf::workloads

#endif // CARF_WORKLOADS_INT_KERNELS_HH
