/**
 * @file
 * Synthetic workload: a randomly generated program whose dynamic
 * value mix is calibrated against the paper's Figure 1/2
 * distributions (value classes, operation mix, branch behaviour).
 *
 * Useful as an extra suite member and for stress-testing the
 * content-aware mechanisms with controllable knobs.
 */

#ifndef CARF_WORKLOADS_SYNTHETIC_HH
#define CARF_WORKLOADS_SYNTHETIC_HH

#include "isa/instruction.hh"

namespace carf::workloads
{

/** Knobs of the synthetic program generator. */
struct SyntheticParams
{
    u64 seed = 0x5eed;
    /** Static body length in instructions (one big loop). */
    unsigned bodyLength = 400;
    /** Probability a generated op is a load. */
    double loadFraction = 0.22;
    /** Probability a generated op is a store. */
    double storeFraction = 0.12;
    /** Probability a generated op is a conditional branch. */
    double branchFraction = 0.12;
    /** Probability an ALU op continues a long-value (hash) chain. */
    double longChainFraction = 0.15;
    /** Number of distinct memory regions (short value groups). */
    unsigned regions = 4;
    /** Bytes per region (power of two). */
    unsigned regionBytes = 1 << 16;
};

/** Build the synthetic program. */
isa::Program buildSynthetic(const SyntheticParams &params = {});

} // namespace carf::workloads

#endif // CARF_WORKLOADS_SYNTHETIC_HH
