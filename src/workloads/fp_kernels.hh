/**
 * @file
 * Floating-point kernel programs (the SPECfp2000 stand-in suite).
 *
 * FP kernels exercise the *integer* register file through address
 * arithmetic and loop control, which is exactly how the paper's
 * numerical codes stress the proposed organization; the FP payloads
 * live in the (unmodified) FP register file.
 */

#ifndef CARF_WORKLOADS_FP_KERNELS_HH
#define CARF_WORKLOADS_FP_KERNELS_HH

#include "isa/instruction.hh"

namespace carf::workloads
{

/** Streaming y[i] += a * x[i] over large arrays. */
isa::Program buildDaxpy(unsigned elems = 1 << 15);

/** 1D three-point stencil with buffer ping-pong. */
isa::Program buildStencil(unsigned elems = 1 << 14);

/** Dense matrix-matrix product (naive ijk). */
isa::Program buildMatMul(unsigned dim = 48);

/** Dot products with unrolled dual accumulators. */
isa::Program buildDotReduce(unsigned elems = 1 << 15);

/** Monte-Carlo pi estimation: xorshift draws, FP compare, branch. */
isa::Program buildMonteCarlo();

/** Jacobi relaxation sweeps over a 2D grid. */
isa::Program buildJacobi(unsigned dim = 64);

/** Radix-2 FFT-style butterfly passes with preloaded twiddles. */
isa::Program buildFftButterfly(unsigned log2_n = 10);

/** All-pairs N-body force accumulation (softened inverse square). */
isa::Program buildNbody(unsigned bodies = 96);

} // namespace carf::workloads

#endif // CARF_WORKLOADS_FP_KERNELS_HH
