#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/fp_kernels.hh"
#include "workloads/int_kernels.hh"
#include "workloads/stall_kernels.hh"
#include "workloads/synthetic.hh"

namespace carf::workloads
{

const char *
suiteName(Suite suite)
{
    switch (suite) {
    case Suite::Int:
        return "int";
    case Suite::Fp:
        return "fp";
    case Suite::Stall:
        return "stall";
    }
    return "?";
}

std::unique_ptr<emu::TraceSource>
makeTrace(const Workload &workload, u64 max_insts)
{
    return std::make_unique<emu::Emulator>(workload.build(),
                                           workload.name, max_insts);
}

const std::vector<Workload> &
intSuite()
{
    static const std::vector<Workload> suite = {
        {"pointer_chase", Suite::Int, [] { return buildPointerChase(); }},
        {"hash_table", Suite::Int, [] { return buildHashTable(); }},
        {"sort_passes", Suite::Int, [] { return buildSortPasses(); }},
        {"string_ops", Suite::Int, [] { return buildStringOps(); }},
        {"graph_walk", Suite::Int, [] { return buildGraphWalk(); }},
        {"rle", Suite::Int, [] { return buildRle(); }},
        {"matvec_int", Suite::Int, [] { return buildMatVecInt(); }},
        {"crc", Suite::Int, [] { return buildCrc(); }},
        {"counters", Suite::Int, [] { return buildCounters(); }},
        {"bst_search", Suite::Int, [] { return buildBstSearch(); }},
        {"dfa_scan", Suite::Int, [] { return buildDfaScan(); }},
        {"bit_pack", Suite::Int, [] { return buildBitPack(); }},
        {"synthetic_int", Suite::Int, [] { return buildSynthetic(); }},
    };
    return suite;
}

const std::vector<Workload> &
fpSuite()
{
    static const std::vector<Workload> suite = {
        {"daxpy", Suite::Fp, [] { return buildDaxpy(); }},
        {"stencil", Suite::Fp, [] { return buildStencil(); }},
        {"matmul", Suite::Fp, [] { return buildMatMul(); }},
        {"dot_reduce", Suite::Fp, [] { return buildDotReduce(); }},
        {"monte_carlo", Suite::Fp, [] { return buildMonteCarlo(); }},
        {"jacobi", Suite::Fp, [] { return buildJacobi(); }},
        {"fft_butterfly", Suite::Fp, [] { return buildFftButterfly(); }},
        {"nbody", Suite::Fp, [] { return buildNbody(); }},
    };
    return suite;
}

const std::vector<Workload> &
stallSuite()
{
    static const std::vector<Workload> suite = {
        {"mem_chase", Suite::Stall, [] { return buildMemChase(); }},
        {"stream_wall", Suite::Stall, [] { return buildStreamWall(); }},
        {"fetch_wall", Suite::Stall, [] { return buildFetchWall(); }},
    };
    return suite;
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = [] {
        std::vector<Workload> v = intSuite();
        const auto &fp = fpSuite();
        const auto &stall = stallSuite();
        v.insert(v.end(), fp.begin(), fp.end());
        v.insert(v.end(), stall.begin(), stall.end());
        return v;
    }();
    return all;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
    __builtin_unreachable();
}

} // namespace carf::workloads
