/**
 * @file
 * Workload registry: the SPEC2000 stand-in suites.
 *
 * Each workload is a kernel program written in the CARF ISA whose
 * dynamic value stream exercises one of the value-behaviour classes
 * the paper identifies: address computation over separated heap
 * regions (short values), small counters and flags (simple values),
 * and hash/CRC payloads (long values). See DESIGN.md §2 for the
 * substitution rationale.
 */

#ifndef CARF_WORKLOADS_WORKLOAD_HH
#define CARF_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "emu/emulator.hh"
#include "isa/instruction.hh"

namespace carf::workloads
{

/** Which averaged suite (paper: SPECint vs SPECfp) a kernel joins.
 *  Stall collects the latency-bound kernels used to exercise the
 *  idle-cycle skip; it never enters the paper-claims averages. */
enum class Suite
{
    Int,
    Fp,
    Stall,
};

/** Lower-case display name for @p suite ("int", "fp", "stall"). */
const char *suiteName(Suite suite);

/** A named kernel with a program factory. */
struct Workload
{
    std::string name;
    Suite suite;
    std::function<isa::Program()> build;
};

/**
 * Instantiate a streaming dynamic trace for @p workload, capped at
 * @p max_insts dynamic instructions.
 */
std::unique_ptr<emu::TraceSource> makeTrace(const Workload &workload,
                                            u64 max_insts);

/** The integer suite (the paper's SPECint2000 stand-in). */
const std::vector<Workload> &intSuite();
/** The floating-point suite (the paper's SPECfp2000 stand-in). */
const std::vector<Workload> &fpSuite();
/** The stall-heavy suite (fast-path benchmarking; see
 *  stall_kernels.hh). */
const std::vector<Workload> &stallSuite();
/** Every registered workload (int, fp, and stall suites). */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; fatal() when unknown. */
const Workload &findWorkload(const std::string &name);

} // namespace carf::workloads

#endif // CARF_WORKLOADS_WORKLOAD_HH
