/**
 * @file
 * Workload registry: the SPEC2000 stand-in suites.
 *
 * Each workload is a kernel program written in the CARF ISA whose
 * dynamic value stream exercises one of the value-behaviour classes
 * the paper identifies: address computation over separated heap
 * regions (short values), small counters and flags (simple values),
 * and hash/CRC payloads (long values). See DESIGN.md §2 for the
 * substitution rationale.
 */

#ifndef CARF_WORKLOADS_WORKLOAD_HH
#define CARF_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "emu/emulator.hh"
#include "isa/instruction.hh"

namespace carf::workloads
{

/** Which averaged suite (paper: SPECint vs SPECfp) a kernel joins. */
enum class Suite
{
    Int,
    Fp,
};

/** A named kernel with a program factory. */
struct Workload
{
    std::string name;
    Suite suite;
    std::function<isa::Program()> build;
};

/**
 * Instantiate a streaming dynamic trace for @p workload, capped at
 * @p max_insts dynamic instructions.
 */
std::unique_ptr<emu::TraceSource> makeTrace(const Workload &workload,
                                            u64 max_insts);

/** The integer suite (the paper's SPECint2000 stand-in). */
const std::vector<Workload> &intSuite();
/** The floating-point suite (the paper's SPECfp2000 stand-in). */
const std::vector<Workload> &fpSuite();
/** Both suites concatenated. */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; fatal() when unknown. */
const Workload &findWorkload(const std::string &name);

} // namespace carf::workloads

#endif // CARF_WORKLOADS_WORKLOAD_HH
