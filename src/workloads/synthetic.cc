#include "workloads/synthetic.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/assembler.hh"

namespace carf::workloads
{

using namespace carf::isa;

isa::Program
buildSynthetic(const SyntheticParams &params)
{
    if (params.regions == 0 || params.regions > 6)
        fatal("buildSynthetic: regions must be in [1,6]");

    Rng rng(params.seed);
    Assembler a;

    // Region bases: high, irregular mid bits (heap-like).
    std::vector<u8> base_regs;
    for (unsigned r = 0; r < params.regions; ++r) {
        Addr base = (u64{0x40} + r * 0x13) << 24;
        Rng fill(params.seed + r + 1);
        std::vector<u64> words(params.regionBytes / 8);
        for (auto &w : words) {
            // Mix of magnitudes: small counters, medium, full random.
            switch (fill.nextBounded(3)) {
              case 0: w = fill.nextBounded(1 << 12); break;
              case 1: w = fill.nextBounded(u64{1} << 28); break;
              default: w = fill.next(); break;
            }
        }
        a.dataU64(base, words);
        u8 reg = static_cast<u8>(R1 + r);
        a.movi(reg, static_cast<i64>(base));
        base_regs.push_back(reg);
    }

    i64 index_mask = (static_cast<i64>(params.regionBytes) - 1) & ~7ll;

    a.movi(R10, 0);                       // loop index
    a.movi(R11, 0x2545f4914f6cdd1dll);    // xorshift state
    a.movi(R12, 0);                       // small accumulator

    a.label("top");

    unsigned label_id = 0;
    unsigned emitted = 0;
    while (emitted < params.bodyLength) {
        double roll = rng.nextDouble();
        if (roll < params.loadFraction) {
            u8 base = base_regs[rng.nextBounded(base_regs.size())];
            a.add(R13, R10, R12);
            a.andi(R13, R13, index_mask);
            a.add(R14, R13, base);
            a.ld(R15, R14, 0);
            emitted += 4;
        } else if (roll < params.loadFraction + params.storeFraction) {
            u8 base = base_regs[rng.nextBounded(base_regs.size())];
            a.add(R16, R10, R15);
            a.andi(R16, R16, index_mask);
            a.add(R16, R16, base);
            a.st(R12, R16, 0);
            emitted += 4;
        } else if (roll < params.loadFraction + params.storeFraction +
                              params.branchFraction) {
            std::string skip = "skip" + std::to_string(label_id++);
            a.andi(R17, R15, 3);
            a.bne(R17, R0, skip);
            a.addi(R12, R12, 1);
            a.label(skip);
            emitted += 3;
        } else if (roll < params.loadFraction + params.storeFraction +
                              params.branchFraction +
                              params.longChainFraction) {
            a.slli(R18, R11, 13);
            a.xor_(R11, R11, R18);
            a.srli(R18, R11, 7);
            a.xor_(R11, R11, R18);
            emitted += 4;
        } else {
            // Simple-value ALU work on small counters.
            a.addi(R12, R12, 1);
            a.andi(R12, R12, 0xfff);
            emitted += 2;
        }
    }

    a.addi(R10, R10, 8);
    a.jmp("top");
    return a.finish();
}

} // namespace carf::workloads
