#include "workloads/int_kernels.hh"

#include <functional>

#include "common/random.hh"
#include "isa/assembler.hh"
#include "workloads/kernel_util.hh"

namespace carf::workloads
{

using namespace carf::isa;

namespace
{

// Heap bases for the integer kernels. Deliberately high (so address
// values are never "simple") and irregular in the mid bits (so the
// regions spread over Short-file indices like malloc'd heaps do).
constexpr Addr chaseBase = 0x4000'0000;
constexpr Addr hashBase = 0x5013'4000;
constexpr Addr sortBase = 0x6026'8000;
constexpr Addr strSrcBase = 0x7039'c000;
constexpr Addr strDstBase = 0x714c'0000;
constexpr Addr graphRowBase = 0x805e'4000;
constexpr Addr graphEdgeBase = 0x8170'8000;
constexpr Addr rleInBase = 0x9082'c000;
constexpr Addr rleOutBase = 0x9195'0000;
constexpr Addr matABase = 0xa0a7'4000;
constexpr Addr matXBase = 0xa1b9'8000;
constexpr Addr matYBase = 0xa2cb'c000;
constexpr Addr crcBase = 0xb0de'0000;
constexpr Addr counterBase = 0x1000;

std::vector<u64>
randomWords(size_t count, u64 seed, unsigned value_bits = 32)
{
    // SPEC2000-era integer data is dominated by (sign-extended)
    // 32-bit-or-narrower values; full-width random payloads would be
    // unrepresentative (see DESIGN.md).
    Rng rng(seed);
    std::vector<u64> words(count);
    for (auto &w : words)
        w = rng.next() >> (64 - value_bits);
    return words;
}

std::vector<u8>
randomBytes(size_t count, u64 seed)
{
    Rng rng(seed);
    std::vector<u8> bytes(count);
    for (auto &b : bytes)
        b = static_cast<u8>(rng.next());
    return bytes;
}

} // namespace

isa::Program
buildPointerChase(unsigned nodes)
{
    // Nodes of 16 bytes: [0]=next pointer, [8]=payload. The nodes are
    // linked in a random cycle, so the traversal never terminates and
    // the address stream is cache-hostile.
    Rng rng(0xc0ffee);
    std::vector<u32> order(nodes);
    for (u32 i = 0; i < nodes; ++i)
        order[i] = i;
    for (u32 i = nodes - 1; i > 0; --i) {
        u32 j = static_cast<u32>(rng.nextBounded(i + 1));
        std::swap(order[i], order[j]);
    }

    std::vector<u64> heap(nodes * 2, 0);
    for (u32 i = 0; i < nodes; ++i) {
        u32 cur = order[i];
        u32 next = order[(i + 1) % nodes];
        heap[cur * 2] = chaseBase + u64{next} * 16;
        heap[cur * 2 + 1] = rng.next() >> 48; // small payloads
    }

    Assembler a;
    environmentPrologue(a, 0xe0 + 1);
    a.dataU64(chaseBase, heap);
    a.movi(R1, static_cast<i64>(chaseBase + u64{order[0]} * 16));
    a.movi(R2, 0);
    a.label("loop");
    a.ld(R3, R1, 8);
    a.add(R2, R2, R3);
    a.ld(R1, R1, 0);
    a.bne(R1, R0, "loop"); // always taken: the list is a cycle
    a.jmp("loop");
    return a.finish();
}

isa::Program
buildHashTable(unsigned log2_slots)
{
    // Keys stream from a preloaded 32-bit key array (as in a real
    // lookup-dominated hash loop); the multiplicative hash and slot
    // compare produce one long-ish value per probe rather than a
    // dense chain of them.
    constexpr unsigned key_count = 1 << 14;
    Assembler a;
    environmentPrologue(a, 0xe0 + 2);
    a.dataU64(hashBase, std::vector<u64>((u64{1} << log2_slots), 0));
    constexpr Addr key_base = hashBase + 0x0400'0000;
    a.dataU64(key_base, randomWords(key_count, 0x4e75));

    a.movi(R1, static_cast<i64>(hashBase));
    a.movi(R2, static_cast<i64>(0x9e3779b97f4a7c15ull)); // golden ratio
    a.movi(R3, static_cast<i64>(key_base));
    a.movi(R13, static_cast<i64>(key_base + key_count * 8));
    a.movi(R12, 0); // hit counter
    a.label("restart");
    a.mov(R4, R3); // key cursor
    a.label("loop");
    a.ld(R6, R4, 0); // key
    // slot = ((key * golden) >> (64 - log2)) * 8 + table
    a.mul(R7, R6, R2);
    a.srli(R7, R7, 64 - static_cast<i64>(log2_slots));
    a.slli(R7, R7, 3);
    a.add(R7, R7, R1);
    // probe: if the slot already holds this key, count a hit,
    // otherwise claim it.
    a.ld(R8, R7, 0);
    a.beq(R8, R6, "hit");
    a.st(R6, R7, 0);
    a.jmp("next");
    a.label("hit");
    a.addi(R12, R12, 1);
    a.label("next");
    a.addi(R4, R4, 8);
    a.blt(R4, R13, "loop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildSortPasses(unsigned elems)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 3);
    // 24-bit keys: not "simple" at the paper's d+n=20, simple from
    // d+n=25 up — places one of the suite's value-type crossovers
    // inside the studied sweep.
    a.dataU64(sortBase, randomWords(elems, 0x50f7, 24));

    a.movi(R1, static_cast<i64>(sortBase));
    a.movi(R2, static_cast<i64>(elems) - 1);
    a.movi(R8, 0); // pass counter
    a.label("outer");
    a.movi(R3, 0);
    a.mov(R4, R1);
    a.label("inner");
    a.ld(R5, R4, 0);
    a.ld(R6, R4, 8);
    a.bge(R6, R5, "noswap");
    a.st(R6, R4, 0);
    a.st(R5, R4, 8);
    a.label("noswap");
    a.addi(R4, R4, 8);
    a.addi(R3, R3, 1);
    a.blt(R3, R2, "inner");
    // Perturb one element per pass so swap activity never dies out.
    a.addi(R8, R8, 1);
    a.andi(R7, R8, static_cast<i64>(elems) - 1);
    a.slli(R7, R7, 3);
    a.add(R7, R7, R1);
    a.mul(R9, R8, R8);
    a.st(R9, R7, 0);
    a.jmp("outer");
    return a.finish();
}

isa::Program
buildStringOps(unsigned bytes)
{
    // memcmp+memcpy flavour: compare two read-only random buffers
    // (bytes match ~1/256, so the equality branch is predictable, as
    // string compares usually are) and write their mix to a third.
    constexpr Addr dst2 = strDstBase + 0x0110'0000;
    Assembler a;
    environmentPrologue(a, 0xe0 + 4);
    a.data(strSrcBase, randomBytes(bytes, 0x57a7));
    a.data(strDstBase, randomBytes(bytes, 0x57a8));

    // Strength-reduced pointer loop, as a compiler would emit it:
    // the induction variables are the addresses themselves.
    a.movi(R1, static_cast<i64>(strSrcBase));
    a.movi(R2, static_cast<i64>(strDstBase));
    a.movi(R3, static_cast<i64>(dst2));
    a.movi(R12, static_cast<i64>(strSrcBase + bytes)); // end pointer
    a.movi(R11, 0); // match counter
    a.label("restart");
    a.mov(R5, R1);
    a.mov(R6, R2);
    a.mov(R10, R3);
    a.label("loop");
    a.lb(R7, R5, 0);
    a.lb(R8, R6, 0);
    a.bne(R7, R8, "differ"); // almost always taken
    a.addi(R11, R11, 1);
    a.label("differ");
    a.add(R9, R7, R8);
    a.sb(R9, R10, 0);
    a.addi(R5, R5, 1);
    a.addi(R6, R6, 1);
    a.addi(R10, R10, 1);
    a.blt(R5, R12, "loop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildGraphWalk(unsigned vertices, unsigned avg_degree)
{
    Rng rng(0x6e4a);
    std::vector<u64> rowptr(vertices + 1);
    u64 edge_count = 0;
    rowptr[0] = 0;
    for (unsigned v = 0; v < vertices; ++v) {
        edge_count += rng.nextBounded(2 * avg_degree + 1);
        rowptr[v + 1] = edge_count;
    }
    std::vector<u64> edges(edge_count);
    for (auto &e : edges)
        e = rng.nextBounded(vertices);

    Assembler a;
    environmentPrologue(a, 0xe0 + 5);
    a.dataU64(graphRowBase, rowptr);
    a.dataU64(graphEdgeBase, edges);

    // Pointer-walk form: the row pointer and the edge cursor/limit
    // are all address values (strong Short-file stimulus).
    a.movi(R1, static_cast<i64>(graphRowBase));
    a.movi(R2, static_cast<i64>(graphEdgeBase));
    a.movi(R13, static_cast<i64>(graphRowBase + vertices * 8));
    a.movi(R10, 0); // checksum
    a.label("restart");
    a.mov(R5, R1); // row pointer
    a.label("vloop");
    a.ld(R6, R5, 0); // edge start index
    a.ld(R7, R5, 8); // edge end index
    a.slli(R8, R6, 3);
    a.add(R8, R8, R2); // edge cursor
    a.slli(R12, R7, 3);
    a.add(R12, R12, R2); // edge limit
    a.label("eloop");
    a.bge(R8, R12, "vnext");
    a.ld(R9, R8, 0);
    a.add(R10, R10, R9);
    a.addi(R8, R8, 8);
    a.jmp("eloop");
    a.label("vnext");
    a.addi(R5, R5, 8);
    a.blt(R5, R13, "vloop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildRle(unsigned bytes)
{
    // Input filled with runs of length 1..16 so the encoder's branch
    // mix is realistic.
    Rng rng(0x41e);
    std::vector<u8> input(bytes);
    size_t pos = 0;
    while (pos < bytes) {
        u8 value = static_cast<u8>(rng.next());
        size_t run = 1 + rng.nextBounded(16);
        for (size_t i = 0; i < run && pos < bytes; ++i)
            input[pos++] = value;
    }

    Assembler a;
    environmentPrologue(a, 0xe0 + 6);
    a.data(rleInBase, input);
    // Pointer-based scan: input cursor, input limit, and output
    // cursor are all live address values.
    a.movi(R1, static_cast<i64>(rleInBase));
    a.movi(R2, static_cast<i64>(rleOutBase));
    a.movi(R3, static_cast<i64>(rleInBase + bytes)); // input limit
    a.movi(R11, static_cast<i64>(rleOutBase + 0x10000)); // out wrap
    a.label("restart");
    a.mov(R4, R1);  // input cursor
    a.mov(R10, R2); // output cursor
    a.label("loop");
    a.lb(R6, R4, 0); // run byte
    a.movi(R7, 1);   // run length
    a.label("run");
    a.addi(R4, R4, 1);
    a.bge(R4, R3, "flush");
    a.lb(R8, R4, 0);
    a.bne(R8, R6, "flush");
    a.addi(R7, R7, 1);
    a.jmp("run");
    a.label("flush");
    a.sb(R6, R10, 0);
    a.sb(R7, R10, 1);
    a.addi(R10, R10, 2);
    a.blt(R10, R11, "no_wrap");
    a.mov(R10, R2);
    a.label("no_wrap");
    a.blt(R4, R3, "loop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildMatVecInt(unsigned dim)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 7);
    // 16-bit matrix/vector data: products fit 32 bits and row
    // accumulators ~40 bits, matching fixed-point integer codes.
    a.dataU64(matABase, randomWords(size_t{dim} * dim, 0x3a7, 16));
    a.dataU64(matXBase, randomWords(dim, 0x3a8, 16));

    a.movi(R1, static_cast<i64>(matABase));
    a.movi(R2, static_cast<i64>(matXBase));
    a.movi(R3, static_cast<i64>(matYBase));
    a.movi(R4, static_cast<i64>(dim));
    a.label("restart");
    a.movi(R5, 0);  // i
    a.mov(R11, R1); // row pointer
    a.label("iloop");
    a.movi(R6, 0);  // j
    a.mov(R7, R2);  // x pointer
    a.movi(R8, 0);  // accumulator
    a.label("jloop");
    a.ld(R9, R11, 0);
    a.ld(R10, R7, 0);
    a.mul(R9, R9, R10);
    a.add(R8, R8, R9);
    a.addi(R11, R11, 8);
    a.addi(R7, R7, 8);
    a.addi(R6, R6, 1);
    a.blt(R6, R4, "jloop");
    a.slli(R12, R5, 3);
    a.add(R12, R12, R3);
    a.st(R8, R12, 0);
    a.addi(R5, R5, 1);
    a.blt(R5, R4, "iloop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildCrc(unsigned bytes)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 8);
    a.data(crcBase, randomBytes(bytes, 0xc4c));

    a.movi(R1, static_cast<i64>(crcBase));
    a.movi(R4, static_cast<i64>(0xc96c5795d7870f42ull)); // CRC-64 poly
    a.movi(R5, -1); // crc state
    a.movi(R3, 0);  // index
    a.label("loop");
    a.add(R6, R1, R3);
    a.lb(R7, R6, 0);
    a.xor_(R5, R5, R7);
    for (int round = 0; round < 4; ++round) {
        // Branchless: crc = (crc >> 1) ^ (poly & -(crc & 1)).
        a.andi(R8, R5, 1);
        a.sub(R8, R0, R8);
        a.and_(R8, R8, R4);
        a.srli(R5, R5, 1);
        a.xor_(R5, R5, R8);
    }
    a.addi(R3, R3, 1);
    a.andi(R3, R3, static_cast<i64>(bytes) - 1);
    a.jmp("loop");
    return a.finish();
}

isa::Program
buildCounters(unsigned elems)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 9);
    a.dataU64(counterBase, std::vector<u64>(elems, 0));

    a.movi(R1, static_cast<i64>(counterBase));
    a.movi(R2, static_cast<i64>(counterBase + elems * 8));
    a.movi(R7, 0);
    a.label("outer");
    a.mov(R4, R1); // element pointer (low address: simple-valued)
    a.label("iloop");
    a.ld(R5, R4, 0);
    a.addi(R5, R5, 1);
    a.st(R5, R4, 0);
    a.andi(R6, R5, 7);
    a.bne(R6, R0, "skip");
    a.addi(R7, R7, 1);
    a.label("skip");
    a.addi(R4, R4, 8);
    a.blt(R4, R2, "iloop");
    a.jmp("outer");
    return a.finish();
}


isa::Program
buildBstSearch(unsigned nodes)
{
    // Balanced BST over sorted 24-bit keys; nodes are 32 bytes:
    // [key, left, right, payload]. Lookups chase pointers with a
    // data-dependent left/right branch at every level.
    constexpr Addr bst_base = 0x4102'c000;
    constexpr Addr query_base = 0x4215'0000;
    constexpr unsigned query_count = 1 << 12;

    Rng rng(0xb57);
    std::vector<u64> keys(nodes);
    u64 next_key = 0;
    for (auto &k : keys)
        k = (next_key += 1 + rng.nextBounded(256)) & 0xffffff;

    // heap[idx] -> node at bst_base + idx*32. Build balanced links.
    std::vector<u64> heap(nodes * 4, 0);
    struct Range { unsigned lo, hi; };
    std::vector<Range> stack = {{0, nodes}};
    // Recursive midpoint construction, iteratively.
    std::function<u64(unsigned, unsigned)> build =
        [&](unsigned lo, unsigned hi) -> u64 {
        if (lo >= hi)
            return 0;
        unsigned mid = lo + (hi - lo) / 2;
        u64 addr = bst_base + u64{mid} * 32;
        heap[mid * 4 + 0] = keys[mid];
        heap[mid * 4 + 1] = build(lo, mid);
        heap[mid * 4 + 2] = build(mid + 1, hi);
        heap[mid * 4 + 3] = rng.nextBounded(1 << 12);
        return addr;
    };
    u64 root = build(0, nodes);

    std::vector<u64> queries(query_count);
    for (auto &q : queries) {
        // Half present, half absent keys.
        q = rng.chance(0.5) ? keys[rng.nextBounded(nodes)]
                            : rng.nextBounded(1 << 24);
    }

    Assembler a;
    environmentPrologue(a, 0xe0 + 10);
    a.dataU64(bst_base, heap);
    a.dataU64(query_base, queries);

    a.movi(R1, static_cast<i64>(root));
    a.movi(R2, static_cast<i64>(query_base));
    a.movi(R13, static_cast<i64>(query_base + query_count * 8));
    a.movi(R10, 0); // hit counter
    a.label("restart");
    a.mov(R4, R2);
    a.label("qloop");
    a.ld(R5, R4, 0); // query key
    a.mov(R6, R1);   // cur = root
    a.label("search");
    a.beq(R6, R0, "miss");
    a.ld(R7, R6, 0); // node key
    a.beq(R7, R5, "hit");
    a.blt(R5, R7, "left");
    a.ld(R6, R6, 16); // right child
    a.jmp("search");
    a.label("left");
    a.ld(R6, R6, 8); // left child
    a.jmp("search");
    a.label("hit");
    a.addi(R10, R10, 1);
    a.label("miss");
    a.addi(R4, R4, 8);
    a.blt(R4, R13, "qloop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildDfaScan(unsigned bytes, unsigned states)
{
    // Table-driven finite automaton over a byte stream: every input
    // byte costs one table load whose address depends on the current
    // state (serial load-to-address dependence, parser-like).
    constexpr Addr table_base = 0x4328'4000;
    constexpr Addr input_base = 0x443a'8000;

    Rng rng(0xdfa);
    std::vector<u8> table(size_t{states} * 256);
    for (auto &t : table)
        t = static_cast<u8>(rng.nextBounded(states));
    std::vector<u8> input = randomBytes(bytes, 0xdfb);

    Assembler a;
    environmentPrologue(a, 0xe0 + 11);
    a.data(table_base, table);
    a.data(input_base, input);

    a.movi(R1, static_cast<i64>(table_base));
    a.movi(R2, static_cast<i64>(input_base));
    a.movi(R3, static_cast<i64>(input_base + bytes));
    a.movi(R4, 0); // state
    a.movi(R9, 0); // accept counter
    a.label("restart");
    a.mov(R5, R2);
    a.label("loop");
    a.lb(R6, R5, 0);
    a.andi(R6, R6, 0xff);
    a.slli(R7, R4, 8);
    a.add(R7, R7, R6);
    a.add(R7, R7, R1);
    a.lb(R8, R7, 0);
    a.andi(R4, R8, 0xff);
    a.bne(R4, R0, "next");
    a.addi(R9, R9, 1); // state 0 is "accepting"
    a.label("next");
    a.addi(R5, R5, 1);
    a.blt(R5, R3, "loop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildBitPack(unsigned symbols)
{
    // Variable-width bit packing (Huffman-ish output stage): each
    // symbol carries a value and a width (1..12 bits); the packer
    // shifts them into an accumulator and flushes 32-bit words.
    constexpr Addr sym_base = 0x454c'c000;
    constexpr Addr out_base = 0x465f'0000;

    Rng rng(0xb17);
    std::vector<u64> syms(symbols);
    for (auto &s : syms) {
        u64 width = 1 + rng.nextBounded(12);
        u64 value = rng.nextBounded(u64{1} << width);
        s = value | (width << 32);
    }

    Assembler a;
    environmentPrologue(a, 0xe0 + 12);
    a.dataU64(sym_base, syms);

    a.movi(R1, static_cast<i64>(sym_base));
    a.movi(R13, static_cast<i64>(sym_base + symbols * 8));
    a.movi(R2, static_cast<i64>(out_base));
    a.label("restart");
    a.mov(R4, R1);  // symbol cursor
    a.movi(R5, 0);  // bit accumulator
    a.movi(R6, 0);  // bit count
    a.mov(R12, R2); // output cursor
    a.label("loop");
    a.ld(R7, R4, 0);
    a.srli(R8, R7, 32);        // width
    a.andi(R7, R7, 0xffffffffll); // value
    a.sll(R7, R7, R6);
    a.or_(R5, R5, R7);
    a.add(R6, R6, R8);
    a.slti(R9, R6, 32);
    a.bne(R9, R0, "no_flush");
    a.sw(R5, R12, 0);
    a.srli(R5, R5, 32);
    a.addi(R12, R12, 4);
    a.addi(R6, R6, -32);
    a.label("no_flush");
    a.addi(R4, R4, 8);
    a.blt(R4, R13, "loop");
    a.jmp("restart");
    return a.finish();
}

} // namespace carf::workloads
