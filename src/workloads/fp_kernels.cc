#include "workloads/fp_kernels.hh"

#include <cmath>

#include "common/random.hh"
#include "isa/assembler.hh"
#include "workloads/kernel_util.hh"

namespace carf::workloads
{

using namespace carf::isa;

namespace
{

constexpr Addr daxpyXBase = 0xc00e'4000;
constexpr Addr daxpyYBase = 0xc120'8000;
constexpr Addr daxpyConst = 0xc232'c000;
constexpr Addr stencilABase = 0xc844'0000;
constexpr Addr stencilBBase = 0xc956'4000;
constexpr Addr stencilConst = 0xca68'8000;
constexpr Addr mmABase = 0xcb7a'c000;
constexpr Addr mmBBase = 0xcc8c'0000;
constexpr Addr mmCBase = 0xcd9e'4000;
constexpr Addr dotXBase = 0xceb0'8000;
constexpr Addr dotYBase = 0xcfc2'c000;
constexpr Addr dotOut = 0xd0d4'0000;
constexpr Addr mcConst = 0xd1e6'4000;
constexpr Addr mcOut = 0xd2f8'8000;
constexpr Addr jacUBase = 0xd40a'c000;
constexpr Addr jacVBase = 0xd51c'0000;
constexpr Addr jacConst = 0xd62e'4000;

std::vector<double>
randomDoubles(size_t count, u64 seed, double lo = -1.0, double hi = 1.0)
{
    Rng rng(seed);
    std::vector<double> values(count);
    for (auto &v : values)
        v = lo + (hi - lo) * rng.nextDouble();
    return values;
}

} // namespace

isa::Program
buildDaxpy(unsigned elems)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 1);
    a.dataF64(daxpyXBase, randomDoubles(elems, 0xdaf1));
    a.dataF64(daxpyYBase, randomDoubles(elems, 0xdaf2));
    a.dataF64(daxpyConst, {0.000125}); // small a keeps y bounded

    a.movi(R1, static_cast<i64>(daxpyXBase));
    a.movi(R2, static_cast<i64>(daxpyYBase));
    a.movi(R3, static_cast<i64>(elems));
    a.movi(R5, static_cast<i64>(daxpyConst));
    a.fld(F1, R5, 0);
    a.label("restart");
    a.movi(R4, 0);
    a.label("loop");
    a.slli(R6, R4, 3);
    a.add(R7, R6, R1);
    a.fld(F2, R7, 0);
    a.add(R8, R6, R2);
    a.fld(F3, R8, 0);
    a.fmul(F4, F2, F1);
    a.fadd(F5, F4, F3);
    a.fst(F5, R8, 0);
    a.addi(R4, R4, 1);
    a.blt(R4, R3, "loop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildStencil(unsigned elems)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 2);
    a.dataF64(stencilABase, randomDoubles(elems, 0x57e1));
    a.dataF64(stencilBBase, randomDoubles(elems, 0x57e2));
    a.dataF64(stencilConst, {1.0 / 3.0});

    a.movi(R1, static_cast<i64>(stencilABase)); // source
    a.movi(R2, static_cast<i64>(stencilBBase)); // destination
    a.movi(R3, static_cast<i64>(elems) - 1);
    a.movi(R5, static_cast<i64>(stencilConst));
    a.fld(F1, R5, 0);
    a.label("sweep");
    a.movi(R4, 1);
    a.label("loop");
    a.slli(R6, R4, 3);
    a.add(R7, R6, R1);
    a.fld(F2, R7, -8);
    a.fld(F3, R7, 0);
    a.fld(F4, R7, 8);
    a.fadd(F5, F2, F3);
    a.fadd(F5, F5, F4);
    a.fmul(F5, F5, F1);
    a.add(R8, R6, R2);
    a.fst(F5, R8, 0);
    a.addi(R4, R4, 1);
    a.blt(R4, R3, "loop");
    // Ping-pong the buffers.
    a.mov(R9, R1);
    a.mov(R1, R2);
    a.mov(R2, R9);
    a.jmp("sweep");
    return a.finish();
}

isa::Program
buildMatMul(unsigned dim)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 3);
    size_t cells = size_t{dim} * dim;
    a.dataF64(mmABase, randomDoubles(cells, 0x3a71));
    a.dataF64(mmBBase, randomDoubles(cells, 0x3a72));

    a.movi(R1, static_cast<i64>(mmABase));
    a.movi(R2, static_cast<i64>(mmBBase));
    a.movi(R3, static_cast<i64>(mmCBase));
    a.movi(R4, static_cast<i64>(dim));
    a.movi(R10, static_cast<i64>(dim) * 8); // B row stride in bytes
    a.label("restart");
    a.movi(R5, 0); // i
    a.label("iloop");
    a.movi(R6, 0); // j
    a.label("jloop");
    a.movi(R7, 0); // k
    a.mul(R8, R5, R4);
    a.slli(R8, R8, 3);
    a.add(R8, R8, R1); // aptr = &A[i][0]
    a.slli(R9, R6, 3);
    a.add(R9, R9, R2); // bptr = &B[0][j]
    a.fsub(F1, F1, F1); // acc = 0
    a.label("kloop");
    a.fld(F2, R8, 0);
    a.fld(F3, R9, 0);
    a.fmul(F4, F2, F3);
    a.fadd(F1, F1, F4);
    a.addi(R8, R8, 8);
    a.add(R9, R9, R10);
    a.addi(R7, R7, 1);
    a.blt(R7, R4, "kloop");
    // C[i][j] = acc
    a.mul(R11, R5, R4);
    a.add(R11, R11, R6);
    a.slli(R11, R11, 3);
    a.add(R11, R11, R3);
    a.fst(F1, R11, 0);
    a.addi(R6, R6, 1);
    a.blt(R6, R4, "jloop");
    a.addi(R5, R5, 1);
    a.blt(R5, R4, "iloop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildDotReduce(unsigned elems)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 4);
    a.dataF64(dotXBase, randomDoubles(elems, 0xd071));
    a.dataF64(dotYBase, randomDoubles(elems, 0xd072));

    a.movi(R1, static_cast<i64>(dotXBase));
    a.movi(R2, static_cast<i64>(dotYBase));
    a.movi(R3, static_cast<i64>(elems));
    a.movi(R9, static_cast<i64>(dotOut));
    a.label("restart");
    a.movi(R4, 0);
    a.fsub(F1, F1, F1); // acc0 = 0
    a.fsub(F2, F2, F2); // acc1 = 0
    a.label("loop");
    a.slli(R5, R4, 3);
    a.add(R6, R5, R1);
    a.add(R7, R5, R2);
    a.fld(F3, R6, 0);
    a.fld(F4, R7, 0);
    a.fmul(F5, F3, F4);
    a.fadd(F1, F1, F5);
    a.fld(F6, R6, 8);
    a.fld(F7, R7, 8);
    a.fmul(F8, F6, F7);
    a.fadd(F2, F2, F8);
    a.addi(R4, R4, 2);
    a.blt(R4, R3, "loop");
    a.fadd(F1, F1, F2);
    a.fst(F1, R9, 0);
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildMonteCarlo()
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 5);
    a.dataF64(mcConst, {1.0 / 1073741824.0, 1.0}); // 2^-30 and 1.0

    a.movi(R1, static_cast<i64>(mcConst));
    a.fld(F1, R1, 0); // scale
    a.fld(F2, R1, 8); // one
    a.movi(R2, static_cast<i64>(mcOut));
    a.movi(R3, 0x243f6a8885a308d3ll); // xorshift state
    a.movi(R4, 0);                    // inside count
    a.movi(R5, 0);                    // total count
    a.movi(R6, 0x3fffffff);           // 30-bit mask
    a.label("loop");
    // Draw x.
    a.slli(R7, R3, 13);
    a.xor_(R3, R3, R7);
    a.srli(R7, R3, 7);
    a.xor_(R3, R3, R7);
    a.and_(R8, R3, R6);
    a.fcvtif(F3, R8);
    a.fmul(F3, F3, F1);
    // Draw y.
    a.slli(R7, R3, 17);
    a.xor_(R3, R3, R7);
    a.srli(R7, R3, 11);
    a.xor_(R3, R3, R7);
    a.and_(R8, R3, R6);
    a.fcvtif(F4, R8);
    a.fmul(F4, F4, F1);
    // r2 = x*x + y*y; inside iff r2 < 1.
    a.fmul(F5, F3, F3);
    a.fmul(F6, F4, F4);
    a.fadd(F5, F5, F6);
    // Inside iff r2 < 1: r2 - 1 is negative, and truncating toward
    // zero keeps the sign for magnitudes >= 1... use a scaled compare
    // instead so truncation cannot lose the sign: (r2-1)*2^30.
    a.fsub(F7, F5, F2); // r2 - 1
    a.fcvtif(F8, R6);   // 2^30 - 1 as a double (large scale factor)
    a.fmul(F7, F7, F8);
    a.fcvtfi(R9, F7);   // negative iff inside
    a.slti(R10, R9, 0);
    a.add(R4, R4, R10);
    a.addi(R5, R5, 1);
    // Periodically store the counters.
    a.andi(R11, R5, 1023);
    a.bne(R11, R0, "skip");
    a.st(R4, R2, 0);
    a.st(R5, R2, 8);
    a.label("skip");
    a.jmp("loop");
    return a.finish();
}

isa::Program
buildJacobi(unsigned dim)
{
    Assembler a;
    environmentPrologue(a, 0xe0 + 6);
    size_t cells = size_t{dim} * dim;
    a.dataF64(jacUBase, randomDoubles(cells, 0x1ac0, 0.0, 100.0));
    a.dataF64(jacVBase, std::vector<double>(cells, 0.0));
    a.dataF64(jacConst, {0.25});

    i64 row_bytes = static_cast<i64>(dim) * 8;
    a.movi(R1, static_cast<i64>(jacUBase));
    a.movi(R2, static_cast<i64>(jacVBase));
    a.movi(R3, static_cast<i64>(dim) - 1);
    a.movi(R12, static_cast<i64>(jacConst));
    a.fld(F1, R12, 0);
    a.movi(R10, row_bytes);
    a.label("sweep");
    a.movi(R4, 1); // i
    a.label("iloop");
    a.movi(R5, 1); // j
    a.label("jloop");
    // off = (i*dim + j) * 8
    a.mul(R6, R4, R3);
    a.add(R6, R6, R4); // i*(dim-1)+i = i*dim
    a.add(R6, R6, R5);
    a.slli(R6, R6, 3);
    a.add(R7, R6, R1);
    a.fld(F2, R7, -8); // left
    a.fld(F3, R7, 8);  // right
    a.sub(R8, R7, R10);
    a.fld(F4, R8, 0);  // up
    a.add(R8, R7, R10);
    a.fld(F5, R8, 0);  // down
    a.fadd(F2, F2, F3);
    a.fadd(F4, F4, F5);
    a.fadd(F2, F2, F4);
    a.fmul(F2, F2, F1);
    a.add(R9, R6, R2);
    a.fst(F2, R9, 0);
    a.addi(R5, R5, 1);
    a.blt(R5, R3, "jloop");
    a.addi(R4, R4, 1);
    a.blt(R4, R3, "iloop");
    // Swap buffers.
    a.mov(R11, R1);
    a.mov(R1, R2);
    a.mov(R2, R11);
    a.jmp("sweep");
    return a.finish();
}


isa::Program
buildFftButterfly(unsigned log2_n)
{
    // Radix-2 butterfly passes over complex data with preloaded
    // twiddles. The post-butterfly 1/sqrt(2) scaling keeps magnitudes
    // statistically stable across unbounded repetition.
    constexpr Addr re_base = 0xd740'4000;
    constexpr Addr im_base = 0xd852'8000;
    constexpr Addr wr_base = 0xd964'c000;
    constexpr Addr wi_base = 0xda77'0000;
    constexpr Addr fft_const = 0xdb89'4000;

    unsigned n = 1u << log2_n;
    Rng rng(0xff7);
    std::vector<double> re(n), im(n), wr(n / 2), wi(n / 2);
    for (unsigned i = 0; i < n; ++i) {
        re[i] = 2.0 * rng.nextDouble() - 1.0;
        im[i] = 2.0 * rng.nextDouble() - 1.0;
    }
    for (unsigned k = 0; k < n / 2; ++k) {
        double angle = -2.0 * 3.14159265358979323846 * k / n;
        // No libm in the ISA: twiddles are data, computed here.
        wr[k] = std::cos(angle);
        wi[k] = std::sin(angle);
    }

    Assembler a;
    environmentPrologue(a, 0xe0 + 20);
    a.dataF64(re_base, re);
    a.dataF64(im_base, im);
    a.dataF64(wr_base, wr);
    a.dataF64(wi_base, wi);
    a.dataF64(fft_const, {0.70710678118654752});

    a.movi(R1, static_cast<i64>(re_base));
    a.movi(R2, static_cast<i64>(im_base));
    a.movi(R3, static_cast<i64>(wr_base));
    a.movi(R4, static_cast<i64>(wi_base));
    a.movi(R5, static_cast<i64>(n / 2));
    a.movi(R13, static_cast<i64>(fft_const));
    a.fld(F11, R13, 0); // scale
    a.label("restart");
    a.movi(R6, 0); // k
    a.label("kloop");
    a.slli(R7, R6, 4); // pair offset (2k doubles)
    a.add(R8, R7, R1);
    a.add(R9, R7, R2);
    a.slli(R10, R6, 3);
    a.add(R11, R10, R3);
    a.add(R12, R10, R4);
    a.fld(F1, R8, 0);  // re_i
    a.fld(F2, R8, 8);  // re_j
    a.fld(F3, R9, 0);  // im_i
    a.fld(F4, R9, 8);  // im_j
    a.fld(F5, R11, 0); // wr
    a.fld(F6, R12, 0); // wi
    // tr = re_j*wr - im_j*wi ; ti = re_j*wi + im_j*wr
    a.fmul(F7, F2, F5);
    a.fmul(F8, F4, F6);
    a.fsub(F7, F7, F8);
    a.fmul(F8, F2, F6);
    a.fmul(F9, F4, F5);
    a.fadd(F8, F8, F9);
    // butterfly with stabilising scale
    a.fadd(F10, F1, F7);
    a.fmul(F10, F10, F11);
    a.fst(F10, R8, 0);
    a.fsub(F10, F1, F7);
    a.fmul(F10, F10, F11);
    a.fst(F10, R8, 8);
    a.fadd(F10, F3, F8);
    a.fmul(F10, F10, F11);
    a.fst(F10, R9, 0);
    a.fsub(F10, F3, F8);
    a.fmul(F10, F10, F11);
    a.fst(F10, R9, 8);
    a.addi(R6, R6, 1);
    a.blt(R6, R5, "kloop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildNbody(unsigned bodies)
{
    // All-pairs softened gravity: O(n^2) fp-divide-heavy inner loop
    // with an integration step per body.
    constexpr Addr px_base = 0xdc9b'8000;
    constexpr Addr py_base = 0xddad'c000;
    constexpr Addr mass_base = 0xdec0'0000;
    constexpr Addr nb_const = 0xdfd2'4000;

    Rng rng(0xb0d7);
    std::vector<double> px(bodies), py(bodies), mass(bodies);
    for (unsigned i = 0; i < bodies; ++i) {
        px[i] = 100.0 * rng.nextDouble();
        py[i] = 100.0 * rng.nextDouble();
        mass[i] = 0.5 + rng.nextDouble();
    }

    Assembler a;
    environmentPrologue(a, 0xe0 + 21);
    a.dataF64(px_base, px);
    a.dataF64(py_base, py);
    a.dataF64(mass_base, mass);
    a.dataF64(nb_const, {1.0, 1e-7}); // softening eps, dt

    a.movi(R1, static_cast<i64>(px_base));
    a.movi(R2, static_cast<i64>(py_base));
    a.movi(R3, static_cast<i64>(mass_base));
    a.movi(R4, static_cast<i64>(bodies));
    a.movi(R13, static_cast<i64>(nb_const));
    a.fld(F10, R13, 0); // eps
    a.fld(F12, R13, 8); // dt
    a.label("restart");
    a.movi(R5, 0); // i
    a.label("iloop");
    a.slli(R6, R5, 3);
    a.add(R7, R6, R1);
    a.fld(F3, R7, 0); // px_i
    a.add(R8, R6, R2);
    a.fld(F4, R8, 0); // py_i
    a.fsub(F1, F1, F1); // ax = 0
    a.fsub(F2, F2, F2); // ay = 0
    a.movi(R9, 0); // j
    a.label("jloop");
    a.slli(R10, R9, 3);
    a.add(R11, R10, R1);
    a.fld(F5, R11, 0);
    a.add(R12, R10, R2);
    a.fld(F6, R12, 0);
    a.add(R11, R10, R3);
    a.fld(F7, R11, 0); // m_j
    a.fsub(F5, F5, F3); // dx
    a.fsub(F6, F6, F4); // dy
    a.fmul(F8, F5, F5);
    a.fmul(F9, F6, F6);
    a.fadd(F8, F8, F9);
    a.fadd(F8, F8, F10); // + eps
    a.fdiv(F9, F7, F8);  // m / r^2
    a.fmul(F11, F5, F9);
    a.fadd(F1, F1, F11);
    a.fmul(F11, F6, F9);
    a.fadd(F2, F2, F11);
    a.addi(R9, R9, 1);
    a.blt(R9, R4, "jloop");
    // Integrate body i.
    a.fmul(F1, F1, F12);
    a.fmul(F2, F2, F12);
    a.fld(F5, R7, 0);
    a.fadd(F5, F5, F1);
    a.fst(F5, R7, 0);
    a.fld(F6, R8, 0);
    a.fadd(F6, F6, F2);
    a.fst(F6, R8, 0);
    a.addi(R5, R5, 1);
    a.blt(R5, R4, "iloop");
    a.jmp("restart");
    return a.finish();
}

} // namespace carf::workloads
