/**
 * @file
 * Stall-heavy kernel programs (the Suite::Stall workloads).
 *
 * These kernels are deliberately latency-bound rather than
 * value-behaviour representative: their working sets overflow the L2
 * (mem_chase, stream_wall) or the L1 instruction cache (fetch_wall),
 * so most cycles are spent waiting on a fill with an empty issue
 * window. They exist to exercise and benchmark the pipeline's exact
 * idle-cycle skip (DESIGN.md §4.8) and are kept out of intSuite() so
 * the paper-claims suite averages stay untouched.
 */

#ifndef CARF_WORKLOADS_STALL_KERNELS_HH
#define CARF_WORKLOADS_STALL_KERNELS_HH

#include "isa/instruction.hh"

namespace carf::workloads
{

/** Serial random-cycle pointer chase over a working set ~4x the L2:
 *  every hop is a dependent off-chip miss, so the window drains for
 *  ~memoryLatency cycles per node. */
isa::Program buildMemChase(unsigned nodes = 1 << 18);

/** Line-stride streaming reduction over an L2-overflowing array:
 *  independent misses overlap up to the MLP the LSQ and dl1 ports
 *  allow, then the ROB fills behind the oldest fill. */
isa::Program buildStreamWall(unsigned words = 1 << 19);

/** Straight-line ALU block larger than the L1 instruction cache,
 *  looped: every code line is a capacity miss, so the front end
 *  stalls on the L2 once per 16 instructions. */
isa::Program buildFetchWall(unsigned block_insts = 12 * 1024);

} // namespace carf::workloads

#endif // CARF_WORKLOADS_STALL_KERNELS_HH
