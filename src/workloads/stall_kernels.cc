#include "workloads/stall_kernels.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "isa/assembler.hh"
#include "workloads/kernel_util.hh"

namespace carf::workloads
{

using namespace carf::isa;

namespace
{

// Heap bases for the stall kernels, distinct from every int/fp kernel
// region (int_kernels.cc tops out at 0xb0de'0000).
constexpr Addr memChaseBase = 0xc2f1'0000;
constexpr Addr streamBase = 0xd303'4000;
constexpr Addr fetchScratchBase = 0xe415'8000;

} // namespace

isa::Program
buildMemChase(unsigned nodes)
{
    // Same structure as buildPointerChase — 16-byte nodes linked in
    // one random cycle — but the default working set is 4 MiB against
    // a 1 MiB L2, so (after the first lap warms nothing useful) every
    // next-pointer load is an off-chip miss the chase serializes on.
    Rng rng(0x57a11);
    std::vector<u32> order(nodes);
    for (u32 i = 0; i < nodes; ++i)
        order[i] = i;
    for (u32 i = nodes - 1; i > 0; --i) {
        u32 j = static_cast<u32>(rng.nextBounded(i + 1));
        std::swap(order[i], order[j]);
    }

    std::vector<u64> heap(u64{nodes} * 2, 0);
    for (u32 i = 0; i < nodes; ++i) {
        u32 cur = order[i];
        u32 next = order[(i + 1) % nodes];
        heap[u64{cur} * 2] = memChaseBase + u64{next} * 16;
        heap[u64{cur} * 2 + 1] = rng.next() >> 48;
    }

    Assembler a;
    environmentPrologue(a, 0x57a11 + 1);
    a.dataU64(memChaseBase, heap);
    a.movi(R1, static_cast<i64>(memChaseBase + u64{order[0]} * 16));
    a.movi(R2, 0);
    a.label("loop");
    // The next-pointer load comes FIRST: it is the older access, so
    // it takes the full miss and the payload load (same line) rides
    // behind it. The other way round the payload's miss would warm
    // the line and the serial chain would advance on dl1 hits.
    a.ld(R4, R1, 0);
    a.ld(R3, R1, 8);
    a.add(R2, R2, R3);
    a.mov(R1, R4);
    a.bne(R1, R0, "loop"); // always taken: the list is a cycle
    a.jmp("loop");
    return a.finish();
}

isa::Program
buildStreamWall(unsigned words)
{
    // One load per 64-byte line over a 4 MiB array: the misses are
    // independent (unlike mem_chase), so they overlap until the ROB
    // fills behind the oldest outstanding fill. The reduction keeps a
    // real consumer on every load without serializing the addresses.
    Assembler a;
    environmentPrologue(a, 0x57a11 + 2);
    Rng rng(0x57ea3);
    std::vector<u64> data(words);
    for (auto &w : data)
        w = rng.next() >> 32;
    a.dataU64(streamBase, data);

    a.movi(R1, static_cast<i64>(streamBase));
    a.movi(R13, static_cast<i64>(streamBase + u64{words} * 8));
    a.movi(R2, 0); // running sum
    a.label("restart");
    a.mov(R4, R1);
    a.label("loop");
    a.ld(R3, R4, 0);
    a.add(R2, R2, R3);
    a.addi(R4, R4, 64); // next cache line
    a.blt(R4, R13, "loop");
    a.jmp("restart");
    return a.finish();
}

isa::Program
buildFetchWall(unsigned block_insts)
{
    // A straight-line ALU block of block_insts instructions (48 KiB
    // at the default, against a 32 KiB il1), looped forever: every
    // line of the block is evicted before the loop returns to it, so
    // fetch takes an L2-latency hit on each 16-instruction line while
    // the back end drains. Sparse loads/stores on a small scratch
    // buffer and periodic taken branches keep the memory and
    // predictor paths honest without adding data-side misses.
    Assembler a;
    environmentPrologue(a, 0x57a11 + 3);
    a.dataU64(fetchScratchBase, std::vector<u64>(64, 0));

    a.movi(R1, static_cast<i64>(fetchScratchBase));
    a.movi(R2, 1);
    a.movi(R3, 0x2545f49);
    a.movi(R4, 0);
    a.label("top");
    Rng rng(0x57a11 + 4);
    unsigned emitted = 0;
    unsigned chunk = 0;
    while (emitted < block_insts) {
        // ~1 KiB straight-line stretches separated by a taken branch
        // and one scratch access.
        unsigned stretch =
            std::min(block_insts - emitted, 250u + chunk % 7);
        for (unsigned i = 0; i < stretch; ++i) {
            u8 rd = static_cast<u8>(5 + rng.nextBounded(8)); // R5-R12
            u8 rs = static_cast<u8>(5 + rng.nextBounded(8));
            switch (rng.nextBounded(4)) {
            case 0:
                a.add(rd, rs, R2);
                break;
            case 1:
                a.xor_(rd, rs, R3);
                break;
            case 2:
                a.addi(rd, rs, static_cast<i64>(rng.nextBounded(64)));
                break;
            default:
                a.srli(rd, rs, 1 + static_cast<i64>(rng.nextBounded(7)));
                break;
            }
        }
        emitted += stretch;
        std::string next = "chunk" + std::to_string(chunk++);
        a.st(R4, R1, static_cast<i64>((chunk % 64) * 8));
        a.ld(R4, R1, static_cast<i64>(((chunk + 17) % 64) * 8));
        a.addi(R4, R4, 1);
        a.bne(R2, R0, next); // always taken
        a.label(next);
        emitted += 4;
    }
    a.jmp("top");
    return a.finish();
}

} // namespace carf::workloads
