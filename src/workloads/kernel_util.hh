/**
 * @file
 * Shared kernel-construction helpers (internal to src/workloads).
 */

#ifndef CARF_WORKLOADS_KERNEL_UTIL_HH
#define CARF_WORKLOADS_KERNEL_UTIL_HH

#include "common/random.hh"
#include "isa/assembler.hh"

namespace carf::workloads
{

/**
 * Populate the callee-saved upper registers (r16-r30) with the value
 * mix a real program carries after startup: saved pointers into a few
 * "stack"/"global" regions, small integers, and a couple of wide
 * values. Without this, unused architectural registers all hold zero
 * and the live-value statistics (Figures 1-2) overweight the zero
 * group in a way no real code does.
 *
 * Kernels call this before their own setup and must not clobber the
 * registers they rely on afterwards.
 */
inline void
environmentPrologue(isa::Assembler &a, u64 seed)
{
    Rng rng(seed);
    // Mid-region bases (not on power-of-two boundaries): frame
    // offsets below the stack pointer then stay within one
    // (64-d)-similarity group, as they do in a live process.
    u64 stack_base =
        0x7fff'f000'0000ull + (rng.nextBounded(64) << 20) + 0x9e38;
    u64 global_base =
        0x0060'0000ull + (rng.nextBounded(16) << 16) + 0x4d0;

    using namespace isa;
    // Saved "stack" pointers: one similarity group.
    a.movi(R29, static_cast<i64>(stack_base));
    a.movi(R30, static_cast<i64>(stack_base - 0x1f0));
    a.movi(R28, static_cast<i64>(stack_base - 0x4d8));
    // Saved "global"/got pointers: another group.
    a.movi(R27, static_cast<i64>(global_base));
    a.movi(R26, static_cast<i64>(global_base + 0x2e8));
    // Small integers (argc-like, flags, bounds).
    a.movi(R25, static_cast<i64>(rng.nextBounded(4096)));
    a.movi(R24, static_cast<i64>(rng.nextBounded(256)));
    a.movi(R23, -1);
    // Wide values (environment hashes, seeds).
    a.movi(R22, static_cast<i64>(rng.next()));
    a.movi(R21, static_cast<i64>(rng.next()));
    // Medium (32-bit) values.
    a.movi(R20, static_cast<i64>(rng.next() >> 32));
    a.movi(R19, static_cast<i64>(rng.next() >> 32));
    a.movi(R18, static_cast<i64>(rng.next() >> 40));
    a.movi(R17, static_cast<i64>(rng.nextBounded(1u << 20)));
    a.movi(R16, static_cast<i64>(stack_base - 0x800));
}

} // namespace carf::workloads

#endif // CARF_WORKLOADS_KERNEL_UTIL_HH
