/**
 * @file
 * Conventional monolithic N x 64-bit physical register file, used for
 * both the paper's "unlimited" (160 entries, 16R/8W) and "baseline"
 * (112 entries, 8R/6W) configurations; port counts live in the core
 * parameters, not here.
 *
 * Values are still *classified* (without a Short file, so only
 * simple/long) purely for reporting parity; the classification has no
 * behavioural effect in this model.
 */

#ifndef CARF_REGFILE_BASELINE_HH
#define CARF_REGFILE_BASELINE_HH

#include "regfile/regfile.hh"

namespace carf::regfile
{

/** Flat 64-bit-per-entry register file. */
class BaselineRegFile : public RegisterFile
{
  public:
    BaselineRegFile(std::string name, unsigned entries);

    void reset() override;
    ReadAccess read(u32 tag) override;
    WriteAccess write(u32 tag, u64 value) override;
    void release(u32 tag) override;

    ValueType peekType(u32 tag) const override;
    u64 peekValue(u32 tag) const override;
    bool peekLive(u32 tag) const override;

  private:
    struct Entry
    {
        bool live = false;
        u64 value = 0;
    };

    std::vector<Entry> file_;
};

} // namespace carf::regfile

#endif // CARF_REGFILE_BASELINE_HH
