/**
 * @file
 * Value taxonomy of the content-aware register file (paper §2-§3).
 *
 * Given the similarity parameters d and n (the Simple file's value
 * field is d+n bits wide):
 *
 *  - a value is **simple** when it sign-extends from its low d+n bits
 *    (its high 64-d-n bits are all zeros or all ones);
 *  - a value is **short** when the Short file entry selected by bits
 *    [d, d+n) of the value holds its high 64-d-n bits (i.e.\ it is
 *    (64-d)-similar to a resident value group);
 *  - everything else is **long**.
 *
 * The ShortFile here is the direct-mapped structure from §3.1; a
 * fully-associative variant (§4, rejected by the paper on energy
 * grounds) is provided for the ablation study.
 */

#ifndef CARF_REGFILE_VALUE_CLASS_HH
#define CARF_REGFILE_VALUE_CLASS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace carf::regfile
{

/** Content type of a register value (the 2-bit RD field). */
enum class ValueType : u8
{
    Simple,
    Short,
    Long,
};

const char *valueTypeName(ValueType type);

/**
 * Similarity / geometry parameters of the content-aware file.
 *
 * The classification masks are derived from (d, n) once at
 * construction, which keeps the per-writeback classifyValue() path
 * down to two branchless mask compares; d and n are read-only
 * afterwards so the masks can never go stale.
 */
class SimilarityParams
{
  public:
    /**
     * @param d low bits in which (64-d)-similar values may differ
     * @param n log2 of the Short file size; index bits
     *
     * Out-of-range combinations are tolerated here (the masks just
     * degenerate) and rejected by validate(), so tests can construct
     * nonsense parameters and assert that validate() is fatal.
     */
    SimilarityParams(unsigned d = 17, unsigned n = 3) : d_(d), n_(n)
    {
        unsigned w = d_ + n_;
        if (w >= 1 && w <= 64)
            signMask_ = ~u64{0} << (w - 1);
        if (n_ < 64)
            indexMask_ = (u64{1} << n_) - 1;
    }

    /** Low bits in which (64-d)-similar values may differ. */
    unsigned d() const { return d_; }
    /** log2 of the Short file size; index bits. */
    unsigned n() const { return n_; }

    /** Width of the Simple value field. */
    unsigned simpleFieldBits() const { return d_ + n_; }
    /** Width of a Short file entry. */
    unsigned shortEntryBits() const { return 64 - d_ - n_; }
    /** Number of Short file entries. */
    unsigned shortEntries() const { return 1u << n_; }

    /** Short-file index of @p value: bits [d, d+n). */
    unsigned shortIndex(u64 value) const
    {
        return static_cast<unsigned>((value >> d_) & indexMask_);
    }
    /** High-order field stored in a Short entry: bits [d+n, 64). */
    u64 shortTag(u64 value) const { return value >> (d_ + n_); }
    /**
     * True when @p value sign-extends from its low d+n bits, i.e.
     * bits [d+n-1, 64) are all zero or all one — tested as two
     * compares against the precomputed sign mask.
     */
    bool isSimple(u64 value) const
    {
        u64 high = value & signMask_;
        return high == 0 || high == signMask_;
    }

    /** Validate ranges (d+n <= 32 or so); fatal() on nonsense. */
    void validate() const;

  private:
    unsigned d_;
    unsigned n_;
    /** Bits [d+n-1, 64); a value is simple iff these are 0 or all set. */
    u64 signMask_ = 0;
    /** Low n bits, right-justified, for shortIndex(). */
    u64 indexMask_ = 0;
};

/**
 * The Short register file: M entries holding the shared high-order
 * bits of short value groups, plus the Tcur/Told reference bits and
 * live-reference counts that drive entry reclamation (§3.2).
 */
class ShortFile
{
  public:
    ShortFile(const SimilarityParams &params, bool associative = false);

    /**
     * Does any entry hold the high bits of @p value?
     * @param idx_out filled with the matching entry index on success
     */
    bool lookup(u64 value, unsigned &idx_out) const;

    /**
     * Try to allocate an entry for @p value (LD/ST address path).
     * Direct-mapped: only the indexed slot is eligible, and only if
     * free. Associative: any free slot. No-op if already resident.
     * @retval true when the value's group is resident after the call
     */
    bool tryAllocate(u64 value);

    /**
     * tryAllocate() with placement visibility: on success @p idx_out
     * holds the resident slot and @p fresh_out is true iff this call
     * placed a new group (false when the group was already resident).
     * The SMT owner accounting keys on fresh placements.
     */
    bool tryAllocate(u64 value, unsigned &idx_out, bool &fresh_out);

    /** A short-typed result referenced entry @p idx (sets Tcur). */
    void touch(unsigned idx);

    /** Live physical registers started/stopped referencing @p idx. */
    void addRef(unsigned idx);
    void dropRef(unsigned idx);

    /**
     * ROB-interval epoch (§3.2): Told <- Tcur | (refs live), clear
     * Tcur, then reclaim entries with no liveness in either epoch and
     * no live references.
     */
    void robIntervalTick();

    unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
    bool valid(unsigned idx) const { return slots_.at(idx).valid; }
    /**
     * Canonical (64-d-n)-bit high field of the group in entry
     * @p idx, in both direct-mapped and associative modes.
     */
    u64 tag(unsigned idx) const;
    unsigned refCount(unsigned idx) const { return slots_.at(idx).refs; }
    unsigned liveEntries() const;

    u64 allocations() const { return allocations_; }
    u64 reclamations() const { return reclamations_; }

    /**
     * Structural self-check (debug/testing): returns an empty string
     * when every invariant holds, else a description of the first
     * violation. Checked invariants: invalid slots carry no reference
     * counts or epoch bits, and every stored tag fits its field width.
     */
    std::string checkInvariants() const;

  private:
    struct Slot
    {
        bool valid = false;
        u64 tag = 0;
        unsigned refs = 0;
        bool tcur = false;
        bool told = false;
    };

    SimilarityParams params_;
    bool associative_;
    std::vector<Slot> slots_;
    u64 allocations_ = 0;
    u64 reclamations_ = 0;
};

/**
 * Classify @p value against the current Short file contents.
 * Precedence: simple, then short, then long (§3.2 WR1).
 *
 * @param short_idx filled with the matching Short entry for
 *        ValueType::Short results
 */
ValueType classifyValue(u64 value, const SimilarityParams &params,
                        const ShortFile &short_file, unsigned &short_idx);

/**
 * Const classification path: identical taxonomy, but without the
 * Short-index out-parameter. Use this wherever the caller only needs
 * the type (peeks, statistics) — it cannot be abused to smuggle state
 * out of a classification that must stay side-effect free.
 */
ValueType classifyValue(u64 value, const SimilarityParams &params,
                        const ShortFile &short_file);

} // namespace carf::regfile

#endif // CARF_REGFILE_VALUE_CLASS_HH
