#include "regfile/registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace carf::regfile
{

namespace detail
{
// Defined in the respective backend translation units. Calling them
// from registry() both guarantees the built-ins are registered before
// any lookup (regardless of static-init order across TUs) and forces
// the linker to keep those archive members.
void registerFlatBackends(Registry &r);
void registerContentAwareBackend(Registry &r);
void registerPortReductionBackend(Registry &r);
} // namespace detail

void
Registry::add(std::string name, std::string description, Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &b : backends_) {
        if (b->name == name)
            fatal("register-file backend '%s' registered twice", name.c_str());
    }
    auto backend = std::make_unique<Backend>();
    backend->name = std::move(name);
    backend->description = std::move(description);
    backend->factory = std::move(factory);
    backends_.push_back(std::move(backend));
}

const Registry::Backend *
Registry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &b : backends_) {
        if (b->name == name)
            return b.get();
    }
    return nullptr;
}

const Registry::Backend &
Registry::at(const std::string &name) const
{
    if (const Backend *b = find(name))
        return *b;
    std::string known;
    for (const std::string &n : names()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    fatal("unknown register-file backend '%s' (registered: %s)",
          name.c_str(), known.c_str());
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto &b : backends_)
        out.push_back(b->name);
    std::sort(out.begin(), out.end());
    return out;
}

Registry &
registry()
{
    static Registry r;
    static bool initialized = [] {
        detail::registerFlatBackends(r);
        detail::registerContentAwareBackend(r);
        detail::registerPortReductionBackend(r);
        return true;
    }();
    (void)initialized;
    return r;
}

std::unique_ptr<RegisterFile>
makeRegFile(const std::string &name, const RegFileParams &params,
            const std::string &instance)
{
    return registry().at(name).factory(instance, params);
}

} // namespace carf::regfile
