#include "regfile/content_aware.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "regfile/registry.hh"

namespace carf::regfile
{

namespace detail
{

void
registerContentAwareBackend(Registry &r)
{
    r.add("content-aware",
          "three-sub-file content-aware organization (paper section 3)",
          [](const std::string &instance, const RegFileParams &params) {
              auto file = std::make_unique<ContentAwareRegFile>(
                  instance, params.entries, params.ca);
              file->setPortGeometry(params.readPorts, params.writePorts);
              return std::unique_ptr<RegisterFile>(std::move(file));
          });
}

} // namespace detail

unsigned
ContentAwareParams::longPointerBits() const
{
    return log2Ceil(longEntries);
}

unsigned
ContentAwareParams::longEntryBits() const
{
    return 64 - sim.d() - sim.n() + longPointerBits();
}

void
ContentAwareParams::validate() const
{
    sim.validate();
    if (longEntries < 1)
        fatal("ContentAwareParams: need at least one Long entry");
    if (issueStallThreshold >= longEntries) {
        fatal("ContentAwareParams: issue-stall threshold %u >= K=%u "
              "Long entries would stall issue forever",
              issueStallThreshold, longEntries);
    }
    if (longPointerBits() > sim.simpleFieldBits()) {
        fatal("ContentAwareParams: long pointer (%u bits) does not fit "
              "the simple value field (%u bits)",
              longPointerBits(), sim.simpleFieldBits());
    }
}

ContentAwareRegFile::ContentAwareRegFile(std::string name, unsigned entries,
                                         const ContentAwareParams &params)
    : RegisterFile(std::move(name), entries),
      params_(params),
      shortFile_(params.sim, params.associativeShort),
      file_(entries),
      longFile_(params.longEntries, 0),
      longAllocStalls_(stats_.addCounter("longAllocStalls",
          "writebacks delayed by Long file exhaustion")),
      recoveries_(stats_.addCounter("recoveries",
          "pseudo-deadlock recoveries (forced Long allocations)")),
      shortAllocAttempts_(stats_.addCounter("shortAllocAttempts",
          "address-path Short allocation attempts")),
      shortAllocHits_(stats_.addCounter("shortAllocHits",
          "address-path Short allocations that found/placed a group"))
{
    params_.validate();
    freeLong_.reserve(params_.longEntries);
    for (u32 i = 0; i < params_.longEntries; ++i)
        freeLong_.push_back(params_.longEntries - 1 - i);
    setThreadCount(1);
}

void
ContentAwareRegFile::setThreadCount(unsigned threads)
{
    threadCount_ = threads > 0 ? threads : 1;
    if (activeThread_ >= threadCount_)
        activeThread_ = 0;
    shortOwner_.assign(params_.sim.shortEntries(), 0);
    sharing_.shortHits.assign(threadCount_, 0);
    sharing_.crossShortHits.assign(threadCount_, 0);
}

void
ContentAwareRegFile::reset()
{
    RegisterFile::reset();
    shortFile_ = ShortFile(params_.sim, params_.associativeShort);
    file_.assign(entries_, Entry{});
    longFile_.assign(params_.longEntries, 0);
    freeLong_.clear();
    for (u32 i = 0; i < params_.longEntries; ++i)
        freeLong_.push_back(params_.longEntries - 1 - i);
    setThreadCount(threadCount_);
}

u64
ContentAwareRegFile::reconstruct(const Entry &entry) const
{
    const SimilarityParams &sim = params_.sim;
    unsigned field_bits = sim.simpleFieldBits();
    switch (entry.type) {
      case ValueType::Simple:
        return signExtend(entry.valueField, field_bits);
      case ValueType::Short:
        return (shortFile_.tag(entry.subIndex) << field_bits) |
               entry.valueField;
      case ValueType::Long: {
        unsigned low_bits = field_bits - params_.longPointerBits();
        u64 high = longFile_[entry.subIndex];
        return low_bits == 0 ? high : (high << low_bits) | entry.valueField;
      }
    }
    panic("ContentAwareRegFile: bad entry type");
}

ReadAccess
ContentAwareRegFile::read(u32 tag)
{
    const Entry &entry = file_.at(tag);
    if (!entry.live)
        panic("%s: read of dead tag %u", name_.c_str(), tag);
    ReadAccess access;
    access.type = entry.type;
    access.value = reconstruct(entry);
    countRead(entry.type);
    return access;
}

WriteAccess
ContentAwareRegFile::write(u32 tag, u64 value)
{
    return writeImpl(tag, value, false);
}

WriteAccess
ContentAwareRegFile::writeForced(u32 tag, u64 value)
{
    return writeImpl(tag, value, true);
}

WriteAccess
ContentAwareRegFile::writeImpl(u32 tag, u64 value, bool forced)
{
    Entry &entry = file_.at(tag);
    if (entry.live)
        panic("%s: double write of tag %u", name_.c_str(), tag);

    const SimilarityParams &sim = params_.sim;

    if (params_.allocShortOnAnyResult) {
        unsigned alloc_idx = 0;
        bool fresh = false;
        if (shortFile_.tryAllocate(value, alloc_idx, fresh) && fresh)
            notePlacement(alloc_idx);
    }

    unsigned short_idx = 0;
    ValueType type = classifyValue(value, sim, shortFile_, short_idx);

    WriteAccess access;
    access.type = type;

    switch (type) {
      case ValueType::Simple:
        entry.valueField = bits(value, 0, sim.simpleFieldBits());
        entry.subIndex = 0;
        break;
      case ValueType::Short:
        entry.valueField = bits(value, 0, sim.simpleFieldBits());
        entry.subIndex = short_idx;
        shortFile_.addRef(short_idx);
        shortFile_.touch(short_idx);
        // A Short-typed writeback is a hit on the resident group; when
        // the group was first placed by a different hardware thread it
        // is a cross-thread share (ROADMAP item 5 accounting).
        ++sharing_.shortHits[activeThread_];
        if (shortOwner_[short_idx] != activeThread_)
            ++sharing_.crossShortHits[activeThread_];
        break;
      case ValueType::Long: {
        if (freeLong_.empty()) {
            if (!forced) {
                ++longAllocStalls_;
                access.stalled = true;
                return access;
            }
            // Pseudo-deadlock recovery: grow an emergency overflow
            // entry. Real hardware stalls and drains; the overflow
            // entry stands in for the entry freed by that drain.
            ++recoveries_;
            freeLong_.push_back(static_cast<u32>(longFile_.size()));
            longFile_.push_back(0);
        }
        u32 long_idx = freeLong_.back();
        freeLong_.pop_back();
        unsigned low_bits =
            sim.simpleFieldBits() - params_.longPointerBits();
        longFile_[long_idx] = value >> low_bits;
        entry.valueField =
            low_bits == 0 ? 0 : bits(value, 0, low_bits);
        entry.subIndex = long_idx;
        break;
      }
    }

    entry.live = true;
    entry.type = type;
    countWrite(type);
    // WR1 probes the Short file once per integer writeback (the
    // classification compare); counted for the energy model.
    ++counts_.shortProbeReads;

    u64 check = reconstruct(entry);
    if (check != value) {
        panic("%s: reconstruction mismatch tag %u type %s: "
              "wrote %llx read %llx", name_.c_str(), tag,
              valueTypeName(type), (unsigned long long)value,
              (unsigned long long)check);
    }
    return access;
}

void
ContentAwareRegFile::release(u32 tag)
{
    Entry &entry = file_.at(tag);
    if (!entry.live)
        return;
    switch (entry.type) {
      case ValueType::Simple:
        break;
      case ValueType::Short:
        shortFile_.dropRef(entry.subIndex);
        break;
      case ValueType::Long:
        // Overflow entries created by pseudo-deadlock recovery retire
        // permanently; only real Long file entries return to the free
        // list, so recovery never inflates the modelled capacity.
        if (entry.subIndex < params_.longEntries)
            freeLong_.push_back(entry.subIndex);
        break;
    }
    entry.live = false;
}

void
ContentAwareRegFile::noteAddress(u64 addr)
{
    ++shortAllocAttempts_;
    unsigned alloc_idx = 0;
    bool fresh = false;
    if (shortFile_.tryAllocate(addr, alloc_idx, fresh)) {
        ++shortAllocHits_;
        if (fresh)
            notePlacement(alloc_idx);
    }
}

bool
ContentAwareRegFile::shouldStallIssue() const
{
    return freeLong_.size() <= params_.issueStallThreshold;
}

void
ContentAwareRegFile::onRobInterval()
{
    shortFile_.robIntervalTick();
}

unsigned
ContentAwareRegFile::liveLongEntries() const
{
    unsigned live = 0;
    for (const Entry &entry : file_)
        live += entry.live && entry.type == ValueType::Long ? 1 : 0;
    return live;
}

std::string
ContentAwareRegFile::checkInvariants() const
{
    std::string short_err = shortFile_.checkInvariants();
    if (!short_err.empty())
        return short_err;

    const SimilarityParams &sim = params_.sim;
    unsigned field_bits = sim.simpleFieldBits();
    unsigned long_low_bits = field_bits - params_.longPointerBits();

    std::vector<unsigned> short_refs(shortFile_.entries(), 0);
    std::vector<bool> long_owned(longFile_.size(), false);
    unsigned live_real_long = 0;

    for (u32 tag = 0; tag < entries_; ++tag) {
        const Entry &entry = file_[tag];
        if (!entry.live)
            continue;
        switch (entry.type) {
          case ValueType::Simple:
            if (field_bits < 64 && (entry.valueField >> field_bits) != 0)
                return strprintf("%s: tag %u simple field %llx exceeds "
                                 "%u bits", name_.c_str(), tag,
                                 (unsigned long long)entry.valueField,
                                 field_bits);
            break;
          case ValueType::Short:
            if (entry.subIndex >= shortFile_.entries())
                return strprintf("%s: tag %u short index %u out of "
                                 "range", name_.c_str(), tag,
                                 entry.subIndex);
            if (!shortFile_.valid(entry.subIndex))
                return strprintf("%s: tag %u references invalid Short "
                                 "slot %u", name_.c_str(), tag,
                                 entry.subIndex);
            if (field_bits < 64 && (entry.valueField >> field_bits) != 0)
                return strprintf("%s: tag %u short field %llx exceeds "
                                 "%u bits", name_.c_str(), tag,
                                 (unsigned long long)entry.valueField,
                                 field_bits);
            ++short_refs[entry.subIndex];
            break;
          case ValueType::Long:
            if (entry.subIndex >= longFile_.size())
                return strprintf("%s: tag %u long index %u out of "
                                 "range", name_.c_str(), tag,
                                 entry.subIndex);
            if (long_owned[entry.subIndex])
                return strprintf("%s: Long entry %u owned by two live "
                                 "tags", name_.c_str(), entry.subIndex);
            long_owned[entry.subIndex] = true;
            if (long_low_bits < 64 &&
                (entry.valueField >> long_low_bits) != 0)
                return strprintf("%s: tag %u long low field %llx "
                                 "exceeds %u bits", name_.c_str(), tag,
                                 (unsigned long long)entry.valueField,
                                 long_low_bits);
            if (entry.subIndex < params_.longEntries)
                ++live_real_long;
            break;
        }
    }

    for (unsigned i = 0; i < shortFile_.entries(); ++i) {
        if (shortFile_.refCount(i) != short_refs[i])
            return strprintf("%s: Short slot %u refcount %u != %u live "
                             "references", name_.c_str(), i,
                             shortFile_.refCount(i), short_refs[i]);
    }

    std::vector<bool> free_seen(longFile_.size(), false);
    for (u32 idx : freeLong_) {
        if (idx >= params_.longEntries)
            return strprintf("%s: overflow Long entry %u on the free "
                             "list", name_.c_str(), idx);
        if (free_seen[idx])
            return strprintf("%s: Long entry %u freed twice",
                             name_.c_str(), idx);
        free_seen[idx] = true;
        if (long_owned[idx])
            return strprintf("%s: Long entry %u both free and live",
                             name_.c_str(), idx);
    }
    if (freeLong_.size() + live_real_long != params_.longEntries)
        return strprintf("%s: %zu free + %u live Long entries != K=%u",
                         name_.c_str(), freeLong_.size(),
                         live_real_long, params_.longEntries);
    return "";
}

RegisterFile::StructureCounts
ContentAwareRegFile::structureCounts() const
{
    StructureCounts sc;
    sc.shortRefCounts.reserve(shortFile_.entries());
    for (unsigned i = 0; i < shortFile_.entries(); ++i)
        sc.shortRefCounts.push_back(shortFile_.refCount(i));
    sc.freeLong = freeLongEntries();
    sc.liveLong = liveLongEntries();
    sc.hasLongFile = true;
    return sc;
}

std::vector<BankGeometry>
ContentAwareRegFile::banks() const
{
    const SimilarityParams &sim = params_.sim;
    // Mirrors energy::caGeometry(): Simple holds the 2-bit RD field
    // plus the d+n-bit value field per tag; Short gets one extra read
    // port per core write port (WR1 compares) and two write ports
    // (the address-allocation path); Long is K entries of 64-d-n+m
    // bits.
    return {
        {"simple", entries_, sim.simpleFieldBits() + 2, readPorts_,
         writePorts_},
        {"short", sim.shortEntries(), sim.shortEntryBits(),
         readPorts_ + writePorts_, 2},
        {"long", params_.longEntries, params_.longEntryBits(), readPorts_,
         writePorts_},
    };
}

std::vector<EnergyTerm>
ContentAwareRegFile::energyTerms(const AccessCounts &counts,
                                 u64 short_alloc_writes) const
{
    auto idx = [](ValueType t) { return static_cast<unsigned>(t); };
    std::vector<BankGeometry> b = banks();
    const BankGeometry &simple = b[0];
    const BankGeometry &shortBank = b[1];
    const BankGeometry &longBank = b[2];
    // Same accounting, same order as energy::contentAwareEnergy().
    return {
        // Every architectural read first reads the Simple entry (RF1).
        {simple, counts.totalReads(), false},
        // RF2 touches the typed sub-file for short/long values.
        {shortBank, counts.reads[idx(ValueType::Short)], false},
        {longBank, counts.reads[idx(ValueType::Long)], false},
        // Every writeback writes the Simple entry (RD + value field).
        {simple, counts.totalWrites(), true},
        // Long-typed writebacks write the Long file.
        {longBank, counts.writes[idx(ValueType::Long)], true},
        // WR1 classification probes read the Short file.
        {shortBank, counts.shortProbeReads, false},
        // Address-path allocations write the Short file.
        {shortBank, short_alloc_writes, true},
    };
}

std::string
ContentAwareRegFile::describeExtra() const
{
    return strprintf(", d+n=%u, M=%u, K=%u", params_.sim.simpleFieldBits(),
                     params_.sim.shortEntries(), params_.longEntries);
}

ValueType
ContentAwareRegFile::peekType(u32 tag) const
{
    return file_.at(tag).type;
}

u64
ContentAwareRegFile::peekValue(u32 tag) const
{
    return reconstruct(file_.at(tag));
}

bool
ContentAwareRegFile::peekLive(u32 tag) const
{
    return file_.at(tag).live;
}

} // namespace carf::regfile
