#include "regfile/regfile.hh"

namespace carf::regfile
{

RegisterFile::RegisterFile(std::string name, unsigned entries)
    : name_(std::move(name)), entries_(entries), stats_(name_)
{
}

void
RegisterFile::reset()
{
    counts_ = AccessCounts{};
    stats_.resetAll();
}

} // namespace carf::regfile
