#include "regfile/regfile.hh"

#include "common/bitutil.hh"

namespace carf::regfile
{

RegisterFile::RegisterFile(std::string name, unsigned entries)
    : name_(std::move(name)), entries_(entries), stats_(name_)
{
}

void
RegisterFile::reset()
{
    counts_ = AccessCounts{};
    stats_.resetAll();
}

ValueType
RegisterFile::classifyPeek(u64 value) const
{
    // Without a Short file the taxonomy degenerates to simple/long;
    // use a 20-bit field (the paper's chosen d+n) for reporting.
    return fitsSigned(value, 20) ? ValueType::Simple : ValueType::Long;
}

std::vector<BankGeometry>
RegisterFile::banks() const
{
    return {{"file", entries_, 64, readPorts_, writePorts_}};
}

std::vector<EnergyTerm>
RegisterFile::energyTerms(const AccessCounts &counts,
                          u64 short_alloc_writes) const
{
    (void)short_alloc_writes;
    BankGeometry bank = banks().front();
    return {
        {bank, counts.totalReads(), false},
        {bank, counts.totalWrites(), true},
    };
}

} // namespace carf::regfile
