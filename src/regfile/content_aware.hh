/**
 * @file
 * The content-aware integer register file (paper §3).
 *
 * An N-entry Simple file (one entry per physical tag: 2-bit RD field
 * plus a d+n-bit value field), an M=2^n-entry Short file holding the
 * shared high-order bits of short value groups, and a K-entry Long
 * file for values that are neither simple nor short. Reads
 * reconstruct the 64-bit value from the sub-file fields — the model
 * stores no shadow copy of the full value, so the bit plumbing is
 * exercised for real.
 */

#ifndef CARF_REGFILE_CONTENT_AWARE_HH
#define CARF_REGFILE_CONTENT_AWARE_HH

#include "regfile/regfile.hh"

namespace carf::regfile
{

/** Configuration of the content-aware organization. */
struct ContentAwareParams
{
    SimilarityParams sim;
    /** Long file entries (K). */
    unsigned longEntries = 48;
    /**
     * Stall issue of integer-writing instructions when the number of
     * free Long entries drops to this threshold (§3.2 recommends the
     * issue width).
     */
    unsigned issueStallThreshold = 8;
    /** Ablation: fully-associative Short file instead of indexed. */
    bool associativeShort = false;
    /**
     * Ablation: try to allocate a Short entry for *every* integer
     * result instead of only load/store addresses (the paper reports
     * this thrashes the Short file).
     */
    bool allocShortOnAnyResult = false;

    /** Pointer width into the Long file (m = ceil(log2 K)). */
    unsigned longPointerBits() const;
    /** Width of a Long file entry: 64-d-n+m. */
    unsigned longEntryBits() const;

    void validate() const;
};

/** Three-sub-file register file with content-typed entries. */
class ContentAwareRegFile : public RegisterFile
{
  public:
    ContentAwareRegFile(std::string name, unsigned entries,
                        const ContentAwareParams &params);

    void reset() override;
    ReadAccess read(u32 tag) override;
    WriteAccess write(u32 tag, u64 value) override;
    void release(u32 tag) override;
    void noteAddress(u64 addr) override;
    bool shouldStallIssue() const override;
    void onRobInterval() override;

    ValueType peekType(u32 tag) const override;
    u64 peekValue(u32 tag) const override;
    bool peekLive(u32 tag) const override;

    /**
     * Pseudo-deadlock recovery (§3.2): complete a stalled Long write
     * by allocating from an emergency overflow pool. The core calls
     * this when the ROB head cannot write back for lack of a free
     * Long entry and no commit can make progress.
     */
    WriteAccess writeForced(u32 tag, u64 value) override;

    /** Classify @p value against current state, with no side effects. */
    ValueType classifyPeek(u64 value) const override
    {
        return classifyValue(value, params_.sim, shortFile_);
    }

    /** The taxonomy here is the model: drive the operand-mix stats. */
    bool hasValueTaxonomy() const override { return true; }

    unsigned freeLongEntries() const
    {
        return static_cast<unsigned>(freeLong_.size());
    }
    /** Tags currently live with a Long-typed value (overflow included). */
    unsigned liveLongEntries() const;
    /**
     * Emergency Long entries grown by §3.2 pseudo-deadlock recovery.
     * They retire permanently on release, so this only ever grows.
     */
    unsigned overflowLongEntries() const
    {
        return static_cast<unsigned>(longFile_.size()) -
               params_.longEntries;
    }
    unsigned liveShortEntries() const { return shortFile_.liveEntries(); }
    const ContentAwareParams &params() const { return params_; }
    const ShortFile &shortFile() const { return shortFile_; }

    /**
     * Sub-file index of @p tag's current entry (Short or Long file;
     * 0 for Simple). Debug/testing visibility for the shadow oracle's
     * reference-count model; counts no access.
     */
    unsigned peekSubIndex(u32 tag) const override
    {
        return file_.at(tag).subIndex;
    }

    Occupancy occupancy() const override
    {
        return {params_.longEntries - freeLongEntries(),
                liveShortEntries()};
    }
    u64 shortAllocWrites() const override { return shortFile_.allocations(); }
    u64 writeStalls() const override { return longAllocStalls_.value(); }
    u64 recoveries() const override { return recoveries_.value(); }

    std::vector<BankGeometry> banks() const override;
    std::vector<EnergyTerm>
    energyTerms(const AccessCounts &counts,
                u64 short_alloc_writes) const override;

    std::string describeExtra() const override;

    // --- SMT thread-context hooks ---

    /** Size the per-thread sharing counters to @p threads. */
    void setThreadCount(unsigned threads) override;
    /** Attribute subsequent writes to hardware thread @p tid. */
    void setActiveThread(unsigned tid) override
    {
        activeThread_ = tid < threadCount_ ? tid : 0;
    }
    SharingStats sharingStats() const override { return sharing_; }

    /**
     * Structural self-check (debug/testing): empty string when every
     * invariant holds, else a description of the first violation.
     *
     * Checked invariants:
     *  - ShortFile::checkInvariants() on the embedded Short file;
     *  - every live Short-typed tag points at a valid Short slot, and
     *    each slot's reference count equals the number of live tags
     *    pointing at it;
     *  - live Long-typed tags hold unique, in-bounds Long indices that
     *    are absent from the free list;
     *  - the free list holds unique real (non-overflow) indices, and
     *    free + live real Long entries account for exactly K;
     *  - every value field fits its configured bit width.
     */
    std::string checkInvariants() const override;

    StructureCounts structureCounts() const override;

    /** Leak a Short slot reference keyed by @p selector (tests only). */
    void debugInjectFault(u64 selector) override
    {
        shortFile_.addRef(static_cast<unsigned>(
            selector % params_.sim.shortEntries()));
    }

    /**
     * Mutable Short-file access for fault-injection tests ONLY: lets a
     * harness corrupt reference counts to prove the invariant checks
     * catch it. Never call from model code.
     */
    ShortFile &debugShortFile() { return shortFile_; }

    u64 longAllocStalls() const { return longAllocStalls_.value(); }

  private:
    struct Entry
    {
        bool live = false;
        ValueType type = ValueType::Simple;
        /** Low d+n bits for simple/short; low d+n-m bits for long. */
        u64 valueField = 0;
        /** Short file index (short) or Long file index (long). */
        unsigned subIndex = 0;
    };

    WriteAccess writeImpl(u32 tag, u64 value, bool forced);
    u64 reconstruct(const Entry &entry) const;
    /** Record a fresh Short-group placement by the active thread. */
    void notePlacement(unsigned idx) { shortOwner_.at(idx) = activeThread_; }

    ContentAwareParams params_;
    ShortFile shortFile_;
    std::vector<Entry> file_;
    /** Long entry values, indexed by long index (may grow on recovery). */
    std::vector<u64> longFile_;
    std::vector<u32> freeLong_;

    stats::Counter &longAllocStalls_;
    stats::Counter &recoveries_;
    stats::Counter &shortAllocAttempts_;
    stats::Counter &shortAllocHits_;

    /** SMT sharing accounting (setThreadCount/setActiveThread). */
    unsigned threadCount_ = 1;
    unsigned activeThread_ = 0;
    /** Thread whose allocation placed each slot's current group. */
    std::vector<unsigned> shortOwner_;
    SharingStats sharing_;
};

} // namespace carf::regfile

#endif // CARF_REGFILE_CONTENT_AWARE_HH
