/**
 * @file
 * Abstract integer physical register file model.
 *
 * The out-of-order core interacts with the register file through this
 * interface: physical tags are allocated/freed by rename/commit, while
 * the model tracks per-tag contents, classifies values, arbitrates
 * internal structures, and counts accesses for the energy model.
 */

#ifndef CARF_REGFILE_REGFILE_HH
#define CARF_REGFILE_REGFILE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "regfile/value_class.hh"

namespace carf::regfile
{

/** Result of a register-file read access. */
struct ReadAccess
{
    /** The 64-bit value reconstructed from the sub-files. */
    u64 value = 0;
    /** Content type of the accessed register. */
    ValueType type = ValueType::Long;
};

/** Result of a register-file write access. */
struct WriteAccess
{
    ValueType type = ValueType::Long;
    /**
     * True when the write could not complete this cycle (no free Long
     * entry); the writeback must retry. Never set by the baseline.
     */
    bool stalled = false;
};

/** Per-type access counters shared by all models. */
struct AccessCounts
{
    u64 reads[3] = {0, 0, 0};
    u64 writes[3] = {0, 0, 0};
    /** WR1 short-file probe reads (content-aware only). */
    u64 shortProbeReads = 0;

    u64 totalReads() const { return reads[0] + reads[1] + reads[2]; }
    u64 totalWrites() const { return writes[0] + writes[1] + writes[2]; }
};

/**
 * Integer physical register file model. Tags are dense indices in
 * [0, entries). The pipeline guarantees: write(tag) before any
 * read(tag); release(tag) only after the tag's value is dead.
 */
class RegisterFile
{
  public:
    RegisterFile(std::string name, unsigned entries);
    virtual ~RegisterFile() = default;

    unsigned entries() const { return entries_; }
    const std::string &name() const { return name_; }

    /** Reset all content state and statistics. */
    virtual void reset();

    /** Read the value held by @p tag (counts one access). */
    virtual ReadAccess read(u32 tag) = 0;

    /**
     * Write @p value into @p tag at writeback (counts one access).
     * May stall (content-aware Long allocation).
     */
    virtual WriteAccess write(u32 tag, u64 value) = 0;

    /** Tag freed (previous mapping released at commit). */
    virtual void release(u32 tag) = 0;

    /**
     * A load/store computed effective address @p addr (executed in
     * parallel with the ALU stage); used by the content-aware model
     * to populate the Short file. No-op for the baseline.
     */
    virtual void noteAddress(u64 addr) { (void)addr; }

    /**
     * Should the core stall issue of integer-writing instructions
     * (free-Long threshold, §3.2)?
     */
    virtual bool shouldStallIssue() const { return false; }

    /** Called once per ROB interval (ROB-size commits). */
    virtual void onRobInterval() {}

    /** Peek at a tag's current content type (no access counted). */
    virtual ValueType peekType(u32 tag) const = 0;
    /** Peek at a tag's value (no access counted). */
    virtual u64 peekValue(u32 tag) const = 0;
    /** True when the tag currently holds a written, live value. */
    virtual bool peekLive(u32 tag) const = 0;

    const AccessCounts &accessCounts() const { return counts_; }
    /** Zero the access counters (e.g.\ after warm-up writes). */
    void clearAccessCounts() { counts_ = AccessCounts{}; }
    stats::StatGroup &statGroup() { return stats_; }

  protected:
    void countRead(ValueType type)
    {
        ++counts_.reads[static_cast<unsigned>(type)];
    }
    void countWrite(ValueType type)
    {
        ++counts_.writes[static_cast<unsigned>(type)];
    }

    std::string name_;
    unsigned entries_;
    AccessCounts counts_;
    stats::StatGroup stats_;
};

} // namespace carf::regfile

#endif // CARF_REGFILE_REGFILE_HH
