/**
 * @file
 * Abstract integer physical register file model (the RegFileModel
 * contract).
 *
 * The out-of-order core interacts with the register file through this
 * interface: physical tags are allocated/freed by rename/commit, while
 * the model tracks per-tag contents, classifies values, arbitrates
 * internal structures, and counts accesses for the energy model.
 *
 * Beyond the data path (read/write/release), the contract carries
 * every hook the rest of the system needs so no caller has to
 * special-case a concrete backend:
 *
 *  - **classification**: classifyPeek() / hasValueTaxonomy() feed the
 *    operand-mix and clustering statistics;
 *  - **port arbitration**: beginCycle() / canServeReads() /
 *    consumeReadPorts() let a model impose its own per-cycle port
 *    limits on top of the core's (port-reduction backends);
 *  - **energy/area/delay reporting**: banks() describes the model's
 *    storage arrays and energyTerms() its per-access accounting, both
 *    evaluated by the Rixner model in src/energy;
 *  - **summary counters**: occupancy(), shortAllocWrites(),
 *    writeStalls(), recoveries(), portStats() populate RunResult
 *    without the pipeline knowing which backend it drives;
 *  - **verification**: checkInvariants(), structureCounts(), and
 *    debugInjectFault() give the shadow-oracle fuzzer structural
 *    visibility into any backend through the base class alone.
 *
 * Every hook has a legacy-preserving default, so a minimal backend
 * only implements the pure-virtual data path. Concrete backends are
 * instantiated by name through the factory in regfile/registry.hh.
 */

#ifndef CARF_REGFILE_REGFILE_HH
#define CARF_REGFILE_REGFILE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "regfile/value_class.hh"

namespace carf::regfile
{

/** Result of a register-file read access. */
struct ReadAccess
{
    /** The 64-bit value reconstructed from the sub-files. */
    u64 value = 0;
    /** Content type of the accessed register. */
    ValueType type = ValueType::Long;
};

/** Result of a register-file write access. */
struct WriteAccess
{
    ValueType type = ValueType::Long;
    /**
     * True when the write could not complete this cycle (no free Long
     * entry); the writeback must retry. Never set by the baseline.
     */
    bool stalled = false;
};

/** Per-type access counters shared by all models. */
struct AccessCounts
{
    u64 reads[3] = {0, 0, 0};
    u64 writes[3] = {0, 0, 0};
    /** WR1 short-file probe reads (content-aware only). */
    u64 shortProbeReads = 0;

    u64 totalReads() const { return reads[0] + reads[1] + reads[2]; }
    u64 totalWrites() const { return writes[0] + writes[1] + writes[2]; }
};

/** Geometry of one storage bank of a model (Rixner evaluation). */
struct BankGeometry
{
    std::string label;
    unsigned entries = 0;
    unsigned widthBits = 0;
    unsigned readPorts = 0;
    unsigned writePorts = 0;
};

/**
 * One term of a model's energy accounting: @p accesses read or write
 * accesses to @p bank. Terms are ORDERED — energy evaluation sums
 * them left to right, so a backend emits terms in its canonical
 * accounting order and the printed totals are bit-stable.
 */
struct EnergyTerm
{
    BankGeometry bank;
    u64 accesses = 0;
    bool isWrite = false;
};

/**
 * Integer physical register file model. Tags are dense indices in
 * [0, entries). The pipeline guarantees: write(tag) before any
 * read(tag); release(tag) only after the tag's value is dead.
 */
class RegisterFile
{
  public:
    RegisterFile(std::string name, unsigned entries);
    virtual ~RegisterFile() = default;

    unsigned entries() const { return entries_; }
    const std::string &name() const { return name_; }

    /** Reset all content state and statistics. */
    virtual void reset();

    /** Read the value held by @p tag (counts one access). */
    virtual ReadAccess read(u32 tag) = 0;

    /**
     * Write @p value into @p tag at writeback (counts one access).
     * May stall (content-aware Long allocation).
     */
    virtual WriteAccess write(u32 tag, u64 value) = 0;

    /**
     * Complete a write that must not stall (§3.2 pseudo-deadlock
     * recovery at the ROB head). Models without a stalling write path
     * treat this as a plain write.
     */
    virtual WriteAccess writeForced(u32 tag, u64 value)
    {
        return write(tag, value);
    }

    /** Tag freed (previous mapping released at commit). */
    virtual void release(u32 tag) = 0;

    /**
     * A load/store computed effective address @p addr (executed in
     * parallel with the ALU stage); used by the content-aware model
     * to populate the Short file. No-op for the baseline.
     */
    virtual void noteAddress(u64 addr) { (void)addr; }

    /**
     * Should the core stall issue of integer-writing instructions
     * (free-Long threshold, §3.2)?
     */
    virtual bool shouldStallIssue() const { return false; }

    /** Called once per ROB interval (ROB-size commits). */
    virtual void onRobInterval() {}

    // --- per-cycle read-port arbitration hook ---

    /** Start of a core cycle: reset any per-cycle port accounting. */
    virtual void beginCycle() {}

    /**
     * Can the model serve @p n more read accesses this cycle (on top
     * of what consumeReadPorts() already claimed)? A model that
     * returns false records a port conflict in its own statistics;
     * the core skips the instruction this cycle. Default: always.
     */
    virtual bool canServeReads(unsigned n)
    {
        (void)n;
        return true;
    }

    /** Claim @p n read ports for this cycle (issue committed). */
    virtual void consumeReadPorts(unsigned n) { (void)n; }

    /** Port-conflict totals (port-reduction backends). */
    struct PortStats
    {
        /** Issue attempts refused for lack of model read ports. */
        u64 conflictOps = 0;
        /** Cycles in which at least one refusal happened. */
        u64 conflictCycles = 0;
    };
    virtual PortStats portStats() const { return {}; }

    // --- classification hooks ---

    /**
     * Classify @p value against current model state, with no side
     * effects. The default applies the baseline reporting taxonomy
     * (sign-extends from 20 bits => Simple, else Long).
     */
    virtual ValueType classifyPeek(u64 value) const;

    /**
     * True when classifyPeek() reflects a real content taxonomy the
     * model maintains (drives the operand-mix / clustering stats);
     * false when classification exists only for reporting parity.
     */
    virtual bool hasValueTaxonomy() const { return false; }

    /** Peek at a tag's current content type (no access counted). */
    virtual ValueType peekType(u32 tag) const = 0;
    /** Peek at a tag's value (no access counted). */
    virtual u64 peekValue(u32 tag) const = 0;
    /** True when the tag currently holds a written, live value. */
    virtual bool peekLive(u32 tag) const = 0;

    /**
     * Sub-structure index of @p tag's current entry (Short or Long
     * file index; 0 for models without sub-structures). Testing
     * visibility for the shadow oracle; counts no access.
     */
    virtual unsigned peekSubIndex(u32 tag) const
    {
        (void)tag;
        return 0;
    }

    // --- summary counters (RunResult population) ---

    /** Live sub-structure occupancy sampled once per cycle. */
    struct Occupancy
    {
        unsigned liveLong = 0;
        unsigned liveShort = 0;
    };
    virtual Occupancy occupancy() const { return {}; }

    /** Internal allocation writes surfaced as short_file_writes. */
    virtual u64 shortAllocWrites() const { return 0; }
    /** Writebacks delayed waiting for an internal allocation. */
    virtual u64 writeStalls() const { return 0; }
    /** Forced-write recoveries (§3.2 pseudo-deadlock). */
    virtual u64 recoveries() const { return 0; }

    // --- energy / area / delay reporting hooks ---

    /**
     * The model's storage banks, in canonical order. Total area is
     * the ordered sum of per-bank areas; access time is the slowest
     * bank. Default: one flat 64-bit array of entries() registers
     * with the core-side port counts (see setPortGeometry()).
     */
    virtual std::vector<BankGeometry> banks() const;

    /**
     * Per-access energy accounting of a run with access totals
     * @p counts (and @p short_alloc_writes internal allocation
     * writes), as ordered terms. Default: every read and write
     * touches the single flat bank.
     */
    virtual std::vector<EnergyTerm>
    energyTerms(const AccessCounts &counts, u64 short_alloc_writes) const;

    /**
     * Core-side port counts used for geometry/energy reporting; set
     * by the registry factory from RegFileParams. Defaults match the
     * paper baseline (8R/6W).
     */
    void setPortGeometry(unsigned read_ports, unsigned write_ports)
    {
        readPorts_ = read_ports;
        writePorts_ = write_ports;
    }

    /**
     * Model-specific suffix for configuration descriptions, e.g.
     * ", d+n=20, M=8, K=48". Empty for plain models.
     */
    virtual std::string describeExtra() const { return ""; }

    // --- SMT thread-context hooks ---

    /**
     * Declare how many hardware threads share this file (sizes the
     * per-thread sharing counters). Models without sharing accounting
     * ignore it. Called once before any thread-attributed access.
     */
    virtual void setThreadCount(unsigned threads) { (void)threads; }

    /**
     * Attribute subsequent accesses to hardware thread @p tid. The
     * SMT pipeline calls this before every write it performs on a
     * thread's behalf; single-thread callers never need to (thread 0
     * is the default context).
     */
    virtual void setActiveThread(unsigned tid) { (void)tid; }

    /**
     * Per-thread Short-file sharing accounting (content-aware SMT,
     * ROADMAP item 5). shortHits[t] counts Short-typed writebacks by
     * thread t; crossShortHits[t] counts the subset that hit a group
     * first allocated by a *different* thread (a cross-thread share).
     * Empty vectors for models without a Short file.
     */
    struct SharingStats
    {
        std::vector<u64> shortHits;
        std::vector<u64> crossShortHits;

        u64 totalShortHits() const
        {
            u64 sum = 0;
            for (u64 v : shortHits)
                sum += v;
            return sum;
        }
        u64 totalCrossShortHits() const
        {
            u64 sum = 0;
            for (u64 v : crossShortHits)
                sum += v;
            return sum;
        }
    };
    virtual SharingStats sharingStats() const { return {}; }

    // --- verification hooks (shadow-oracle fuzzer) ---

    /**
     * Structural self-check (debug/testing): empty string when every
     * model invariant holds, else a description of the first
     * violation. Models without internal structure have nothing to
     * violate.
     */
    virtual std::string checkInvariants() const { return ""; }

    /**
     * Expected sub-structure occupancy for double-entry verification:
     * per-Short-slot reference counts and Long free-list state. The
     * shadow oracle sizes and cross-checks its books from this alone,
     * so any backend is fuzzable without casts. Default: no
     * sub-structures.
     */
    struct StructureCounts
    {
        std::vector<unsigned> shortRefCounts;
        unsigned freeLong = 0;
        unsigned liveLong = 0;
        bool hasLongFile = false;
    };
    virtual StructureCounts structureCounts() const { return {}; }

    /**
     * Fault injection for harness self-tests ONLY: corrupt internal
     * state keyed by @p selector (e.g. leak a Short reference) so a
     * test can prove the invariant checks catch it. No-op for models
     * without corruptible sub-structures; never call from model code.
     */
    virtual void debugInjectFault(u64 selector) { (void)selector; }

    const AccessCounts &accessCounts() const { return counts_; }
    /** Zero the access counters (e.g.\ after warm-up writes). */
    void clearAccessCounts() { counts_ = AccessCounts{}; }
    stats::StatGroup &statGroup() { return stats_; }

  protected:
    void countRead(ValueType type)
    {
        ++counts_.reads[static_cast<unsigned>(type)];
    }
    void countWrite(ValueType type)
    {
        ++counts_.writes[static_cast<unsigned>(type)];
    }

    std::string name_;
    unsigned entries_;
    /** Core-side port counts for reporting (see setPortGeometry). */
    unsigned readPorts_ = 8;
    unsigned writePorts_ = 6;
    AccessCounts counts_;
    stats::StatGroup stats_;
};

/**
 * The register-file contract by its interface name: every backend in
 * the registry is a RegFileModel.
 */
using RegFileModel = RegisterFile;

} // namespace carf::regfile

#endif // CARF_REGFILE_REGFILE_HH
