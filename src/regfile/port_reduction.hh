/**
 * @file
 * Read-port-count-reduction register file (after Los,
 * arXiv:2502.00147): a conventional flat file whose array exposes
 * only a small pool of shared read ports, far fewer than the issue
 * width could demand in a peak cycle.
 *
 * The scheme banks on operand bypassing: most source operands arrive
 * over the forwarding network and never touch the file, so the
 * average read-port demand is well below the worst case. The model
 * plugs into the core's port-arbitration hook — the pipeline already
 * charges ports only for operands sourced from the file
 * (OperandSource::RegFile), which is exactly the bypass-aware operand
 * filtering the scheme requires — and refuses issue of instructions
 * whose residual file reads exceed the per-cycle pool. Refusals are
 * per-cycle conflict stalls: the instruction retries next cycle.
 *
 * Energy/area/delay win: the array is built with sharedReadPorts
 * read ports instead of the core's full complement, and port count
 * enters the Rixner model quadratically in area.
 */

#ifndef CARF_REGFILE_PORT_REDUCTION_HH
#define CARF_REGFILE_PORT_REDUCTION_HH

#include "regfile/baseline.hh"

namespace carf::regfile
{

/** Configuration of the port-reduction organization. */
struct PortReductionParams
{
    /**
     * Read ports actually built into the array and shared by all
     * issuing instructions each cycle. Must be >= 2: a two-source
     * consumer of non-bypassable operands needs both in one cycle.
     */
    unsigned sharedReadPorts = 4;

    void validate() const;
};

/** Flat register file with a reduced shared read-port pool. */
class PortReductionRegFile : public BaselineRegFile
{
  public:
    PortReductionRegFile(std::string name, unsigned entries,
                         const PortReductionParams &params);

    void reset() override;

    void beginCycle() override;
    bool canServeReads(unsigned n) override;
    void consumeReadPorts(unsigned n) override;
    PortStats portStats() const override;

    std::string checkInvariants() const override;

    std::vector<BankGeometry> banks() const override;
    std::string describeExtra() const override;

    const PortReductionParams &params() const { return params_; }
    /** Read ports already claimed this cycle. */
    unsigned usedReadPorts() const { return usedReadPorts_; }

  private:
    PortReductionParams params_;
    unsigned usedReadPorts_ = 0;
    bool conflictThisCycle_ = false;

    stats::Counter &conflictOps_;
    stats::Counter &conflictCycles_;
};

} // namespace carf::regfile

#endif // CARF_REGFILE_PORT_REDUCTION_HH
