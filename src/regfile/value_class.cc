#include "regfile/value_class.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace carf::regfile
{

const char *
valueTypeName(ValueType type)
{
    switch (type) {
      case ValueType::Simple: return "simple";
      case ValueType::Short: return "short";
      case ValueType::Long: return "long";
    }
    return "?";
}

void
SimilarityParams::validate() const
{
    if (d_ < 1 || n_ < 1 || d_ + n_ >= 64)
        fatal("SimilarityParams: bad d=%u n=%u", d_, n_);
    if (n_ > 8)
        fatal("SimilarityParams: short file too large (n=%u)", n_);
}

ShortFile::ShortFile(const SimilarityParams &params, bool associative)
    : params_(params), associative_(associative),
      slots_(params.shortEntries())
{
    params_.validate();
}

bool
ShortFile::lookup(u64 value, unsigned &idx_out) const
{
    u64 tag = params_.shortTag(value);
    if (associative_) {
        // Full tag for associative search includes the index bits,
        // since any slot may hold any group.
        u64 full = value >> params_.d();
        for (unsigned i = 0; i < slots_.size(); ++i) {
            if (slots_[i].valid && slots_[i].tag == full) {
                idx_out = i;
                return true;
            }
        }
        return false;
    }
    unsigned idx = params_.shortIndex(value);
    if (slots_[idx].valid && slots_[idx].tag == tag) {
        idx_out = idx;
        return true;
    }
    return false;
}

bool
ShortFile::tryAllocate(u64 value)
{
    unsigned idx;
    bool fresh;
    return tryAllocate(value, idx, fresh);
}

bool
ShortFile::tryAllocate(u64 value, unsigned &idx_out, bool &fresh_out)
{
    fresh_out = false;
    if (lookup(value, idx_out))
        return true;

    if (associative_) {
        u64 full = value >> params_.d();
        for (unsigned i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].valid) {
                slots_[i] = Slot{};
                slots_[i].valid = true;
                slots_[i].tag = full;
                ++allocations_;
                idx_out = i;
                fresh_out = true;
                return true;
            }
        }
        return false;
    }

    unsigned slot = params_.shortIndex(value);
    if (slots_[slot].valid)
        return false;
    slots_[slot] = Slot{};
    slots_[slot].valid = true;
    slots_[slot].tag = params_.shortTag(value);
    ++allocations_;
    idx_out = slot;
    fresh_out = true;
    return true;
}

void
ShortFile::touch(unsigned idx)
{
    slots_.at(idx).tcur = true;
}

void
ShortFile::addRef(unsigned idx)
{
    ++slots_.at(idx).refs;
}

void
ShortFile::dropRef(unsigned idx)
{
    Slot &slot = slots_.at(idx);
    if (slot.refs == 0)
        panic("ShortFile: dropRef on idx %u with zero refs", idx);
    --slot.refs;
}

void
ShortFile::robIntervalTick()
{
    for (Slot &slot : slots_) {
        if (!slot.valid)
            continue;
        // Tarch is recomputed from the live references; an entry was
        // "used this interval" if a short-typed result touched it or a
        // live register still points at it. An entry is reclaimed only
        // when it was unused in both this interval and the previous
        // one (Told, Tcur, and Tarch all clear).
        bool used = slot.tcur || slot.refs > 0;
        if (!used && !slot.told && slot.refs == 0) {
            slot.valid = false;
            ++reclamations_;
        } else {
            slot.told = used;
            slot.tcur = false;
        }
    }
}

std::string
ShortFile::checkInvariants() const
{
    unsigned tag_bits = associative_ ? 64 - params_.d()
                                     : params_.shortEntryBits();
    for (unsigned i = 0; i < slots_.size(); ++i) {
        const Slot &slot = slots_[i];
        if (!slot.valid) {
            // Reclamation requires refs == 0 and both epoch bits
            // clear, and allocation resets the slot, so an invalid
            // slot must carry no stale bookkeeping.
            if (slot.refs != 0)
                return strprintf("ShortFile: invalid slot %u has %u "
                                 "refs", i, slot.refs);
            if (slot.tcur || slot.told)
                return strprintf("ShortFile: invalid slot %u has "
                                 "epoch bits set", i);
            continue;
        }
        if (tag_bits < 64 && (slot.tag >> tag_bits) != 0)
            return strprintf("ShortFile: slot %u tag %llx exceeds "
                             "%u bits", i,
                             (unsigned long long)slot.tag, tag_bits);
    }
    return "";
}

u64
ShortFile::tag(unsigned idx) const
{
    const Slot &slot = slots_.at(idx);
    // Associative slots store the full (64-d)-bit group id; drop the
    // low n bits to get the canonical high field.
    return associative_ ? slot.tag >> params_.n() : slot.tag;
}

unsigned
ShortFile::liveEntries() const
{
    unsigned live = 0;
    for (const Slot &slot : slots_)
        live += slot.valid ? 1 : 0;
    return live;
}

ValueType
classifyValue(u64 value, const SimilarityParams &params,
              const ShortFile &short_file, unsigned &short_idx)
{
    if (params.isSimple(value))
        return ValueType::Simple;
    if (short_file.lookup(value, short_idx))
        return ValueType::Short;
    return ValueType::Long;
}

ValueType
classifyValue(u64 value, const SimilarityParams &params,
              const ShortFile &short_file)
{
    unsigned idx;
    return classifyValue(value, params, short_file, idx);
}

} // namespace carf::regfile
