#include "regfile/port_reduction.hh"

#include "common/logging.hh"
#include "regfile/registry.hh"

namespace carf::regfile
{

namespace detail
{

void
registerPortReductionBackend(Registry &r)
{
    r.add("port-reduction",
          "flat file with a reduced shared read-port pool (Los scheme)",
          [](const std::string &instance, const RegFileParams &params) {
              auto file = std::make_unique<PortReductionRegFile>(
                  instance, params.entries, params.portRed);
              file->setPortGeometry(params.readPorts, params.writePorts);
              return std::unique_ptr<RegisterFile>(std::move(file));
          });
}

} // namespace detail

void
PortReductionParams::validate() const
{
    // An instruction may need one file read per source operand in a
    // single cycle; fewer than two shared ports would deadlock
    // two-source consumers of non-bypassable operands.
    if (sharedReadPorts < 2)
        fatal("PortReductionParams: need at least 2 shared read ports");
}

PortReductionRegFile::PortReductionRegFile(std::string name,
                                           unsigned entries,
                                           const PortReductionParams &params)
    : BaselineRegFile(std::move(name), entries),
      params_(params),
      conflictOps_(stats_.addCounter("portConflictOps",
          "issue attempts refused for lack of shared read ports")),
      conflictCycles_(stats_.addCounter("portConflictCycles",
          "cycles with at least one read-port refusal"))
{
    params_.validate();
}

void
PortReductionRegFile::reset()
{
    BaselineRegFile::reset();
    usedReadPorts_ = 0;
    conflictThisCycle_ = false;
}

void
PortReductionRegFile::beginCycle()
{
    usedReadPorts_ = 0;
    conflictThisCycle_ = false;
}

bool
PortReductionRegFile::canServeReads(unsigned n)
{
    if (usedReadPorts_ + n <= params_.sharedReadPorts)
        return true;
    ++conflictOps_;
    if (!conflictThisCycle_) {
        conflictThisCycle_ = true;
        ++conflictCycles_;
    }
    return false;
}

void
PortReductionRegFile::consumeReadPorts(unsigned n)
{
    if (usedReadPorts_ + n > params_.sharedReadPorts) {
        panic("%s: %u reads consumed past the %u shared ports",
              name_.c_str(), usedReadPorts_ + n, params_.sharedReadPorts);
    }
    usedReadPorts_ += n;
}

RegisterFile::PortStats
PortReductionRegFile::portStats() const
{
    return {conflictOps_.value(), conflictCycles_.value()};
}

std::string
PortReductionRegFile::checkInvariants() const
{
    if (usedReadPorts_ > params_.sharedReadPorts) {
        return strprintf("%s: %u read ports in use exceeds pool of %u",
                         name_.c_str(), usedReadPorts_,
                         params_.sharedReadPorts);
    }
    return "";
}

std::vector<BankGeometry>
PortReductionRegFile::banks() const
{
    // The whole point: the array is built with the reduced read-port
    // pool, which enters the area model quadratically.
    return {{"file", entries_, 64, params_.sharedReadPorts, writePorts_}};
}

std::string
PortReductionRegFile::describeExtra() const
{
    return strprintf(", shared-rd=%u", params_.sharedReadPorts);
}

} // namespace carf::regfile
