#include "regfile/baseline.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "regfile/registry.hh"

namespace carf::regfile
{

namespace
{

std::unique_ptr<RegisterFile>
makeFlat(const std::string &instance, const RegFileParams &params)
{
    auto file = std::make_unique<BaselineRegFile>(instance, params.entries);
    file->setPortGeometry(params.readPorts, params.writePorts);
    return file;
}

} // namespace

namespace detail
{

void
registerFlatBackends(Registry &r)
{
    r.add("baseline",
          "conventional flat 64-bit file (paper baseline geometry)",
          makeFlat);
    r.add("unlimited",
          "conventional flat file sized/ported to never constrain issue",
          makeFlat);
}

} // namespace detail

BaselineRegFile::BaselineRegFile(std::string name, unsigned entries)
    : RegisterFile(std::move(name), entries), file_(entries)
{
}

void
BaselineRegFile::reset()
{
    RegisterFile::reset();
    file_.assign(entries_, Entry{});
}

ReadAccess
BaselineRegFile::read(u32 tag)
{
    const Entry &e = file_.at(tag);
    if (!e.live)
        panic("%s: read of dead tag %u", name_.c_str(), tag);
    ReadAccess access;
    access.value = e.value;
    access.type = peekType(tag);
    countRead(access.type);
    return access;
}

WriteAccess
BaselineRegFile::write(u32 tag, u64 value)
{
    Entry &e = file_.at(tag);
    e.live = true;
    e.value = value;
    WriteAccess access;
    access.type = peekType(tag);
    countWrite(access.type);
    return access;
}

void
BaselineRegFile::release(u32 tag)
{
    file_.at(tag).live = false;
}

ValueType
BaselineRegFile::peekType(u32 tag) const
{
    // Without a Short file the taxonomy degenerates to simple/long;
    // use a 20-bit field (the paper's chosen d+n) for reporting.
    return fitsSigned(file_.at(tag).value, 20) ? ValueType::Simple
                                               : ValueType::Long;
    }

u64
BaselineRegFile::peekValue(u32 tag) const
{
    return file_.at(tag).value;
}

bool
BaselineRegFile::peekLive(u32 tag) const
{
    return file_.at(tag).live;
}

} // namespace carf::regfile
