/**
 * @file
 * String-keyed factory registry for register-file backends.
 *
 * Every RegFileModel implementation registers itself under a stable
 * name ("baseline", "content-aware", "port-reduction", ...); the core
 * instantiates whatever name its parameters carry, so adding a new
 * organization touches no pipeline code, no bench driver, and no
 * fuzzer — registration alone makes a backend simulatable,
 * benchmarkable, and fuzzable everywhere.
 *
 * Built-in backends live in their own translation units and are
 * registered on first use of registry() (which also anchors their
 * archive members against linker dead-stripping); external backends —
 * tests, experiments — self-register with a static RegFileRegistrar.
 * See DESIGN.md "Register-file backend zoo" for the how-to.
 */

#ifndef CARF_REGFILE_REGISTRY_HH
#define CARF_REGFILE_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "regfile/content_aware.hh"
#include "regfile/port_reduction.hh"
#include "regfile/regfile.hh"

namespace carf::regfile
{

/**
 * Aggregate construction parameters understood by every backend. A
 * backend picks the members it needs and ignores the rest, so one
 * parameter bundle travels from CoreParams to any factory.
 */
struct RegFileParams
{
    /** Physical tags. */
    unsigned entries = 112;
    /** Core-side read/write ports (geometry/energy reporting). */
    unsigned readPorts = 8;
    unsigned writePorts = 6;
    /** Content-aware sub-file configuration. */
    ContentAwareParams ca;
    /** Port-reduction pool configuration. */
    PortReductionParams portRed;
};

/** Name-keyed collection of backend factories. */
class Registry
{
  public:
    using Factory = std::function<std::unique_ptr<RegisterFile>(
        const std::string &instance, const RegFileParams &params)>;

    struct Backend
    {
        std::string name;
        std::string description;
        Factory factory;
    };

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Register a backend; fatal() on a duplicate name. */
    void add(std::string name, std::string description, Factory factory);

    /** Look up a backend; nullptr when unknown. */
    const Backend *find(const std::string &name) const;

    /** Look up a backend; fatal() with the known names when unknown. */
    const Backend &at(const std::string &name) const;

    /** All registered backend names, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    /** unique_ptr members keep Backend pointers stable across add(). */
    std::vector<std::unique_ptr<Backend>> backends_;
};

/**
 * The process-wide backend registry. First use registers the built-in
 * backends, so the zoo is complete regardless of static-init order.
 */
Registry &registry();

/**
 * Instantiate backend @p name with @p params; fatal() on an unknown
 * name. @p instance names the created file for stats/log output.
 */
std::unique_ptr<RegisterFile>
makeRegFile(const std::string &name, const RegFileParams &params,
            const std::string &instance = "intRf");

/**
 * Self-registration handle for external backends: declare a static
 * RegFileRegistrar in the backend's translation unit and the backend
 * is in the zoo before main() runs.
 */
class RegFileRegistrar
{
  public:
    RegFileRegistrar(const char *name, const char *description,
                     Registry::Factory factory)
    {
        registry().add(name, description, std::move(factory));
    }
};

} // namespace carf::regfile

#endif // CARF_REGFILE_REGISTRY_HH
