/**
 * @file
 * Set-associative cache timing model with LRU replacement.
 *
 * Functional data lives in the emulator's MemoryImage; these caches
 * model hit/miss behaviour and latency only, which is all the paper's
 * evaluation needs (Table 1 fixes the hierarchy).
 */

#ifndef CARF_MEM_CACHE_HH
#define CARF_MEM_CACHE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace carf::mem
{

/** Cache geometry and timing parameters. */
struct CacheParams
{
    std::string name = "cache";
    size_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    /** Latency added on a hit in this level. */
    Cycle hitLatency = 1;
};

/** LRU set-associative cache (timing/tag array only). */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access the line holding @p addr, updating tags and LRU state.
     * @retval true on a hit
     */
    bool access(Addr addr);

    /** Probe without mutating state. */
    bool probe(Addr addr) const;

    const CacheParams &params() const { return params_; }
    u64 hits() const { return hits_.value(); }
    u64 misses() const { return misses_.value(); }
    double missRate() const;

    stats::StatGroup &statGroup() { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        u64 tag = 0;
        /** Higher = more recently used. */
        u64 lruStamp = 0;
    };

    size_t setIndex(Addr addr) const;
    u64 tagOf(Addr addr) const;

    CacheParams params_;
    unsigned lineShift_;
    size_t numSets_;
    std::vector<Line> lines_; // numSets_ * assoc, set-major
    u64 stamp_ = 0;

    stats::StatGroup stats_;
    stats::Counter &hits_;
    stats::Counter &misses_;
};

} // namespace carf::mem

#endif // CARF_MEM_CACHE_HH
