/**
 * @file
 * Two-level cache hierarchy with the paper's Table 1 defaults:
 * I-L1 32KB/4-way/1cy, D-L1 32KB/4-way/1cy (2 ports), L2 1MB/4-way/
 * 10cy, memory 100cy.
 */

#ifndef CARF_MEM_HIERARCHY_HH
#define CARF_MEM_HIERARCHY_HH

#include "mem/cache.hh"

namespace carf::mem
{

/** Hierarchy parameters (Table 1 defaults). */
struct HierarchyParams
{
    CacheParams il1{"il1", 32 * 1024, 4, 64, 1};
    CacheParams dl1{"dl1", 32 * 1024, 4, 64, 1};
    CacheParams l2{"l2", 1024 * 1024, 4, 64, 10};
    Cycle memoryLatency = 100;
    unsigned dl1Ports = 2;
};

/**
 * Unified L2 behind split L1s. Returns total access latency for a
 * reference; misses propagate downward.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /** Instruction fetch for the line containing @p pc-address. */
    Cycle instAccess(Addr addr);

    /** Data access (load or store allocate-on-miss). */
    Cycle dataAccess(Addr addr);

    unsigned dl1Ports() const { return params_.dl1Ports; }

    const Cache &il1() const { return il1_; }
    const Cache &dl1() const { return dl1_; }
    const Cache &l2() const { return l2_; }

  private:
    HierarchyParams params_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
};

} // namespace carf::mem

#endif // CARF_MEM_HIERARCHY_HH
