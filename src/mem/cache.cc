#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace carf::mem
{

Cache::Cache(const CacheParams &params)
    : params_(params),
      stats_(params.name),
      hits_(stats_.addCounter("hits", "cache hits")),
      misses_(stats_.addCounter("misses", "cache misses"))
{
    if (!isPowerOf2(params_.lineBytes))
        fatal("%s: line size must be a power of two", params_.name.c_str());
    if (params_.sizeBytes % (params_.lineBytes * params_.assoc) != 0)
        fatal("%s: size not divisible by line*assoc", params_.name.c_str());
    lineShift_ = log2Ceil(params_.lineBytes);
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    if (!isPowerOf2(numSets_))
        fatal("%s: set count must be a power of two", params_.name.c_str());
    lines_.resize(numSets_ * params_.assoc);
}

size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

u64
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

bool
Cache::access(Addr addr)
{
    ++stamp_;
    size_t base = setIndex(addr) * params_.assoc;
    u64 tag = tagOf(addr);

    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = lines_[base + way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = stamp_;
            ++hits_;
            return true;
        }
    }

    // Miss: fill into the LRU way.
    unsigned victim = 0;
    u64 oldest = ~u64{0};
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = lines_[base + way];
        if (!line.valid) {
            victim = way;
            break;
        }
        if (line.lruStamp < oldest) {
            oldest = line.lruStamp;
            victim = way;
        }
    }
    Line &fill = lines_[base + victim];
    fill.valid = true;
    fill.tag = tag;
    fill.lruStamp = stamp_;
    ++misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    size_t base = setIndex(addr) * params_.assoc;
    u64 tag = tagOf(addr);
    for (unsigned way = 0; way < params_.assoc; ++way) {
        const Line &line = lines_[base + way];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

double
Cache::missRate() const
{
    u64 total = hits() + misses();
    return total ? static_cast<double>(misses()) / total : 0.0;
}

} // namespace carf::mem
