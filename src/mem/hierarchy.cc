#include "mem/hierarchy.hh"

namespace carf::mem
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params), il1_(params.il1), dl1_(params.dl1), l2_(params.l2)
{
}

Cycle
Hierarchy::instAccess(Addr addr)
{
    Cycle latency = il1_.params().hitLatency;
    if (il1_.access(addr))
        return latency;
    latency += l2_.params().hitLatency;
    if (l2_.access(addr))
        return latency;
    return latency + params_.memoryLatency;
}

Cycle
Hierarchy::dataAccess(Addr addr)
{
    Cycle latency = dl1_.params().hitLatency;
    if (dl1_.access(addr))
        return latency;
    latency += l2_.params().hitLatency;
    if (l2_.access(addr))
        return latency;
    return latency + params_.memoryLatency;
}

} // namespace carf::mem
