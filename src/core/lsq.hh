/**
 * @file
 * Load/store queue: occupancy bound plus oracle memory-dependence
 * checking over the in-flight window.
 *
 * The simulator knows every effective address exactly (the trace is
 * functionally executed), so disambiguation is perfect: a load is
 * ordered only behind older overlapping stores. This stands in for
 * the paper's execution-driven simulator's dependence speculation.
 */

#ifndef CARF_CORE_LSQ_HH
#define CARF_CORE_LSQ_HH

#include <deque>

#include "common/types.hh"

namespace carf::core
{

/** LSQ occupancy + in-flight store address tracking. */
class Lsq
{
  public:
    explicit Lsq(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return occupancy_ >= capacity_; }
    unsigned occupancy() const { return occupancy_; }

    /** A memory op dispatched. Stores register their byte range. */
    void dispatchLoad(InstSeqNum seq);
    void dispatchStore(InstSeqNum seq, Addr addr, unsigned bytes);

    /** The store @p seq issued; forwardable from @p complete_cycle. */
    void storeIssued(InstSeqNum seq, Cycle complete_cycle);

    /** A memory op committed (frees its slot). */
    void commitLoad();
    void commitStore(InstSeqNum seq);

    /**
     * Earliest cycle a load of [addr, addr+bytes) with sequence
     * number @p seq may begin execution, considering older
     * overlapping stores (store-to-load forwarding takes effect the
     * cycle the store's data is available).
     *
     * @retval false when an older overlapping store has not issued
     *         yet (the load must wait; *cycle_out untouched)
     */
    bool loadReadyCycle(InstSeqNum seq, Addr addr, unsigned bytes,
                        Cycle &cycle_out) const;

  private:
    struct StoreEntry
    {
        InstSeqNum seq;
        Addr addr;
        unsigned bytes;
        bool issued = false;
        Cycle completeCycle = 0;
    };

    unsigned capacity_;
    unsigned occupancy_ = 0;
    std::deque<StoreEntry> stores_;
};

} // namespace carf::core

#endif // CARF_CORE_LSQ_HH
