#include "core/bypass.hh"

namespace carf::core
{

void
BypassStats::record(OperandSource source, bool is_fp)
{
    switch (source) {
      case OperandSource::None:
        break;
      case OperandSource::Bypass:
        ++bypassed_[is_fp];
        break;
      case OperandSource::RegFile:
        ++regFile_[is_fp];
        break;
    }
}

double
BypassStats::bypassFraction() const
{
    u64 total = totalBypassed() + totalRegFile();
    return total ? static_cast<double>(totalBypassed()) / total : 0.0;
}

} // namespace carf::core
