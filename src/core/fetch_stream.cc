#include "core/fetch_stream.hh"

namespace carf::core
{

using emu::DynOp;
using isa::Opcode;

BranchPredictors::BranchPredictors(const CoreParams &params)
    : gshare_(params.gshareHistoryBits),
      btb_(params.btbEntries),
      ras_(params.rasDepth)
{
}

void
BranchPredictors::predict(const DynOp &op, FetchEntry &out)
{
    out.isCondBranch = false;
    out.predictedCorrect = true;
    if (!op.isBranch())
        return;

    u64 pc = op.pc;

    if (isa::isConditionalBranch(op.op)) {
        out.isCondBranch = true;
        bool correct = true;
        bool pred = gshare_.predict(pc);
        gshare_.update(pc, op.taken);
        if (pred != op.taken) {
            correct = false;
        } else if (op.taken) {
            u64 target;
            bool hit = btb_.lookup(pc, target);
            if (!hit || target != op.nextPc)
                correct = false;
        }
        if (op.taken)
            btb_.update(pc, op.nextPc);
        out.predictedCorrect = correct;
        return;
    }

    if (op.op == Opcode::JAL) {
        if (op.rd != 0)
            ras_.push(pc + 1);
        u64 target;
        bool hit = btb_.lookup(pc, target);
        out.predictedCorrect = hit && target == op.nextPc;
        btb_.update(pc, op.nextPc);
        return;
    }

    if (op.op == Opcode::JALR) {
        u64 target = 0;
        bool predicted = false;
        if (op.rd == 0) {
            // Return-like: prefer the RAS.
            predicted = ras_.pop(target);
        }
        if (!predicted)
            predicted = btb_.lookup(pc, target);
        out.predictedCorrect = predicted && target == op.nextPc;
        btb_.update(pc, op.nextPc);
        return;
    }
}

} // namespace carf::core
