/**
 * @file
 * Simultaneous multithreading extension (paper §6): N hardware
 * threads share one content-aware integer register file.
 *
 * The paper observes that the number of *live* Long registers is far
 * below the Long file's peak-sized capacity (on average ~12.7 of 48),
 * so a single Long file can feed more than one thread. This model
 * tests that claim directly, and measures what the paper never did:
 * how similarity sharing scales with thread count.
 *
 * Sharing/partitioning policy (EV8-flavoured, documented in
 * DESIGN.md §4.7):
 *  - shared: physical register files (the Simple/Short/Long sub-files
 *    and the tag pool), issue queues, issue/writeback/commit
 *    bandwidth, functional units, caches, branch predictor (pc salted
 *    by thread id);
 *  - per-thread: architectural RATs, ROB and LSQ partitions
 *    (capacity / T each), fetch state; fetch and commit round-robin
 *    between threads.
 *
 * Cross-thread accounting: the shared Short file tracks which thread
 * first placed each resident value group; a Short-typed writeback by
 * a different thread is a *cross-thread share*
 * (RegisterFile::SharingStats). Long pressure (write stalls,
 * §3.2 recoveries, issue-stall cycles) is attributed per thread, and
 * pseudo-deadlock recovery is contention-aware: at most one forced
 * Long grant per cycle, awarded to the first stalled ROB head in
 * rotating thread order, with a starvation counter bounding how long
 * any head waited.
 *
 * Each thread runs its own TraceSource with its own functional
 * memory; store-load ordering is enforced within a thread only.
 */

#ifndef CARF_CORE_SMT_HH
#define CARF_CORE_SMT_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/core_stats.hh"
#include "core/fetch_stream.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "emu/trace.hh"
#include "mem/hierarchy.hh"
#include "regfile/regfile.hh"

namespace carf::core
{

/** Result of an SMT run: per-thread summaries plus shared-file totals. */
struct SmtResult
{
    std::vector<RunResult> threads;
    Cycle cycles = 0;

    /** Per-thread and cross-thread Short-hit counters (shared file). */
    regfile::RegisterFile::SharingStats sharing;
    /**
     * Machine-level cycle attribution: each cycle takes the
     * most-productive bucket across threads (lowest enum value, so
     * any thread committing makes the machine cycle a Commit cycle).
     * Sums to cycles; equals threads[0]'s accounting when T == 1.
     * Per-thread accounting (each summing to cycles too) lives in
     * threads[i].cycleAccounting.
     */
    CycleAccounting machineAccounting;
    /**
     * Longest streak of cycles any stalled ROB head waited for its
     * forced-write grant (recovery-fairness starvation bound).
     */
    u64 maxRecoveryWait = 0;

    /** Aggregate committed-instruction throughput. */
    double
    totalIpc() const
    {
        double sum = 0.0;
        for (const auto &t : threads)
            sum += t.ipc;
        return sum;
    }
    u64
    totalInsts() const
    {
        u64 sum = 0;
        for (const auto &t : threads)
            sum += t.committedInsts;
        return sum;
    }

    /**
     * Fairness: min/max per-thread IPC ratio (1.0 = perfectly fair,
     * 0 = some thread starved).
     */
    double fairness() const;

    /**
     * Collapse the run into one RunResult: summed per-thread
     * counters, shared-file statistics from thread 0's record,
     * '+'-joined workload name, and the smt* fields filled in. This
     * is what the experiment runner stores and reports.
     */
    RunResult aggregate() const;
};

/** Multithreaded variant of the out-of-order core. */
class SmtPipeline
{
  public:
    /**
     * @param params core configuration (register file organization,
     *        widths, ports); ROB/LSQ capacities are split across
     *        threads
     * @param num_threads hardware thread count (>= 1)
     */
    SmtPipeline(const CoreParams &params, unsigned num_threads);
    ~SmtPipeline();

    /**
     * Run the thread traces.
     *
     * @param stop_on_first_drain end the measurement when the first
     *        thread completes (standard SMT methodology: per-thread
     *        IPC is only meaningful while all threads are active);
     *        when false, runs until every trace drains
     * @pre sources.size() == num_threads
     */
    SmtResult run(std::vector<emu::TraceSource *> sources,
                  bool stop_on_first_drain = true);

    /**
     * Debug gate: run the register-file model's structural
     * checkInvariants() after every simulated cycle and panic on the
     * first violation. Testing only — quadratic-ish cost.
     */
    void enableInvariantChecks() { checkInvariantsEveryCycle_ = true; }

    regfile::RegisterFile &intRegFile() { return *intRf_; }

  private:
    struct TagInfo
    {
        enum class State : u8 { Pending, Issued, Done };
        State state = State::Done;
        Cycle completeCycle = 0;
        Cycle rfReadableCycle = 0;
    };

    struct FetchedInst
    {
        emu::DynOp op;
        Cycle fetchCycle = 0;
        bool mispredicted = false;
    };

    /** Per-thread front-end, rename, and window state. */
    struct Thread
    {
        emu::TraceSource *source = nullptr;
        std::vector<u32> intRat;
        std::vector<u32> fpRat;
        std::unique_ptr<Rob> rob;
        std::unique_ptr<Lsq> lsq;
        std::deque<FetchedInst> fetchBuffer;
        bool traceExhausted = false;
        bool pendingRedirect = false;
        Cycle fetchResumeCycle = 0;
        u64 lastFetchLine = ~u64{0};
        /** Predicted record stashed across an I-cache miss. */
        FetchEntry pendingFetch;
        bool pendingFetchValid = false;
        /** Dispatched-but-not-issued instructions (ICOUNT metric). */
        unsigned iqCount = 0;
        /** Per-queue occupancy, bounded by the per-thread share cap. */
        unsigned intIqCount = 0;
        unsigned fpIqCount = 0;
        /** Integer writers blocked by the free-Long stall this cycle. */
        bool longStallSeen = false;
        /** Consecutive cycles this ROB head waited for a forced grant. */
        u64 headStallWait = 0;
        RunResult result;

        bool
        drained() const
        {
            return traceExhausted && rob->empty() &&
                   fetchBuffer.empty() && !pendingFetchValid;
        }
    };

    void doCommit(Cycle cur);
    void doWriteback(Cycle cur);
    void doIssue(Cycle cur);
    void doRename(Cycle cur);
    void doFetch(Cycle cur);

    /**
     * Attribute the coming cycle to one bucket for @p thread, from
     * pre-stage state — the same pure-function rule as the solo
     * pipeline's classifyCycle(), over the thread's partition.
     */
    unsigned classifyThread(const Thread &thread, Cycle cur) const;

    bool tryIssueOne(Cycle cur, unsigned tid, InFlightInst &inst,
                     unsigned &int_fu, unsigned &fp_fu,
                     unsigned &mem_ports, unsigned &int_rd,
                     unsigned &fp_rd, bool stall_int_writers);
    bool renameOne(Cycle cur, unsigned tid);
    void fetchThread(Cycle cur, unsigned tid, unsigned &budget);

    /**
     * Thread order for the front end: ICOUNT policy (Tullsen et
     * al.) — threads with fewer instructions waiting in the issue
     * queues go first, preventing a dependence-limited thread from
     * clogging the shared queues and starving its partners.
     */
    std::vector<unsigned> icountOrder() const;

    /**
     * Salt a trace pc with the thread id. All traces are linked at
     * pc 0, so without salting every thread would alias in the
     * shared predictor/BTB/I-cache index bits; the salt stands in
     * for the distinct code addresses real processes would have.
     * Low bits are perturbed too, so the *index* bits differ.
     * Thread 0's salt is zero, keeping it bit-identical to the solo
     * pipeline's unsalted stream.
     */
    u64 saltedPc(unsigned tid, u64 pc) const
    {
        return pc + u64{tid} * 0x10000405ull;
    }

    TagInfo &tagInfo(u32 tag, bool is_fp)
    {
        return is_fp ? fpTags_.at(tag) : intTags_.at(tag);
    }

    CoreParams params_;
    unsigned numThreads_;

    std::unique_ptr<regfile::RegisterFile> intRf_;
    std::unique_ptr<regfile::RegisterFile> fpRf_;

    FreeList intFreeList_;
    FreeList fpFreeList_;
    std::vector<TagInfo> intTags_;
    std::vector<TagInfo> fpTags_;

    IssueQueue intIq_;
    IssueQueue fpIq_;

    /** Shared gshare+BTB+RAS front end, fed pc-salted records. */
    BranchPredictors predictors_;
    mem::Hierarchy memory_;

    std::vector<Thread> threads_;
    unsigned rrCounter_ = 0;
    /** Aggregate commits toward the next ROB-interval epoch. */
    u64 committedTick_ = 0;

    /** Shared-file occupancy sampled once per cycle (solo parity). */
    stats::Average liveLong_;
    stats::Average liveShort_;
    /** Starvation bound over all threads (SmtResult::maxRecoveryWait). */
    u64 maxRecoveryWait_ = 0;
    bool checkInvariantsEveryCycle_ = false;
};

} // namespace carf::core

#endif // CARF_CORE_SMT_HH
