#include "core/smt.hh"

#include <algorithm>

#include "common/logging.hh"
#include "regfile/baseline.hh"
#include "regfile/registry.hh"

namespace carf::core
{

using emu::DynOp;
using isa::Opcode;
using regfile::ValueType;

namespace
{

constexpr u64 instBytes = 4;
constexpr size_t fetchBufferCap = 32;
constexpr Cycle watchdogCycles = 200000;

} // namespace

double
SmtResult::fairness() const
{
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const RunResult &t : threads) {
        if (first) {
            lo = hi = t.ipc;
            first = false;
        } else {
            lo = std::min(lo, t.ipc);
            hi = std::max(hi, t.ipc);
        }
    }
    return hi > 0.0 ? lo / hi : 0.0;
}

RunResult
SmtResult::aggregate() const
{
    RunResult agg;
    if (threads.empty())
        return agg;

    // Thread 0 carries the shared-file statistics (access counts,
    // Short allocation writes, occupancy averages, port conflicts);
    // start from its record and fold the partners' per-thread
    // counters in.
    agg = threads[0];
    u64 bypassed_int = agg.bypass.bypassed(false);
    u64 bypassed_fp = agg.bypass.bypassed(true);
    u64 regfile_int = agg.bypass.regFileReads(false);
    u64 regfile_fp = agg.bypass.regFileReads(true);
    for (size_t t = 1; t < threads.size(); ++t) {
        const RunResult &r = threads[t];
        agg.workload += "+" + r.workload;
        agg.committedInsts += r.committedInsts;
        agg.condBranches += r.condBranches;
        agg.branchMispredicts += r.branchMispredicts;
        bypassed_int += r.bypass.bypassed(false);
        bypassed_fp += r.bypass.bypassed(true);
        regfile_int += r.bypass.regFileReads(false);
        regfile_fp += r.bypass.regFileReads(true);
        for (unsigned b = 0; b < OperandMix::NumBuckets; ++b)
            agg.operandMix.counts[b] += r.operandMix.counts[b];
        agg.cluster.localOperands += r.cluster.localOperands;
        agg.cluster.crossOperands += r.cluster.crossOperands;
        agg.longAllocStalls += r.longAllocStalls;
        agg.recoveries += r.recoveries;
        agg.issueStallCycles += r.issueStallCycles;
    }
    agg.bypass.restore(bypassed_int, bypassed_fp, regfile_int,
                       regfile_fp);
    agg.cycles = cycles;
    agg.cycleAccounting = machineAccounting;
    agg.ipc = cycles ? static_cast<double>(agg.committedInsts) / cycles
                     : 0.0;

    agg.smtThreads = static_cast<unsigned>(threads.size());
    agg.smtThreadInsts.clear();
    agg.smtThreadIpc.clear();
    for (const RunResult &r : threads) {
        agg.smtThreadInsts.push_back(r.committedInsts);
        agg.smtThreadIpc.push_back(r.ipc);
    }
    agg.smtShortHits = sharing.totalShortHits();
    agg.smtCrossShortHits = sharing.totalCrossShortHits();
    agg.smtMaxRecoveryWait = maxRecoveryWait;
    return agg;
}

SmtPipeline::SmtPipeline(const CoreParams &params, unsigned num_threads)
    : params_(params),
      numThreads_(num_threads),
      intFreeList_(params.physIntRegs,
                   isa::numArchRegs * num_threads),
      fpFreeList_(params.physFpRegs, isa::numArchRegs * num_threads),
      intTags_(params.physIntRegs),
      fpTags_(params.physFpRegs),
      intIq_(params.intIqSize),
      fpIq_(params.fpIqSize),
      predictors_(params),
      memory_(params.memory),
      threads_(num_threads)
{
    if (num_threads < 1)
        fatal("SmtPipeline: need at least one thread");
    if (params_.physIntRegs <= isa::numArchRegs * num_threads ||
        params_.physFpRegs <= isa::numArchRegs * num_threads) {
        fatal("SmtPipeline: %u threads need more than %u physical "
              "registers", num_threads,
              isa::numArchRegs * num_threads);
    }
    if (params_.intRfReadPorts < 2 || params_.fpRfReadPorts < 2)
        fatal("SmtPipeline: at least 2 read ports are required");

    intRf_ = regfile::makeRegFile(params_.regFileBackend,
                                  params_.regFileParams(), "intRf");
    fpRf_ = std::make_unique<regfile::BaselineRegFile>(
        "fpRf", params_.physFpRegs);
    intRf_->setThreadCount(num_threads);

    unsigned rob_each = params_.robSize / num_threads;
    unsigned lsq_each = params_.lsqSize / num_threads;
    for (unsigned t = 0; t < num_threads; ++t) {
        Thread &thread = threads_[t];
        thread.rob = std::make_unique<Rob>(rob_each);
        thread.lsq = std::make_unique<Lsq>(lsq_each);
        thread.intRat.resize(isa::numArchRegs);
        thread.fpRat.resize(isa::numArchRegs);
        for (unsigned i = 0; i < isa::numArchRegs; ++i) {
            u32 tag = t * isa::numArchRegs + i;
            thread.intRat[i] = tag;
            thread.fpRat[i] = tag;
            intRf_->write(tag, 0);
            fpRf_->write(tag, 0);
        }
    }
    intRf_->clearAccessCounts();
    fpRf_->clearAccessCounts();
}

SmtPipeline::~SmtPipeline() = default;

std::vector<unsigned>
SmtPipeline::icountOrder() const
{
    std::vector<unsigned> order(numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t)
        order[t] = t;
    std::stable_sort(order.begin(), order.end(),
                     [this](unsigned a, unsigned b) {
                         return threads_[a].iqCount <
                                threads_[b].iqCount;
                     });
    return order;
}

unsigned
SmtPipeline::classifyThread(const Thread &thread, Cycle cur) const
{
    if (!thread.rob->empty()) {
        const InFlightInst &head = thread.rob->head();
        if (head.state == InstState::WrittenBack)
            return CycleAccounting::Commit;
        if (head.state == InstState::Issued) {
            if (head.wbStalledOnLong)
                return CycleAccounting::LongStall;
            if (head.completeCycle > cur)
                return head.op.isLoad() ? CycleAccounting::MemWait
                                        : CycleAccounting::ExecWait;
            return CycleAccounting::WbWait;
        }
        return thread.rob->full() ? CycleAccounting::RobFull
                                  : CycleAccounting::IssueBound;
    }
    if (!thread.fetchBuffer.empty())
        return CycleAccounting::FrontendFill;
    if (thread.pendingFetchValid)
        return CycleAccounting::IcacheWait;
    return CycleAccounting::FetchEmpty;
}

void
SmtPipeline::doCommit(Cycle cur)
{
    (void)cur;
    unsigned budget = params_.commitWidth;
    for (unsigned off = 0; off < numThreads_ && budget > 0; ++off) {
        unsigned tid = (rrCounter_ + off) % numThreads_;
        Thread &thread = threads_[tid];
        while (budget > 0 && !thread.rob->empty()) {
            InFlightInst &head = thread.rob->head();
            if (head.state != InstState::WrittenBack)
                break;
            if (head.hasDest()) {
                if (head.destIsFp) {
                    fpRf_->release(head.oldDestTag);
                    fpFreeList_.release(head.oldDestTag);
                } else {
                    intRf_->release(head.oldDestTag);
                    intFreeList_.release(head.oldDestTag);
                }
            }
            if (head.op.isLoad())
                thread.lsq->commitLoad();
            else if (head.op.isStore())
                thread.lsq->commitStore(head.op.seq);
            ++thread.result.committedInsts;
            // ROB-interval epochs for the shared Short file are driven
            // by aggregate commit progress; the tick fires between
            // commits, exactly as the solo pipeline's does.
            ++committedTick_;
            if (committedTick_ >= params_.robSize) {
                committedTick_ = 0;
                intRf_->onRobInterval();
            }
            thread.rob->popHead();
            --budget;
        }
    }
}

void
SmtPipeline::doWriteback(Cycle cur)
{
    unsigned int_ports = params_.intRfWritePorts;
    unsigned fp_ports = params_.fpRfWritePorts;
    // §3.2 pseudo-deadlock recovery under contention: at most one
    // forced Long grant per cycle, awarded to the first stalled ROB
    // head in rotating thread order. The rotation (rrCounter_
    // advances every cycle) guarantees every thread's head
    // periodically walks first, so no thread can be locked out;
    // headStallWait measures how long any head actually waited.
    bool force_grant_used = false;

    for (unsigned off = 0; off < numThreads_; ++off) {
        unsigned tid = (rrCounter_ + off) % numThreads_;
        Thread &thread = threads_[tid];
        for (InFlightInst &inst : *thread.rob) {
            if (inst.state != InstState::Issued ||
                inst.completeCycle > cur) {
                continue;
            }
            if (!inst.hasDest()) {
                inst.state = InstState::WrittenBack;
                inst.wbCycle = cur;
                continue;
            }
            if (inst.destIsFp) {
                if (fp_ports == 0)
                    continue;
                fpRf_->write(inst.destTag, inst.op.rdValue);
                --fp_ports;
                TagInfo &ti = tagInfo(inst.destTag, true);
                ti.state = TagInfo::State::Done;
                ti.rfReadableCycle = cur + 1;
                inst.state = InstState::WrittenBack;
                inst.wbCycle = cur;
                continue;
            }
            if (int_ports == 0)
                continue;
            intRf_->setActiveThread(tid);
            regfile::WriteAccess access =
                intRf_->write(inst.destTag, inst.op.rdValue);
            if (access.stalled) {
                ++thread.result.longAllocStalls;
                bool at_head = &inst == &thread.rob->head();
                if (at_head && !force_grant_used) {
                    force_grant_used = true;
                    access = intRf_->writeForced(inst.destTag,
                                                 inst.op.rdValue);
                    ++thread.result.recoveries;
                    thread.headStallWait = 0;
                } else {
                    if (at_head) {
                        ++thread.headStallWait;
                        maxRecoveryWait_ = std::max(
                            maxRecoveryWait_, thread.headStallWait);
                    }
                    inst.wbStalledOnLong = true;
                    continue;
                }
            } else if (&inst == &thread.rob->head()) {
                thread.headStallWait = 0;
            }
            --int_ports;
            TagInfo &ti = tagInfo(inst.destTag, false);
            ti.state = TagInfo::State::Done;
            ti.rfReadableCycle = cur + params_.intWbStages;
            inst.state = InstState::WrittenBack;
            inst.wbCycle = cur;
        }
    }
}

bool
SmtPipeline::tryIssueOne(Cycle cur, unsigned tid, InFlightInst &inst,
                         unsigned &int_fu, unsigned &fp_fu,
                         unsigned &mem_ports, unsigned &int_rd,
                         unsigned &fp_rd, bool stall_int_writers)
{
    Thread &thread = threads_[tid];
    bool fpq = usesFpQueue(inst.op.op);
    bool is_load = inst.op.isLoad();
    bool is_store = inst.op.isStore();
    bool is_mem = is_load || is_store;

    if (fpq ? fp_fu == 0 : int_fu == 0)
        return false;
    if (is_mem && mem_ports == 0)
        return false;
    if (stall_int_writers && inst.writesIntDest() &&
        &inst != &thread.rob->head()) {
        thread.longStallSeen = true;
        return false;
    }

    Cycle exec = cur + params_.regReadStages;

    struct Src
    {
        u32 tag;
        bool isFp;
        u64 value;
        bool used;
    };
    Src s1{inst.src1Tag, inst.src1IsFp, inst.op.rs1Value,
           inst.src1Tag != invalidIndex};
    Src s2{inst.src2Tag, inst.src2IsFp, inst.op.rs2Value,
           inst.src2Tag != invalidIndex};

    OperandSource so1 = OperandSource::None;
    OperandSource so2 = OperandSource::None;
    auto check_src = [&](const Src &s, OperandSource &out) {
        if (!s.used) {
            out = OperandSource::None;
            return true;
        }
        const TagInfo &ti =
            s.isFp ? fpTags_[s.tag] : intTags_[s.tag];
        if (ti.state == TagInfo::State::Pending)
            return false;
        if (exec < ti.completeCycle)
            return false;
        unsigned window = s.isFp ? params_.fpBypassWindow()
                                 : params_.intBypassWindow();
        if (exec < ti.completeCycle + window) {
            out = OperandSource::Bypass;
            return true;
        }
        if (ti.state != TagInfo::State::Done ||
            exec - 1 < ti.rfReadableCycle) {
            return false;
        }
        out = OperandSource::RegFile;
        return true;
    };
    if (!check_src(s1, so1) || !check_src(s2, so2))
        return false;

    unsigned need_int_rd = 0, need_fp_rd = 0;
    auto count_port = [&](const Src &s, OperandSource so) {
        if (so != OperandSource::RegFile)
            return;
        (s.isFp ? need_fp_rd : need_int_rd) += 1;
    };
    count_port(s1, so1);
    count_port(s2, so2);
    if (need_int_rd > int_rd || need_fp_rd > fp_rd)
        return false;
    // Model-level per-cycle port limit (port-reduction backends).
    if (need_int_rd != 0 && !intRf_->canServeReads(need_int_rd))
        return false;

    Cycle latency = inst.op.info().latency;
    if (is_load) {
        Cycle dep_ready = 0;
        if (!thread.lsq->loadReadyCycle(inst.op.seq, inst.op.effAddr,
                                        inst.op.info().memBytes,
                                        dep_ready)) {
            return false;
        }
        if (dep_ready > exec)
            return false;
        latency = 1 + memory_.dataAccess(inst.op.effAddr);
    } else if (is_store) {
        latency = 1;
        memory_.dataAccess(inst.op.effAddr);
    }

    // Commit to issuing.
    if (fpq)
        --fp_fu;
    else
        --int_fu;
    if (is_mem)
        --mem_ports;
    int_rd -= need_int_rd;
    fp_rd -= need_fp_rd;
    if (need_int_rd != 0)
        intRf_->consumeReadPorts(need_int_rd);

    inst.state = InstState::Issued;
    inst.issueCycle = cur;
    inst.completeCycle = exec + latency;
    (fpq ? fpIq_ : intIq_).remove();
    --thread.iqCount;
    --(fpq ? thread.fpIqCount : thread.intIqCount);

    if (inst.hasDest()) {
        TagInfo &ti = tagInfo(inst.destTag, inst.destIsFp);
        ti.state = TagInfo::State::Issued;
        ti.completeCycle = inst.completeCycle;
        ti.rfReadableCycle = ~Cycle{0};
    }

    auto consume_src = [&](const Src &s, OperandSource so) {
        if (!s.used)
            return;
        thread.result.bypass.record(so, s.isFp);
        if (so == OperandSource::RegFile) {
            regfile::RegisterFile &rf = s.isFp ? *fpRf_ : *intRf_;
            regfile::ReadAccess read = rf.read(s.tag);
            if (read.value != s.value) {
                panic("smt operand mismatch: tid %u seq %llu tag %u",
                      tid, (unsigned long long)inst.op.seq, s.tag);
            }
        }
    };
    consume_src(s1, so1);
    consume_src(s2, so2);

    // Table 4: source operand type mix over integer operands, and the
    // §6 clustering estimate — same accounting as the solo pipeline,
    // attributed to the issuing thread.
    if (intRf_->hasValueTaxonomy()) {
        bool has_simple = false, has_short = false, has_long = false;
        auto type_of = [&](const Src &s) {
            return intRf_->classifyPeek(s.value);
        };
        auto mix_src = [&](const Src &s) {
            if (!s.used || s.isFp)
                return;
            switch (type_of(s)) {
              case ValueType::Simple: has_simple = true; break;
              case ValueType::Short: has_short = true; break;
              case ValueType::Long: has_long = true; break;
            }
        };
        mix_src(s1);
        mix_src(s2);
        thread.result.operandMix.record(has_simple, has_short,
                                        has_long);

        bool u1 = s1.used && !s1.isFp;
        bool u2 = s2.used && !s2.isFp;
        if (u1 && u2) {
            ValueType t1 = type_of(s1);
            ValueType t2 = type_of(s2);
            if (t1 == t2) {
                thread.result.cluster.localOperands += 2;
            } else {
                ++thread.result.cluster.localOperands;
                ++thread.result.cluster.crossOperands;
            }
        } else if (u1 || u2) {
            ++thread.result.cluster.localOperands;
        }
    }

    if (is_mem) {
        intRf_->setActiveThread(tid);
        intRf_->noteAddress(inst.op.effAddr);
    }
    if (is_store)
        thread.lsq->storeIssued(inst.op.seq, inst.completeCycle);
    if (inst.mispredicted) {
        thread.fetchResumeCycle = inst.completeCycle;
        thread.pendingRedirect = false;
    }
    return true;
}

void
SmtPipeline::doIssue(Cycle cur)
{
    unsigned budget = params_.issueWidth;
    unsigned int_fu = params_.intFuCount;
    unsigned fp_fu = params_.fpFuCount;
    unsigned mem_ports = memory_.dl1Ports();
    unsigned int_rd = params_.intRfReadPorts;
    unsigned fp_rd = params_.fpRfReadPorts;
    bool stall_int_writers = intRf_->shouldStallIssue();

    for (Thread &thread : threads_)
        thread.longStallSeen = false;

    for (unsigned off = 0; off < numThreads_ && budget > 0; ++off) {
        unsigned tid = (rrCounter_ + off) % numThreads_;
        for (InFlightInst &inst : *threads_[tid].rob) {
            if (budget == 0)
                break;
            if (inst.state != InstState::Dispatched ||
                inst.renameCycle >= cur) {
                continue;
            }
            if (tryIssueOne(cur, tid, inst, int_fu, fp_fu, mem_ports,
                            int_rd, fp_rd, stall_int_writers)) {
                --budget;
            }
        }
    }

    for (Thread &thread : threads_) {
        if (thread.longStallSeen)
            ++thread.result.issueStallCycles;
    }
}

bool
SmtPipeline::renameOne(Cycle cur, unsigned tid)
{
    Thread &thread = threads_[tid];
    if (thread.fetchBuffer.empty())
        return false;
    FetchedInst &fetched = thread.fetchBuffer.front();
    if (fetched.fetchCycle + params_.frontendDepth > cur)
        return false;
    if (thread.rob->full())
        return false;

    const DynOp &op = fetched.op;
    const isa::OpInfo &info = isa::opInfo(op.op);
    bool fpq = usesFpQueue(op.op);
    IssueQueue &iq = fpq ? fpIq_ : intIq_;
    if (iq.full())
        return false;
    // Per-thread issue-queue share cap: a dependence-limited thread
    // must not clog the shared scheduler and starve its partners
    // (each partner keeps at least issue-width slots available).
    unsigned reserve = params_.issueWidth * (numThreads_ - 1);
    unsigned cap = iq.capacity() > reserve
                       ? iq.capacity() - reserve
                       : 1;
    if ((fpq ? thread.fpIqCount : thread.intIqCount) >= cap)
        return false;
    bool is_mem = op.isLoad() || op.isStore();
    if (is_mem && thread.lsq->full())
        return false;
    bool int_dest = op.writesIntReg();
    bool fp_dest = op.writesFpReg();
    if (int_dest && intFreeList_.empty())
        return false;
    if (fp_dest && fpFreeList_.empty())
        return false;

    InFlightInst &inst = thread.rob->push(op);
    inst.fetchCycle = fetched.fetchCycle;
    inst.renameCycle = cur;
    inst.mispredicted = fetched.mispredicted;

    if (info.rs1Class == isa::RegClass::Int) {
        if (op.rs1 != 0) {
            inst.src1Tag = thread.intRat[op.rs1];
            inst.src1IsFp = false;
        }
    } else if (info.rs1Class == isa::RegClass::Fp) {
        inst.src1Tag = thread.fpRat[op.rs1];
        inst.src1IsFp = true;
    }
    if (info.rs2Class == isa::RegClass::Int) {
        if (op.rs2 != 0) {
            inst.src2Tag = thread.intRat[op.rs2];
            inst.src2IsFp = false;
        }
    } else if (info.rs2Class == isa::RegClass::Fp) {
        inst.src2Tag = thread.fpRat[op.rs2];
        inst.src2IsFp = true;
    }

    if (int_dest) {
        inst.oldDestTag = thread.intRat[op.rd];
        inst.destTag = intFreeList_.allocate();
        thread.intRat[op.rd] = inst.destTag;
        inst.destIsFp = false;
        tagInfo(inst.destTag, false).state = TagInfo::State::Pending;
    } else if (fp_dest) {
        inst.oldDestTag = thread.fpRat[op.rd];
        inst.destTag = fpFreeList_.allocate();
        thread.fpRat[op.rd] = inst.destTag;
        inst.destIsFp = true;
        tagInfo(inst.destTag, true).state = TagInfo::State::Pending;
    }

    iq.insert();
    ++thread.iqCount;
    ++(fpq ? thread.fpIqCount : thread.intIqCount);
    if (op.isLoad())
        thread.lsq->dispatchLoad(op.seq);
    else if (op.isStore())
        thread.lsq->dispatchStore(op.seq, op.effAddr, info.memBytes);

    thread.fetchBuffer.pop_front();
    return true;
}

void
SmtPipeline::doRename(Cycle cur)
{
    unsigned budget = params_.fetchWidth;
    std::vector<unsigned> order = icountOrder();
    bool progress = true;
    while (budget > 0 && progress) {
        progress = false;
        for (unsigned off = 0; off < numThreads_ && budget > 0; ++off) {
            if (renameOne(cur, order[off])) {
                --budget;
                progress = true;
            }
        }
    }
}

void
SmtPipeline::fetchThread(Cycle cur, unsigned tid, unsigned &budget)
{
    Thread &thread = threads_[tid];
    if (thread.traceExhausted || thread.pendingRedirect ||
        cur < thread.fetchResumeCycle) {
        return;
    }
    unsigned line_shift = 6;
    while (budget > 0 && thread.fetchBuffer.size() < fetchBufferCap) {
        FetchEntry entry;
        if (thread.pendingFetchValid) {
            entry = thread.pendingFetch;
            thread.pendingFetchValid = false;
        } else {
            if (!thread.source->next(entry.op)) {
                thread.traceExhausted = true;
                return;
            }
            // Salt the code addresses before they touch any shared
            // structure; the record then flows through the shared
            // predictors exactly like a solo stream (thread 0's salt
            // is zero, so its predictions are bit-identical to the
            // solo pipeline's).
            entry.op.pc = saltedPc(tid, entry.op.pc);
            entry.op.nextPc = saltedPc(tid, entry.op.nextPc);
            predictors_.predict(entry.op, entry);
        }
        const DynOp &op = entry.op;

        u64 line = (op.pc * instBytes) >> line_shift;
        if (line != thread.lastFetchLine) {
            Cycle lat = memory_.instAccess(op.pc * instBytes);
            thread.lastFetchLine = line;
            if (lat > params_.memory.il1.hitLatency) {
                // I-cache miss: stash the predicted record and stall.
                thread.pendingFetch = entry;
                thread.pendingFetchValid = true;
                thread.lastFetchLine = ~u64{0};
                thread.fetchResumeCycle = cur + lat;
                return;
            }
        }

        if (entry.isCondBranch) {
            ++thread.result.condBranches;
            if (!entry.predictedCorrect)
                ++thread.result.branchMispredicts;
        }
        bool correct = entry.predictedCorrect;

        thread.fetchBuffer.push_back({op, cur, !correct});
        --budget;
        if (!correct) {
            thread.pendingRedirect = true;
            return;
        }
        if (op.isBranch() && op.taken)
            return;
    }
}

void
SmtPipeline::doFetch(Cycle cur)
{
    // ICOUNT fetch: the least-clogging thread may use the full
    // width; leftover slots go to the others.
    unsigned budget = params_.fetchWidth;
    std::vector<unsigned> order = icountOrder();
    for (unsigned off = 0; off < numThreads_ && budget > 0; ++off)
        fetchThread(cur, order[off], budget);
}

SmtResult
SmtPipeline::run(std::vector<emu::TraceSource *> sources,
                 bool stop_on_first_drain)
{
    if (sources.size() != numThreads_)
        fatal("SmtPipeline::run: %zu sources for %u threads",
              sources.size(), numThreads_);
    for (unsigned t = 0; t < numThreads_; ++t) {
        threads_[t].source = sources[t];
        threads_[t].result.workload = sources[t]->name();
        threads_[t].result.config = params_.regFileBackend;
    }

    Cycle cur = 0;
    u64 last_total = 0;
    Cycle last_progress = 0;
    liveLong_.reset();
    liveShort_.reset();

    auto should_stop = [&] {
        bool any_drained = false, all_drained = true;
        for (const Thread &t : threads_) {
            bool d = t.drained();
            any_drained |= d;
            all_drained &= d;
        }
        return stop_on_first_drain ? any_drained : all_drained;
    };

    CycleAccounting machine_acc;
    while (!should_stop()) {
        // Attribute the cycle before any stage runs: per thread (each
        // thread's buckets sum to machine cycles) and machine-level
        // (most-productive bucket across threads).
        unsigned machine_bucket = CycleAccounting::FetchEmpty;
        for (Thread &thread : threads_) {
            unsigned b = classifyThread(thread, cur);
            ++thread.result.cycleAccounting.counts[b];
            machine_bucket = std::min(machine_bucket, b);
        }
        ++machine_acc.counts[machine_bucket];

        intRf_->beginCycle();
        doCommit(cur);
        doWriteback(cur);
        doIssue(cur);
        doRename(cur);
        doFetch(cur);

        regfile::RegisterFile::Occupancy occ = intRf_->occupancy();
        liveLong_.sample(occ.liveLong);
        liveShort_.sample(occ.liveShort);

        if (checkInvariantsEveryCycle_) {
            std::string err = intRf_->checkInvariants();
            if (!err.empty()) {
                panic("smt pipeline: invariant violation at cycle "
                      "%llu: %s", (unsigned long long)cur,
                      err.c_str());
            }
        }

        u64 total = 0;
        for (const Thread &t : threads_)
            total += t.result.committedInsts;
        if (total != last_total) {
            last_total = total;
            last_progress = cur;
        } else if (cur - last_progress > watchdogCycles) {
            panic("smt pipeline: no commit for %llu cycles",
                  (unsigned long long)watchdogCycles);
        }
        rrCounter_ = (rrCounter_ + 1) % numThreads_;
        ++cur;
    }

    SmtResult result;
    result.cycles = cur;
    for (Thread &thread : threads_) {
        thread.result.cycles = cur;
        thread.result.ipc =
            cur ? static_cast<double>(thread.result.committedInsts) /
                      cur
                : 0.0;
        // The file is shared, so its occupancy averages describe the
        // run, not a thread; replicated so any thread's record reads
        // like a solo RunResult.
        thread.result.avgLiveLong = liveLong_.mean();
        thread.result.avgLiveShort = liveShort_.mean();
        result.threads.push_back(thread.result);
    }
    // Shared-file access counts and allocation/port totals land on
    // the first thread's record (and thus on the aggregate).
    if (!result.threads.empty()) {
        RunResult &first = result.threads[0];
        first.intRfAccesses = intRf_->accessCounts();
        first.shortFileWrites = intRf_->shortAllocWrites();
        regfile::RegisterFile::PortStats ps = intRf_->portStats();
        first.portConflictOps = ps.conflictOps;
        first.portConflictCycles = ps.conflictCycles;
    }
    result.sharing = intRf_->sharingStats();
    result.maxRecoveryWait = maxRecoveryWait_;
    result.machineAccounting = machine_acc;
    return result;
}

} // namespace carf::core
