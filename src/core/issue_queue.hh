/**
 * @file
 * Issue queue occupancy model. Instructions live in the ROB; the
 * queues only bound how many dispatched-but-not-issued instructions
 * of each class the scheduler can hold (Table 1: 32 int + 32 fp).
 */

#ifndef CARF_CORE_ISSUE_QUEUE_HH
#define CARF_CORE_ISSUE_QUEUE_HH

#include "common/types.hh"
#include "isa/opcode.hh"

namespace carf::core
{

/** Bounded occupancy counter for one scheduler class. */
class IssueQueue
{
  public:
    explicit IssueQueue(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return occupancy_ >= capacity_; }
    unsigned occupancy() const { return occupancy_; }
    unsigned capacity() const { return capacity_; }

    void insert();
    void remove();

  private:
    unsigned capacity_;
    unsigned occupancy_ = 0;
};

/**
 * Scheduler class of an opcode: FP arithmetic goes to the FP queue,
 * everything else (including FP loads/stores, whose address
 * generation is integer work) to the integer queue. Inline: called
 * per dispatched instruction per issue-scan cycle.
 */
inline bool
usesFpQueue(isa::Opcode op)
{
    switch (isa::opInfo(op).opClass) {
      case isa::OpClass::FpAlu:
      case isa::OpClass::FpMul:
      case isa::OpClass::FpDiv:
      case isa::OpClass::FpCvt:
        return true;
      default:
        return false;
    }
}

} // namespace carf::core

#endif // CARF_CORE_ISSUE_QUEUE_HH
