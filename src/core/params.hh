/**
 * @file
 * Core configuration (paper Table 1 defaults) and the register-file
 * organization selector.
 */

#ifndef CARF_CORE_PARAMS_HH
#define CARF_CORE_PARAMS_HH

#include <string>

#include "mem/hierarchy.hh"
#include "regfile/registry.hh"

namespace carf::core
{

/**
 * Compatibility shim over registry names: the three organizations the
 * paper compares, for code that predates the backend registry. New
 * code selects a backend by its registered name (CoreParams::
 * regFileBackend); the enum maps one-to-one onto three of those names
 * via regFileKindName().
 */
enum class RegFileKind
{
    /** 160 registers, 16R/8W: effectively unconstrained. */
    Unlimited,
    /** 112 registers, 8R/6W (the paper's baseline). */
    Baseline,
    /** The content-aware organization of §3. */
    ContentAware,
};

/** Registry name of the backend @p kind stands for. */
const char *regFileKindName(RegFileKind kind);

/** All timing parameters of the out-of-order core. */
struct CoreParams
{
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;

    unsigned robSize = 128;
    unsigned lsqSize = 64;
    unsigned intIqSize = 32;
    unsigned fpIqSize = 32;

    unsigned physIntRegs = 112;
    unsigned physFpRegs = 128;

    unsigned intRfReadPorts = 8;
    unsigned intRfWritePorts = 6;
    unsigned fpRfReadPorts = 8;
    unsigned fpRfWritePorts = 6;

    unsigned intFuCount = 8;
    unsigned fpFuCount = 8;

    /**
     * Register read stages between issue and execute: 1 for the
     * conventional file, 2 for the content-aware file (RF1 + RF2).
     */
    unsigned regReadStages = 1;
    /**
     * Writeback stages for the integer file: 1 conventional, 2 for
     * the content-aware file (WR1 classification + WR2 write).
     */
    unsigned intWbStages = 1;
    /**
     * Extra bypass level covering the second writeback stage (§3.2;
     * optional). Only meaningful when intWbStages == 2.
     */
    bool extraBypassLevel = true;

    /** Fetch-to-rename depth (misprediction refill). */
    unsigned frontendDepth = 3;

    unsigned gshareHistoryBits = 14;
    size_t btbEntries = 2048;
    size_t rasDepth = 16;

    /**
     * Integer register-file backend, by registry name (see
     * regfile::registry()). Any registered backend is valid here; the
     * core instantiates it through the factory, so experimental
     * organizations need no pipeline changes.
     */
    std::string regFileBackend = "baseline";
    regfile::ContentAwareParams ca;
    regfile::PortReductionParams portRed;

    /** Bundle the backend-construction parameters for the factory. */
    regfile::RegFileParams regFileParams() const
    {
        regfile::RegFileParams p;
        p.entries = physIntRegs;
        p.readPorts = intRfReadPorts;
        p.writePorts = intRfWritePorts;
        p.ca = ca;
        p.portRed = portRed;
        return p;
    }

    mem::HierarchyParams memory;

    /**
     * Cycles of the value-oracle sampling period (0 disables the
     * oracle; 1 samples every cycle as the paper's oracle did).
     */
    unsigned oracleSamplePeriod = 0;

    /**
     * Hardware threads sharing the core (SMT, §6 / ROADMAP item 5).
     * 1 runs the solo pipeline; >1 runs SmtPipeline with per-thread
     * RAT/ROB/LSQ partitions over shared register files, queues, FUs,
     * caches, and predictor.
     */
    unsigned smtThreads = 1;

    /**
     * Derived: bypass window in cycles for the integer file — the
     * number of cycles after completion during which a result can be
     * forwarded. One level per writeback stage plus the final
     * FU-output level; without the extra level a two-stage writeback
     * leaves a one-cycle gap where dependents must wait for the file.
     */
    unsigned intBypassWindow() const
    {
        return intWbStages + (extraBypassLevel ? 1 : 0);
    }
    /** FP file keeps a conventional single-stage writeback. */
    unsigned fpBypassWindow() const { return 2; }

    /** Paper configurations. */
    static CoreParams unlimited();
    static CoreParams baseline();
    static CoreParams contentAware(unsigned d_plus_n = 20, unsigned n = 3,
                                   unsigned long_entries = 48);
    /** Baseline core timing over the port-reduction backend. */
    static CoreParams portReduction(unsigned shared_read_ports = 4);

    /**
     * Canonical core configuration for a registry backend name: the
     * matching paper configuration for the three legacy names, and
     * baseline core timing with regFileBackend set for anything else
     * (so newly registered backends are benchable by name alone).
     */
    static CoreParams forBackend(const std::string &name);
};

} // namespace carf::core

#endif // CARF_CORE_PARAMS_HH
