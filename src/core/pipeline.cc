#include "core/pipeline.hh"

#include <algorithm>
#include <array>
#include <optional>

#include "common/logging.hh"
#include "regfile/baseline.hh"
#include "regfile/registry.hh"

namespace carf::core
{

using emu::DynOp;
using isa::Opcode;
using regfile::ValueType;

namespace
{

/** Instruction bytes per trace pc slot (word-addressed ISA). */
constexpr u64 instBytes = 4;
/** Fetch buffer capacity in instructions. */
constexpr size_t fetchBufferCap = 32;
/** Cycles without a commit before the simulator declares a bug. */
constexpr Cycle watchdogCycles = 200000;

/**
 * Minimum cycles of guaranteed stall before an instruction is parked
 * out of the issue scan. Short waits are cheaper to re-scan than to
 * round-trip through the heap; the payoff is cache-miss dependency
 * chains parking for tens of cycles.
 */
constexpr Cycle parkThreshold = 8;

/** Min-heap order for the parked-instruction heap (by wake cycle). */
struct ParkOrder
{
    bool
    operator()(const std::pair<Cycle, InFlightInst *> &a,
               const std::pair<Cycle, InFlightInst *> &b) const
    {
        return a.first > b.first;
    }
};

} // namespace

Pipeline::Pipeline(const CoreParams &params)
    : params_(params),
      intMap_(isa::numArchRegs, params.physIntRegs),
      fpMap_(isa::numArchRegs, params.physFpRegs),
      intTags_(params.physIntRegs),
      fpTags_(params.physFpRegs),
      rob_(params.robSize),
      intIq_(params.intIqSize),
      fpIq_(params.fpIqSize),
      lsq_(params.lsqSize),
      memory_(params.memory),
      fetchBuffer_(fetchBufferCap)
{
    dispatched_.reserve(params.robSize);
    pendingWb_.reserve(params.robSize);
    parked_.reserve(params.robSize);
    // An instruction may need one register file read per source
    // operand in a single cycle; fewer than two ports per file would
    // deadlock two-source consumers of non-bypassable operands.
    if (params_.intRfReadPorts < 2 || params_.fpRfReadPorts < 2)
        fatal("Pipeline: at least 2 read ports per register file "
              "are required");
    intRf_ = regfile::makeRegFile(params_.regFileBackend,
                                  params_.regFileParams(), "intRf");
    fpRf_ = std::make_unique<regfile::BaselineRegFile>(
        "fpRf", params_.physFpRegs);

    // Architectural registers start live with value zero (matching
    // the emulator's initial state).
    for (u32 tag = 0; tag < isa::numArchRegs; ++tag) {
        intRf_->write(tag, 0);
        fpRf_->write(tag, 0);
    }
    intRf_->clearAccessCounts();
    fpRf_->clearAccessCounts();
}

Pipeline::~Pipeline() = default;

u64
Pipeline::archIntReg(unsigned idx) const
{
    if (idx == 0)
        return 0;
    return intRf_->peekValue(intMap_.lookup(idx));
}

u64
Pipeline::archFpReg(unsigned idx) const
{
    return fpRf_->peekValue(fpMap_.lookup(idx));
}

void
Pipeline::gatherSources(const InFlightInst &inst, SourceView &s1,
                        SourceView &s2) const
{
    s1 = SourceView{};
    s2 = SourceView{};
    if (inst.src1Tag != invalidIndex) {
        s1.used = true;
        s1.tag = inst.src1Tag;
        s1.isFp = inst.src1IsFp;
        s1.value = inst.op.rs1Value;
    }
    if (inst.src2Tag != invalidIndex) {
        s2.used = true;
        s2.tag = inst.src2Tag;
        s2.isFp = inst.src2IsFp;
        s2.value = inst.op.rs2Value;
    }
}

FetchStream &
Pipeline::serialStream(emu::TraceSource &source)
{
    if (!serialStream_) {
        serialStream_ = std::make_unique<PredictingFetchStream>(
            source, params_);
    } else {
        serialStream_->rebind(source);
    }
    return *serialStream_;
}

void
Pipeline::doCommit(Cycle cur)
{
    (void)cur;
    unsigned budget = params_.commitWidth;
    while (budget > 0 && !rob_.empty()) {
        InFlightInst &head = rob_.head();
        if (head.state != InstState::WrittenBack)
            break;

        if (head.hasDest()) {
            if (head.destIsFp) {
                fpRf_->release(head.oldDestTag);
                fpMap_.releaseTag(head.oldDestTag);
            } else {
                intRf_->release(head.oldDestTag);
                intMap_.releaseTag(head.oldDestTag);
            }
        }
        if (head.op.isLoad())
            lsq_.commitLoad();
        else if (head.op.isStore())
            lsq_.commitStore(head.op.seq);

        ++result_.committedInsts;
        ++committedSinceInterval_;
        if (committedSinceInterval_ >= rob_.capacity()) {
            committedSinceInterval_ = 0;
            intRf_->onRobInterval();
        }

        rob_.popHead();
        --budget;
    }
}

bool
Pipeline::tryWriteback(InFlightInst &inst, Cycle cur,
                       unsigned &int_ports, unsigned &fp_ports)
{
    if (inst.completeCycle > cur)
        return false;

    if (!inst.hasDest()) {
        inst.state = InstState::WrittenBack;
        inst.wbCycle = cur;
        return true;
    }

    if (inst.destIsFp) {
        if (fp_ports == 0)
            return false;
        fpRf_->write(inst.destTag, inst.op.rdValue);
        --fp_ports;
        TagInfo &ti = tagInfo(inst.destTag, true);
        ti.state = TagInfo::State::Done;
        ti.rfReadableCycle = cur + 1;
        inst.state = InstState::WrittenBack;
        inst.wbCycle = cur;
        return true;
    }

    if (int_ports == 0)
        return false;
    regfile::WriteAccess access =
        intRf_->write(inst.destTag, inst.op.rdValue);
    if (access.stalled) {
        // Long file exhausted. If this is the ROB head nothing
        // can free an entry: pseudo-deadlock recovery (§3.2).
        if (&inst == &rob_.head()) {
            access = intRf_->writeForced(inst.destTag, inst.op.rdValue);
        } else {
            inst.wbStalledOnLong = true;
            return false; // port not consumed; retry next cycle
        }
    }
    --int_ports;
    TagInfo &ti = tagInfo(inst.destTag, false);
    ti.state = TagInfo::State::Done;
    ti.rfReadableCycle = cur + params_.intWbStages;
    inst.state = InstState::WrittenBack;
    inst.wbCycle = cur;
    return true;
}

void
Pipeline::doWriteback(Cycle cur)
{
    unsigned int_ports = params_.intRfWritePorts;
    unsigned fp_ports = params_.fpRfWritePorts;

    // pendingWb_ is the Issued subset of the ROB in age order, so
    // this visits exactly the instructions the full-ROB scan did, in
    // the same order, and makes identical port-arbitration decisions.
    size_t keep = 0;
    for (size_t i = 0; i < pendingWb_.size(); ++i) {
        if (!tryWriteback(*pendingWb_[i], cur, int_ports, fp_ports))
            pendingWb_[keep++] = pendingWb_[i];
    }
    pendingWb_.resize(keep);
}

void
Pipeline::unpark(InFlightInst *inst)
{
    dispatched_.insert(
        std::upper_bound(dispatched_.begin(), dispatched_.end(), inst,
                         [](const InFlightInst *a,
                            const InFlightInst *b) {
                             return a->op.seq < b->op.seq;
                         }),
        inst);
}

void
Pipeline::doIssue(Cycle cur)
{
    unsigned budget = params_.issueWidth;
    unsigned int_fu = params_.intFuCount;
    unsigned fp_fu = params_.fpFuCount;
    unsigned mem_ports = memory_.dl1Ports();
    unsigned int_read_ports = params_.intRfReadPorts;
    unsigned fp_read_ports = params_.fpRfReadPorts;

    bool stall_int_writers = intRf_->shouldStallIssue();
    bool long_stall_seen = false;

    if (!parked_.empty()) {
        if (stall_int_writers) {
            // The Long issue-stall path inspects every dispatched
            // instruction (long_stall_seen): restore the full scan.
            for (auto &entry : parked_)
                unpark(entry.second);
            parked_.clear();
        } else {
            while (!parked_.empty() && parked_.front().first <= cur) {
                unpark(parked_.front().second);
                std::pop_heap(parked_.begin(), parked_.end(),
                              ParkOrder{});
                parked_.pop_back();
            }
        }
    }

    Cycle exec = cur + params_.regReadStages;

    // dispatched_ is the Dispatched subset of the ROB in age order:
    // same candidates, same order, same arbitration decisions as the
    // full-ROB scan, without touching issued/completed entries.
    size_t scan = 0;
    size_t keep = 0;
    for (; scan < dispatched_.size() && budget > 0; ++scan) {
        InFlightInst &inst = *dispatched_[scan];
        // Assume the instruction stays dispatched; the issue path at
        // the bottom un-keeps it.
        dispatched_[keep++] = &inst;
        if (inst.renameCycle >= cur)
            continue; // renamed this very cycle

        bool fpq = usesFpQueue(inst.op.op);
        bool is_load = inst.op.isLoad();
        bool is_store = inst.op.isStore();
        bool is_mem = is_load || is_store;

        if (fpq ? fp_fu == 0 : int_fu == 0)
            continue;
        if (is_mem && mem_ports == 0)
            continue;
        // The ROB head is exempt from the free-Long issue stall:
        // stalling it would deadlock (younger completed instructions
        // hold Long entries they can only release by committing
        // behind the head). The head's writeback can always fall back
        // to the forced-recovery path.
        if (stall_int_writers && inst.writesIntDest() &&
            &inst != &rob_.head()) {
            long_stall_seen = true;
            continue;
        }

        SourceView s1, s2;
        gatherSources(inst, s1, s2);

        OperandSource so1 = OperandSource::None;
        OperandSource so2 = OperandSource::None;
        // First cycle the failed check below could pass again; cur+1
        // when the producer's timing is not yet pinned down.
        Cycle retry = 0;
        auto check_src = [&](const SourceView &s, OperandSource &out) {
            if (!s.used) {
                out = OperandSource::None;
                return true;
            }
            const TagInfo &ti = tagInfo(s.tag, s.isFp);
            if (ti.state == TagInfo::State::Pending) {
                // The producer has not issued; it cannot do so before
                // its own parked bound, and the value stays
                // unavailable until the check after it does.
                retry = std::max(cur + 1, ti.earliestIssue);
                return false;
            }
            if (exec < ti.completeCycle) {
                // completeCycle is fixed at issue: the check keeps
                // failing until exec reaches it.
                retry = ti.completeCycle - params_.regReadStages;
                return false;
            }
            unsigned window = s.isFp ? params_.fpBypassWindow()
                                     : params_.intBypassWindow();
            if (exec < ti.completeCycle + window) {
                out = OperandSource::Bypass;
                return true;
            }
            if (ti.state != TagInfo::State::Done ||
                exec - 1 < ti.rfReadableCycle) {
                // Past the bypass window: only the file can supply
                // the value, first readable at rfReadableCycle (known
                // once written back, i.e. state Done).
                retry = ti.state == TagInfo::State::Done
                            ? ti.rfReadableCycle + 1 -
                                  params_.regReadStages
                            : cur + 1;
                return false; // value in the writeback gap
            }
            out = OperandSource::RegFile;
            return true;
        };
        if (!check_src(s1, so1) || !check_src(s2, so2)) {
            if (!stall_int_writers && retry > cur + parkThreshold) {
                // The check cannot pass before `retry`: park the
                // instruction out of the scan until then, and let its
                // consumers bound themselves against it. Skipped in
                // stall cycles so long_stall_seen stays exact.
                --keep;
                parked_.emplace_back(retry, &inst);
                std::push_heap(parked_.begin(), parked_.end(),
                               ParkOrder{});
                if (inst.hasDest()) {
                    tagInfo(inst.destTag, inst.destIsFp)
                        .earliestIssue = retry;
                }
            }
            continue;
        }

        unsigned need_int_rd = 0, need_fp_rd = 0;
        auto count_port = [&](const SourceView &s, OperandSource so) {
            if (so != OperandSource::RegFile)
                return;
            if (s.isFp)
                ++need_fp_rd;
            else
                ++need_int_rd;
        };
        count_port(s1, so1);
        count_port(s2, so2);
        if (need_int_rd > int_read_ports || need_fp_rd > fp_read_ports)
            continue;
        // The model may impose its own per-cycle port limit below the
        // core's (port-reduction backends); a refusal is a conflict
        // stall and the instruction retries next cycle.
        if (need_int_rd != 0 && !intRf_->canServeReads(need_int_rd))
            continue;

        Cycle latency = inst.op.info().latency;
        if (is_load) {
            Cycle dep_ready = 0;
            if (!lsq_.loadReadyCycle(inst.op.seq, inst.op.effAddr,
                                     inst.op.info().memBytes,
                                     dep_ready)) {
                continue;
            }
            if (dep_ready > exec)
                continue;
            latency = 1 + memory_.dataAccess(inst.op.effAddr);
        } else if (is_store) {
            latency = 1;
            memory_.dataAccess(inst.op.effAddr);
        }

        // --- commit to issuing this instruction ---
        --keep; // leaves the dispatched list
        --budget;
        if (fpq)
            --fp_fu;
        else
            --int_fu;
        if (is_mem)
            --mem_ports;
        int_read_ports -= need_int_rd;
        fp_read_ports -= need_fp_rd;
        if (need_int_rd != 0)
            intRf_->consumeReadPorts(need_int_rd);

        inst.state = InstState::Issued;
        inst.issueCycle = cur;
        inst.completeCycle = exec + latency;
        (fpq ? fpIq_ : intIq_).remove();

        // Issue order across cycles is not age order, so keep the
        // writeback list sorted by seq (= age) as entries arrive.
        pendingWb_.insert(
            std::upper_bound(pendingWb_.begin(), pendingWb_.end(),
                             &inst,
                             [](const InFlightInst *a,
                                const InFlightInst *b) {
                                 return a->op.seq < b->op.seq;
                             }),
            &inst);

        if (inst.hasDest()) {
            TagInfo &ti = tagInfo(inst.destTag, inst.destIsFp);
            ti.state = TagInfo::State::Issued;
            ti.completeCycle = inst.completeCycle;
            ti.rfReadableCycle = ~Cycle{0};
        }

        auto consume_src = [&](const SourceView &s, OperandSource so) {
            if (!s.used)
                return;
            result_.bypass.record(so, s.isFp);
            if (so == OperandSource::RegFile) {
                regfile::RegisterFile &rf = s.isFp ? *fpRf_ : *intRf_;
                regfile::ReadAccess read = rf.read(s.tag);
                if (read.value != s.value) {
                    panic("operand mismatch: seq %llu tag %u "
                          "rf=%llx trace=%llx",
                          (unsigned long long)inst.op.seq, s.tag,
                          (unsigned long long)read.value,
                          (unsigned long long)s.value);
                }
            }
        };
        consume_src(s1, so1);
        consume_src(s2, so2);

        // Table 4: source operand type mix over integer operands,
        // and the §6 clustering estimate (steer by result type; a
        // source of another type crosses clusters).
        if (intRf_->hasValueTaxonomy()) {
            bool has_simple = false, has_short = false, has_long = false;
            auto type_of = [&](const SourceView &s) {
                return intRf_->classifyPeek(s.value);
            };
            auto mix_src = [&](const SourceView &s) {
                if (!s.used || s.isFp)
                    return;
                switch (type_of(s)) {
                  case ValueType::Simple: has_simple = true; break;
                  case ValueType::Short: has_short = true; break;
                  case ValueType::Long: has_long = true; break;
                }
            };
            mix_src(s1);
            mix_src(s2);
            result_.operandMix.record(has_simple, has_short, has_long);

            // Clustering estimate: steer the instruction to the
            // cluster holding (the majority of) its integer operands;
            // with two differing operands, prefer the cluster of the
            // result type so the writeback stays local, and the other
            // operand crosses.
            bool u1 = s1.used && !s1.isFp;
            bool u2 = s2.used && !s2.isFp;
            if (u1 && u2) {
                ValueType t1 = type_of(s1);
                ValueType t2 = type_of(s2);
                if (t1 == t2) {
                    result_.cluster.localOperands += 2;
                } else {
                    ++result_.cluster.localOperands;
                    ++result_.cluster.crossOperands;
                }
            } else if (u1 || u2) {
                ++result_.cluster.localOperands;
            }
        }

        if (is_mem)
            intRf_->noteAddress(inst.op.effAddr);
        if (is_store)
            lsq_.storeIssued(inst.op.seq, inst.completeCycle);

        if (inst.mispredicted) {
            fetchResumeCycle_ = inst.completeCycle;
            pendingRedirect_ = false;
        }
    }

    // Budget exhausted: keep the unexamined tail.
    for (; scan < dispatched_.size(); ++scan)
        dispatched_[keep++] = dispatched_[scan];
    dispatched_.resize(keep);

    if (long_stall_seen)
        ++result_.issueStallCycles;
}

void
Pipeline::doRename(Cycle cur)
{
    unsigned budget = params_.fetchWidth;
    while (budget > 0 && !fetchBuffer_.empty()) {
        FetchedInst &fetched = fetchBuffer_.front();
        if (fetched.fetchCycle + params_.frontendDepth > cur)
            break;
        if (rob_.full())
            break;

        const DynOp &op = fetched.op;
        const isa::OpInfo &info = isa::opInfo(op.op);
        bool fpq = usesFpQueue(op.op);
        IssueQueue &iq = fpq ? fpIq_ : intIq_;
        if (iq.full())
            break;
        bool is_mem = op.isLoad() || op.isStore();
        if (is_mem && lsq_.full())
            break;
        bool int_dest = op.writesIntReg();
        bool fp_dest = op.writesFpReg();
        if (int_dest && !intMap_.canRename())
            break;
        if (fp_dest && !fpMap_.canRename())
            break;

        InFlightInst &inst = rob_.push(op);
        dispatched_.push_back(&inst);
        inst.fetchCycle = fetched.fetchCycle;
        inst.renameCycle = cur;
        inst.mispredicted = fetched.mispredicted;

        if (info.rs1Class == isa::RegClass::Int) {
            if (op.rs1 != 0) {
                inst.src1Tag = intMap_.lookup(op.rs1);
                inst.src1IsFp = false;
            }
        } else if (info.rs1Class == isa::RegClass::Fp) {
            inst.src1Tag = fpMap_.lookup(op.rs1);
            inst.src1IsFp = true;
        }
        if (info.rs2Class == isa::RegClass::Int) {
            if (op.rs2 != 0) {
                inst.src2Tag = intMap_.lookup(op.rs2);
                inst.src2IsFp = false;
            }
        } else if (info.rs2Class == isa::RegClass::Fp) {
            inst.src2Tag = fpMap_.lookup(op.rs2);
            inst.src2IsFp = true;
        }

        if (int_dest) {
            inst.destTag = intMap_.rename(op.rd, inst.oldDestTag);
            inst.destIsFp = false;
            TagInfo &ti = tagInfo(inst.destTag, false);
            ti.state = TagInfo::State::Pending;
            ti.earliestIssue = cur + 1;
        } else if (fp_dest) {
            inst.destTag = fpMap_.rename(op.rd, inst.oldDestTag);
            inst.destIsFp = true;
            TagInfo &ti = tagInfo(inst.destTag, true);
            ti.state = TagInfo::State::Pending;
            ti.earliestIssue = cur + 1;
        }

        iq.insert();
        if (op.isLoad())
            lsq_.dispatchLoad(op.seq);
        else if (op.isStore())
            lsq_.dispatchStore(op.seq, op.effAddr, info.memBytes);

        fetchBuffer_.popFront();
        --budget;
    }
}

void
Pipeline::doFetch(Cycle cur, FetchStream &stream)
{
    static_assert(instBytes > 0);
    if (traceExhausted_ || pendingRedirect_ || cur < fetchResumeCycle_)
        return;

    unsigned budget = params_.fetchWidth;
    unsigned line_shift = 6; // 64B fetch lines

    // One call consumes at most fetchWidth stream records (each
    // iteration pulls at most one, and at most fetchWidth iterations
    // make progress); the lockstep chunk pause relies on this bound.
    while (budget > 0 && !fetchBuffer_.full()) {
        FetchEntry entry;
        if (pendingFetchValid_) {
            entry = pendingFetch_;
            pendingFetchValid_ = false;
        } else if (!stream.next(entry)) {
            traceExhausted_ = true;
            return;
        }
        const DynOp &op = entry.op;

        u64 line = (op.pc * instBytes) >> line_shift;
        if (line != lastFetchLine_) {
            Cycle lat = memory_.instAccess(op.pc * instBytes);
            lastFetchLine_ = line;
            if (lat > params_.memory.il1.hitLatency) {
                // I-cache miss: stash the instruction and stall.
                pendingFetch_ = entry;
                pendingFetchValid_ = true;
                lastFetchLine_ = ~u64{0}; // re-check after refill
                fetchResumeCycle_ = cur + lat;
                return;
            }
        }

        if (entry.isCondBranch) {
            ++result_.condBranches;
            if (!entry.predictedCorrect)
                ++result_.branchMispredicts;
        }
        bool correct = entry.predictedCorrect;

        fetchBuffer_.pushBack(FetchedInst{op, cur, !correct});
        --budget;

        if (!correct) {
            pendingRedirect_ = true;
            return;
        }
        if (op.isBranch() && op.taken)
            return; // taken branch ends the fetch group
    }
}

void
Pipeline::warmUp(emu::TraceSource &source, u64 insts)
{
    warmUp(serialStream(source), insts);
}

void
Pipeline::warmUp(FetchStream &stream, u64 insts)
{
    WarmupScratch scratch;
    warmUpRange(stream, insts, scratch);
    finishWarmUp(scratch);
}

void
Pipeline::warmUpRange(FetchStream &stream, u64 insts,
                      WarmupScratch &scratch)
{
    FetchEntry entry;
    for (u64 i = 0; i < insts && stream.next(entry); ++i) {
        const DynOp &op = entry.op;
        memory_.instAccess(op.pc * instBytes);
        if (op.isLoad() || op.isStore()) {
            memory_.dataAccess(op.effAddr);
            intRf_->noteAddress(op.effAddr);
        }
        if (op.writesIntReg()) {
            scratch.intVals[op.rd] = op.rdValue;
            scratch.intSet[op.rd] = true;
        } else if (op.writesFpReg()) {
            scratch.fpVals[op.rd] = op.rdValue;
            scratch.fpSet[op.rd] = true;
        }
    }
}

void
Pipeline::installWarmState(const WarmupScratch &scratch)
{
    // Install the fast-forwarded architectural values so the timed
    // window reads consistent register state.
    for (unsigned r = 0; r < isa::numArchRegs; ++r) {
        if (scratch.intSet[r]) {
            u32 tag = intMap_.lookup(r);
            intRf_->release(tag);
            regfile::WriteAccess access =
                intRf_->write(tag, scratch.intVals[r]);
            if (access.stalled)
                intRf_->writeForced(tag, scratch.intVals[r]);
        }
        if (scratch.fpSet[r]) {
            u32 tag = fpMap_.lookup(r);
            fpRf_->release(tag);
            fpRf_->write(tag, scratch.fpVals[r]);
        }
    }
}

void
Pipeline::finishWarmUp(const WarmupScratch &scratch)
{
    installWarmState(scratch);
    intRf_->clearAccessCounts();
    fpRf_->clearAccessCounts();
    result_ = RunResult{};
}

void
Pipeline::resetForResume()
{
    if (!rob_.empty() || !fetchBuffer_.empty() || pendingFetchValid_)
        panic("resetForResume: lane still has work in flight");
    traceExhausted_ = false;
    // Fetch pacing latches from the drained episode are stale; the
    // redirect latch is provably clear (it drops when the mispredicted
    // branch issues, and a drained ROB has issued everything), and the
    // I-miss stash is empty by active()'s definition.
    fetchResumeCycle_ = 0;
    lastFetchLine_ = ~u64{0};
    // No cycles elapse during a functional gap, but re-arm the
    // watchdog base so episode boundaries never look like hangs.
    lastProgressCycle_ = cycle_;
}

unsigned
Pipeline::classifyCycle() const
{
    if (!rob_.empty()) {
        const InFlightInst &head = rob_.head();
        if (head.state == InstState::WrittenBack)
            return CycleAccounting::Commit;
        if (head.state == InstState::Issued) {
            if (head.wbStalledOnLong)
                return CycleAccounting::LongStall;
            if (head.completeCycle > cycle_)
                return head.op.isLoad() ? CycleAccounting::MemWait
                                        : CycleAccounting::ExecWait;
            return CycleAccounting::WbWait;
        }
        return rob_.full() ? CycleAccounting::RobFull
                           : CycleAccounting::IssueBound;
    }
    if (!fetchBuffer_.empty())
        return CycleAccounting::FrontendFill;
    if (pendingFetchValid_)
        return CycleAccounting::IcacheWait;
    return CycleAccounting::FetchEmpty;
}

Cycle
Pipeline::quiescentUntil(Cycle cur) const
{
    // Commit: a written-back head commits this very cycle.
    if (!rob_.empty() && rob_.head().state == InstState::WrittenBack)
        return 0;

    // Issue: any dispatched candidate gets scanned each cycle, and a
    // scan can consume model read-port budget or issue outright —
    // only a window whose waiting instructions are all *parked* (with
    // known wake cycles) is skippable.
    if (!dispatched_.empty())
        return 0;

    // A Long issue-stall cycle with parked instructions restores the
    // full scan and counts issueStallCycles per cycle: never skip it.
    if (!parked_.empty() && intRf_->shouldStallIssue())
        return 0;

    // Fetch: eligible to pull a record right now — step. (A redirect
    // blocks fetch until the mispredicted branch issues, which is
    // bounded by the parked/writeback candidates below; a full fetch
    // buffer blocks until rename drains it, bounded likewise.)
    if (!traceExhausted_ && !pendingRedirect_ && !fetchBuffer_.full() &&
        cur >= fetchResumeCycle_)
        return 0;

    Cycle next = ~Cycle{0};
    auto candidate = [&next](Cycle c) { next = std::min(next, c); };

    if (!traceExhausted_ && !pendingRedirect_ && !fetchBuffer_.full())
        candidate(fetchResumeCycle_);

    if (!parked_.empty())
        candidate(parked_.front().first);

    // Writeback: every issued instruction must complete strictly
    // later. An already-complete entry (including a Long-stalled one)
    // retries every cycle, and retries touch model counters — step.
    for (const InFlightInst *inst : pendingWb_) {
        if (inst->completeCycle <= cur)
            return 0;
        candidate(inst->completeCycle);
    }

    // Rename: blocked on pipeline depth until a known cycle, or on a
    // structural resource (ROB/IQ/LSQ/free list) whose release needs
    // a commit/issue/writeback event already bounded above.
    if (!fetchBuffer_.empty()) {
        const FetchedInst &fetched = fetchBuffer_.front();
        Cycle ready = fetched.fetchCycle + params_.frontendDepth;
        if (ready > cur) {
            candidate(ready);
        } else {
            const DynOp &op = fetched.op;
            bool blocked =
                rob_.full() ||
                (usesFpQueue(op.op) ? fpIq_ : intIq_).full() ||
                ((op.isLoad() || op.isStore()) && lsq_.full()) ||
                (op.writesIntReg() && !intMap_.canRename()) ||
                (op.writesFpReg() && !fpMap_.canRename());
            if (!blocked)
                return 0; // rename makes progress this cycle
        }
    }

    if (next == ~Cycle{0})
        return 0; // nothing can bound the next event
    return next;
}

void
Pipeline::beginRun(const std::string &workload_name,
                   CycleObserver *observer)
{
    result_ = RunResult{};
    result_.workload = workload_name;
    result_.config = params_.regFileBackend;
    observer_ = observer;
    cycle_ = 0;
    lastCommitCount_ = 0;
    lastProgressCycle_ = 0;
    liveLong_.reset();
    liveShort_.reset();
}

void
Pipeline::stepCycle(FetchStream &stream)
{
    Cycle cur = cycle_;
    unsigned bucket = classifyCycle();

    // Exact idle-cycle skip: when every stage provably no-ops until a
    // known future cycle, jump the clock in O(1) and advance the
    // per-cycle statistics by the same amounts the stepped loop would
    // have accumulated. The per-cycle observer (live-value oracle)
    // samples mid-stretch, so its presence forces stepping.
    if (fastPath_ && !observer_) {
        Cycle next = quiescentUntil(cur);
        if (next != 0) {
            // Never jump past the cycle the stepped loop's watchdog
            // would have fired on.
            Cycle cap = lastProgressCycle_ + watchdogCycles + 1;
            if (next > cap)
                next = cap;
            if (next > cur + 1) {
                Cycle span = next - cur;
                result_.cycleAccounting.counts[bucket] += span;
                regfile::RegisterFile::Occupancy occ =
                    intRf_->occupancy();
                liveLong_.sampleN(occ.liveLong, span);
                liveShort_.sampleN(occ.liveShort, span);
                ++result_.fastPathSkips;
                result_.fastPathSkippedCycles += span;
                cycle_ = next;
                return;
            }
        }
    }

    ++result_.cycleAccounting.counts[bucket];
    intRf_->beginCycle();
    doCommit(cur);
    doWriteback(cur);
    doIssue(cur);
    doRename(cur);
    doFetch(cur, stream);

    if (observer_ && params_.oracleSamplePeriod &&
        cur % params_.oracleSamplePeriod == 0) {
        observer_->sampleCycle(cur, *intRf_);
    }
    regfile::RegisterFile::Occupancy occ = intRf_->occupancy();
    liveLong_.sample(occ.liveLong);
    liveShort_.sample(occ.liveShort);

    if (result_.committedInsts != lastCommitCount_) {
        lastCommitCount_ = result_.committedInsts;
        lastProgressCycle_ = cur;
    } else if (cur - lastProgressCycle_ > watchdogCycles) {
        if (rob_.empty()) {
            panic("pipeline: no commit for %llu cycles, ROB empty",
                  (unsigned long long)watchdogCycles);
        }
        const InFlightInst &head = rob_.head();
        std::string src_state = "";
        if (head.src1Tag != invalidIndex) {
            const TagInfo &ti = tagInfo(head.src1Tag, head.src1IsFp);
            src_state += strprintf(" src1[tag=%u st=%d c=%llu r=%llu]",
                head.src1Tag, (int)ti.state,
                (unsigned long long)ti.completeCycle,
                (unsigned long long)ti.rfReadableCycle);
        }
        if (head.src2Tag != invalidIndex) {
            const TagInfo &ti = tagInfo(head.src2Tag, head.src2IsFp);
            src_state += strprintf(" src2[tag=%u st=%d c=%llu r=%llu]",
                head.src2Tag, (int)ti.state,
                (unsigned long long)ti.completeCycle,
                (unsigned long long)ti.rfReadableCycle);
        }
        panic("pipeline: no commit for %llu cycles: head seq %llu "
              "op %s state %d stallIssue %d%s",
              (unsigned long long)watchdogCycles,
              (unsigned long long)head.op.seq,
              isa::opcodeName(head.op.op).c_str(), (int)head.state,
              (int)intRf_->shouldStallIssue(), src_state.c_str());
    }
    ++cycle_;
}

RunResult
Pipeline::finishRun()
{
    result_.cycles = cycle_;
    result_.ipc = cycle_ ? static_cast<double>(result_.committedInsts) /
                               cycle_
                         : 0.0;
    result_.intRfAccesses = intRf_->accessCounts();
    result_.shortFileWrites = intRf_->shortAllocWrites();
    result_.longAllocStalls = intRf_->writeStalls();
    result_.recoveries = intRf_->recoveries();
    result_.avgLiveLong = liveLong_.mean();
    result_.avgLiveShort = liveShort_.mean();
    regfile::RegisterFile::PortStats ps = intRf_->portStats();
    result_.portConflictOps = ps.conflictOps;
    result_.portConflictCycles = ps.conflictCycles;
    observer_ = nullptr;
    return result_;
}

RunResult
Pipeline::run(emu::TraceSource &source, CycleObserver *observer)
{
    return run(serialStream(source), observer);
}

RunResult
Pipeline::run(FetchStream &stream, CycleObserver *observer)
{
    beginRun(stream.name(), observer);
    while (active())
        stepCycle(stream);
    return finishRun();
}

} // namespace carf::core
