/**
 * @file
 * The out-of-order superscalar core (paper Table 1), driven by a
 * program-order dynamic instruction trace.
 *
 * Timing model summary:
 *  - 8-wide fetch/rename/issue/commit; 128-entry ROB, 64-entry LSQ,
 *    32+32 issue queue slots; gshare+BTB+RAS front end; two-level
 *    cache hierarchy.
 *  - A result completing at cycle c is forwardable via bypass for
 *    `bypassWindow` cycles; afterwards consumers read the register
 *    file (subject to read-port arbitration at issue).
 *  - The content-aware organization adds a second register-read stage
 *    (RF1/RF2) and a two-stage writeback (WR1 classification, WR2
 *    write + Long allocation); Long exhaustion stalls the writeback,
 *    and an issue-stall threshold on free Long entries plus a
 *    head-of-ROB forced allocation implement the paper's
 *    pseudo-deadlock avoidance/recovery.
 *
 * The front end never fetches wrong-path instructions; a mispredicted
 * branch stalls fetch until the branch executes, charging the full
 * redirect-plus-refill latency (see DESIGN.md substitutions).
 */

#ifndef CARF_CORE_PIPELINE_HH
#define CARF_CORE_PIPELINE_HH

#include <memory>
#include <vector>

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "core/core_stats.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "emu/trace.hh"
#include "mem/hierarchy.hh"
#include "regfile/regfile.hh"

namespace carf::core
{

/**
 * Per-cycle observer hook; the live-value oracle (src/sim) implements
 * this to sample the integer register file.
 */
class CycleObserver
{
  public:
    virtual ~CycleObserver() = default;
    virtual void sampleCycle(Cycle cycle,
                             const regfile::RegisterFile &int_rf) = 0;
};

/** Trace-driven out-of-order pipeline. */
class Pipeline
{
  public:
    explicit Pipeline(const CoreParams &params);
    ~Pipeline();

    /**
     * Simulate @p source to exhaustion and return the run summary.
     * @param observer optional per-cycle register file sampler
     */
    RunResult run(emu::TraceSource &source,
                  CycleObserver *observer = nullptr);

    /**
     * Fast-forward: functionally consume up to @p insts instructions
     * from @p source before timed simulation, warming the branch
     * predictor, caches, the Short file, and the architectural
     * register values (the paper measures representative windows
     * after a SimPoint-style skip). Call before run(), at most once.
     */
    void warmUp(emu::TraceSource &source, u64 insts);

    const CoreParams &params() const { return params_; }
    regfile::RegisterFile &intRegFile() { return *intRf_; }
    const regfile::RegisterFile &intRegFile() const { return *intRf_; }

    /**
     * Architectural value of integer register @p idx through the
     * current rename mapping (valid once the pipeline has drained;
     * used to cross-check the timing model against pure functional
     * execution).
     */
    u64 archIntReg(unsigned idx) const;
    /** Architectural value (raw bits) of fp register @p idx. */
    u64 archFpReg(unsigned idx) const;

  private:
    /** Per-physical-tag timing state. */
    struct TagInfo
    {
        enum class State : u8 { Pending, Issued, Done };
        State state = State::Done;
        Cycle completeCycle = 0;
        /** First cycle the value is readable from the file. */
        Cycle rfReadableCycle = 0;
    };

    struct FetchedInst
    {
        emu::DynOp op;
        Cycle fetchCycle = 0;
        bool mispredicted = false;
    };

    struct SourceView
    {
        u32 tag = invalidIndex;
        bool isFp = false;
        u64 value = 0;
        bool used = false;
    };

    // --- per-cycle stages (called newest-to-oldest pipeline order) ---
    void doCommit(Cycle cur);
    void doWriteback(Cycle cur);
    void doIssue(Cycle cur);
    void doRename(Cycle cur);
    void doFetch(Cycle cur, emu::TraceSource &source);

    /** Front-end prediction for @p op; true when correct. */
    bool predictBranch(const emu::DynOp &op);

    /** Gather the register sources of @p inst. */
    void gatherSources(const InFlightInst &inst, SourceView &s1,
                       SourceView &s2) const;

    /**
     * Attempt the writeback of @p inst (state Issued, complete by
     * @p cur); true when it reached WrittenBack this cycle.
     */
    bool tryWriteback(InFlightInst &inst, Cycle cur,
                      unsigned &int_ports, unsigned &fp_ports);

    /** Tag timing lookup by class (hot; called per operand check). */
    TagInfo &tagInfo(u32 tag, bool is_fp)
    {
        return is_fp ? fpTags_[tag] : intTags_[tag];
    }
    const TagInfo &tagInfo(u32 tag, bool is_fp) const
    {
        return is_fp ? fpTags_[tag] : intTags_[tag];
    }

    CoreParams params_;

    std::unique_ptr<regfile::RegisterFile> intRf_;
    std::unique_ptr<regfile::RegisterFile> fpRf_;
    regfile::ContentAwareRegFile *caRf_ = nullptr; //!< non-owning view

    RenameMap intMap_;
    RenameMap fpMap_;
    std::vector<TagInfo> intTags_;
    std::vector<TagInfo> fpTags_;

    Rob rob_;
    IssueQueue intIq_;
    IssueQueue fpIq_;
    Lsq lsq_;

    /**
     * Scan lists over the ROB window, so the per-cycle issue and
     * writeback stages visit only live candidates instead of walking
     * the whole ROB. Entries are raw pointers into the ROB ring (slots
     * are stable between push and pop; there is no flush path — the
     * front end never fetches wrong-path instructions).
     *
     * dispatched_ holds state==Dispatched instructions in program
     * order (appended at rename, compacted at issue). pendingWb_ holds
     * state==Issued instructions sorted by seq (binary-insert at
     * issue, compacted at writeback), which is exactly the age order
     * the full-ROB scan visited them in.
     */
    std::vector<InFlightInst *> dispatched_;
    std::vector<InFlightInst *> pendingWb_;

    branch::Gshare gshare_;
    branch::Btb btb_;
    branch::Ras ras_;

    mem::Hierarchy memory_;

    RingBuffer<FetchedInst> fetchBuffer_;
    bool traceExhausted_ = false;
    bool pendingRedirect_ = false;
    Cycle fetchResumeCycle_ = 0;
    u64 lastFetchLine_ = ~u64{0};
    /** Instruction pulled from the trace but stalled on an I-miss. */
    emu::DynOp pendingFetch_;
    bool pendingFetchValid_ = false;

    u64 committedSinceInterval_ = 0;

    RunResult result_;
};

} // namespace carf::core

#endif // CARF_CORE_PIPELINE_HH
