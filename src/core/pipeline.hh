/**
 * @file
 * The out-of-order superscalar core (paper Table 1), driven by a
 * program-order dynamic instruction trace.
 *
 * Timing model summary:
 *  - 8-wide fetch/rename/issue/commit; 128-entry ROB, 64-entry LSQ,
 *    32+32 issue queue slots; gshare+BTB+RAS front end; two-level
 *    cache hierarchy.
 *  - A result completing at cycle c is forwardable via bypass for
 *    `bypassWindow` cycles; afterwards consumers read the register
 *    file (subject to read-port arbitration at issue).
 *  - The content-aware organization adds a second register-read stage
 *    (RF1/RF2) and a two-stage writeback (WR1 classification, WR2
 *    write + Long allocation); Long exhaustion stalls the writeback,
 *    and an issue-stall threshold on free Long entries plus a
 *    head-of-ROB forced allocation implement the paper's
 *    pseudo-deadlock avoidance/recovery.
 *
 * The front end never fetches wrong-path instructions; a mispredicted
 * branch stalls fetch until the branch executes, charging the full
 * redirect-plus-refill latency (see DESIGN.md substitutions).
 *
 * A Pipeline is a resumable lane: beginRun()/stepCycle()/finishRun()
 * expose the cycle loop so the lockstep engine (src/sim/lockstep.cc)
 * can interleave many configurations over one decoded FetchStream.
 * The classic run(TraceSource&) entry point wraps the same loop
 * around an owned PredictingFetchStream and is bit-identical to the
 * pre-lockstep pipeline.
 */

#ifndef CARF_CORE_PIPELINE_HH
#define CARF_CORE_PIPELINE_HH

#include <array>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "core/core_stats.hh"
#include "core/fetch_stream.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/params.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "emu/trace.hh"
#include "mem/hierarchy.hh"
#include "regfile/regfile.hh"

namespace carf::core
{

/**
 * Per-cycle observer hook; the live-value oracle (src/sim) implements
 * this to sample the integer register file.
 */
class CycleObserver
{
  public:
    virtual ~CycleObserver() = default;
    virtual void sampleCycle(Cycle cycle,
                             const regfile::RegisterFile &int_rf) = 0;
};

/** Trace-driven out-of-order pipeline. */
class Pipeline
{
  public:
    explicit Pipeline(const CoreParams &params);
    ~Pipeline();

    /**
     * Simulate @p source to exhaustion and return the run summary.
     * @param observer optional per-cycle register file sampler
     */
    RunResult run(emu::TraceSource &source,
                  CycleObserver *observer = nullptr);

    /** As above over an externally predicted stream. */
    RunResult run(FetchStream &stream, CycleObserver *observer = nullptr);

    /**
     * Fast-forward: functionally consume up to @p insts instructions
     * from @p source before timed simulation, warming the branch
     * predictor, caches, the Short file, and the architectural
     * register values (the paper measures representative windows
     * after a SimPoint-style skip). Call before run(), at most once.
     */
    void warmUp(emu::TraceSource &source, u64 insts);

    /** As above over an externally predicted stream. */
    void warmUp(FetchStream &stream, u64 insts);

    // --- resumable-lane interface (lockstep engine) ---

    /**
     * Architectural values accumulated across chunked warm-up calls;
     * zero-initialized, passed to every warmUpRange() of one warm-up
     * and installed by finishWarmUp().
     */
    struct WarmupScratch
    {
        std::array<u64, isa::numArchRegs> intVals{};
        std::array<bool, isa::numArchRegs> intSet{};
        std::array<u64, isa::numArchRegs> fpVals{};
        std::array<bool, isa::numArchRegs> fpSet{};
    };

    /**
     * Functionally consume up to @p insts records of @p stream into
     * @p scratch (one slice of a possibly chunked warm-up). Stops
     * early only when the stream ends.
     */
    void warmUpRange(FetchStream &stream, u64 insts,
                     WarmupScratch &scratch);

    /**
     * Install the warm-up's architectural values and reset statistics
     * for the timed window. Call once, after the last warmUpRange().
     */
    void finishWarmUp(const WarmupScratch &scratch);

    /**
     * Install the architectural values gathered by warmUpRange()
     * *without* resetting statistics — the sampling engine's variant
     * of finishWarmUp(), used between measurement intervals of one
     * timed window (issue cross-checks every RegFile operand against
     * the trace, so resumed execution needs current values).
     */
    void installWarmState(const WarmupScratch &scratch);

    /**
     * Re-arm a drained lane for more trace records after a functional
     * fast-forward gap (sampling mode): clears the trace-exhausted
     * and fetch-pacing latches while keeping cycle_, caches, the
     * predictor, rename state, and all statistics. Call only when
     * !active().
     */
    void resetForResume();

    /** Arm the timed window: reset statistics and the cycle counter. */
    void beginRun(const std::string &workload_name,
                  CycleObserver *observer = nullptr);

    /**
     * True while the timed window still has work: trace records left
     * to fetch or instructions in flight. beginRun() must have run.
     */
    bool
    active() const
    {
        return !(traceExhausted_ && rob_.empty() &&
                 fetchBuffer_.empty() && !pendingFetchValid_);
    }

    /**
     * Advance the lane by one cycle, fetching from @p stream. The
     * caller may switch the stream object between calls as long as
     * the record sequence is the one uninterrupted program-order
     * trace the lane has been consuming.
     */
    void stepCycle(FetchStream &stream);

    /** Close the timed window and return the run summary. */
    RunResult finishRun();

    const CoreParams &params() const { return params_; }
    regfile::RegisterFile &intRegFile() { return *intRf_; }
    const regfile::RegisterFile &intRegFile() const { return *intRf_; }

    /**
     * Enable/disable the exact idle-cycle skip in stepCycle (default
     * on). Skipping is bit-identical to stepping — the flag exists so
     * tests and benches can run the stepped loop for differential
     * checks and honest speedup measurement.
     */
    void setFastPath(bool on) { fastPath_ = on; }

    /** Committed instructions so far in the current timed window. */
    u64 committedInsts() const { return result_.committedInsts; }
    /** Current cycle of the timed window. */
    Cycle currentCycle() const { return cycle_; }
    /** Cycle-bucket attribution so far (sums to currentCycle()). */
    const CycleAccounting &cycleAccounting() const
    {
        return result_.cycleAccounting;
    }

    /**
     * Architectural value of integer register @p idx through the
     * current rename mapping (valid once the pipeline has drained;
     * used to cross-check the timing model against pure functional
     * execution).
     */
    u64 archIntReg(unsigned idx) const;
    /** Architectural value (raw bits) of fp register @p idx. */
    u64 archFpReg(unsigned idx) const;

  private:
    /** Per-physical-tag timing state. */
    struct TagInfo
    {
        enum class State : u8 { Pending, Issued, Done };
        State state = State::Done;
        Cycle completeCycle = 0;
        /** First cycle the value is readable from the file. */
        Cycle rfReadableCycle = 0;
        /**
         * While Pending: a lower bound on the producing instruction's
         * issue cycle (set at rename, raised when the producer is
         * parked). Lets consumers of a parked producer park too, so
         * whole dependency chains leave the issue scan.
         */
        Cycle earliestIssue = 0;
    };

    struct FetchedInst
    {
        emu::DynOp op;
        Cycle fetchCycle = 0;
        bool mispredicted = false;
    };

    struct SourceView
    {
        u32 tag = invalidIndex;
        bool isFp = false;
        u64 value = 0;
        bool used = false;
    };

    /**
     * Attribute the coming cycle to one CycleAccounting bucket, as a
     * pure function of pre-stage machine state (so stepped and
     * skipped execution classify identically).
     */
    unsigned classifyCycle() const;

    /**
     * Conservative fast-path bound: the first cycle > @p cur at which
     * any stage could observably act, given that no stage acts at
     * @p cur. Returns 0 when some structure cannot bound its next
     * event (or could act at @p cur itself) — the caller must step.
     */
    Cycle quiescentUntil(Cycle cur) const;

    // --- per-cycle stages (called newest-to-oldest pipeline order) ---
    void doCommit(Cycle cur);
    void doWriteback(Cycle cur);
    void doIssue(Cycle cur);
    void doRename(Cycle cur);
    void doFetch(Cycle cur, FetchStream &stream);

    /** Gather the register sources of @p inst. */
    void gatherSources(const InFlightInst &inst, SourceView &s1,
                       SourceView &s2) const;

    /**
     * Attempt the writeback of @p inst (state Issued, complete by
     * @p cur); true when it reached WrittenBack this cycle.
     */
    bool tryWriteback(InFlightInst &inst, Cycle cur,
                      unsigned &int_ports, unsigned &fp_ports);

    /** Tag timing lookup by class (hot; called per operand check). */
    TagInfo &tagInfo(u32 tag, bool is_fp)
    {
        return is_fp ? fpTags_[tag] : intTags_[tag];
    }
    const TagInfo &tagInfo(u32 tag, bool is_fp) const
    {
        return is_fp ? fpTags_[tag] : intTags_[tag];
    }

    /**
     * The owned serial front end backing the TraceSource entry
     * points. Created on first use and kept for the Pipeline's
     * lifetime so predictor state spans warmUp() and run().
     */
    FetchStream &serialStream(emu::TraceSource &source);

    CoreParams params_;

    std::unique_ptr<regfile::RegisterFile> intRf_;
    std::unique_ptr<regfile::RegisterFile> fpRf_;

    RenameMap intMap_;
    RenameMap fpMap_;
    std::vector<TagInfo> intTags_;
    std::vector<TagInfo> fpTags_;

    Rob rob_;
    IssueQueue intIq_;
    IssueQueue fpIq_;
    Lsq lsq_;

    /**
     * Scan lists over the ROB window, so the per-cycle issue and
     * writeback stages visit only live candidates instead of walking
     * the whole ROB. Entries are raw pointers into the ROB ring (slots
     * are stable between push and pop; there is no flush path — the
     * front end never fetches wrong-path instructions).
     *
     * dispatched_ holds state==Dispatched instructions in program
     * order (appended at rename, compacted at issue). pendingWb_ holds
     * state==Issued instructions sorted by seq (binary-insert at
     * issue, compacted at writeback), which is exactly the age order
     * the full-ROB scan visited them in.
     */
    std::vector<InFlightInst *> dispatched_;
    std::vector<InFlightInst *> pendingWb_;

    /**
     * Dispatched instructions parked out of the issue scan until a
     * known cycle: a min-heap keyed by the first cycle their operand
     * check could pass, derived only from facts that cannot change
     * before then (an issued producer's completeCycle, a written-back
     * producer's rfReadableCycle, or a parked producer's own bound).
     * Entries re-enter dispatched_ at their age-ordered position when
     * the bound arrives, so issue decisions are bit-identical to the
     * full scan — the parked cycles are exactly the ones whose check
     * was guaranteed to fail. A Long issue-stall cycle unparks
     * everything first, keeping issueStallCycles exact.
     */
    std::vector<std::pair<Cycle, InFlightInst *>> parked_;

    /** Move @p inst back into dispatched_ at its seq position. */
    void unpark(InFlightInst *inst);

    std::unique_ptr<PredictingFetchStream> serialStream_;

    mem::Hierarchy memory_;

    RingBuffer<FetchedInst> fetchBuffer_;
    bool traceExhausted_ = false;
    bool pendingRedirect_ = false;
    Cycle fetchResumeCycle_ = 0;
    u64 lastFetchLine_ = ~u64{0};
    /** Record pulled from the stream but stalled on an I-miss. */
    FetchEntry pendingFetch_;
    bool pendingFetchValid_ = false;

    u64 committedSinceInterval_ = 0;

    // --- timed-window cycle-loop state (spans stepCycle calls) ---
    bool fastPath_ = true;
    Cycle cycle_ = 0;
    u64 lastCommitCount_ = 0;
    Cycle lastProgressCycle_ = 0;
    stats::Average liveLong_;
    stats::Average liveShort_;
    CycleObserver *observer_ = nullptr;

    RunResult result_;
};

} // namespace carf::core

#endif // CARF_CORE_PIPELINE_HH
