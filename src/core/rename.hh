/**
 * @file
 * Register renaming: per-class register alias tables and physical
 * tag free lists.
 *
 * Integer architectural register 0 is hardwired to zero and is never
 * renamed nor mapped; reads of it carry no dependence and no register
 * file access.
 */

#ifndef CARF_CORE_RENAME_HH
#define CARF_CORE_RENAME_HH

#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace carf::core
{

/** Physical tag free list. */
class FreeList
{
  public:
    /** Tags [first, total) start free; [0, first) are pre-allocated. */
    FreeList(u32 total, u32 first);

    bool empty() const { return free_.empty(); }
    size_t freeCount() const { return free_.size(); }

    u32 allocate();
    void release(u32 tag);

  private:
    std::vector<u32> free_;
};

/**
 * One register class's rename state: RAT + free list. The initial
 * mapping is identity (arch reg i -> tag i), and those tags are live
 * with value zero at reset.
 */
class RenameMap
{
  public:
    RenameMap(unsigned arch_regs, unsigned phys_regs);

    /** Current mapping of @p arch (the tag consumers read). */
    u32 lookup(unsigned arch) const { return rat_.at(arch); }

    bool canRename() const { return !freeList_.empty(); }

    /**
     * Rename @p arch to a fresh tag.
     * @param old_tag_out previous mapping, to release at commit
     * @return the new tag
     */
    u32 rename(unsigned arch, u32 &old_tag_out);

    /** Commit released the previous mapping @p old_tag. */
    void releaseTag(u32 old_tag) { freeList_.release(old_tag); }

    size_t freeTags() const { return freeList_.freeCount(); }
    unsigned physRegs() const { return physRegs_; }

  private:
    unsigned physRegs_;
    std::vector<u32> rat_;
    FreeList freeList_;
};

} // namespace carf::core

#endif // CARF_CORE_RENAME_HH
