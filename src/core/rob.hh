/**
 * @file
 * Reorder buffer and the in-flight instruction record.
 */

#ifndef CARF_CORE_ROB_HH
#define CARF_CORE_ROB_HH

#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "emu/trace.hh"

namespace carf::core
{

/** Lifecycle of an in-flight instruction. */
enum class InstState : u8
{
    Dispatched, //!< in ROB + issue queue, waiting for operands
    Issued,     //!< executing; completeCycle is known
    Completed,  //!< result on bypass; awaiting writeback
    WrittenBack, //!< register file updated; may commit
};

/** A dynamic instruction in the out-of-order window. */
struct InFlightInst
{
    emu::DynOp op;

    // Renamed registers. invalidIndex when absent.
    u32 destTag = invalidIndex;
    u32 oldDestTag = invalidIndex;
    u32 src1Tag = invalidIndex;
    u32 src2Tag = invalidIndex;
    bool destIsFp = false;
    bool src1IsFp = false;
    bool src2IsFp = false;

    InstState state = InstState::Dispatched;

    Cycle fetchCycle = 0;
    Cycle renameCycle = 0;
    Cycle issueCycle = 0;
    /** First cycle a dependent may begin execution. */
    Cycle completeCycle = 0;
    /** Cycle the register file write finished. */
    Cycle wbCycle = 0;

    /** Mispredicted by the front end: fetch stalls until resolution. */
    bool mispredicted = false;
    /** Writeback attempted but stalled on Long allocation. */
    bool wbStalledOnLong = false;

    bool hasDest() const { return destTag != invalidIndex; }
    bool writesIntDest() const { return hasDest() && !destIsFp; }
};

/**
 * In-order window of in-flight instructions.
 *
 * Backed by a fixed ring: entries never move between push and pop, so
 * pointers to in-flight instructions stay valid while the instruction
 * is in the window (the pipeline's issue/writeback scan lists rely on
 * this).
 */
class Rob
{
  public:
    explicit Rob(unsigned capacity) : entries_(capacity) {}

    bool full() const { return entries_.full(); }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries_.capacity());
    }

    InFlightInst &push(const emu::DynOp &op);
    InFlightInst &head() { return entries_.front(); }
    const InFlightInst &head() const { return entries_.front(); }
    void popHead() { entries_.popFront(); }

    /** Age-ordered iteration. */
    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    RingBuffer<InFlightInst> entries_;
};

} // namespace carf::core

#endif // CARF_CORE_ROB_HH
