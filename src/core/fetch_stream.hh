/**
 * @file
 * The decoded front-end stream the pipeline fetches from.
 *
 * Branch prediction consumes the dynamic trace strictly in program
 * order and never reads timing state, so its per-record outcome is a
 * pure function of the instruction stream — independent of the core
 * configuration consuming it. Factoring prediction out of Pipeline
 * into a stream of (DynOp, prediction flags) records lets the
 * lockstep engine (src/sim/lockstep.cc) predict each record once and
 * replay the annotated stream through N pipeline lanes, while the
 * serial path keeps identical behaviour through
 * PredictingFetchStream.
 */

#ifndef CARF_CORE_FETCH_STREAM_HH
#define CARF_CORE_FETCH_STREAM_HH

#include <string>

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"
#include "core/params.hh"
#include "emu/trace.hh"

namespace carf::core
{

/** One trace record annotated with the front end's prediction. */
struct FetchEntry
{
    emu::DynOp op;
    /** Conditional branch (counted in RunResult::condBranches). */
    bool isCondBranch = false;
    /**
     * The front end predicted direction and target correctly. False
     * stalls fetch until the branch resolves (conditional branches
     * additionally count as mispredicts; JAL/JALR target misses cost
     * the redirect but are not counted, matching the paper's
     * conditional-only mispredict rate).
     */
    bool predictedCorrect = true;
};

/** A program-order stream of predicted records. */
class FetchStream
{
  public:
    virtual ~FetchStream() = default;
    /** Produce the next record; false when the stream is exhausted. */
    virtual bool next(FetchEntry &out) = 0;
    virtual std::string name() const = 0;
};

/**
 * The gshare+BTB+RAS front end bundle. predict() must see every
 * record of the dynamic trace exactly once, in program order; the
 * outcome flags are then valid for any consuming configuration with
 * the same predictor geometry.
 */
class BranchPredictors
{
  public:
    explicit BranchPredictors(const CoreParams &params);

    /** Predict (and train on) @p op, filling @p out's flags. */
    void predict(const emu::DynOp &op, FetchEntry &out);

  private:
    branch::Gshare gshare_;
    branch::Btb btb_;
    branch::Ras ras_;
};

/**
 * The serial front end: pulls records from a TraceSource and predicts
 * them on the fly. Predictor state lives here and persists across
 * rebind(), so one stream spans a warm-up pass and the timed window
 * exactly as the in-pipeline predictors used to.
 */
class PredictingFetchStream final : public FetchStream
{
  public:
    PredictingFetchStream(emu::TraceSource &source,
                          const CoreParams &params)
        : source_(&source), predictors_(params)
    {
    }

    bool
    next(FetchEntry &out) override
    {
        if (!source_->next(out.op))
            return false;
        predictors_.predict(out.op, out);
        return true;
    }

    std::string name() const override { return source_->name(); }

    /** Swap the underlying source, keeping predictor state. */
    void rebind(emu::TraceSource &source) { source_ = &source; }

  private:
    emu::TraceSource *source_;
    BranchPredictors predictors_;
};

} // namespace carf::core

#endif // CARF_CORE_FETCH_STREAM_HH
