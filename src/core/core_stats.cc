#include "core/core_stats.hh"

namespace carf::core
{

const char *
OperandMix::bucketName(unsigned bucket)
{
    switch (bucket) {
      case OnlySimple: return "only simple";
      case OnlyShort: return "only short";
      case OnlyLong: return "only long";
      case SimpleShort: return "simple+short";
      case SimpleLong: return "simple+long";
      case ShortLong: return "short+long";
    }
    return "?";
}

const char *
CycleAccounting::bucketName(unsigned bucket)
{
    switch (bucket) {
      case Commit: return "commit";
      case LongStall: return "long_stall";
      case MemWait: return "mem_wait";
      case ExecWait: return "exec_wait";
      case WbWait: return "wb_wait";
      case RobFull: return "rob_full";
      case IssueBound: return "issue_bound";
      case IcacheWait: return "icache_wait";
      case FrontendFill: return "frontend_fill";
      case FetchEmpty: return "fetch_empty";
    }
    return "?";
}

u64
CycleAccounting::total() const
{
    u64 sum = 0;
    for (u64 c : counts)
        sum += c;
    return sum;
}

u64
OperandMix::total() const
{
    u64 sum = 0;
    for (u64 c : counts)
        sum += c;
    return sum;
}

double
OperandMix::fraction(unsigned bucket) const
{
    u64 sum = total();
    return sum ? static_cast<double>(counts[bucket]) / sum : 0.0;
}

} // namespace carf::core
