#include "core/rob.hh"

#include "common/logging.hh"

namespace carf::core
{

InFlightInst &
Rob::push(const emu::DynOp &op)
{
    if (full())
        panic("Rob: push into full ROB");
    entries_.emplace_back();
    entries_.back().op = op;
    return entries_.back();
}

} // namespace carf::core
