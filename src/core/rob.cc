#include "core/rob.hh"

#include "common/logging.hh"

namespace carf::core
{

InFlightInst &
Rob::push(const emu::DynOp &op)
{
    if (full())
        panic("Rob: push into full ROB");
    InFlightInst &inst = entries_.pushBack();
    inst.op = op;
    return inst;
}

} // namespace carf::core
