#include "core/lsq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace carf::core
{

void
Lsq::dispatchLoad(InstSeqNum seq)
{
    (void)seq;
    if (full())
        panic("Lsq: dispatch into full queue");
    ++occupancy_;
}

void
Lsq::dispatchStore(InstSeqNum seq, Addr addr, unsigned bytes)
{
    if (full())
        panic("Lsq: dispatch into full queue");
    ++occupancy_;
    stores_.push_back({seq, addr, bytes, false, 0});
}

void
Lsq::storeIssued(InstSeqNum seq, Cycle complete_cycle)
{
    for (StoreEntry &entry : stores_) {
        if (entry.seq == seq) {
            entry.issued = true;
            entry.completeCycle = complete_cycle;
            return;
        }
    }
    panic("Lsq: storeIssued for unknown store %llu",
          static_cast<unsigned long long>(seq));
}

void
Lsq::commitLoad()
{
    if (occupancy_ == 0)
        panic("Lsq: commit from empty queue");
    --occupancy_;
}

void
Lsq::commitStore(InstSeqNum seq)
{
    if (occupancy_ == 0)
        panic("Lsq: commit from empty queue");
    --occupancy_;
    if (stores_.empty() || stores_.front().seq != seq)
        panic("Lsq: stores must commit in order");
    stores_.pop_front();
}

bool
Lsq::loadReadyCycle(InstSeqNum seq, Addr addr, unsigned bytes,
                    Cycle &cycle_out) const
{
    Cycle ready = 0;
    for (const StoreEntry &entry : stores_) {
        if (entry.seq >= seq)
            break; // stores_ is age-ordered
        bool overlap = entry.addr < addr + bytes &&
                       addr < entry.addr + entry.bytes;
        if (!overlap)
            continue;
        if (!entry.issued)
            return false;
        ready = std::max(ready, entry.completeCycle);
    }
    cycle_out = ready;
    return true;
}

} // namespace carf::core
