#include "core/rename.hh"

#include "common/logging.hh"

namespace carf::core
{

FreeList::FreeList(u32 total, u32 first)
{
    if (first > total)
        panic("FreeList: first %u > total %u", first, total);
    free_.reserve(total - first);
    // Pop order: lowest tag first (purely cosmetic determinism).
    for (u32 tag = total; tag > first; --tag)
        free_.push_back(tag - 1);
}

u32
FreeList::allocate()
{
    if (free_.empty())
        panic("FreeList: allocate from empty list");
    u32 tag = free_.back();
    free_.pop_back();
    return tag;
}

void
FreeList::release(u32 tag)
{
    free_.push_back(tag);
}

RenameMap::RenameMap(unsigned arch_regs, unsigned phys_regs)
    : physRegs_(phys_regs), rat_(arch_regs),
      freeList_(phys_regs, arch_regs)
{
    if (phys_regs <= arch_regs)
        fatal("RenameMap: %u physical registers cannot back %u "
              "architectural registers", phys_regs, arch_regs);
    for (unsigned i = 0; i < arch_regs; ++i)
        rat_[i] = i;
}

u32
RenameMap::rename(unsigned arch, u32 &old_tag_out)
{
    old_tag_out = rat_.at(arch);
    u32 fresh = freeList_.allocate();
    rat_[arch] = fresh;
    return fresh;
}

} // namespace carf::core
