/**
 * @file
 * Bypass network accounting (paper Table 2).
 *
 * The timing rule lives in the pipeline (a result is forwardable for
 * `window` cycles after completion); this helper centralises the
 * decision and the operand-source statistics.
 */

#ifndef CARF_CORE_BYPASS_HH
#define CARF_CORE_BYPASS_HH

#include "common/types.hh"

namespace carf::core
{

/** Where a source operand came from. */
enum class OperandSource : u8
{
    /** Hardwired zero register or immediate: no access at all. */
    None,
    /** Forwarded from a bypass level. */
    Bypass,
    /** Read from the register file. */
    RegFile,
};

/** Counts operand sourcing decisions, split by register class. */
class BypassStats
{
  public:
    void record(OperandSource source, bool is_fp);

    u64 bypassed(bool is_fp) const { return bypassed_[is_fp]; }
    u64 regFileReads(bool is_fp) const { return regFile_[is_fp]; }

    u64 totalBypassed() const { return bypassed_[0] + bypassed_[1]; }
    u64 totalRegFile() const { return regFile_[0] + regFile_[1]; }

    /** Fraction of register operands served by bypass (Table 2). */
    double bypassFraction() const;

    /**
     * Overwrite the counters wholesale — result-store deserialization
     * only; record() is the accounting path.
     */
    void
    restore(u64 bypassed_int, u64 bypassed_fp, u64 regfile_int,
            u64 regfile_fp)
    {
        bypassed_[0] = bypassed_int;
        bypassed_[1] = bypassed_fp;
        regFile_[0] = regfile_int;
        regFile_[1] = regfile_fp;
    }

  private:
    u64 bypassed_[2] = {0, 0};
    u64 regFile_[2] = {0, 0};
};

/**
 * Decide how an operand executing at cycle @p exec_cycle is sourced.
 *
 * @param complete_cycle producer's completion (first forwardable)
 * @param window bypass depth in cycles
 * @pre exec_cycle >= complete_cycle (the scheduler guarantees it)
 */
inline OperandSource
operandSource(Cycle exec_cycle, Cycle complete_cycle, unsigned window)
{
    return exec_cycle < complete_cycle + window ? OperandSource::Bypass
                                                : OperandSource::RegFile;
}

} // namespace carf::core

#endif // CARF_CORE_BYPASS_HH
