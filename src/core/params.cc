#include "core/params.hh"

namespace carf::core
{

const char *
regFileKindName(RegFileKind kind)
{
    switch (kind) {
      case RegFileKind::Unlimited: return "unlimited";
      case RegFileKind::Baseline: return "baseline";
      case RegFileKind::ContentAware: return "content-aware";
    }
    return "?";
}

CoreParams
CoreParams::unlimited()
{
    CoreParams p;
    p.regFileBackend = "unlimited";
    p.physIntRegs = 160;
    p.physFpRegs = 160;
    p.intRfReadPorts = 16;
    p.intRfWritePorts = 8;
    p.fpRfReadPorts = 16;
    p.fpRfWritePorts = 8;
    return p;
}

CoreParams
CoreParams::baseline()
{
    CoreParams p;
    p.regFileBackend = "baseline";
    return p;
}

CoreParams
CoreParams::contentAware(unsigned d_plus_n, unsigned n,
                         unsigned long_entries)
{
    CoreParams p;
    p.regFileBackend = "content-aware";
    p.regReadStages = 2;
    p.intWbStages = 2;
    p.extraBypassLevel = true;
    p.ca.sim = regfile::SimilarityParams(d_plus_n - n, n);
    p.ca.longEntries = long_entries;
    p.ca.issueStallThreshold = p.issueWidth;
    return p;
}

CoreParams
CoreParams::portReduction(unsigned shared_read_ports)
{
    CoreParams p;
    p.regFileBackend = "port-reduction";
    p.portRed.sharedReadPorts = shared_read_ports;
    return p;
}

CoreParams
CoreParams::forBackend(const std::string &name)
{
    if (name == "unlimited")
        return unlimited();
    if (name == "baseline")
        return baseline();
    if (name == "content-aware")
        return contentAware();
    if (name == "port-reduction")
        return portReduction();
    CoreParams p;
    p.regFileBackend = name;
    return p;
}

} // namespace carf::core
