/**
 * @file
 * Pipeline statistics bundle and the run-result summary returned by
 * Pipeline::run().
 */

#ifndef CARF_CORE_CORE_STATS_HH
#define CARF_CORE_CORE_STATS_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/bypass.hh"
#include "regfile/regfile.hh"

namespace carf::core
{

/**
 * Source-operand type-combination buckets for integer instructions
 * (paper Table 4, for instructions reading at least one integer
 * register operand).
 */
struct OperandMix
{
    enum Bucket : unsigned
    {
        OnlySimple,
        OnlyShort,
        OnlyLong,
        SimpleShort,
        SimpleLong,
        ShortLong,
        NumBuckets,
    };

    u64 counts[NumBuckets] = {};

    static const char *bucketName(unsigned bucket);

    void
    record(bool has_simple, bool has_short, bool has_long)
    {
        unsigned kinds = (has_simple ? 1 : 0) + (has_short ? 1 : 0) +
                         (has_long ? 1 : 0);
        if (kinds == 0)
            return;
        if (kinds == 1) {
            if (has_simple)
                ++counts[OnlySimple];
            else if (has_short)
                ++counts[OnlyShort];
            else
                ++counts[OnlyLong];
        } else if (has_simple && has_short && !has_long) {
            ++counts[SimpleShort];
        } else if (has_simple && has_long && !has_short) {
            ++counts[SimpleLong];
        } else if (has_short && has_long && !has_simple) {
            ++counts[ShortLong];
        } else {
            // Three kinds across >2 operands: bucket with the rarest
            // pair, mirroring the paper's six-way table.
            ++counts[ShortLong];
        }
    }

    u64 total() const;
    double fraction(unsigned bucket) const;
};

/**
 * Inter-cluster communication estimate for the §6 value-type-clustered
 * microarchitecture: an instruction is steered to the cluster of its
 * result type; each register source operand of a *different* type
 * requires an inter-cluster transfer.
 */
struct ClusterStats
{
    /** Operands whose type matches the consumer's steering type. */
    u64 localOperands = 0;
    /** Operands needing an inter-cluster transfer. */
    u64 crossOperands = 0;

    double
    crossFraction() const
    {
        u64 total = localOperands + crossOperands;
        return total ? static_cast<double>(crossOperands) / total : 0.0;
    }
};

/**
 * Exact attribution of every simulated cycle to one bucket, decided
 * at the top of the cycle from pre-stage machine state (so the
 * classification is a pure function of state and identical whether a
 * quiescent stretch is stepped or skipped). The buckets follow the
 * oldest unfinished work: what is the ROB head (or, with an empty
 * ROB, the front end) waiting for this cycle?
 */
struct CycleAccounting
{
    enum Bucket : unsigned
    {
        /** Head is written back: at least one commit happens. */
        Commit,
        /** Head stalled in the Long-file writeback recovery wait. */
        LongStall,
        /** Head is an issued load waiting on the memory hierarchy. */
        MemWait,
        /** Head is issued, waiting on a (non-load) execution latency. */
        ExecWait,
        /** Head finished executing and awaits its writeback slot. */
        WbWait,
        /** Head is dispatched-not-issued and the ROB is full. */
        RobFull,
        /** Head is dispatched-not-issued (operands/ports/parking). */
        IssueBound,
        /** ROB empty; fetch is waiting on an I-cache fill. */
        IcacheWait,
        /** ROB empty; fetched instructions are still being renamed. */
        FrontendFill,
        /** ROB empty and nothing buffered: redirect/drain/exhausted. */
        FetchEmpty,
        NumBuckets,
    };

    u64 counts[NumBuckets] = {};

    static const char *bucketName(unsigned bucket);

    u64 total() const;
};

/** Summary of one simulated run. */
struct RunResult
{
    std::string workload;
    std::string config;

    Cycle cycles = 0;
    u64 committedInsts = 0;
    double ipc = 0.0;

    u64 condBranches = 0;
    u64 branchMispredicts = 0;

    BypassStats bypass;
    OperandMix operandMix;
    ClusterStats cluster;

    regfile::AccessCounts intRfAccesses;
    /** Short file allocation writes (address path). */
    u64 shortFileWrites = 0;

    u64 longAllocStalls = 0;
    u64 recoveries = 0;
    u64 issueStallCycles = 0;
    double avgLiveLong = 0.0;
    double avgLiveShort = 0.0;

    /** Model-level read-port refusals (port-reduction backends). */
    u64 portConflictOps = 0;
    /** Cycles with at least one model-level read-port refusal. */
    u64 portConflictCycles = 0;

    /** Per-bucket attribution of every cycle (sums to cycles). */
    CycleAccounting cycleAccounting;

    /**
     * Fast-path diagnostics: number of O(1) jumps taken and cycles
     * they covered. Deliberately *not* serialized — like the host
     * times, they differ between the stepped and skipping loops while
     * everything architectural stays bit-identical.
     */
    u64 fastPathSkips = 0;
    u64 fastPathSkippedCycles = 0;

    // --- Statistical-sampling fields (present when the run used the
    // --- SMARTS-style sampling mode; samplingPeriod==0 means a full
    // --- run and the block is omitted from JSON) ---

    /** Instructions per sampling period (0 = full detailed run). */
    u64 samplingPeriod = 0;
    /** Detailed warm-up instructions per period. */
    u64 samplingWarmup = 0;
    /** Measured detailed instructions per period. */
    u64 samplingMeasure = 0;
    /** Measurement intervals that contributed to the estimate. */
    u64 samplingIntervals = 0;
    /** Instructions functionally fast-forwarded between intervals. */
    u64 samplingSkippedInsts = 0;
    /** 95% confidence half-width on the sampled IPC estimate. */
    double samplingIpcCi95 = 0.0;

    // --- SMT aggregate fields (defaults describe a solo run, so a
    // --- solo RunResult round-trips unchanged) ---

    /** Hardware threads in the run (1 for the solo pipeline). */
    unsigned smtThreads = 1;
    /** Per-thread committed instructions (empty for solo runs). */
    std::vector<u64> smtThreadInsts;
    /** Per-thread IPC (empty for solo runs). */
    std::vector<double> smtThreadIpc;
    /** Short-typed writebacks hitting a resident group (SMT runs). */
    u64 smtShortHits = 0;
    /** Subset of smtShortHits on a group placed by another thread. */
    u64 smtCrossShortHits = 0;
    /**
     * Longest streak of cycles any stalled ROB head waited for its
     * §3.2 forced-write grant (recovery-fairness starvation bound).
     */
    u64 smtMaxRecoveryWait = 0;

    /**
     * Host wall-clock seconds this run took end to end. Always equals
     * traceBuildSeconds + simSeconds. Like the other host-time fields
     * below it is nondeterministic: equivalence checks must ignore all
     * three.
     */
    double wallSeconds = 0.0;
    /**
     * Host seconds spent obtaining the dynamic trace before the
     * pipeline ran. With a TraceCache this is the emulation cost on a
     * miss and ~0 on a hit; without one, trace construction streams
     * lazily inside the cycle loop, so this stays 0 and the emulator's
     * cost lands in simSeconds (the pre-split behavior).
     */
    double traceBuildSeconds = 0.0;
    /** Host seconds spent in pipeline warm-up plus the timed run. */
    double simSeconds = 0.0;

    double branchMispredictRate() const
    {
        return condBranches
                   ? static_cast<double>(branchMispredicts) / condBranches
                   : 0.0;
    }
};

} // namespace carf::core

#endif // CARF_CORE_CORE_STATS_HH
