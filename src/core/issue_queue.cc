#include "core/issue_queue.hh"

#include "common/logging.hh"

namespace carf::core
{

void
IssueQueue::insert()
{
    if (full())
        panic("IssueQueue: insert into full queue");
    ++occupancy_;
}

void
IssueQueue::remove()
{
    if (occupancy_ == 0)
        panic("IssueQueue: remove from empty queue");
    --occupancy_;
}

bool
usesFpQueue(isa::Opcode op)
{
    switch (isa::opInfo(op).opClass) {
      case isa::OpClass::FpAlu:
      case isa::OpClass::FpMul:
      case isa::OpClass::FpDiv:
      case isa::OpClass::FpCvt:
        return true;
      default:
        return false;
    }
}

} // namespace carf::core
