#include "core/issue_queue.hh"

#include "common/logging.hh"

namespace carf::core
{

void
IssueQueue::insert()
{
    if (full())
        panic("IssueQueue: insert into full queue");
    ++occupancy_;
}

void
IssueQueue::remove()
{
    if (occupancy_ == 0)
        panic("IssueQueue: remove from empty queue");
    --occupancy_;
}

} // namespace carf::core
