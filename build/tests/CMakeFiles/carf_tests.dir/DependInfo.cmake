
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitutil.cc" "tests/CMakeFiles/carf_tests.dir/test_bitutil.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_bitutil.cc.o.d"
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/carf_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/carf_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config_table.cc" "tests/CMakeFiles/carf_tests.dir/test_config_table.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_config_table.cc.o.d"
  "/root/repo/tests/test_core_structures.cc" "tests/CMakeFiles/carf_tests.dir/test_core_structures.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_core_structures.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/carf_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_emulator.cc" "tests/CMakeFiles/carf_tests.dir/test_emulator.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_emulator.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/carf_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_equivalence.cc" "tests/CMakeFiles/carf_tests.dir/test_equivalence.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_equivalence.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/carf_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_memory_image.cc" "tests/CMakeFiles/carf_tests.dir/test_memory_image.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_memory_image.cc.o.d"
  "/root/repo/tests/test_new_kernels.cc" "tests/CMakeFiles/carf_tests.dir/test_new_kernels.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_new_kernels.cc.o.d"
  "/root/repo/tests/test_oracle.cc" "tests/CMakeFiles/carf_tests.dir/test_oracle.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_oracle.cc.o.d"
  "/root/repo/tests/test_paper_claims.cc" "tests/CMakeFiles/carf_tests.dir/test_paper_claims.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_paper_claims.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/carf_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/carf_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_regfile.cc" "tests/CMakeFiles/carf_tests.dir/test_regfile.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_regfile.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/carf_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/carf_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_smt.cc" "tests/CMakeFiles/carf_tests.dir/test_smt.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_smt.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/carf_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_trace_file.cc" "tests/CMakeFiles/carf_tests.dir/test_trace_file.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_trace_file.cc.o.d"
  "/root/repo/tests/test_value_class.cc" "tests/CMakeFiles/carf_tests.dir/test_value_class.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_value_class.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/carf_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/carf_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/carf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
