# Empty dependencies file for carf_tests.
# This may be replaced when dependencies are built.
