file(REMOVE_RECURSE
  "../examples/value_locality"
  "../examples/value_locality.pdb"
  "CMakeFiles/value_locality.dir/value_locality.cpp.o"
  "CMakeFiles/value_locality.dir/value_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
