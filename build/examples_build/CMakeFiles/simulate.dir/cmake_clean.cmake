file(REMOVE_RECURSE
  "../examples/simulate"
  "../examples/simulate.pdb"
  "CMakeFiles/simulate.dir/simulate.cpp.o"
  "CMakeFiles/simulate.dir/simulate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
