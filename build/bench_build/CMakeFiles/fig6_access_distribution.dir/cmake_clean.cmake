file(REMOVE_RECURSE
  "../bench/fig6_access_distribution"
  "../bench/fig6_access_distribution.pdb"
  "CMakeFiles/fig6_access_distribution.dir/fig6_access_distribution.cc.o"
  "CMakeFiles/fig6_access_distribution.dir/fig6_access_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_access_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
