# Empty dependencies file for fig6_access_distribution.
# This may be replaced when dependencies are built.
