# Empty dependencies file for tab4_operand_mix.
# This may be replaced when dependencies are built.
