file(REMOVE_RECURSE
  "../bench/tab4_operand_mix"
  "../bench/tab4_operand_mix.pdb"
  "CMakeFiles/tab4_operand_mix.dir/tab4_operand_mix.cc.o"
  "CMakeFiles/tab4_operand_mix.dir/tab4_operand_mix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_operand_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
