file(REMOVE_RECURSE
  "../bench/ablation_ports"
  "../bench/ablation_ports.pdb"
  "CMakeFiles/ablation_ports.dir/ablation_ports.cc.o"
  "CMakeFiles/ablation_ports.dir/ablation_ports.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
