# Empty compiler generated dependencies file for ablation_smt.
# This may be replaced when dependencies are built.
