# Empty dependencies file for fig5_ipc_sweep.
# This may be replaced when dependencies are built.
