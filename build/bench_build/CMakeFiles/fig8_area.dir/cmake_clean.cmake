file(REMOVE_RECURSE
  "../bench/fig8_area"
  "../bench/fig8_area.pdb"
  "CMakeFiles/fig8_area.dir/fig8_area.cc.o"
  "CMakeFiles/fig8_area.dir/fig8_area.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
