file(REMOVE_RECURSE
  "../bench/ablation_sizes"
  "../bench/ablation_sizes.pdb"
  "CMakeFiles/ablation_sizes.dir/ablation_sizes.cc.o"
  "CMakeFiles/ablation_sizes.dir/ablation_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
