file(REMOVE_RECURSE
  "../bench/tab2_bypass"
  "../bench/tab2_bypass.pdb"
  "CMakeFiles/tab2_bypass.dir/tab2_bypass.cc.o"
  "CMakeFiles/tab2_bypass.dir/tab2_bypass.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
