# Empty dependencies file for tab2_bypass.
# This may be replaced when dependencies are built.
