# Empty dependencies file for fig1_value_distribution.
# This may be replaced when dependencies are built.
