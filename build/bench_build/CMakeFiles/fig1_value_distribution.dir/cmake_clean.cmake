file(REMOVE_RECURSE
  "../bench/fig1_value_distribution"
  "../bench/fig1_value_distribution.pdb"
  "CMakeFiles/fig1_value_distribution.dir/fig1_value_distribution.cc.o"
  "CMakeFiles/fig1_value_distribution.dir/fig1_value_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_value_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
