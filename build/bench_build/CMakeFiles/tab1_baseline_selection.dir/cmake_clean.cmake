file(REMOVE_RECURSE
  "../bench/tab1_baseline_selection"
  "../bench/tab1_baseline_selection.pdb"
  "CMakeFiles/tab1_baseline_selection.dir/tab1_baseline_selection.cc.o"
  "CMakeFiles/tab1_baseline_selection.dir/tab1_baseline_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_baseline_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
