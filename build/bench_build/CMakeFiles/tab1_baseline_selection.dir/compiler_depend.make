# Empty compiler generated dependencies file for tab1_baseline_selection.
# This may be replaced when dependencies are built.
