# Empty dependencies file for micro_regfile.
# This may be replaced when dependencies are built.
