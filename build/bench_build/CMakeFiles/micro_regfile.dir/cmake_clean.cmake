file(REMOVE_RECURSE
  "../bench/micro_regfile"
  "../bench/micro_regfile.pdb"
  "CMakeFiles/micro_regfile.dir/micro_regfile.cc.o"
  "CMakeFiles/micro_regfile.dir/micro_regfile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
