# Empty dependencies file for ablation_memory_locality.
# This may be replaced when dependencies are built.
