file(REMOVE_RECURSE
  "../bench/ablation_memory_locality"
  "../bench/ablation_memory_locality.pdb"
  "CMakeFiles/ablation_memory_locality.dir/ablation_memory_locality.cc.o"
  "CMakeFiles/ablation_memory_locality.dir/ablation_memory_locality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
