# Empty compiler generated dependencies file for fig9_access_time.
# This may be replaced when dependencies are built.
