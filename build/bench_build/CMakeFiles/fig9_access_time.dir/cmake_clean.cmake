file(REMOVE_RECURSE
  "../bench/fig9_access_time"
  "../bench/fig9_access_time.pdb"
  "CMakeFiles/fig9_access_time.dir/fig9_access_time.cc.o"
  "CMakeFiles/fig9_access_time.dir/fig9_access_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
