file(REMOVE_RECURSE
  "../bench/fig7_energy"
  "../bench/fig7_energy.pdb"
  "CMakeFiles/fig7_energy.dir/fig7_energy.cc.o"
  "CMakeFiles/fig7_energy.dir/fig7_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
