file(REMOVE_RECURSE
  "../bench/tab3_access_energy"
  "../bench/tab3_access_energy.pdb"
  "CMakeFiles/tab3_access_energy.dir/tab3_access_energy.cc.o"
  "CMakeFiles/tab3_access_energy.dir/tab3_access_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_access_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
