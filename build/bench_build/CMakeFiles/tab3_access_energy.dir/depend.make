# Empty dependencies file for tab3_access_energy.
# This may be replaced when dependencies are built.
