# Empty compiler generated dependencies file for carf.
# This may be replaced when dependencies are built.
