file(REMOVE_RECURSE
  "libcarf.a"
)
