
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/carf.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/carf.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/CMakeFiles/carf.dir/branch/gshare.cc.o" "gcc" "src/CMakeFiles/carf.dir/branch/gshare.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/carf.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/carf.dir/branch/ras.cc.o.d"
  "/root/repo/src/common/bitutil.cc" "src/CMakeFiles/carf.dir/common/bitutil.cc.o" "gcc" "src/CMakeFiles/carf.dir/common/bitutil.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/carf.dir/common/config.cc.o" "gcc" "src/CMakeFiles/carf.dir/common/config.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/carf.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/carf.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/carf.dir/common/random.cc.o" "gcc" "src/CMakeFiles/carf.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/carf.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/carf.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/carf.dir/common/table.cc.o" "gcc" "src/CMakeFiles/carf.dir/common/table.cc.o.d"
  "/root/repo/src/core/bypass.cc" "src/CMakeFiles/carf.dir/core/bypass.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/bypass.cc.o.d"
  "/root/repo/src/core/core_stats.cc" "src/CMakeFiles/carf.dir/core/core_stats.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/core_stats.cc.o.d"
  "/root/repo/src/core/issue_queue.cc" "src/CMakeFiles/carf.dir/core/issue_queue.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/issue_queue.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/carf.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/params.cc" "src/CMakeFiles/carf.dir/core/params.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/params.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/carf.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/rename.cc" "src/CMakeFiles/carf.dir/core/rename.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/rename.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/carf.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/rob.cc.o.d"
  "/root/repo/src/core/smt.cc" "src/CMakeFiles/carf.dir/core/smt.cc.o" "gcc" "src/CMakeFiles/carf.dir/core/smt.cc.o.d"
  "/root/repo/src/emu/emulator.cc" "src/CMakeFiles/carf.dir/emu/emulator.cc.o" "gcc" "src/CMakeFiles/carf.dir/emu/emulator.cc.o.d"
  "/root/repo/src/emu/memory_image.cc" "src/CMakeFiles/carf.dir/emu/memory_image.cc.o" "gcc" "src/CMakeFiles/carf.dir/emu/memory_image.cc.o.d"
  "/root/repo/src/emu/trace.cc" "src/CMakeFiles/carf.dir/emu/trace.cc.o" "gcc" "src/CMakeFiles/carf.dir/emu/trace.cc.o.d"
  "/root/repo/src/emu/trace_file.cc" "src/CMakeFiles/carf.dir/emu/trace_file.cc.o" "gcc" "src/CMakeFiles/carf.dir/emu/trace_file.cc.o.d"
  "/root/repo/src/energy/report.cc" "src/CMakeFiles/carf.dir/energy/report.cc.o" "gcc" "src/CMakeFiles/carf.dir/energy/report.cc.o.d"
  "/root/repo/src/energy/rixner.cc" "src/CMakeFiles/carf.dir/energy/rixner.cc.o" "gcc" "src/CMakeFiles/carf.dir/energy/rixner.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/carf.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/carf.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/carf.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/carf.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/carf.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/carf.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/carf.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/carf.dir/isa/opcode.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/carf.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/carf.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/carf.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/carf.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/regfile/baseline.cc" "src/CMakeFiles/carf.dir/regfile/baseline.cc.o" "gcc" "src/CMakeFiles/carf.dir/regfile/baseline.cc.o.d"
  "/root/repo/src/regfile/content_aware.cc" "src/CMakeFiles/carf.dir/regfile/content_aware.cc.o" "gcc" "src/CMakeFiles/carf.dir/regfile/content_aware.cc.o.d"
  "/root/repo/src/regfile/regfile.cc" "src/CMakeFiles/carf.dir/regfile/regfile.cc.o" "gcc" "src/CMakeFiles/carf.dir/regfile/regfile.cc.o.d"
  "/root/repo/src/regfile/value_class.cc" "src/CMakeFiles/carf.dir/regfile/value_class.cc.o" "gcc" "src/CMakeFiles/carf.dir/regfile/value_class.cc.o.d"
  "/root/repo/src/sim/experiments.cc" "src/CMakeFiles/carf.dir/sim/experiments.cc.o" "gcc" "src/CMakeFiles/carf.dir/sim/experiments.cc.o.d"
  "/root/repo/src/sim/frequency.cc" "src/CMakeFiles/carf.dir/sim/frequency.cc.o" "gcc" "src/CMakeFiles/carf.dir/sim/frequency.cc.o.d"
  "/root/repo/src/sim/oracle.cc" "src/CMakeFiles/carf.dir/sim/oracle.cc.o" "gcc" "src/CMakeFiles/carf.dir/sim/oracle.cc.o.d"
  "/root/repo/src/sim/reporting.cc" "src/CMakeFiles/carf.dir/sim/reporting.cc.o" "gcc" "src/CMakeFiles/carf.dir/sim/reporting.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/carf.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/carf.dir/sim/simulator.cc.o.d"
  "/root/repo/src/workloads/fp_kernels.cc" "src/CMakeFiles/carf.dir/workloads/fp_kernels.cc.o" "gcc" "src/CMakeFiles/carf.dir/workloads/fp_kernels.cc.o.d"
  "/root/repo/src/workloads/int_kernels.cc" "src/CMakeFiles/carf.dir/workloads/int_kernels.cc.o" "gcc" "src/CMakeFiles/carf.dir/workloads/int_kernels.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/carf.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/carf.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/carf.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/carf.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
