/**
 * @file
 * SMT differential anchor: a one-thread SmtPipeline must be
 * bit-identical to the solo Pipeline — not merely "same cycles", but
 * every counter in the full-fidelity RunResult serialization — for
 * every INT-suite workload on every registered backend. This is what
 * lets the rest of the SMT test wall trust that any T>1 effect it
 * observes is sharing, not a modeling drift between the two cores.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/smt.hh"
#include "regfile/registry.hh"
#include "sim/reporting.hh"
#include "workloads/workload.hh"

namespace carf
{

namespace
{

class SmtSoloDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

std::vector<std::string>
intSuiteNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::intSuite())
        names.push_back(w.name);
    return names;
}

} // namespace

TEST_P(SmtSoloDifferential, OneThreadSmtMatchesSoloBitIdentical)
{
    auto [workload_name, backend] = GetParam();
    const u64 insts = 20000;
    const auto &workload = workloads::findWorkload(workload_name);
    core::CoreParams params = core::CoreParams::forBackend(backend);

    auto solo_trace = workloads::makeTrace(workload, insts);
    core::Pipeline pipeline(params);
    core::RunResult solo = pipeline.run(*solo_trace);

    auto smt_trace = workloads::makeTrace(workload, insts);
    core::SmtPipeline smt(params, 1);
    core::SmtResult multi = smt.run({smt_trace.get()}, false);
    ASSERT_EQ(multi.threads.size(), 1u);

    // Full-fidelity JSON comparison (host times excluded: both runs
    // leave them 0 here, but the exclusion documents the contract).
    EXPECT_EQ(sim::runResultJsonFull(multi.threads[0], false),
              sim::runResultJsonFull(solo, false));

    // The aggregate of a one-thread run carries the same counters
    // plus the trivial smt* fields.
    core::RunResult agg = multi.aggregate();
    EXPECT_EQ(agg.cycles, solo.cycles);
    EXPECT_EQ(agg.committedInsts, solo.committedInsts);
    EXPECT_EQ(agg.smtThreads, 1u);
}

namespace
{

std::string
smtDifferentialName(
    const ::testing::TestParamInfo<std::tuple<std::string, std::string>>
        &info)
{
    std::string name =
        std::get<0>(info.param) + "_" + std::get<1>(info.param);
    for (char &c : name)
        if (c == '-')
            c = '_';
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    IntSuiteTimesBackends, SmtSoloDifferential,
    ::testing::Combine(::testing::ValuesIn(intSuiteNames()),
                       ::testing::ValuesIn(regfile::registry().names())),
    smtDifferentialName);

} // namespace carf
