/**
 * @file
 * Tests for the sparse functional memory image.
 */

#include <gtest/gtest.h>

#include "emu/memory_image.hh"

namespace carf::emu
{

TEST(MemoryImage, ZeroFilledByDefault)
{
    MemoryImage mem;
    EXPECT_EQ(mem.readU64(0), 0u);
    EXPECT_EQ(mem.readU8(0xdead'beef), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(MemoryImage, ByteRoundTrip)
{
    MemoryImage mem;
    mem.writeU8(100, 0xab);
    EXPECT_EQ(mem.readU8(100), 0xab);
    EXPECT_EQ(mem.readU8(101), 0u);
}

TEST(MemoryImage, LittleEndianLayout)
{
    MemoryImage mem;
    mem.writeU64(0x1000, 0x0807060504030201ull);
    EXPECT_EQ(mem.readU8(0x1000), 0x01);
    EXPECT_EQ(mem.readU8(0x1007), 0x08);
    EXPECT_EQ(mem.read(0x1002, 2), 0x0403u);
}

TEST(MemoryImage, StraddlesPageBoundary)
{
    MemoryImage mem;
    Addr addr = MemoryImage::pageSize - 4;
    mem.writeU64(addr, 0x1122334455667788ull);
    EXPECT_EQ(mem.readU64(addr), 0x1122334455667788ull);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(MemoryImage, PartialWidthWrites)
{
    MemoryImage mem;
    mem.writeU64(0x2000, ~0ull);
    mem.write(0x2000, 0, 4);
    EXPECT_EQ(mem.readU64(0x2000), 0xffffffff00000000ull);
}

TEST(MemoryImage, DoubleRoundTrip)
{
    MemoryImage mem;
    mem.writeF64(0x3000, -2.75);
    EXPECT_DOUBLE_EQ(mem.readF64(0x3000), -2.75);
}

TEST(MemoryImage, BulkLoad)
{
    MemoryImage mem;
    mem.load(0x4000, {1, 2, 3, 4});
    EXPECT_EQ(mem.readU8(0x4000), 1u);
    EXPECT_EQ(mem.readU8(0x4003), 4u);
    EXPECT_EQ(mem.read(0x4000, 4), 0x04030201u);
}

TEST(MemoryImage, SparseDistantRegions)
{
    MemoryImage mem;
    mem.writeU64(0x0000'1000, 1);
    mem.writeU64(0x7fff'ffff'0000ull, 2);
    EXPECT_EQ(mem.pageCount(), 2u);
    EXPECT_EQ(mem.readU64(0x0000'1000), 1u);
    EXPECT_EQ(mem.readU64(0x7fff'ffff'0000ull), 2u);
}

} // namespace carf::emu
