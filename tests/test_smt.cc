/**
 * @file
 * Tests for the SMT extension: single-thread equivalence, two-thread
 * progress and fairness, shared content-aware file behaviour, and
 * structural validation.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/smt.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

namespace carf::core
{

using namespace carf::isa;

namespace
{

std::unique_ptr<emu::TraceSource>
trace(const char *name, u64 insts)
{
    return workloads::makeTrace(workloads::findWorkload(name), insts);
}

} // namespace

TEST(Smt, SingleThreadMatchesPipeline)
{
    // With one thread the SMT core must time exactly like Pipeline:
    // same structures, same policies, no sharing.
    for (auto params : {CoreParams::baseline(),
                        CoreParams::contentAware()}) {
        auto t1 = trace("hash_table", 30000);
        Pipeline pipeline(params);
        auto single = pipeline.run(*t1);

        auto t2 = trace("hash_table", 30000);
        SmtPipeline smt(params, 1);
        auto multi = smt.run({t2.get()}, false);

        EXPECT_EQ(single.cycles, multi.cycles)
            << params.regFileBackend;
        EXPECT_EQ(single.committedInsts,
                  multi.threads[0].committedInsts);
    }
}

TEST(Smt, TwoThreadsBothProgress)
{
    auto ta = trace("counters", 40000);
    auto tb = trace("crc", 40000);
    SmtPipeline smt(CoreParams::baseline(), 2);
    auto result = smt.run({ta.get(), tb.get()});
    EXPECT_EQ(result.threads.size(), 2u);
    // Measurement stops when the first thread drains; both must have
    // made substantial progress by then.
    EXPECT_GT(result.threads[0].committedInsts, 10000u);
    EXPECT_GT(result.threads[1].committedInsts, 10000u);
    EXPECT_GT(result.totalIpc(), 1.0);
}

TEST(Smt, ThroughputExceedsSingleThread)
{
    // Two independent high-ILP threads must beat one (the basic SMT
    // premise).
    auto single = trace("counters", 40000);
    Pipeline pipeline(CoreParams::baseline());
    auto alone = pipeline.run(*single);

    auto ta = trace("counters", 40000);
    auto tb = trace("counters", 40000);
    SmtPipeline smt(CoreParams::baseline(), 2);
    auto both = smt.run({ta.get(), tb.get()});
    EXPECT_GT(both.totalIpc(), alone.ipc * 1.3);
}

TEST(Smt, IqClogThreadDoesNotStarvePartner)
{
    // A serial dependence-limited thread (crc) must not pin a
    // high-ILP partner (counters) to its own rate: the ICOUNT policy
    // and the per-thread IQ share cap keep the partner above 60% of
    // its solo throughput.
    auto solo_trace = trace("counters", 60000);
    Pipeline pipeline(CoreParams::baseline());
    auto solo = pipeline.run(*solo_trace);

    auto ta = trace("counters", 60000);
    auto tb = trace("crc", 60000);
    SmtPipeline smt(CoreParams::baseline(), 2);
    auto both = smt.run({ta.get(), tb.get()});
    EXPECT_GT(both.threads[0].ipc, 0.6 * solo.ipc);
}

TEST(Smt, SharedContentAwareFileKeepsValuesSeparate)
{
    // Two threads running the same program produce identical values
    // through one shared physical file; any cross-thread mixup would
    // trip the operand-verification panic.
    auto ta = trace("graph_walk", 30000);
    auto tb = trace("graph_walk", 30000);
    SmtPipeline smt(CoreParams::contentAware(), 2);
    auto result = smt.run({ta.get(), tb.get()}, false);
    EXPECT_EQ(result.threads[0].committedInsts, 30000u);
    EXPECT_EQ(result.threads[1].committedInsts, 30000u);
}

TEST(Smt, TinyLongFileStillCompletesUnderSharing)
{
    auto params = CoreParams::contentAware(20, 3, 16);
    auto ta = trace("crc", 20000);
    auto tb = trace("hash_table", 20000);
    SmtPipeline smt(params, 2);
    auto result = smt.run({ta.get(), tb.get()}, false);
    EXPECT_EQ(result.threads[0].committedInsts, 20000u);
    EXPECT_EQ(result.threads[1].committedInsts, 20000u);
}

TEST(Smt, LongPressureGrowsWithThreadCount)
{
    // Two threads demand more Long capacity than one: live-long
    // pressure (stalls + recoveries at small K) must not decrease.
    auto params = CoreParams::contentAware(20, 3, 20);
    params.ca.issueStallThreshold = 0;

    auto t1 = trace("crc", 30000);
    SmtPipeline one(params, 1);
    auto r1 = one.run({t1.get()}, false);

    auto ta = trace("crc", 30000);
    auto tb = trace("monte_carlo", 30000);
    SmtPipeline two(params, 2);
    auto r2 = two.run({ta.get(), tb.get()}, false);

    // Long pressure is attributed per thread; compare run totals.
    u64 pressure1 = r1.threads[0].longAllocStalls +
                    r1.threads[0].recoveries;
    u64 pressure2 = 0;
    for (const auto &t : r2.threads)
        pressure2 += t.longAllocStalls + t.recoveries;
    EXPECT_GE(pressure2, pressure1);
}

TEST(Smt, ConservationInvariantsAcrossThreadCounts)
{
    // For T in {2, 4}: per-thread counters must sum to the aggregate,
    // cross-thread shares must be a subset of total Short hits, and
    // the shared file's structural invariants must hold after every
    // cycle (debug-gated checkInvariants hook).
    const char *mix[] = {"counters", "crc", "hash_table", "rle"};
    for (unsigned num_threads : {2u, 4u}) {
        auto params = CoreParams::contentAware();
        params.physIntRegs = 80 + 32 * num_threads;
        params.physFpRegs = 96 + 32 * num_threads;

        std::vector<std::unique_ptr<emu::TraceSource>> traces;
        std::vector<emu::TraceSource *> sources;
        for (unsigned t = 0; t < num_threads; ++t) {
            traces.push_back(trace(mix[t % 4], 15000));
            sources.push_back(traces.back().get());
        }
        SmtPipeline smt(params, num_threads);
        smt.enableInvariantChecks();
        auto result = smt.run(sources, false);

        RunResult agg = result.aggregate();
        u64 inst_sum = 0, stall_sum = 0, recovery_sum = 0;
        for (const auto &t : result.threads) {
            inst_sum += t.committedInsts;
            stall_sum += t.longAllocStalls;
            recovery_sum += t.recoveries;
        }
        EXPECT_EQ(agg.committedInsts, inst_sum);
        EXPECT_EQ(agg.longAllocStalls, stall_sum);
        EXPECT_EQ(agg.recoveries, recovery_sum);
        ASSERT_EQ(agg.smtThreadInsts.size(), num_threads);
        for (unsigned t = 0; t < num_threads; ++t)
            EXPECT_EQ(agg.smtThreadInsts[t],
                      result.threads[t].committedInsts);

        // Sharing accounting: per-thread and in total, a cross-thread
        // share is one of that thread's Short hits.
        ASSERT_EQ(result.sharing.shortHits.size(), num_threads);
        for (unsigned t = 0; t < num_threads; ++t)
            EXPECT_LE(result.sharing.crossShortHits[t],
                      result.sharing.shortHits[t]);
        EXPECT_LE(agg.smtCrossShortHits, agg.smtShortHits);
        EXPECT_EQ(agg.smtShortHits, result.sharing.totalShortHits());
    }
}

TEST(Smt, CrossThreadSharingObservedOnIdenticalWorkloads)
{
    // Two copies of the same program produce the same values; the
    // shared Short file must register cross-thread group hits.
    auto ta = trace("hash_table", 25000);
    auto tb = trace("hash_table", 25000);
    SmtPipeline smt(CoreParams::contentAware(), 2);
    auto result = smt.run({ta.get(), tb.get()}, false);
    EXPECT_GT(result.sharing.totalShortHits(), 0u);
    EXPECT_GT(result.sharing.totalCrossShortHits(), 0u);
    // Fairness of a homogeneous pair should be high.
    EXPECT_GT(result.fairness(), 0.5);
}

TEST(Smt, RecoveryStarvationBoundIsFinite)
{
    // Contention-aware recovery: under heavy Long pressure every
    // stalled ROB head eventually gets its forced grant; the recorded
    // starvation bound must stay small relative to the run.
    auto params = CoreParams::contentAware(20, 3, 12);
    params.ca.issueStallThreshold = 0;
    auto ta = trace("crc", 20000);
    auto tb = trace("monte_carlo", 20000);
    SmtPipeline smt(params, 2);
    auto result = smt.run({ta.get(), tb.get()}, false);
    EXPECT_EQ(result.threads[0].committedInsts, 20000u);
    EXPECT_EQ(result.threads[1].committedInsts, 20000u);
    EXPECT_LT(result.maxRecoveryWait, result.cycles);
}

TEST(SmtDeathTest, TooManyThreadsForRegistersIsFatal)
{
    // 3 threads x 32 arch regs = 96 pre-allocated of 112: legal.
    // 4 threads = 128 > 112: dies (the shared free list cannot
    // reserve more architectural tags than exist).
    EXPECT_DEATH(SmtPipeline smt(CoreParams::baseline(), 4),
                 "FreeList|physical");
}

TEST(SmtDeathTest, SourceCountMismatchIsFatal)
{
    auto ta = trace("counters", 1000);
    SmtPipeline smt(CoreParams::baseline(), 2);
    EXPECT_DEATH(smt.run({ta.get()}), "sources");
}

} // namespace carf::core
