/**
 * @file
 * Parallel-vs-serial equivalence suite for the experiment engine:
 * any worker count must produce the same results in the same order
 * as the serial path, and the progress callback must be serialized.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment_runner.hh"
#include "sim/experiments.hh"
#include "sim/oracle.hh"
#include "sim/reporting.hh"

namespace carf::sim
{

namespace
{

SimOptions
quick(u64 insts = 15000)
{
    SimOptions options;
    options.maxInsts = insts;
    return options;
}

/**
 * Field-by-field equality of two RunResults, excluding the host-time
 * fields (wallSeconds/traceBuildSeconds/simSeconds — the intentionally
 * nondeterministic ones).
 */
void
expectIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.bypass.totalBypassed(), b.bypass.totalBypassed());
    EXPECT_EQ(a.bypass.totalRegFile(), b.bypass.totalRegFile());
    for (unsigned t = 0; t < 3; ++t) {
        EXPECT_EQ(a.intRfAccesses.reads[t], b.intRfAccesses.reads[t]);
        EXPECT_EQ(a.intRfAccesses.writes[t], b.intRfAccesses.writes[t]);
    }
    EXPECT_EQ(a.intRfAccesses.shortProbeReads,
              b.intRfAccesses.shortProbeReads);
    for (unsigned bk = 0; bk < core::OperandMix::NumBuckets; ++bk)
        EXPECT_EQ(a.operandMix.counts[bk], b.operandMix.counts[bk]);
    EXPECT_EQ(a.cluster.localOperands, b.cluster.localOperands);
    EXPECT_EQ(a.cluster.crossOperands, b.cluster.crossOperands);
    EXPECT_EQ(a.shortFileWrites, b.shortFileWrites);
    EXPECT_EQ(a.longAllocStalls, b.longAllocStalls);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.issueStallCycles, b.issueStallCycles);
    EXPECT_EQ(a.avgLiveLong, b.avgLiveLong);
    EXPECT_EQ(a.avgLiveShort, b.avgLiveShort);
}

/**
 * runResultJson with the host-time fields stripped. They are grouped
 * at the tail of the object (wall_seconds, trace_build_seconds,
 * sim_seconds), so one cut removes all of them.
 */
std::string
jsonWithoutWallTime(const core::RunResult &result)
{
    std::string json = runResultJson(result);
    auto pos = json.find(",\"wall_seconds\":");
    EXPECT_NE(pos, std::string::npos);
    return json.substr(0, pos) + "}";
}

} // namespace

TEST(ExperimentRunner, HardwareJobsIsAtLeastOne)
{
    EXPECT_GE(ExperimentRunner::hardwareJobs(), 1u);
    EXPECT_EQ(ExperimentRunner(0).jobs(),
              ExperimentRunner::hardwareJobs());
    EXPECT_EQ(ExperimentRunner(3).jobs(), 3u);
}

TEST(ExperimentRunner, SerialAndParallelIntSuiteIdentical)
{
    const auto &suite = workloads::intSuite();
    auto params = core::CoreParams::contentAware(20);
    auto options = quick();

    auto serial = runSuite(suite, params, options, 1);
    auto parallel = runSuite(suite, params, options, 8);

    ASSERT_EQ(serial.results.size(), suite.size());
    ASSERT_EQ(parallel.results.size(), suite.size());
    for (size_t i = 0; i < suite.size(); ++i) {
        expectIdentical(serial.results[i], parallel.results[i]);
        // Byte-level check through the reporting path too.
        EXPECT_EQ(jsonWithoutWallTime(serial.results[i]),
                  jsonWithoutWallTime(parallel.results[i]));
    }
    EXPECT_EQ(serial.meanIpc(), parallel.meanIpc());
}

TEST(ExperimentRunner, SubmissionOrderPreservedUnderContention)
{
    // Alternate long and short jobs: short jobs complete first, so a
    // runner that returned completion order would interleave them.
    std::vector<ExperimentJob> jobs;
    for (unsigned i = 0; i < 12; ++i) {
        u64 insts = (i % 2 == 0) ? 40000 : 2000;
        jobs.push_back({workloads::findWorkload(i % 4 < 2 ? "counters"
                                                          : "crc"),
                        core::CoreParams::baseline(), quick(insts),
                        strprintf("job%u", i), nullptr});
    }

    auto results = ExperimentRunner(8).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].workload, jobs[i].workload.name) << i;
        EXPECT_EQ(results[i].committedInsts,
                  jobs[i].options.maxInsts) << i;
        EXPECT_GT(results[i].wallSeconds, 0.0) << i;
    }
}

TEST(ExperimentRunner, ProgressCallbackSerializedAndComplete)
{
    auto jobs = suiteJobs(workloads::intSuite(),
                          core::CoreParams::baseline(), quick(4000),
                          "progress");

    std::mutex mutex;
    std::vector<size_t> completions;
    size_t total_seen = 0;
    auto results = ExperimentRunner(4).run(
        jobs, [&](const ExperimentProgress &p) {
            std::lock_guard<std::mutex> lock(mutex);
            completions.push_back(p.completed);
            total_seen = p.total;
            EXPECT_EQ(p.job.tag, "progress");
            EXPECT_EQ(p.result.workload, p.job.workload.name);
        });

    ASSERT_EQ(completions.size(), jobs.size());
    EXPECT_EQ(total_seen, jobs.size());
    // The runner serializes callbacks, so the completed counter must
    // step 1, 2, ..., N in callback order.
    for (size_t i = 0; i < completions.size(); ++i)
        EXPECT_EQ(completions[i], i + 1);
    EXPECT_EQ(results.size(), jobs.size());
}

TEST(ExperimentRunner, PerJobOracleMergeMatchesSharedSerialOracle)
{
    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters"),
        workloads::findWorkload("hash_table"),
        workloads::findWorkload("crc"),
    };
    auto options = quick(8000);
    options.oracleSamplePeriod = 16;

    // Serial reference: one oracle accumulating across the suite.
    LiveValueOracle shared;
    for (const auto &w : mini)
        simulate(w, core::CoreParams::baseline(), options, &shared);

    // Parallel: a private oracle per job, merged in submission order.
    std::vector<std::unique_ptr<LiveValueOracle>> oracles;
    std::vector<ExperimentJob> jobs;
    for (const auto &w : mini) {
        oracles.push_back(std::make_unique<LiveValueOracle>());
        jobs.push_back({w, core::CoreParams::baseline(), options, "",
                        oracles.back().get()});
    }
    ExperimentRunner(4).run(jobs);
    LiveValueOracle merged;
    for (const auto &oracle : oracles)
        merged.merge(*oracle);

    EXPECT_EQ(merged.samples(), shared.samples());
    EXPECT_EQ(merged.avgLiveRegs(), shared.avgLiveRegs());
    EXPECT_EQ(merged.exactGroups().total(),
              shared.exactGroups().total());
    for (unsigned b = 0; b < GroupAccumulator::numBuckets; ++b) {
        EXPECT_EQ(merged.exactGroups().fraction(b),
                  shared.exactGroups().fraction(b)) << b;
        for (unsigned d = 0; d < 3; ++d) {
            EXPECT_EQ(merged.similarityGroups(d).fraction(b),
                      shared.similarityGroups(d).fraction(b))
                << b << " d" << d;
        }
    }
}

TEST(ExperimentRunner, EmptyBatchYieldsEmptyResults)
{
    EXPECT_TRUE(ExperimentRunner(4).run({}).empty());
}

TEST(ExperimentRunner, RunTasksVisitsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 4u}) {
        ExperimentRunner runner(jobs);
        constexpr size_t count = 200;
        std::vector<std::atomic<int>> visits(count);
        runner.runTasks(count,
                        [&](size_t i) { visits[i].fetch_add(1); });
        for (size_t i = 0; i < count; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
}

TEST(ExperimentRunner, RunTasksZeroCountIsANoOp)
{
    bool ran = false;
    ExperimentRunner(4).runTasks(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ExperimentRunnerDeathTest, ZeroIpcReferenceIsFatal)
{
    SuiteRun test, reference;
    core::RunResult r;
    r.workload = "stalled_kernel";
    r.ipc = 1.0;
    test.results.push_back(r);
    r.ipc = 0.0;
    reference.results.push_back(r);
    EXPECT_DEATH((void)meanRelativeIpc(test, reference),
                 "stalled_kernel.*zero");
}

} // namespace carf::sim
