/**
 * @file
 * End-to-end smoke test: every workload runs on every register file
 * organization for a short budget without tripping any internal
 * invariant (the pipeline panics on operand or reconstruction
 * mismatches, so completing at all is a strong check).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace carf
{

TEST(Smoke, BaselineRunsQuickstartWorkload)
{
    sim::SimOptions options;
    options.maxInsts = 20000;
    auto result = sim::simulate(workloads::findWorkload("counters"),
                                core::CoreParams::baseline(), options);
    EXPECT_EQ(result.committedInsts, options.maxInsts);
    EXPECT_GT(result.ipc, 0.5);
}

TEST(Smoke, ContentAwareRunsQuickstartWorkload)
{
    sim::SimOptions options;
    options.maxInsts = 20000;
    auto result = sim::simulate(workloads::findWorkload("counters"),
                                core::CoreParams::contentAware(),
                                options);
    EXPECT_EQ(result.committedInsts, options.maxInsts);
    EXPECT_GT(result.ipc, 0.5);
}

class SmokeAllWorkloads
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SmokeAllWorkloads, RunsOnAllRegFileKinds)
{
    sim::SimOptions options;
    options.maxInsts = 10000;
    const auto &workload = workloads::findWorkload(GetParam());

    for (auto params : {core::CoreParams::unlimited(),
                        core::CoreParams::baseline(),
                        core::CoreParams::contentAware(),
                        core::CoreParams::portReduction()}) {
        auto result = sim::simulate(workload, params, options);
        EXPECT_EQ(result.committedInsts, options.maxInsts)
            << workload.name << " on " << params.regFileBackend;
        EXPECT_GT(result.ipc, 0.0);
    }
}

namespace
{

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SmokeAllWorkloads,
                         ::testing::ValuesIn(allWorkloadNames()));

} // namespace carf
