/**
 * @file
 * Tests for the deterministic PRNG used by workload generation.
 */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace carf
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (u64 bound : {u64{1}, u64{2}, u64{10}, u64{1000}, u64{1} << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        i64 v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanIsCentered)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, PickWeightedHonorsWeights)
{
    Rng rng(23);
    std::vector<double> weights = {1.0, 3.0, 0.0};
    int counts[3] = {};
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.pickWeighted(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.03);
}

TEST(Rng, GeometricCapped)
{
    Rng rng(29);
    for (int i = 0; i < 500; ++i)
        EXPECT_LE(rng.geometric(0.9, 5), 5u);
}

TEST(Rng, GeometricZeroProbabilityIsZero)
{
    Rng rng(31);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.geometric(0.0, 10), 0u);
}

TEST(Rng, SplitIsDeterministicAndIndependent)
{
    Rng a(5), b(5);
    Rng child_a = a.split();
    Rng child_b = b.split();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(child_a.next(), child_b.next());

    // Successive splits from one parent are distinct streams, and
    // none of them tracks the parent.
    Rng parent(6);
    Rng first = parent.split();
    Rng second = parent.split();
    int same_fs = 0, same_fp = 0;
    for (int i = 0; i < 64; ++i) {
        u64 f = first.next();
        same_fs += f == second.next();
        same_fp += f == parent.next();
    }
    EXPECT_LT(same_fs, 2);
    EXPECT_LT(same_fp, 2);
}

TEST(Rng, MagnitudeBiasedCoversSmallAndHugeValues)
{
    Rng rng(37);
    int small = 0, huge = 0;
    for (int i = 0; i < 2000; ++i) {
        u64 v = rng.nextMagnitudeBiased();
        small += v < 1024 || v > static_cast<u64>(-1024);
        huge += v > (u64{1} << 48) && v < static_cast<u64>(-(1ll << 48));
    }
    // Both tails of the width distribution must be well represented.
    EXPECT_GT(small, 100);
    EXPECT_GT(huge, 100);
}

} // namespace carf
