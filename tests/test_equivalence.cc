/**
 * @file
 * Cross-model equivalence tests: after committing the same dynamic
 * instruction stream, the timing pipeline's architectural register
 * state (read through the rename map out of the modelled register
 * files, including the content-aware reconstruction path) must equal
 * the pure functional emulator's state. This closes the loop between
 * the functional and timing halves of the simulator.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "emu/emulator.hh"
#include "workloads/workload.hh"

namespace carf
{

namespace
{

class ArchEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

} // namespace

TEST_P(ArchEquivalence, PipelineMatchesEmulator)
{
    auto [workload_name, backend] = GetParam();
    const u64 insts = 20000;
    const auto &workload = workloads::findWorkload(workload_name);

    // Reference: pure functional execution.
    emu::Emulator reference(workload.build(), "ref", insts);
    emu::DynOp op;
    while (reference.next(op)) {
    }

    // Timed execution over the same stream, on the named backend.
    core::CoreParams params = core::CoreParams::forBackend(backend);
    auto trace = workloads::makeTrace(workload, insts);
    core::Pipeline pipeline(params);
    auto result = pipeline.run(*trace);
    ASSERT_EQ(result.committedInsts, insts);

    for (unsigned r = 0; r < isa::numArchRegs; ++r) {
        EXPECT_EQ(pipeline.archIntReg(r), reference.intReg(r))
            << "int r" << r;
        EXPECT_EQ(pipeline.archFpReg(r), reference.fpRegBits(r))
            << "fp f" << r;
    }
}

namespace
{

std::string
archEquivalenceName(
    const ::testing::TestParamInfo<std::tuple<std::string, std::string>>
        &info)
{
    std::string config = std::get<1>(info.param);
    for (char &c : config)
        if (c == '-')
            c = '_';
    return std::get<0>(info.param) + "_" + config;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    WorkloadsTimesConfigs, ArchEquivalence,
    ::testing::Combine(::testing::Values("counters", "hash_table",
                                         "crc", "monte_carlo",
                                         "jacobi"),
                       ::testing::Values("unlimited", "baseline",
                                         "content-aware",
                                         "port-reduction")),
    archEquivalenceName);

TEST(WarmUpEquivalence, FastForwardPreservesArchState)
{
    // warmUp(N) followed by run(M) must leave the same architectural
    // state as functionally executing N+M instructions.
    const u64 skip = 15000, window = 10000;
    const auto &workload = workloads::findWorkload("hash_table");

    emu::Emulator reference(workload.build(), "ref", skip + window);
    emu::DynOp op;
    while (reference.next(op)) {
    }

    auto trace = workloads::makeTrace(workload, skip + window);
    core::Pipeline pipeline(core::CoreParams::contentAware());
    pipeline.warmUp(*trace, skip);
    auto result = pipeline.run(*trace);
    EXPECT_EQ(result.committedInsts, window);

    for (unsigned r = 0; r < isa::numArchRegs; ++r)
        EXPECT_EQ(pipeline.archIntReg(r), reference.intReg(r))
            << "int r" << r;
}

TEST(WarmUpEquivalence, WarmCachesRaiseWindowIpc)
{
    // A warmed window should not be slower than a cold one on a
    // cache-friendly kernel.
    const auto &workload = workloads::findWorkload("counters");

    auto cold_trace = workloads::makeTrace(workload, 20000);
    core::Pipeline cold(core::CoreParams::baseline());
    auto cold_result = cold.run(*cold_trace);

    auto warm_trace = workloads::makeTrace(workload, 40000);
    core::Pipeline warm(core::CoreParams::baseline());
    warm.warmUp(*warm_trace, 20000);
    auto warm_result = warm.run(*warm_trace);

    EXPECT_GE(warm_result.ipc, cold_result.ipc * 0.98);
}

} // namespace carf
