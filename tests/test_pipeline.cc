/**
 * @file
 * Timing-behaviour tests of the out-of-order pipeline using small
 * crafted programs whose steady-state IPC is analytically known, plus
 * structural-limit and recovery checks.
 *
 * Every run doubles as a correctness check: the pipeline panics if a
 * register file read returns a value different from the functional
 * trace, so any renaming/bypass/classification bug aborts the test.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"

namespace carf::core
{

using namespace carf::isa;

namespace
{

/** Run a program (capped) on a pipeline; return the result. */
RunResult
runOn(const CoreParams &params, isa::Program program, u64 max_insts)
{
    emu::Emulator trace(std::move(program), "test", max_insts);
    Pipeline pipeline(params);
    return pipeline.run(trace);
}

/** Eight-way independent add stream: no dependences at all. */
isa::Program
independentAdds()
{
    Assembler a;
    a.label("top");
    for (u8 r = 1; r <= 8; ++r)
        a.addi(r, R0, 7);
    a.jmp("top");
    return a.finish();
}

/** Serial dependence chain of single-cycle adds. */
isa::Program
dependentAdds()
{
    Assembler a;
    a.label("top");
    for (int i = 0; i < 16; ++i)
        a.addi(R1, R1, 1);
    a.jmp("top");
    return a.finish();
}

/** Serial dependence chain of 3-cycle multiplies. */
isa::Program
dependentMuls()
{
    Assembler a;
    a.movi(R1, 3);
    a.label("top");
    for (int i = 0; i < 16; ++i)
        a.mul(R1, R1, R1);
    a.ori(R1, R1, 3); // keep it nonzero
    a.jmp("top");
    return a.finish();
}

/** Serial chain of dependent loads (same cached address). */
isa::Program
dependentLoads()
{
    Assembler a;
    a.dataU64(0x1000, {0x1000}); // mem[0x1000] = 0x1000: self-loop
    a.movi(R1, 0x1000);
    a.label("top");
    for (int i = 0; i < 16; ++i)
        a.ld(R1, R1, 0);
    a.jmp("top");
    return a.finish();
}

/**
 * Stream of long-valued results (xorshift chains) behind a serial
 * load chain. The slow chain keeps the ROB full of completed long
 * writers awaiting commit, so a small Long file is exhausted.
 */
isa::Program
longValueStream()
{
    Assembler a;
    a.dataU64(0x1000, {0x1000}); // self-loop pointer
    a.movi(R1, 0x123456789abcdef1ll);
    a.movi(R2, 0x0fedcba987654321ll);
    a.movi(R6, 0x1000);
    a.label("top");
    a.ld(R6, R6, 0); // serial 2-cycle chain gates commit
    a.ld(R6, R6, 0);
    a.slli(R3, R1, 13);
    a.xor_(R1, R1, R3);
    a.srli(R4, R2, 7);
    a.xor_(R2, R2, R4);
    a.xor_(R5, R1, R2);
    a.slli(R3, R2, 21);
    a.xor_(R2, R2, R3);
    a.xor_(R4, R2, R1);
    a.jmp("top");
    return a.finish();
}

} // namespace

TEST(PipelineTiming, IndependentOpsReachHighIpc)
{
    auto result = runOn(CoreParams::unlimited(), independentAdds(),
                        40000);
    // 8 adds + 1 jump per iteration; fetch stops at the taken jump, so
    // the front end supplies 9 instructions per 2 cycles -> IPC ~4.5.
    EXPECT_GT(result.ipc, 4.0);
}

TEST(PipelineTiming, DependentAddChainIsIpcOne)
{
    auto result = runOn(CoreParams::baseline(), dependentAdds(), 40000);
    EXPECT_NEAR(result.ipc, 1.0, 0.12);
}

TEST(PipelineTiming, DependentMulChainMatchesLatency)
{
    auto result = runOn(CoreParams::baseline(), dependentMuls(), 40000);
    EXPECT_NEAR(result.ipc, 1.0 / 3.0, 0.05);
}

TEST(PipelineTiming, DependentLoadChainMatchesLoadLatency)
{
    // Load-to-use latency with an L1 hit is 2 cycles (address
    // generation + cache access).
    auto result = runOn(CoreParams::baseline(), dependentLoads(),
                        40000);
    EXPECT_NEAR(result.ipc, 0.5, 0.08);
}

TEST(PipelineTiming, ExtraReadStageDoesNotSlowDependenceChains)
{
    // Back-to-back wakeup hides the second register-read stage, so a
    // pure dependence chain runs at the same rate (the paper's
    // argument for the negligible IPC cost of the extra stage).
    auto baseline = runOn(CoreParams::baseline(), dependentAdds(),
                          40000);
    auto ca = runOn(CoreParams::contentAware(), dependentAdds(), 40000);
    EXPECT_NEAR(ca.ipc, baseline.ipc, 0.05);
}

TEST(PipelineTiming, MispredictsCostMoreOnDeeperPipeline)
{
    // A data-dependent branch stream with ~50% taken rate.
    Assembler a;
    a.movi(R1, 0x9e3779b97f4a7c15ll);
    a.label("top");
    a.slli(R2, R1, 13);
    a.xor_(R1, R1, R2);
    a.srli(R2, R1, 7);
    a.xor_(R1, R1, R2);
    a.andi(R3, R1, 1);
    a.beq(R3, R0, "skip");
    a.addi(R4, R4, 1);
    a.label("skip");
    a.jmp("top");
    isa::Program p = a.finish();

    auto baseline = runOn(CoreParams::baseline(), p, 60000);
    auto ca = runOn(CoreParams::contentAware(), p, 60000);
    EXPECT_GT(baseline.branchMispredictRate(), 0.2);
    // Deeper register read -> later branch resolution -> lower IPC.
    EXPECT_LT(ca.ipc, baseline.ipc);
}

TEST(PipelineStructural, SingleWritePortCapsIpc)
{
    CoreParams params = CoreParams::baseline();
    params.intRfWritePorts = 1;
    auto result = runOn(params, independentAdds(), 30000);
    // Every add needs the single write port.
    EXPECT_LT(result.ipc, 1.15);
}

TEST(PipelineStructural, ReadPortsGateOldOperandConsumers)
{
    // Producers run far ahead of consumers, so consumer operands miss
    // the bypass window and need register file reads.
    Assembler a;
    for (u8 r = 1; r <= 12; ++r)
        a.movi(r, 1000 + r);
    a.label("top");
    for (u8 r = 1; r <= 12; r += 2)
        a.add(static_cast<u8>(R13 + r / 2), r, static_cast<u8>(r + 1));
    a.jmp("top");
    isa::Program p = a.finish();

    CoreParams narrow = CoreParams::baseline();
    narrow.intRfReadPorts = 2; // minimum legal: one per operand
    auto two_ports = runOn(narrow, p, 30000);
    auto eight_ports = runOn(CoreParams::baseline(), p, 30000);
    EXPECT_GT(eight_ports.ipc, two_ports.ipc * 1.5);
    EXPECT_GT(two_ports.bypass.totalRegFile(), 0u);
}

TEST(PipelineContentAware, TinyLongFileRecoversAndCompletes)
{
    CoreParams params = CoreParams::contentAware(20, 3, 9);
    params.ca.issueStallThreshold = 0; // force the recovery path
    auto result = runOn(params, longValueStream(), 30000);
    EXPECT_EQ(result.committedInsts, 30000u);
    EXPECT_GT(result.longAllocStalls + result.recoveries, 0u);
}

TEST(PipelineContentAware, IssueStallThresholdReducesRecoveries)
{
    CoreParams with_stall = CoreParams::contentAware(20, 3, 12);
    CoreParams no_stall = with_stall;
    no_stall.ca.issueStallThreshold = 0;
    auto guarded = runOn(with_stall, longValueStream(), 30000);
    auto unguarded = runOn(no_stall, longValueStream(), 30000);
    EXPECT_LE(guarded.recoveries, unguarded.recoveries);
}

TEST(PipelineContentAware, BypassFractionExceedsBaseline)
{
    // The extra bypass level must raise the bypassed-operand share
    // (Table 2's direction).
    auto baseline = runOn(CoreParams::baseline(), dependentLoads(),
                          30000);
    auto ca = runOn(CoreParams::contentAware(), dependentLoads(),
                    30000);
    EXPECT_GE(ca.bypass.bypassFraction(),
              baseline.bypass.bypassFraction());
}

TEST(PipelineContentAware, MissingExtraBypassCostsIpc)
{
    CoreParams with_bypass = CoreParams::contentAware();
    CoreParams without = with_bypass;
    without.extraBypassLevel = false;
    // Use a stream whose operands often land exactly in the gap.
    auto with_result = runOn(with_bypass, dependentLoads(), 30000);
    auto without_result = runOn(without, dependentLoads(), 30000);
    EXPECT_LE(without_result.ipc, with_result.ipc + 1e-9);
}

TEST(PipelineContentAware, AccessCountsCoverCommittedWriters)
{
    auto result = runOn(CoreParams::contentAware(), dependentAdds(),
                        20000);
    // Every int-writing instruction performs exactly one RF write.
    // dependentAdds is 16 adds + 1 jal(r0) per iteration.
    u64 writers = result.intRfAccesses.totalWrites();
    EXPECT_NEAR(static_cast<double>(writers),
                20000.0 * 16.0 / 17.0, 250.0);
}

TEST(PipelineDeterminism, RepeatRunsAreIdentical)
{
    auto a = runOn(CoreParams::contentAware(), longValueStream(),
                   25000);
    auto b = runOn(CoreParams::contentAware(), longValueStream(),
                   25000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.intRfAccesses.totalReads(),
              b.intRfAccesses.totalReads());
}

TEST(PipelineOracle, ObserverReceivesSamples)
{
    CoreParams params = CoreParams::baseline();
    params.oracleSamplePeriod = 4;

    class CountingObserver : public CycleObserver
    {
      public:
        u64 samples = 0;
        void
        sampleCycle(Cycle, const regfile::RegisterFile &) override
        {
            ++samples;
        }
    } observer;

    emu::Emulator trace(dependentAdds(), "test", 10000);
    Pipeline pipeline(params);
    auto result = pipeline.run(trace, &observer);
    EXPECT_GT(observer.samples, result.cycles / 5);
}

} // namespace carf::core
