/**
 * @file
 * Integration tests asserting the paper's headline claims hold in
 * this reproduction (with reduced instruction budgets; the bench
 * harnesses regenerate the full tables). Bands are deliberately
 * generous — these tests guard the *direction and rough magnitude*
 * of each result, not exact numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "energy/report.hh"
#include "sim/experiments.hh"
#include "sim/frequency.hh"

namespace carf
{

namespace
{

sim::SimOptions
quick()
{
    sim::SimOptions options;
    options.maxInsts = 150000;
    return options;
}

/** Shared runs across tests (computed once). */
struct Fixture
{
    sim::SuiteRun baselineInt;
    sim::SuiteRun caInt;
    sim::SuiteRun baselineFp;
    sim::SuiteRun caFp;

    Fixture()
    {
        auto options = quick();
        baselineInt = sim::runSuite(workloads::intSuite(),
                                    core::CoreParams::baseline(),
                                    options);
        caInt = sim::runSuite(workloads::intSuite(),
                              core::CoreParams::contentAware(20),
                              options);
        baselineFp = sim::runSuite(workloads::fpSuite(),
                                   core::CoreParams::baseline(),
                                   options);
        caFp = sim::runSuite(workloads::fpSuite(),
                             core::CoreParams::contentAware(20),
                             options);
    }
};

const Fixture &
fixture()
{
    static Fixture f;
    return f;
}

} // namespace

TEST(PaperClaims, IntIpcLossIsSmall)
{
    // Paper: 1.7% SPECint loss vs baseline. Allow up to 5% here.
    double rel = sim::meanRelativeIpc(fixture().caInt,
                                      fixture().baselineInt);
    EXPECT_GT(rel, 0.95);
    EXPECT_LE(rel, 1.005);
}

TEST(PaperClaims, FpIpcLossIsNegligible)
{
    // Paper: 0.3% SPECfp loss.
    double rel = sim::meanRelativeIpc(fixture().caFp,
                                      fixture().baselineFp);
    EXPECT_GT(rel, 0.985);
}

TEST(PaperClaims, EnergyHalvedVsBaseline)
{
    energy::RixnerModel model;
    auto params = core::CoreParams::contentAware(20);
    auto geom = energy::caGeometry(params.physIntRegs, params.ca);

    double ca = energy::contentAwareEnergy(
        model, geom, fixture().caInt.totalAccesses(),
        fixture().caInt.totalShortWrites());
    double baseline = energy::conventionalEnergy(
        model, energy::baselineGeometry(),
        fixture().baselineInt.totalAccesses());
    // Paper: ~50% of baseline. Accept 35-65%.
    double ratio = ca / baseline;
    EXPECT_GT(ratio, 0.30);
    EXPECT_LT(ratio, 0.65);
}

TEST(PaperClaims, AccessDistributionShiftsWithDn)
{
    // Figure 6: the long share of accesses falls as d+n grows.
    auto options = quick();
    auto low = sim::runSuite(workloads::intSuite(),
                             core::CoreParams::contentAware(8),
                             options);
    const auto &high = fixture().caInt;
    auto counts_low = low.totalAccesses();
    auto counts_high = high.totalAccesses();
    double long_low = static_cast<double>(counts_low.writes[2]) /
                      counts_low.totalWrites();
    double long_high = static_cast<double>(counts_high.writes[2]) /
                       counts_high.totalWrites();
    EXPECT_LT(long_high, long_low);
}

TEST(PaperClaims, BypassShareRisesWithExtraLevel)
{
    // Table 2: the content-aware pipeline bypasses more operands.
    EXPECT_GE(fixture().caInt.bypassFraction(),
              fixture().baselineInt.bypassFraction());
    EXPECT_GE(fixture().caFp.bypassFraction(),
              fixture().baselineFp.bypassFraction());
}

TEST(PaperClaims, OperandTypesMostlyAgree)
{
    // Table 4: both operands share a value type for >80% of integer
    // instructions (paper: 86.6%).
    auto mix = fixture().caInt.totalOperandMix();
    double same = mix.fraction(core::OperandMix::OnlySimple) +
                  mix.fraction(core::OperandMix::OnlyShort) +
                  mix.fraction(core::OperandMix::OnlyLong);
    EXPECT_GT(same, 0.80);
}

TEST(PaperClaims, LiveLongRegistersFarBelowCapacity)
{
    // §6: the average number of live long registers is small (paper:
    // 12.7) — the 48-entry file is sized for peaks.
    EXPECT_LT(fixture().caInt.meanAvgLiveLong(), 30.0);
}

TEST(PaperClaims, RecoveriesAreRare)
{
    // §3.2: pseudo-deadlock "was observed to happen very
    // infrequently" with the issue-stall threshold.
    u64 total_insts = 0;
    for (const auto &r : fixture().caInt.results)
        total_insts += r.committedInsts;
    EXPECT_LT(fixture().caInt.totalRecoveries(),
              total_insts / 10000);
}

TEST(PaperClaims, SmtSharingSustainsThroughput)
{
    // §6: the average number of live Long registers is far below K,
    // so one Long file can feed two threads. At the single-thread
    // knee (K=48), a high-ILP thread (counters) plus a
    // dependence-limited partner (crc) must deliver more aggregate
    // throughput than either thread alone, and the content-aware
    // organization must stay competitive with the same-tag-capacity
    // conventional baseline under sharing. (A pointer-chasing
    // partner like hash_table instead shifts the Long knee past 48
    // — the ablation grid covers that regime.)
    sim::SimOptions options;
    options.maxInsts = 60000;
    options.smtMix = {"crc"};
    const auto &lead = workloads::findWorkload("counters");

    auto ca = core::CoreParams::contentAware(20, 3, 48);
    auto solo_a = sim::simulate(lead, ca, options);
    auto solo_b = sim::simulate(workloads::findWorkload("crc"),
                                ca, options);

    // Two resident threads get the SMT register budget the ablation
    // uses (80 + 32·T int, 96 + 32·T fp); the Long file stays at the
    // single-thread knee K=48 — that is the sharing claim under test.
    ca.smtThreads = 2;
    ca.physIntRegs = 80 + 32 * 2;
    ca.physFpRegs = 96 + 32 * 2;
    auto ca_smt = sim::simulateSmt(lead, ca, options);
    EXPECT_EQ(ca_smt.smtThreads, 2u);

    // Aggregate beats the faster solo thread: sharing one file
    // yields real multithreaded throughput, not time-slicing.
    EXPECT_GT(ca_smt.ipc, std::max(solo_a.ipc, solo_b.ipc));

    // The Long file never approaches its capacity even with two
    // threads resident — the §6 sharing argument itself.
    EXPECT_LT(ca_smt.avgLiveLong, 40.0);

    // Competitive with the conventional baseline of the same tag
    // count under the identical mix (the content-aware file trades
    // two-stage writeback for sharing-friendly storage).
    auto base = core::CoreParams::baseline();
    base.smtThreads = 2;
    base.physIntRegs = 80 + 32 * 2;
    base.physFpRegs = 96 + 32 * 2;
    auto base_smt = sim::simulateSmt(lead, base, options);
    EXPECT_GT(ca_smt.ipc, 0.93 * base_smt.ipc);

    // And the shared Short file does observe cross-thread value
    // similarity on this mix.
    EXPECT_GT(ca_smt.smtShortHits, 0u);
}

TEST(PaperClaims, FrequencyScaledSpeedupPositive)
{
    // §5: with the ~15% access-time headroom the IPC loss turns into
    // a speed-up.
    energy::RixnerModel model;
    auto params = core::CoreParams::contentAware(20);
    auto geom = energy::caGeometry(params.physIntRegs, params.ca);
    double gain = sim::potentialFrequencyGain(
        model.accessTime(energy::baselineGeometry()),
        energy::caMaxAccessTime(model, geom));
    double rel = sim::meanRelativeIpc(fixture().caInt,
                                      fixture().baselineInt);
    EXPECT_GT(sim::frequencyScaledSpeedup(rel, gain), 0.0);
}

} // namespace carf
