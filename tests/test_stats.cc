/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace carf::stats
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Distribution, SamplesAndFractions)
{
    Distribution d(4);
    d.sample(0);
    d.sample(1, 3);
    d.sample(3, 6);
    EXPECT_EQ(d.total(), 10u);
    EXPECT_DOUBLE_EQ(d.fraction(1), 0.3);
    EXPECT_DOUBLE_EQ(d.fraction(2), 0.0);
}

TEST(Distribution, OutOfRangeClampsToLastBucket)
{
    Distribution d(3);
    d.sample(17);
    EXPECT_EQ(d.bucket(2), 1u);
}

TEST(Distribution, ResetClears)
{
    Distribution d(2);
    d.sample(0, 5);
    d.reset();
    EXPECT_EQ(d.total(), 0u);
}

TEST(StatGroup, CounterRegistrationAndQuery)
{
    StatGroup group("test");
    Counter &c = group.addCounter("events", "number of events");
    c += 7;
    EXPECT_TRUE(group.hasCounter("events"));
    EXPECT_FALSE(group.hasCounter("missing"));
    EXPECT_EQ(group.counterValue("events"), 7u);
}

TEST(StatGroup, AverageRegistrationAndQuery)
{
    StatGroup group("test");
    Average &a = group.addAverage("occupancy", "avg occupancy");
    a.sample(10.0);
    a.sample(20.0);
    EXPECT_DOUBLE_EQ(group.averageValue("occupancy"), 15.0);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup group("rf");
    group.addCounter("reads", "read accesses") += 3;
    std::string dump = group.dump();
    EXPECT_NE(dump.find("rf.reads 3"), std::string::npos);
    EXPECT_NE(dump.find("read accesses"), std::string::npos);
}

TEST(StatGroup, ResetAllZeroesEverything)
{
    StatGroup group("g");
    group.addCounter("c", "") += 5;
    group.addAverage("a", "").sample(3.0);
    group.resetAll();
    EXPECT_EQ(group.counterValue("c"), 0u);
    EXPECT_DOUBLE_EQ(group.averageValue("a"), 0.0);
}

TEST(StatGroupDeathTest, DuplicateCounterPanics)
{
    StatGroup group("g");
    group.addCounter("x", "");
    EXPECT_DEATH(group.addCounter("x", ""), "duplicate");
}

} // namespace carf::stats
