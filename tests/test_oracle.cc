/**
 * @file
 * Tests for the live-value oracle with hand-crafted register file
 * contents where the expected group shares are exact.
 */

#include <memory>

#include <gtest/gtest.h>

#include "regfile/baseline.hh"
#include "sim/oracle.hh"

namespace carf::sim
{

namespace
{

/** Fill a baseline file with the given live values (tags 0..n). */
std::unique_ptr<regfile::BaselineRegFile>
fileWith(const std::vector<u64> &values)
{
    auto rf = std::make_unique<regfile::BaselineRegFile>("oracle-test",
                                                         64);
    for (size_t i = 0; i < values.size(); ++i)
        rf->write(static_cast<u32>(i), values[i]);
    return rf;
}

} // namespace

TEST(GroupAccumulator, SingleGroupAllInBucketOne)
{
    GroupAccumulator acc;
    std::vector<u32> sizes = {10};
    acc.addSample(sizes);
    EXPECT_DOUBLE_EQ(acc.fraction(0), 1.0);
    EXPECT_EQ(acc.total(), 10u);
}

TEST(GroupAccumulator, RankBucketsByDescendingSize)
{
    GroupAccumulator acc;
    // Groups of sizes 5,4,3,2 -> rank 1 (5), rank 2 (4), ranks 3-4
    // (3+2). Input deliberately unsorted.
    std::vector<u32> sizes = {3, 5, 2, 4};
    acc.addSample(sizes);
    EXPECT_DOUBLE_EQ(acc.fraction(0), 5.0 / 14.0);
    EXPECT_DOUBLE_EQ(acc.fraction(1), 4.0 / 14.0);
    EXPECT_DOUBLE_EQ(acc.fraction(2), 5.0 / 14.0);
    EXPECT_DOUBLE_EQ(acc.fraction(5), 0.0);
}

TEST(GroupAccumulator, SeventeenGroupsSpillToRest)
{
    GroupAccumulator acc;
    std::vector<u32> sizes(17, 1);
    acc.addSample(sizes);
    EXPECT_DOUBLE_EQ(acc.fraction(5), 1.0 / 17.0);
}

TEST(LiveValueOracle, ExactGroupingCountsDuplicates)
{
    // 4 registers with value 7, 2 with value 9, 1 with value 1.
    auto rf = fileWith({7, 7, 7, 7, 9, 9, 1});
    LiveValueOracle oracle(std::vector<unsigned>{});
    oracle.sampleCycle(0, *rf);
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(0), 4.0 / 7.0);
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(1), 2.0 / 7.0);
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(2), 1.0 / 7.0);
    EXPECT_DOUBLE_EQ(oracle.avgLiveRegs(), 7.0);
}

TEST(LiveValueOracle, SimilarityGroupsMergeNearbyValues)
{
    // Values sharing the top 64-8 bits: base+0..3 form one d=8 group
    // of 4; two distant values form their own groups.
    u64 base = 0x123456789a00ull;
    auto rf = fileWith({base, base + 1, base + 2, base + 3,
                        0x9999999999999999ull, 0x1111111111111111ull});
    LiveValueOracle oracle({8});
    oracle.sampleCycle(0, *rf);
    const auto &groups = oracle.similarityGroups(0);
    EXPECT_DOUBLE_EQ(groups.fraction(0), 4.0 / 6.0);
    EXPECT_DOUBLE_EQ(groups.fraction(1), 1.0 / 6.0);
    EXPECT_DOUBLE_EQ(groups.fraction(2), 1.0 / 6.0);
    // Exact grouping sees six singleton groups.
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(0), 1.0 / 6.0);
}

TEST(LiveValueOracle, LargerDMergesMore)
{
    // Two values differing in bit 10: distinct at d=8, merged at d=12.
    u64 base = 0xabc000ull << 24;
    auto rf = fileWith({base, base + (1 << 10)});
    LiveValueOracle oracle({8, 12});
    oracle.sampleCycle(0, *rf);
    EXPECT_DOUBLE_EQ(oracle.similarityGroups(0).fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(oracle.similarityGroups(1).fraction(0), 1.0);
}

TEST(LiveValueOracle, DeadTagsExcluded)
{
    regfile::BaselineRegFile rf("t", 8);
    rf.write(0, 5);
    rf.write(1, 5);
    rf.write(2, 5);
    rf.release(1);
    LiveValueOracle oracle(std::vector<unsigned>{});
    oracle.sampleCycle(0, rf);
    EXPECT_DOUBLE_EQ(oracle.avgLiveRegs(), 2.0);
}

TEST(LiveValueOracle, AccumulatesAcrossSamples)
{
    auto rf1 = fileWith({1, 1});
    auto rf2 = fileWith({2, 3});
    LiveValueOracle oracle(std::vector<unsigned>{});
    oracle.sampleCycle(0, *rf1);
    oracle.sampleCycle(1, *rf2);
    EXPECT_EQ(oracle.samples(), 2u);
    // Sample 1: both in group-1. Sample 2: one in group-1, one in
    // group-2. Totals: bucket0 = 3, bucket1 = 1 over 4.
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(1), 0.25);
}

TEST(LiveValueOracle, EmptyFileSampleIsHarmless)
{
    regfile::BaselineRegFile rf("t", 8);
    LiveValueOracle oracle;
    oracle.sampleCycle(0, rf);
    EXPECT_EQ(oracle.samples(), 1u);
    EXPECT_DOUBLE_EQ(oracle.avgLiveRegs(), 0.0);
    EXPECT_DOUBLE_EQ(oracle.exactGroups().fraction(0), 0.0);
}

} // namespace carf::sim
