/**
 * @file
 * Content-addressed result store suite: key canonicalization (stable
 * under field reordering, sensitive to every simulation-relevant
 * field, invalidated by the build fingerprint), bit-identical
 * round-trips through the on-disk shards, concurrent writers,
 * corrupt/truncated shard tolerance, and the ExperimentRunner
 * read-through path including kill/resume equivalence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "common/fingerprint.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "sim/experiment_runner.hh"
#include "sim/oracle.hh"
#include "sim/reporting.hh"
#include "sim/result_store.hh"
#include "workloads/workload.hh"

namespace carf::sim
{

namespace
{

namespace fs = std::filesystem;

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("carf_store_test_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

SimOptions
quick(u64 insts = 10000)
{
    SimOptions options;
    options.maxInsts = insts;
    return options;
}

/**
 * A RunResult with every field set to a distinctive value, including
 * doubles that do not round-trip through short decimal
 * representations — the round-trip tests must prove %.17g fidelity,
 * not luck.
 */
core::RunResult
fabricatedResult()
{
    core::RunResult r;
    r.workload = "fabricated";
    r.config = "test-config";
    r.cycles = 123456789;
    r.committedInsts = 987654321;
    r.ipc = 1.0 / 3.0;
    r.condBranches = 4242;
    r.branchMispredicts = 137;
    r.bypass.restore(11, 13, 17, 19);
    for (unsigned b = 0; b < core::OperandMix::NumBuckets; ++b)
        r.operandMix.counts[b] = 100 + b;
    r.cluster.localOperands = 23;
    r.cluster.crossOperands = 29;
    for (unsigned t = 0; t < 3; ++t) {
        r.intRfAccesses.reads[t] = 31 + t;
        r.intRfAccesses.writes[t] = 37 + t;
    }
    r.intRfAccesses.shortProbeReads = 41;
    r.shortFileWrites = 43;
    r.longAllocStalls = 47;
    r.recoveries = 53;
    r.issueStallCycles = 59;
    r.avgLiveLong = 0.1 + 0.2; // famously not 0.3
    r.avgLiveShort = 2.0 / 7.0;
    r.portConflictOps = 61;
    r.portConflictCycles = 67;
    r.wallSeconds = 1.23456789012345678;
    r.traceBuildSeconds = 0.000123456789;
    r.simSeconds = 1.234444433333;
    return r;
}

} // namespace

TEST(ResultStore, Sha256MatchesKnownVectors)
{
    // FIPS 180-4 vectors: the key derivation is only as trustworthy
    // as the hash underneath it.
    EXPECT_EQ(Sha256::hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(Sha256::hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    Sha256 chunked;
    chunked.update("ab");
    chunked.update("c");
    EXPECT_EQ(chunked.hexDigest(), Sha256::hashHex("abc"));
}

TEST(ResultStore, KeyStableUnderFieldReordering)
{
    auto fields = resultKeyFields("counters", core::CoreParams::baseline(),
                                  quick(), "fp0");
    std::string canonical = resultKeyFromFields(fields);

    std::mt19937 rng(12345);
    for (int trial = 0; trial < 8; ++trial) {
        auto shuffled = fields;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        EXPECT_EQ(resultKeyFromFields(shuffled), canonical);
    }
}

TEST(ResultStore, KeyCoversSimulationRelevantFields)
{
    auto base_params = core::CoreParams::baseline();
    auto base_options = quick();
    std::string base =
        resultKeyFromFields(resultKeyFields("counters", base_params,
                                            base_options, "fp0"));

    // Workload identity.
    EXPECT_NE(resultKeyFromFields(resultKeyFields("crc", base_params,
                                                  base_options, "fp0")),
              base);

    // A CoreParams field from each bundle the key covers.
    auto p = base_params;
    p.physIntRegs++;
    EXPECT_NE(resultKeyFromFields(
                  resultKeyFields("counters", p, base_options, "fp0")),
              base);
    p = base_params;
    p.memory.memoryLatency++;
    EXPECT_NE(resultKeyFromFields(
                  resultKeyFields("counters", p, base_options, "fp0")),
              base);
    p = base_params;
    p.regFileBackend = "content-aware";
    EXPECT_NE(resultKeyFromFields(
                  resultKeyFields("counters", p, base_options, "fp0")),
              base);

    // SimOptions that alter the run.
    auto o = base_options;
    o.maxInsts++;
    EXPECT_NE(resultKeyFromFields(
                  resultKeyFields("counters", base_params, o, "fp0")),
              base);
    o = base_options;
    o.fastForward = 1000;
    EXPECT_NE(resultKeyFromFields(
                  resultKeyFields("counters", base_params, o, "fp0")),
              base);
}

TEST(ResultStore, FingerprintInvalidatesKeys)
{
    auto params = core::CoreParams::baseline();
    auto options = quick();
    EXPECT_NE(resultKeyFromFields(
                  resultKeyFields("counters", params, options, "fpA")),
              resultKeyFromFields(
                  resultKeyFields("counters", params, options, "fpB")));

    // And the live binary's fingerprint is a plausible digest.
    std::string fp = buildFingerprint();
    EXPECT_EQ(fp.size(), 64u);
    EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

TEST(ResultStore, HitReturnsBitIdenticalRunResult)
{
    TempDir dir("roundtrip");
    core::RunResult original = fabricatedResult();

    {
        ResultStore store(dir.str(), "fp0", 1);
        EXPECT_FALSE(store.get("k1").has_value());
        EXPECT_EQ(store.misses(), 1u);
        store.put("k1", original);
        EXPECT_EQ(store.size(), 1u);
    }

    // Reopen from disk: the hit must round-trip every field bitwise,
    // host times included.
    ResultStore store(dir.str(), "fp0", 1);
    EXPECT_EQ(store.size(), 1u);
    auto hit = store.get("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(runResultJsonFull(*hit), runResultJsonFull(original));
    // Bitwise on the nasty doubles, not just string-equal.
    EXPECT_EQ(hit->ipc, original.ipc);
    EXPECT_EQ(hit->avgLiveLong, original.avgLiveLong);
    EXPECT_EQ(hit->wallSeconds, original.wallSeconds);
}

TEST(ResultStore, ParseRejectsMalformedJson)
{
    std::string good = runResultJsonFull(fabricatedResult());
    ASSERT_TRUE(parseRunResultJson(good).has_value());

    EXPECT_FALSE(parseRunResultJson("").has_value());
    EXPECT_FALSE(parseRunResultJson("{").has_value());
    EXPECT_FALSE(parseRunResultJson("null").has_value());
    // Truncation anywhere must fail, never misparse.
    EXPECT_FALSE(
        parseRunResultJson(good.substr(0, good.size() / 2)).has_value());
    EXPECT_FALSE(
        parseRunResultJson(good.substr(0, good.size() - 1)).has_value());
}

TEST(ResultStore, ConcurrentWriters)
{
    TempDir dir("concurrent");
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 25;

    {
        ResultStore store(dir.str(), "fp0", 4);
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < kThreads; ++t) {
            pool.emplace_back([&store, t] {
                for (unsigned i = 0; i < kPerThread; ++i) {
                    core::RunResult r = fabricatedResult();
                    r.cycles = t * 1000 + i;
                    r.workload = strprintf("w%u_%u", t, i);
                    store.put(strprintf("key_%u_%u", t, i), r);
                    // Interleave reads with the writes.
                    store.get(strprintf("key_%u_%u", t, i));
                    store.get("never-written");
                }
            });
        }
        for (auto &th : pool)
            th.join();
        EXPECT_EQ(store.size(), kThreads * kPerThread);
    }

    // Everything survives a reload, regardless of which shard each
    // writer landed in.
    ResultStore store(dir.str(), "fp0", 4);
    EXPECT_EQ(store.size(), kThreads * kPerThread);
    EXPECT_EQ(store.skippedLines(), 0u);
    for (unsigned t = 0; t < kThreads; ++t)
        for (unsigned i = 0; i < kPerThread; ++i) {
            auto hit = store.get(strprintf("key_%u_%u", t, i));
            ASSERT_TRUE(hit.has_value());
            EXPECT_EQ(hit->cycles, t * 1000 + i);
        }
}

TEST(ResultStore, CorruptShardToleratedWithSkip)
{
    TempDir dir("corrupt");
    {
        ResultStore store(dir.str(), "fp0", 1);
        store.put("good1", fabricatedResult());
        store.put("good2", fabricatedResult());
    }

    // Append garbage plus a torn (newline-less) record fragment, the
    // post-SIGKILL shapes.
    auto shard = dir.path / "shard-000.ndjson";
    {
        std::ofstream f(shard, std::ios::app | std::ios::binary);
        f << "this is not json\n";
        f << "{\"v\":1,\"fingerprint\":\"fp0\",\"key\":\"torn\",\"resu";
    }

    ResultStore store(dir.str(), "fp0", 1);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.skippedLines(), 2u);
    EXPECT_TRUE(store.get("good1").has_value());
    EXPECT_FALSE(store.get("torn").has_value());

    // A put through the reopened store must seal the torn tail so the
    // new record is loadable afterwards.
    store.put("good3", fabricatedResult());
    ResultStore reloaded(dir.str(), "fp0", 1);
    EXPECT_EQ(reloaded.size(), 3u);
    EXPECT_TRUE(reloaded.get("good3").has_value());
}

TEST(ResultStore, IndexWrittenAtomically)
{
    TempDir dir("index");
    ResultStore store(dir.str(), "fp0", 1);
    store.put("k", fabricatedResult());
    store.writeIndex();

    std::ifstream f(dir.path / "index.json");
    ASSERT_TRUE(f.good());
    std::string contents((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("\"entries\":1"), std::string::npos);
    EXPECT_NE(contents.find("\"fp0\""), std::string::npos);
    // No temp file left behind by the rename protocol.
    EXPECT_FALSE(fs::exists(dir.path / "index.json.tmp"));
}

TEST(ResultStore, RunnerReadsThroughStore)
{
    TempDir dir("runner");
    ResultStore store(dir.str(), buildFingerprint());

    auto options = quick();
    options.resultStore = &store;
    std::vector<ExperimentJob> jobs = {
        {workloads::findWorkload("counters"), core::CoreParams::baseline(),
         options, "a", nullptr},
        {workloads::findWorkload("crc"), core::CoreParams::baseline(),
         options, "b", nullptr},
    };

    ExperimentRunner runner(2);
    unsigned cached_seen = 0;
    auto first = runner.run(jobs);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 2u);
    EXPECT_EQ(store.size(), 2u);

    auto second = runner.run(
        jobs, [&](const ExperimentProgress &p) {
            if (p.cached)
                cached_seen++;
        });
    EXPECT_EQ(store.hits(), 2u);
    EXPECT_EQ(cached_seen, 2u);
    ASSERT_EQ(second.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(runResultJsonFull(first[i]),
                  runResultJsonFull(second[i]));
}

TEST(ResultStore, OracleJobsBypassStore)
{
    TempDir dir("oracle");
    ResultStore store(dir.str(), buildFingerprint());

    auto options = quick(5000);
    options.resultStore = &store;
    options.oracleSamplePeriod = 100;
    LiveValueOracle oracle;
    std::vector<ExperimentJob> jobs = {
        {workloads::findWorkload("counters"), core::CoreParams::baseline(),
         options, "oracle-job", &oracle},
    };

    ExperimentRunner runner(1);
    runner.run(jobs);
    u64 samples_first = oracle.samples();
    EXPECT_GT(samples_first, 0u);
    // The store must see neither a lookup nor an insert: a cache hit
    // would silently skip the oracle's sampling side-channel.
    EXPECT_EQ(store.hits() + store.misses(), 0u);
    EXPECT_EQ(store.size(), 0u);

    runner.run(jobs);
    EXPECT_EQ(oracle.samples(), 2 * samples_first);
    EXPECT_EQ(store.size(), 0u);
}

TEST(ResultStore, ResumeMatchesUninterrupted)
{
    // A partial pass (as if killed) followed by a full pass must give
    // the same results as one uninterrupted storeless pass.
    auto params = core::CoreParams::contentAware();
    const auto &suite = workloads::intSuite();

    auto makeJobs = [&](ResultStore *store) {
        auto options = quick();
        options.resultStore = store;
        std::vector<ExperimentJob> jobs;
        for (const auto &w : suite)
            jobs.push_back({w, params, options, w.name, nullptr});
        return jobs;
    };

    ExperimentRunner runner(2);
    auto reference = runner.run(makeJobs(nullptr));

    TempDir dir("resume");
    {
        // "Interrupted" pass: only the first third of the suite.
        ResultStore store(dir.str(), buildFingerprint());
        auto jobs = makeJobs(&store);
        jobs.resize(suite.size() / 3);
        runner.run(jobs);
    }

    ResultStore store(dir.str(), buildFingerprint());
    auto resumed = runner.run(makeJobs(&store));
    EXPECT_EQ(store.hits(), suite.size() / 3);
    ASSERT_EQ(resumed.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(runResultJsonFull(reference[i], false),
                  runResultJsonFull(resumed[i], false))
            << suite[i].name;
}

} // namespace carf::sim
