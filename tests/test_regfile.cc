/**
 * @file
 * Tests for the register file models: the flat baseline file and the
 * three-sub-file content-aware organization, including allocation
 * pressure, recovery, reconstruction invariants, and access counting.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/random.hh"
#include "regfile/baseline.hh"
#include "regfile/content_aware.hh"

namespace carf::regfile
{

namespace
{

ContentAwareParams
paperParams()
{
    ContentAwareParams p;
    p.sim = {17, 3}; // d+n = 20
    p.longEntries = 48;
    return p;
}

} // namespace

TEST(BaselineRegFile, WriteReadRelease)
{
    BaselineRegFile rf("t", 8);
    rf.write(3, 0x1234);
    EXPECT_TRUE(rf.peekLive(3));
    auto read = rf.read(3);
    EXPECT_EQ(read.value, 0x1234u);
    rf.release(3);
    EXPECT_FALSE(rf.peekLive(3));
}

TEST(BaselineRegFile, CountsAccesses)
{
    BaselineRegFile rf("t", 8);
    rf.write(0, 5);
    rf.write(1, 0x1234567890ull);
    rf.read(0);
    rf.read(0);
    const auto &counts = rf.accessCounts();
    EXPECT_EQ(counts.totalWrites(), 2u);
    EXPECT_EQ(counts.totalReads(), 2u);
}

TEST(BaselineRegFileDeathTest, ReadDeadTagPanics)
{
    BaselineRegFile rf("t", 8);
    EXPECT_DEATH(rf.read(2), "dead tag");
}

TEST(ContentAwareParams, LongPointerGeometry)
{
    ContentAwareParams p = paperParams();
    EXPECT_EQ(p.longPointerBits(), 6u);       // log2ceil(48)
    EXPECT_EQ(p.longEntryBits(), 64 - 20 + 6); // 50 bits
}

TEST(ContentAwareParamsDeathTest, PointerMustFitValueField)
{
    ContentAwareParams p;
    p.sim = {4, 1}; // d+n = 5
    p.longEntries = 112; // m = 7 > 5
    p.issueStallThreshold = 0;
    EXPECT_DEATH(p.validate(), "does not fit");
}

// Misconfigured ablations must fail loudly, not skew results silently.

TEST(ContentAwareParamsDeathTest, ZeroLongEntriesRejected)
{
    ContentAwareParams p = paperParams();
    p.longEntries = 0;
    p.issueStallThreshold = 0;
    EXPECT_DEATH(p.validate(), "at least one Long entry");
}

TEST(ContentAwareParamsDeathTest, StallThresholdAtOrAboveKRejected)
{
    ContentAwareParams p = paperParams();
    p.longEntries = 8;
    p.issueStallThreshold = 8; // would stall issue forever
    EXPECT_DEATH(p.validate(), "stall issue forever");
}

TEST(ContentAwareParamsDeathTest, DegenerateSimilaritySplitsRejected)
{
    ContentAwareParams p = paperParams();
    p.sim = {0, 3}; // d = 0
    EXPECT_DEATH(p.validate(), "bad d");
    p.sim = {17, 0}; // n = 0
    EXPECT_DEATH(p.validate(), "bad d");
    p.sim = {60, 4}; // d + n = 64: no high bits left
    EXPECT_DEATH(p.validate(), "bad d");
    p.sim = {17, 9}; // 512-entry Short file
    EXPECT_DEATH(p.validate(), "too large");
}

TEST(ContentAware, ValidParamsPassValidation)
{
    ContentAwareParams p = paperParams();
    p.validate(); // must not exit
    p.longEntries = 9;
    p.issueStallThreshold = 8; // threshold == K-1 is the legal limit
    p.validate();
}

TEST(ContentAware, SimpleValueRoundTrip)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    rf.write(0, 42);
    rf.write(1, static_cast<u64>(-42));
    EXPECT_EQ(rf.read(0).value, 42u);
    EXPECT_EQ(rf.read(0).type, ValueType::Simple);
    EXPECT_EQ(rf.read(1).value, static_cast<u64>(-42));
    EXPECT_EQ(rf.read(1).type, ValueType::Simple);
}

TEST(ContentAware, ShortValueRoundTripAfterAddressAllocation)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    u64 addr = 0x4013'8000;
    rf.noteAddress(addr);
    rf.write(2, addr + 0x40);
    auto read = rf.read(2);
    EXPECT_EQ(read.type, ValueType::Short);
    EXPECT_EQ(read.value, addr + 0x40);
}

TEST(ContentAware, LongValueRoundTrip)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    u64 value = 0xdeadbeefcafef00dull;
    auto access = rf.write(3, value);
    EXPECT_EQ(access.type, ValueType::Long);
    EXPECT_FALSE(access.stalled);
    EXPECT_EQ(rf.read(3).value, value);
    EXPECT_EQ(rf.freeLongEntries(), 47u);
    rf.release(3);
    EXPECT_EQ(rf.freeLongEntries(), 48u);
}

TEST(ContentAware, LongExhaustionStallsWrite)
{
    ContentAwareParams p = paperParams();
    p.longEntries = 2;
    p.issueStallThreshold = 0;
    ContentAwareRegFile rf("t", 16, p);
    Rng rng(1);
    rf.write(0, rng.next() | (1ull << 63));
    rf.write(1, rng.next() | (1ull << 63));
    auto access = rf.write(2, rng.next() | (1ull << 63));
    EXPECT_TRUE(access.stalled);
    EXPECT_FALSE(rf.peekLive(2));
    EXPECT_EQ(rf.longAllocStalls(), 1u);

    // Releasing a long frees an entry; the retry succeeds.
    rf.release(0);
    access = rf.write(2, 0xfeedfacecafebeefull);
    EXPECT_FALSE(access.stalled);
    EXPECT_EQ(rf.read(2).value, 0xfeedfacecafebeefull);
}

TEST(ContentAware, ForcedRecoveryOverflowsAndRetires)
{
    ContentAwareParams p = paperParams();
    p.longEntries = 1;
    p.issueStallThreshold = 0;
    ContentAwareRegFile rf("t", 16, p);
    rf.write(0, 0x1111111111111111ull);
    auto access = rf.writeForced(1, 0x2222222222222222ull);
    EXPECT_FALSE(access.stalled);
    EXPECT_EQ(rf.recoveries(), 1u);
    EXPECT_EQ(rf.read(1).value, 0x2222222222222222ull);
    // Overflow entries retire on release instead of joining the free
    // list, so capacity is not silently inflated.
    rf.release(1);
    EXPECT_EQ(rf.freeLongEntries(), 0u);
    rf.release(0);
    EXPECT_EQ(rf.freeLongEntries(), 1u);
}

TEST(ContentAware, IssueStallThreshold)
{
    ContentAwareParams p = paperParams();
    p.longEntries = 4;
    p.issueStallThreshold = 2;
    ContentAwareRegFile rf("t", 16, p);
    EXPECT_FALSE(rf.shouldStallIssue());
    rf.write(0, 0x8000000000000001ull);
    rf.write(1, 0x8000000000000002ull);
    EXPECT_TRUE(rf.shouldStallIssue()); // 2 free <= threshold
}

TEST(ContentAware, ShortEntriesProtectedWhileReferenced)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    u64 addr = 0x4013'8000;
    rf.noteAddress(addr);
    rf.write(0, addr);
    ASSERT_EQ(rf.peekType(0), ValueType::Short);
    // Many idle ROB intervals: the entry must survive because tag 0
    // still references it (reading it must keep reconstructing).
    for (int i = 0; i < 10; ++i)
        rf.onRobInterval();
    EXPECT_EQ(rf.read(0).value, addr);
    rf.release(0);
    for (int i = 0; i < 3; ++i)
        rf.onRobInterval();
    EXPECT_EQ(rf.liveShortEntries(), 0u);
}

/**
 * Regression: classifyPeek must be a pure observation. It used to
 * pass a dummy mutable index into the classifying call; now it goes
 * through the const classification overload, and no Short-file state
 * (validity, refcounts, allocation count, or the Tcur epoch bit) may
 * change.
 */
TEST(ContentAware, ClassifyPeekHasNoSideEffectsOnShortFile)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    u64 addr = 0x4013'8000;
    rf.noteAddress(addr);
    ASSERT_EQ(rf.liveShortEntries(), 1u);
    u64 allocs_before = rf.shortFile().allocations();

    // Peek every class: a resident short, a long, a simple.
    EXPECT_EQ(rf.classifyPeek(addr + 4), ValueType::Short);
    EXPECT_EQ(rf.classifyPeek(0xdeadbeef12345678ull), ValueType::Long);
    EXPECT_EQ(rf.classifyPeek(17), ValueType::Simple);

    EXPECT_EQ(rf.shortFile().allocations(), allocs_before);
    EXPECT_EQ(rf.liveShortEntries(), 1u);
    for (unsigned i = 0; i < rf.shortFile().entries(); ++i)
        EXPECT_EQ(rf.shortFile().refCount(i), 0u);

    // The entry is unreferenced and untouched; if the peek had set
    // Tcur it would survive the first interval tick. Two ticks with
    // no live references must reclaim it.
    rf.onRobInterval();
    rf.onRobInterval();
    EXPECT_EQ(rf.liveShortEntries(), 0u);
}

/**
 * §3.2 recovery path, directly: repeated writeForced under Long-file
 * exhaustion must grow the emergency overflow pool, count a recovery
 * each time, and leave freeLongEntries()/liveLongEntries() consistent
 * once everything is released.
 */
TEST(ContentAware, RecoveryGrowsOverflowPoolAndStaysConsistent)
{
    ContentAwareParams p = paperParams();
    p.longEntries = 2;
    p.issueStallThreshold = 0;
    ContentAwareRegFile rf("t", 16, p);

    rf.write(0, 0x1111111111111111ull);
    rf.write(1, 0x2222222222222222ull);
    EXPECT_EQ(rf.freeLongEntries(), 0u);
    EXPECT_EQ(rf.overflowLongEntries(), 0u);

    // Forced writes past exhaustion: one overflow entry per recovery.
    for (unsigned i = 0; i < 3; ++i) {
        u64 value = 0x3333333333333300ull + i;
        auto access = rf.writeForced(2 + i, value);
        EXPECT_FALSE(access.stalled);
        EXPECT_EQ(access.type, ValueType::Long);
        EXPECT_EQ(rf.recoveries(), i + 1);
        EXPECT_EQ(rf.overflowLongEntries(), i + 1);
        EXPECT_EQ(rf.read(2 + i).value, value);
        EXPECT_EQ(rf.checkInvariants(), "");
    }
    EXPECT_EQ(rf.liveLongEntries(), 5u);

    // A forced write with a free entry available must NOT recover.
    rf.release(0);
    EXPECT_EQ(rf.freeLongEntries(), 1u);
    auto access = rf.writeForced(9, 0x4444444444444444ull);
    EXPECT_FALSE(access.stalled);
    EXPECT_EQ(rf.recoveries(), 3u);
    EXPECT_EQ(rf.overflowLongEntries(), 3u);

    // Releasing everything retires the overflow entries permanently
    // and returns exactly the K real entries to the free list.
    for (u32 tag : {1u, 2u, 3u, 4u, 9u})
        rf.release(tag);
    EXPECT_EQ(rf.freeLongEntries(), 2u);
    EXPECT_EQ(rf.liveLongEntries(), 0u);
    EXPECT_EQ(rf.checkInvariants(), "");
}

/** The invariant checker itself must catch planted corruption. */
TEST(ContentAware, CheckInvariantsCatchesRefcountCorruption)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    u64 addr = 0x4013'8000;
    rf.noteAddress(addr);
    rf.write(0, addr + 8);
    ASSERT_EQ(rf.peekType(0), ValueType::Short);
    ASSERT_EQ(rf.checkInvariants(), "");

    // A leaked reference (e.g.\ a missed dropRef elsewhere) breaks
    // the slot's books.
    rf.debugShortFile().addRef(rf.peekSubIndex(0));
    std::string err = rf.checkInvariants();
    EXPECT_NE(err.find("refcount"), std::string::npos) << err;
}

TEST(ContentAware, WriteCountsByType)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    rf.noteAddress(0x4013'8000);
    rf.write(0, 1);                      // simple
    rf.write(1, 0x4013'8008);            // short
    rf.write(2, 0xdeadbeef12345678ull);  // long
    const auto &counts = rf.accessCounts();
    EXPECT_EQ(counts.writes[0], 1u);
    EXPECT_EQ(counts.writes[1], 1u);
    EXPECT_EQ(counts.writes[2], 1u);
    EXPECT_EQ(counts.shortProbeReads, 3u); // one WR1 probe per write
}

TEST(ContentAwareDeathTest, DoubleWritePanics)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    rf.write(0, 1);
    EXPECT_DEATH(rf.write(0, 2), "double write");
}

TEST(ContentAwareDeathTest, ReadDeadTagPanics)
{
    ContentAwareRegFile rf("t", 16, paperParams());
    EXPECT_DEATH(rf.read(5), "dead tag");
}

/**
 * Property: for any value and any geometry, a write that completes
 * reconstructs the exact 64-bit value on read. (The implementation
 * also self-checks; this drives it across the full d+n sweep and all
 * three value types, including Short hits after address warm-up.)
 */
class RoundTripProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(RoundTripProperty, WriteThenReadIsIdentity)
{
    auto [dn, k] = GetParam();
    ContentAwareParams p;
    p.sim = {dn - 3, 3};
    p.longEntries = k;
    p.validate();
    ContentAwareRegFile rf("t", 64, p);
    Rng rng(dn * 31 + k);

    // Warm the Short file with a few address groups.
    std::vector<u64> bases;
    for (int i = 0; i < 6; ++i) {
        u64 base = (rng.next() << 14) | (1ull << 62);
        rf.noteAddress(base);
        bases.push_back(base);
    }

    u32 next_tag = 0;
    std::vector<std::pair<u32, u64>> live;
    for (int i = 0; i < 3000; ++i) {
        if (!live.empty() && rng.chance(0.45)) {
            size_t victim = rng.nextBounded(live.size());
            EXPECT_EQ(rf.read(live[victim].first).value,
                      live[victim].second);
            rf.release(live[victim].first);
            live.erase(live.begin() + victim);
            continue;
        }
        if (live.size() >= 60)
            continue;
        // Pick a value class.
        u64 value;
        switch (rng.nextBounded(3)) {
          case 0: // simple-ish
            value = static_cast<u64>(rng.nextRange(-(1 << 18), 1 << 18));
            break;
          case 1: // near a short base
            value = bases[rng.nextBounded(bases.size())] +
                    rng.nextBounded(1 << 12);
            break;
          default: // wide
            value = rng.next();
            break;
        }
        u32 tag = next_tag;
        next_tag = (next_tag + 1) % 64;
        bool in_use = false;
        for (auto &[t, v] : live)
            in_use |= t == tag;
        if (in_use)
            continue;
        auto access = rf.write(tag, value);
        if (access.stalled)
            continue; // long pressure: skip (tag stays dead)
        live.emplace_back(tag, value);
    }
    for (auto &[tag, value] : live)
        EXPECT_EQ(rf.read(tag).value, value);
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, RoundTripProperty,
    ::testing::Combine(::testing::Values(8u, 12u, 16u, 20u, 24u, 28u,
                                         32u),
                       ::testing::Values(16u, 48u, 112u)));

} // namespace carf::regfile
