/**
 * @file
 * Fast-path engine test wall (DESIGN.md §4.8).
 *
 * The exact idle-cycle skip claims bit-identity, so the anchor test
 * compares the full-fidelity RunResult serialization of a stepped and
 * a skipping run for EVERY registered workload on EVERY registered
 * register-file backend. Around it: cycle-accounting conservation
 * (the buckets sum exactly to cycles on solo, SMT, and sampled runs),
 * evidence that the skip actually fires on the stall kernels, the
 * SMARTS sampling estimator's determinism and pinned accuracy, the
 * SimOptions::validate() rejection matrix, and result-store key
 * separation between sampled and full runs.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "common/fingerprint.hh"
#include "core/pipeline.hh"
#include "core/smt.hh"
#include "regfile/registry.hh"
#include "sim/reporting.hh"
#include "sim/result_store.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace carf
{

namespace
{

/** Solo run through the public facade with the skip on or off. */
core::RunResult
soloRun(const workloads::Workload &workload,
        const core::CoreParams &params, u64 insts, bool fast_path)
{
    sim::SimOptions options;
    options.maxInsts = insts;
    options.fastPath = fast_path;
    return sim::simulate(workload, params, options);
}

u64
bucketTotal(const core::CycleAccounting &acc)
{
    return acc.total();
}

class FastPathDifferential
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

std::string
fastPathCaseName(
    const ::testing::TestParamInfo<std::tuple<std::string, std::string>>
        &info)
{
    std::string name =
        std::get<0>(info.param) + "_" + std::get<1>(info.param);
    for (char &c : name)
        if (c == '-')
            c = '_';
    return name;
}

} // namespace

TEST_P(FastPathDifferential, SkippingRunIsBitIdenticalToStepped)
{
    auto [workload_name, backend] = GetParam();
    const u64 insts = 15000;
    const auto &workload = workloads::findWorkload(workload_name);
    core::CoreParams params = core::CoreParams::forBackend(backend);

    core::RunResult stepped = soloRun(workload, params, insts, false);
    core::RunResult skipping = soloRun(workload, params, insts, true);

    EXPECT_EQ(stepped.fastPathSkips, 0u);
    EXPECT_EQ(stepped.fastPathSkippedCycles, 0u);
    // Full-fidelity comparison, host times excluded. The fastPath*
    // counters are deliberately outside the serialization (like host
    // times, they describe how the run was executed, not what it
    // computed), so this asserts every simulated statistic at once.
    EXPECT_EQ(sim::runResultJsonFull(stepped, false),
              sim::runResultJsonFull(skipping, false));

    // Conservation on both runs: every cycle lands in exactly one
    // bucket.
    EXPECT_EQ(bucketTotal(stepped.cycleAccounting), stepped.cycles);
    EXPECT_EQ(bucketTotal(skipping.cycleAccounting), skipping.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsTimesBackends, FastPathDifferential,
    ::testing::Combine(::testing::ValuesIn(allWorkloadNames()),
                       ::testing::ValuesIn(regfile::registry().names())),
    fastPathCaseName);

TEST(FastPath, SkipsActuallyFireOnStallKernels)
{
    // Guards against the skip silently degenerating to stepping
    // (quiescentUntil returning 0 everywhere would pass the
    // differential wall trivially). mem_chase serializes on off-chip
    // misses, so the overwhelming majority of its cycles must be
    // skipped, in big strides.
    const auto &workload = workloads::findWorkload("mem_chase");
    core::RunResult run = soloRun(
        workload, core::CoreParams::contentAware(20), 100000, true);
    ASSERT_GT(run.cycles, 0u);
    EXPECT_GT(run.fastPathSkips, 0u);
    EXPECT_GT(run.fastPathSkippedCycles, run.cycles / 2);
    EXPECT_GT(run.fastPathSkippedCycles / run.fastPathSkips, 10u);
    // And the accounting must say why: memory waits dominate.
    EXPECT_GT(
        run.cycleAccounting.counts[core::CycleAccounting::MemWait],
        run.cycles / 2);
}

TEST(FastPath, SkipsFireOnTheIcacheSide)
{
    const auto &workload = workloads::findWorkload("fetch_wall");
    core::RunResult run = soloRun(
        workload, core::CoreParams::contentAware(20), 100000, true);
    EXPECT_GT(run.fastPathSkippedCycles, run.cycles / 10);
    EXPECT_GT(
        run.cycleAccounting.counts[core::CycleAccounting::IcacheWait],
        0u);
}

TEST(CycleAccounting, SumsToCyclesOnSmtRuns)
{
    const u64 insts = 20000;
    core::CoreParams params = core::CoreParams::contentAware(20);
    params.smtThreads = 2;
    sim::SimOptions options;
    options.maxInsts = insts;
    options.smtMix = {"counters"};
    core::RunResult agg = sim::simulateSmt(
        workloads::findWorkload("pointer_chase"), params, options);
    // The aggregate carries the machine-level accounting: one bucket
    // per machine cycle, so it sums to the (shared) cycle count, not
    // to the per-thread sum.
    EXPECT_EQ(bucketTotal(agg.cycleAccounting), agg.cycles);
}

TEST(CycleAccounting, NamesCoverEveryBucket)
{
    for (unsigned b = 0; b < core::CycleAccounting::NumBuckets; ++b) {
        std::string name = core::CycleAccounting::bucketName(b);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
}

TEST(Sampling, DeterministicAndConserving)
{
    const auto &workload = workloads::findWorkload("graph_walk");
    core::CoreParams params = core::CoreParams::contentAware(20);
    sim::SimOptions options;
    options.maxInsts = 200000;
    options.lockstep = false;
    options.samplingPeriod = 10000;

    core::RunResult a = sim::simulateSampled(workload, params, options);
    core::RunResult b = sim::simulateSampled(workload, params, options);
    EXPECT_EQ(sim::runResultJsonFull(a, false),
              sim::runResultJsonFull(b, false));

    // Measured-window cycles only, and the buckets cover exactly
    // those cycles.
    EXPECT_EQ(bucketTotal(a.cycleAccounting), a.cycles);
    EXPECT_EQ(a.samplingPeriod, 10000u);
    EXPECT_GT(a.samplingIntervals, 10u);
    EXPECT_GT(a.samplingSkippedInsts, 0u);
    EXPECT_GT(a.samplingIpcCi95, 0.0);
}

TEST(Sampling, PinnedAccuracyOnIntKernels)
{
    // Accuracy regression anchor: the sampled IPC estimate for two
    // memory-bound INT kernels must stay within 5% of the full
    // detailed run at this interval shape (measured ~0.0-1.2% when
    // the estimator landed; see BENCH fastpath). A methodology bug —
    // stale warm state, mis-placed snapshots, wrong denominators —
    // moves these by far more than 5%.
    core::CoreParams params = core::CoreParams::contentAware(20);
    for (const char *name : {"bst_search", "graph_walk"}) {
        const auto &workload = workloads::findWorkload(name);
        sim::SimOptions full;
        full.maxInsts = 200000;
        core::RunResult f = sim::simulate(workload, params, full);

        sim::SimOptions sampled = full;
        sampled.lockstep = false;
        sampled.samplingPeriod = 10000;
        core::RunResult s =
            sim::simulateSampled(workload, params, sampled);
        ASSERT_GT(f.ipc, 0.0);
        EXPECT_NEAR(s.ipc, f.ipc, f.ipc * 0.05) << name;
    }
}

TEST(Sampling, StoreKeysSeparateSampledFromFullRuns)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
                   ("carf_fastpath_key_test_" +
                    std::to_string(::getpid()));
    fs::remove_all(dir);
    {
        sim::ResultStore store(dir.string(), buildFingerprint());
        core::CoreParams params = core::CoreParams::contentAware(20);
        sim::SimOptions full;
        full.maxInsts = 50000;

        sim::SimOptions sampled = full;
        sampled.lockstep = false;
        sampled.samplingPeriod = 10000;

        std::string key_full = store.key("w", params, full);
        std::string key_sampled = store.key("w", params, sampled);
        EXPECT_NE(key_full, key_sampled);

        // A different interval shape is a different estimate.
        sim::SimOptions sampled2 = sampled;
        sampled2.samplingMeasure += 500;
        EXPECT_NE(store.key("w", params, sampled2), key_sampled);

        // The skip is bit-identical by contract, so it must NOT key;
        // and with sampling off the interval-shape knobs are inert,
        // so they must not key either.
        sim::SimOptions stepped = full;
        stepped.fastPath = false;
        EXPECT_EQ(store.key("w", params, stepped), key_full);
        sim::SimOptions inert = full;
        inert.samplingWarmup += 123;
        EXPECT_EQ(store.key("w", params, inert), key_full);
    }
    fs::remove_all(dir);
}

TEST(SamplingDeathTest, ValidateRejectsIncompatibleOptions)
{
    const auto &workload = workloads::findWorkload("counters");
    core::CoreParams params = core::CoreParams::contentAware(20);

    sim::SimOptions with_oracle;
    with_oracle.samplingPeriod = 10000;
    with_oracle.lockstep = false;
    with_oracle.oracleSamplePeriod = 100;
    EXPECT_DEATH(with_oracle.validate(), "live-value oracle");

    sim::SimOptions with_lockstep;
    with_lockstep.samplingPeriod = 10000;
    with_lockstep.lockstep = true;
    EXPECT_DEATH(with_lockstep.validate(), "lockstep");

    sim::SimOptions with_ff;
    with_ff.samplingPeriod = 10000;
    with_ff.lockstep = false;
    with_ff.fastForward = 1000;
    EXPECT_DEATH(with_ff.validate(), "fastForward");

    sim::SimOptions zero_measure;
    zero_measure.samplingPeriod = 10000;
    zero_measure.lockstep = false;
    zero_measure.samplingMeasure = 0;
    EXPECT_DEATH(zero_measure.validate(), "samplingMeasure");

    sim::SimOptions oversized;
    oversized.samplingPeriod = 1000;
    oversized.lockstep = false;
    oversized.samplingWarmup = 900;
    oversized.samplingMeasure = 200;
    EXPECT_DEATH(oversized.validate(), "exceeds samplingPeriod");

    // The wrong entry point for a sampled run is rejected, as is
    // sampling on a multi-threaded core.
    sim::SimOptions sampled;
    sampled.maxInsts = 20000;
    sampled.samplingPeriod = 10000;
    sampled.lockstep = false;
    EXPECT_DEATH((void)sim::simulate(workload, params, sampled),
                 "simulateSampled");
    core::CoreParams smt = params;
    smt.smtThreads = 2;
    EXPECT_DEATH((void)sim::simulateSampled(workload, smt, sampled),
                 "solo-pipeline");
    sim::SimOptions unsampled;
    EXPECT_DEATH((void)sim::simulateSampled(workload, params,
                                            unsampled),
                 "samplingPeriod");
}

TEST(FastPath, LockstepLanesHonourTheToggle)
{
    // simulateGroup propagates fastPath to every lane; both settings
    // must produce the serial results (which the lockstep wall
    // already pins), so compare the two group runs directly.
    const auto &workload = workloads::findWorkload("mem_chase");
    std::vector<core::CoreParams> configs = {
        core::CoreParams::contentAware(20),
        core::CoreParams::baseline()};
    sim::SimOptions on;
    on.maxInsts = 20000;
    sim::SimOptions off = on;
    off.fastPath = false;
    auto fast = sim::simulateGroup(workload, configs, on);
    auto slow = sim::simulateGroup(workload, configs, off);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i)
        EXPECT_EQ(sim::runResultJsonFull(fast[i], false),
                  sim::runResultJsonFull(slow[i], false));
}

} // namespace carf
