/**
 * @file
 * Tests for the register-file model-checking subsystem: the shadow
 * oracle, the seed-file format, the biased generator, bounded
 * stateful fuzz runs over the standard configurations, and the
 * counterexample shrinker — including the required demonstration that
 * an injected Short-file refcount bug is caught, shrunk, and
 * replayable.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "regfile/content_aware.hh"
#include "sim/reporting.hh"
#include "sim/simulator.hh"
#include "testing/fuzzer.hh"

namespace carf::testing
{

namespace
{

FuzzConfig
paperConfig()
{
    // Defaults: content-aware, d=17 n=3 K=48, 64 tags.
    return FuzzConfig{};
}

} // namespace

TEST(ShadowRegFile, MirrorsWritesAndReleases)
{
    ShadowRegFile shadow(8, 8, 4);
    shadow.noteWrite(3, 0x1234, regfile::ValueType::Simple, 0);
    EXPECT_TRUE(shadow.live(3));
    EXPECT_EQ(shadow.value(3), 0x1234u);
    shadow.noteWrite(4, 0xdead, regfile::ValueType::Short, 2);
    EXPECT_EQ(shadow.shortRefs(2), 1u);
    shadow.noteWrite(5, 0xbeef, regfile::ValueType::Long, 1);
    EXPECT_EQ(shadow.freeLongEntries(), 3u);
    EXPECT_EQ(shadow.liveLongEntries(), 1u);

    shadow.noteRelease(4);
    EXPECT_EQ(shadow.shortRefs(2), 0u);
    shadow.noteRelease(5);
    EXPECT_EQ(shadow.freeLongEntries(), 4u);
    shadow.noteRelease(5); // releasing a dead tag is a no-op
    EXPECT_EQ(shadow.freeLongEntries(), 4u);
}

TEST(ShadowRegFile, OverflowLongEntriesBypassFreeList)
{
    ShadowRegFile shadow(8, 8, 2);
    // Index >= K marks a pseudo-deadlock overflow entry.
    shadow.noteWrite(0, 0x1, regfile::ValueType::Long, 5);
    EXPECT_EQ(shadow.freeLongEntries(), 2u);
    EXPECT_EQ(shadow.liveLongEntries(), 1u);
    shadow.noteRelease(0);
    EXPECT_EQ(shadow.freeLongEntries(), 2u);
}

TEST(ShadowRegFile, CrossChecksContentAwareFile)
{
    FuzzConfig config = paperConfig();
    auto file = config.makeFile("t");
    ShadowRegFile shadow(config.entries, config.ca.sim.shortEntries(),
                         config.ca.longEntries);
    auto *ca = dynamic_cast<regfile::ContentAwareRegFile *>(file.get());
    ASSERT_NE(ca, nullptr);

    auto access = file->write(7, 0xdeadbeefcafef00dull);
    shadow.noteWrite(7, 0xdeadbeefcafef00dull, access.type,
                     ca->peekSubIndex(7));
    EXPECT_EQ(shadow.check(*file), "");

    // A divergence the oracle must flag: drop the implementation's
    // value without telling the oracle.
    file->release(7);
    EXPECT_NE(shadow.check(*file), "");
}

TEST(FuzzCase, SeedFileRoundTrip)
{
    FuzzCase original;
    original.config.backend = "content-aware";
    original.config.entries = 32;
    original.config.portRed.sharedReadPorts = 3;
    original.config.ca.sim = {14, 4};
    original.config.ca.longEntries = 12;
    original.config.ca.issueStallThreshold = 3;
    original.config.ca.associativeShort = true;
    original.ops = {
        {FuzzOpKind::Write, 3, 0xdeadbeefull},
        {FuzzOpKind::WriteForced, 4, 0xffffffffffffffffull},
        {FuzzOpKind::Read, 3, 0},
        {FuzzOpKind::Release, 3, 0},
        {FuzzOpKind::NoteAddress, 0, 0x40138000ull},
        {FuzzOpKind::RobInterval, 0, 0},
        {FuzzOpKind::Reset, 0, 0},
        {FuzzOpKind::InjectShortRefLeak, 0, 5},
    };

    std::string error;
    auto parsed = FuzzCase::parse(original.serialize(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->config.backend, original.config.backend);
    EXPECT_EQ(parsed->config.entries, original.config.entries);
    EXPECT_EQ(parsed->config.portRed.sharedReadPorts,
              original.config.portRed.sharedReadPorts);
    EXPECT_EQ(parsed->config.ca.sim.d(), original.config.ca.sim.d());
    EXPECT_EQ(parsed->config.ca.sim.n(), original.config.ca.sim.n());
    EXPECT_EQ(parsed->config.ca.longEntries,
              original.config.ca.longEntries);
    EXPECT_EQ(parsed->config.ca.issueStallThreshold,
              original.config.ca.issueStallThreshold);
    EXPECT_EQ(parsed->config.ca.associativeShort,
              original.config.ca.associativeShort);
    EXPECT_EQ(parsed->ops, original.ops);
}

TEST(FuzzCase, ParseRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(FuzzCase::parse("not a seed file", &error));
    EXPECT_NE(error.find("header"), std::string::npos);

    EXPECT_FALSE(FuzzCase::parse("carf-fuzz-seed v1\nbogus 3\n",
                                 &error));
    EXPECT_FALSE(
        FuzzCase::parse("carf-fuzz-seed v1\nops 2\nW 1 0x5\n", &error));
    EXPECT_NE(error.find("expected 2 ops"), std::string::npos);
}

TEST(FuzzGenerator, DeterministicAndCoversAllOps)
{
    FuzzConfig config = paperConfig();
    FuzzGenOptions options;
    options.ops = 5000;
    Rng a(99), b(99);
    auto ops_a = generateOps(config, a, options);
    auto ops_b = generateOps(config, b, options);
    EXPECT_EQ(ops_a, ops_b);

    unsigned seen[8] = {};
    for (const FuzzOp &op : ops_a)
        ++seen[static_cast<unsigned>(op.kind)];
    EXPECT_GT(seen[static_cast<unsigned>(FuzzOpKind::Write)], 0u);
    EXPECT_GT(seen[static_cast<unsigned>(FuzzOpKind::WriteForced)], 0u);
    EXPECT_GT(seen[static_cast<unsigned>(FuzzOpKind::Read)], 0u);
    EXPECT_GT(seen[static_cast<unsigned>(FuzzOpKind::Release)], 0u);
    EXPECT_GT(seen[static_cast<unsigned>(FuzzOpKind::NoteAddress)], 0u);
    EXPECT_GT(seen[static_cast<unsigned>(FuzzOpKind::RobInterval)], 0u);
    // Fault injection is never generated, only hand-inserted by tests.
    EXPECT_EQ(seen[static_cast<unsigned>(FuzzOpKind::InjectShortRefLeak)],
              0u);
}

/**
 * Bounded fuzz over the standard configurations — every backend in
 * the registry plus the associative-Short and alloc-on-any-result
 * content-aware ablations: >=10k ops each must pass every per-step
 * check. A newly registered backend joins this sweep automatically.
 */
TEST(BoundedFuzz, StandardConfigsPassTenThousandOps)
{
    FuzzGenOptions options;
    options.ops = 10000;
    auto configs = standardFuzzConfigs();
    ASSERT_GE(configs.size(),
              regfile::registry().names().size() + 2);
    for (size_t c = 0; c < configs.size(); ++c) {
        for (u64 seed : {u64{1}, u64{2}}) {
            FuzzRoundResult result =
                fuzzOneSeed(configs[c], seed * 1000 + c, options);
            EXPECT_FALSE(result.failure.has_value())
                << configs[c].backend << " config "
                << c << " seed " << seed << ": op "
                << result.failure->opIndex << ": "
                << result.failure->message;
            EXPECT_EQ(result.opsRun, options.ops);
        }
    }
}

/**
 * Multithreaded shadow-oracle mode: N interleaved op streams against
 * the one shared file and one shared oracle. Short refcounts and Long
 * free-list integrity must hold across every interleaving, for the
 * content-aware file and the whole backend zoo.
 */
TEST(MultiThreadFuzz, InterleavedStreamsPassTenThousandOps)
{
    FuzzGenOptions options;
    options.ops = 10000;
    for (unsigned threads : {2u, 4u}) {
        for (FuzzConfig config : standardFuzzConfigs()) {
            config.threads = threads;
            FuzzRoundResult result =
                fuzzOneSeed(config, 4242 + threads, options);
            EXPECT_FALSE(result.failure.has_value())
                << config.backend << " T=" << threads << ": op "
                << result.failure->opIndex << ": "
                << result.failure->message;
            EXPECT_EQ(result.opsRun, options.ops);
        }
    }
}

/** Threaded generation is deterministic and actually interleaves. */
TEST(MultiThreadFuzz, GeneratorIsDeterministicAndInterleaves)
{
    FuzzConfig config = paperConfig();
    config.threads = 4;
    FuzzGenOptions options;
    options.ops = 4000;
    Rng a(7), b(7);
    auto ops_a = generateOps(config, a, options);
    auto ops_b = generateOps(config, b, options);
    EXPECT_EQ(ops_a, ops_b);

    // Every thread contributes, and adjacent ops switch threads often
    // enough that this is a genuine interleaving, not concatenation.
    unsigned per_thread[4] = {};
    unsigned switches = 0;
    for (size_t i = 0; i < ops_a.size(); ++i) {
        ASSERT_LT(ops_a[i].tid, 4u);
        ++per_thread[ops_a[i].tid];
        if (i && ops_a[i].tid != ops_a[i - 1].tid)
            ++switches;
    }
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_GT(per_thread[t], options.ops / 8);
    EXPECT_GT(switches, static_cast<unsigned>(ops_a.size() / 4));
}

/** Seed files round-trip the thread dimension. */
TEST(MultiThreadFuzz, SeedFileRoundTripsThreads)
{
    FuzzCase original;
    original.config = paperConfig();
    original.config.threads = 3;
    original.ops = {
        {FuzzOpKind::Write, 3, 0xdeadull, 0},
        {FuzzOpKind::Write, 17, 0xbeefull, 1},
        {FuzzOpKind::Read, 17, 0, 2},
        {FuzzOpKind::Release, 3, 0, 1},
    };
    std::string error;
    auto parsed = FuzzCase::parse(original.serialize(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->config.threads, 3u);
    EXPECT_EQ(parsed->ops, original.ops);
}

/** ddmin shrinking stays sound on interleaved multithreaded cases. */
TEST(MultiThreadFuzz, InjectedLeakIsCaughtAndShrunk)
{
    FuzzConfig config = paperConfig();
    config.threads = 4;
    Rng rng(77);
    FuzzGenOptions options;
    options.ops = 2000;
    FuzzCase fuzz_case{config, generateOps(config, rng, options)};
    fuzz_case.ops.insert(fuzz_case.ops.begin() + 1000,
                         FuzzOp{FuzzOpKind::InjectShortRefLeak, 0, 3, 2});

    auto failure = runCase(fuzz_case);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->op.kind, FuzzOpKind::InjectShortRefLeak);

    FuzzCase minimal = shrinkCase(fuzz_case);
    ASSERT_EQ(minimal.ops.size(), 1u);
    EXPECT_EQ(minimal.ops[0].kind, FuzzOpKind::InjectShortRefLeak);

    // The shrunk seed file replays to the same failure.
    std::string error;
    auto replayed = FuzzCase::parse(minimal.serialize(), &error);
    ASSERT_TRUE(replayed.has_value()) << error;
    ASSERT_TRUE(runCase(*replayed).has_value());
}

/** Tiny Long file: the stall/recovery edges must hold up under fuzz. */
TEST(BoundedFuzz, LongPressureConfigPasses)
{
    FuzzConfig config = paperConfig();
    config.ca.longEntries = 6;
    config.ca.issueStallThreshold = 2;
    config.entries = 32;
    FuzzGenOptions options;
    options.ops = 10000;
    options.exhaustionChance = 0.02;
    FuzzRoundResult result = fuzzOneSeed(config, 77, options);
    EXPECT_FALSE(result.failure.has_value())
        << "op " << result.failure->opIndex << ": "
        << result.failure->message;
}

/** The biased generator must actually exercise all three value types. */
TEST(BoundedFuzz, ExercisesAllValueTypes)
{
    FuzzConfig config = paperConfig();
    Rng rng(5);
    FuzzGenOptions options;
    options.ops = 10000;
    FuzzCase fuzz_case{config, generateOps(config, rng, options)};
    // reset() zeroes the access counters; drop resets so the counts
    // cover the whole run (any subsequence is executable).
    std::erase_if(fuzz_case.ops, [](const FuzzOp &op) {
        return op.kind == FuzzOpKind::Reset;
    });

    FuzzHarness harness(config);
    for (const FuzzOp &op : fuzz_case.ops)
        ASSERT_EQ(harness.step(op), "");
    const auto &counts = harness.file().accessCounts();
    EXPECT_GT(counts.writes[0], 0u) << "no simple writes";
    EXPECT_GT(counts.writes[1], 0u) << "no short writes";
    EXPECT_GT(counts.writes[2], 0u) << "no long writes";
}

/**
 * The acceptance demonstration: corrupt a Short-file reference count
 * mid-sequence and require the harness to (a) detect it, (b) shrink
 * the counterexample to the minimal op sequence, and (c) emit a seed
 * file that replays to the same failure.
 */
TEST(InjectedBug, ShortRefLeakIsCaughtShrunkAndReplayable)
{
    FuzzConfig config = paperConfig();
    Rng rng(1234);
    FuzzGenOptions options;
    options.ops = 2000;
    FuzzCase fuzz_case{config, generateOps(config, rng, options)};
    // A missed dropRef / spurious addRef, planted mid-stream.
    fuzz_case.ops.insert(fuzz_case.ops.begin() + 1000,
                         FuzzOp{FuzzOpKind::InjectShortRefLeak, 0, 3});

    auto failure = runCase(fuzz_case);
    ASSERT_TRUE(failure.has_value());
    EXPECT_EQ(failure->opIndex, 1000u);
    EXPECT_EQ(failure->op.kind, FuzzOpKind::InjectShortRefLeak);

    // Shrinking must strip all 2000 benign ops.
    FuzzCase minimal = shrinkCase(fuzz_case);
    ASSERT_EQ(minimal.ops.size(), 1u);
    EXPECT_EQ(minimal.ops[0].kind, FuzzOpKind::InjectShortRefLeak);

    // The emitted seed file replays deterministically to a failure.
    std::string error;
    auto replayed = FuzzCase::parse(minimal.serialize(), &error);
    ASSERT_TRUE(replayed.has_value()) << error;
    auto replay_failure = runCase(*replayed);
    ASSERT_TRUE(replay_failure.has_value());
    EXPECT_EQ(replay_failure->opIndex, 0u);
    EXPECT_NE(replay_failure->message.find("ref"), std::string::npos);
}

/** Shrinking is sound for failures that need supporting context ops. */
TEST(InjectedBug, ShrinkKeepsRequiredContext)
{
    FuzzConfig config = paperConfig();
    FuzzCase fuzz_case;
    fuzz_case.config = config;
    // 100 benign simple writes, then an injected leak on slot 2.
    for (u32 i = 0; i < 100; ++i)
        fuzz_case.ops.push_back(
            {FuzzOpKind::Write, i % config.entries, i});
    fuzz_case.ops.push_back(
        {FuzzOpKind::InjectShortRefLeak, 0, 2});

    FuzzCase minimal = shrinkCase(fuzz_case);
    ASSERT_EQ(minimal.ops.size(), 1u);
    EXPECT_EQ(minimal.ops[0].kind, FuzzOpKind::InjectShortRefLeak);

    // And a non-failing case shrinks to itself, untouched.
    FuzzCase passing;
    passing.config = config;
    passing.ops = {{FuzzOpKind::Write, 0, 42}};
    EXPECT_EQ(shrinkCase(passing).ops.size(), 1u);
}

/**
 * The fuzzer's bounded config set — every registered backend plus the
 * content-aware ablations — replayed through the config-parallel
 * lockstep engine: every register-file variant the oracle
 * model-checks must also be bit-identical between grouped and solo
 * full-pipeline simulation.
 */
TEST(BoundedFuzz, StandardConfigSetLockstepMatchesSerial)
{
    std::vector<core::CoreParams> configs;
    for (const FuzzConfig &fc : standardFuzzConfigs()) {
        auto params = core::CoreParams::forBackend(fc.backend);
        params.ca = fc.ca;
        params.portRed = fc.portRed;
        configs.push_back(params);
    }
    ASSERT_GE(configs.size(), 4u);

    sim::SimOptions options;
    options.maxInsts = 15000;
    auto sans_time = [](const core::RunResult &r) {
        std::string json = sim::runResultJson(r);
        auto pos = json.find(",\"wall_seconds\":");
        EXPECT_NE(pos, std::string::npos);
        return json.substr(0, pos) + "}";
    };

    for (const char *name : {"hash_table", "daxpy"}) {
        const auto &w = workloads::findWorkload(name);
        auto grouped = sim::simulateGroup(w, configs, options);
        ASSERT_EQ(grouped.size(), configs.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            auto serial = sim::simulate(w, configs[i], options);
            EXPECT_EQ(sans_time(grouped[i]), sans_time(serial))
                << name << " config " << i;
            EXPECT_EQ(grouped[i].issueStallCycles,
                      serial.issueStallCycles)
                << name << " config " << i;
        }
    }
}

/** Replay of a failing case is bit-identical run to run. */
TEST(FuzzDeterminism, SameSeedSameOutcome)
{
    FuzzConfig config = paperConfig();
    config.ca.longEntries = 6;
    config.ca.issueStallThreshold = 1;
    FuzzGenOptions options;
    options.ops = 4000;
    options.exhaustionChance = 0.02;
    FuzzRoundResult a = fuzzOneSeed(config, 31337, options);
    FuzzRoundResult b = fuzzOneSeed(config, 31337, options);
    EXPECT_EQ(a.opsRun, b.opsRun);
    EXPECT_EQ(a.failure.has_value(), b.failure.has_value());
}

} // namespace carf::testing
