/**
 * @file
 * Tests for the core's bookkeeping structures: rename map/free list,
 * ROB, issue queues, LSQ (memory dependence), and bypass accounting.
 */

#include <gtest/gtest.h>

#include "core/bypass.hh"
#include "core/core_stats.hh"
#include "core/issue_queue.hh"
#include "core/lsq.hh"
#include "core/rename.hh"
#include "core/rob.hh"

namespace carf::core
{

TEST(FreeList, AllocatesAllNonReservedTags)
{
    FreeList fl(8, 2);
    EXPECT_EQ(fl.freeCount(), 6u);
    std::vector<bool> seen(8, false);
    while (!fl.empty()) {
        u32 tag = fl.allocate();
        EXPECT_GE(tag, 2u);
        EXPECT_LT(tag, 8u);
        EXPECT_FALSE(seen[tag]);
        seen[tag] = true;
    }
}

TEST(FreeList, ReleaseMakesTagAvailable)
{
    FreeList fl(4, 3);
    u32 tag = fl.allocate();
    EXPECT_TRUE(fl.empty());
    fl.release(tag);
    EXPECT_EQ(fl.allocate(), tag);
}

TEST(RenameMap, InitialIdentityMapping)
{
    RenameMap map(32, 112);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(map.lookup(i), i);
    EXPECT_EQ(map.freeTags(), 80u);
}

TEST(RenameMap, RenameReturnsOldMapping)
{
    RenameMap map(32, 40);
    u32 old_tag = 99;
    u32 fresh = map.rename(5, old_tag);
    EXPECT_EQ(old_tag, 5u);
    EXPECT_EQ(map.lookup(5), fresh);
    EXPECT_GE(fresh, 32u);

    u32 old2 = 0;
    u32 fresh2 = map.rename(5, old2);
    EXPECT_EQ(old2, fresh);
    EXPECT_EQ(map.lookup(5), fresh2);
}

TEST(RenameMap, ExhaustionAndRecycling)
{
    RenameMap map(2, 4);
    u32 old_tag;
    map.rename(0, old_tag);
    map.rename(1, old_tag);
    EXPECT_FALSE(map.canRename());
    map.releaseTag(0);
    EXPECT_TRUE(map.canRename());
}

TEST(Rob, FifoOrderAndCapacity)
{
    Rob rob(2);
    emu::DynOp op;
    op.seq = 1;
    rob.push(op);
    op.seq = 2;
    rob.push(op);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().op.seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head().op.seq, 2u);
    EXPECT_FALSE(rob.full());
}

TEST(RobDeathTest, OverflowPanics)
{
    Rob rob(1);
    emu::DynOp op;
    rob.push(op);
    EXPECT_DEATH(rob.push(op), "full ROB");
}

TEST(IssueQueue, OccupancyBounds)
{
    IssueQueue iq(2);
    iq.insert();
    iq.insert();
    EXPECT_TRUE(iq.full());
    iq.remove();
    EXPECT_FALSE(iq.full());
    EXPECT_EQ(iq.occupancy(), 1u);
}

TEST(IssueQueue, FpClassification)
{
    EXPECT_TRUE(usesFpQueue(isa::Opcode::FADD));
    EXPECT_TRUE(usesFpQueue(isa::Opcode::FCVTIF));
    EXPECT_FALSE(usesFpQueue(isa::Opcode::FLD)); // address generation
    EXPECT_FALSE(usesFpQueue(isa::Opcode::ADD));
    EXPECT_FALSE(usesFpQueue(isa::Opcode::BEQ));
}

TEST(Lsq, LoadWithNoOlderStoresIsReady)
{
    Lsq lsq(8);
    lsq.dispatchLoad(5);
    Cycle ready = 99;
    EXPECT_TRUE(lsq.loadReadyCycle(5, 0x1000, 8, ready));
    EXPECT_EQ(ready, 0u);
}

TEST(Lsq, LoadBlockedByUnissuedOverlappingStore)
{
    Lsq lsq(8);
    lsq.dispatchStore(1, 0x1000, 8);
    lsq.dispatchLoad(2);
    Cycle ready;
    EXPECT_FALSE(lsq.loadReadyCycle(2, 0x1004, 4, ready));
    lsq.storeIssued(1, 50);
    EXPECT_TRUE(lsq.loadReadyCycle(2, 0x1004, 4, ready));
    EXPECT_EQ(ready, 50u);
}

TEST(Lsq, NonOverlappingStoreDoesNotBlock)
{
    Lsq lsq(8);
    lsq.dispatchStore(1, 0x1000, 8);
    Cycle ready;
    EXPECT_TRUE(lsq.loadReadyCycle(2, 0x1008, 8, ready));
    EXPECT_EQ(ready, 0u);
}

TEST(Lsq, YoungerStoreIgnored)
{
    Lsq lsq(8);
    lsq.dispatchStore(10, 0x1000, 8);
    Cycle ready;
    // The load is OLDER than the store (seq 5 < 10).
    EXPECT_TRUE(lsq.loadReadyCycle(5, 0x1000, 8, ready));
    EXPECT_EQ(ready, 0u);
}

TEST(Lsq, LatestOverlappingStoreWins)
{
    Lsq lsq(8);
    lsq.dispatchStore(1, 0x1000, 8);
    lsq.dispatchStore(2, 0x1000, 8);
    lsq.storeIssued(1, 30);
    lsq.storeIssued(2, 70);
    Cycle ready;
    EXPECT_TRUE(lsq.loadReadyCycle(3, 0x1000, 8, ready));
    EXPECT_EQ(ready, 70u);
}

TEST(Lsq, CommitReleasesSlotsInOrder)
{
    Lsq lsq(2);
    lsq.dispatchStore(1, 0x0, 8);
    lsq.dispatchLoad(2);
    EXPECT_TRUE(lsq.full());
    lsq.commitStore(1);
    lsq.commitLoad();
    EXPECT_EQ(lsq.occupancy(), 0u);
}

TEST(LsqDeathTest, OutOfOrderStoreCommitPanics)
{
    Lsq lsq(4);
    lsq.dispatchStore(1, 0x0, 8);
    lsq.dispatchStore(2, 0x8, 8);
    EXPECT_DEATH(lsq.commitStore(2), "in order");
}

TEST(Bypass, SourceDecisionRule)
{
    // Producer completes at cycle 10, window 2: execs at 10 and 11
    // bypass, 12 reads the file.
    EXPECT_EQ(operandSource(10, 10, 2), OperandSource::Bypass);
    EXPECT_EQ(operandSource(11, 10, 2), OperandSource::Bypass);
    EXPECT_EQ(operandSource(12, 10, 2), OperandSource::RegFile);
    // Window 3 (extra level) covers one more cycle.
    EXPECT_EQ(operandSource(12, 10, 3), OperandSource::Bypass);
    EXPECT_EQ(operandSource(13, 10, 3), OperandSource::RegFile);
}

TEST(Bypass, StatsAccumulateByClass)
{
    BypassStats stats;
    stats.record(OperandSource::Bypass, false);
    stats.record(OperandSource::Bypass, true);
    stats.record(OperandSource::RegFile, false);
    stats.record(OperandSource::None, false); // ignored
    EXPECT_EQ(stats.bypassed(false), 1u);
    EXPECT_EQ(stats.bypassed(true), 1u);
    EXPECT_EQ(stats.regFileReads(false), 1u);
    EXPECT_DOUBLE_EQ(stats.bypassFraction(), 2.0 / 3.0);
}

TEST(OperandMix, BucketRouting)
{
    OperandMix mix;
    mix.record(true, false, false);
    mix.record(false, true, false);
    mix.record(false, false, true);
    mix.record(true, true, false);
    mix.record(true, false, true);
    mix.record(false, true, true);
    mix.record(false, false, false); // no operands: ignored
    EXPECT_EQ(mix.total(), 6u);
    for (unsigned b = 0; b < OperandMix::NumBuckets; ++b)
        EXPECT_EQ(mix.counts[b], 1u) << OperandMix::bucketName(b);
    EXPECT_DOUBLE_EQ(mix.fraction(OperandMix::OnlySimple), 1.0 / 6.0);
}

} // namespace carf::core
