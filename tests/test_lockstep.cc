/**
 * @file
 * Tests for the config-parallel lockstep replay engine
 * (src/sim/lockstep.cc) and its ExperimentRunner integration: grouped
 * replay must be bit-identical to solo simulate() calls — including
 * the statistics that never reach the JSON report — across standard
 * configurations, fast-forward warm-up, fallback paths, group-size
 * caps, and multi-worker contention.
 */

#include <gtest/gtest.h>

#include "regfile/registry.hh"
#include "sim/experiment_runner.hh"
#include "sim/reporting.hh"
#include "sim/simulator.hh"

namespace carf::sim
{

namespace
{

/**
 * Deterministic slice of a RunResult's JSON (the host-time fields sit
 * together at the object tail; one cut removes all of them).
 */
std::string
jsonSansTime(const core::RunResult &result)
{
    std::string json = runResultJson(result);
    auto pos = json.find(",\"wall_seconds\":");
    EXPECT_NE(pos, std::string::npos);
    return json.substr(0, pos) + "}";
}

/** The four configurations the perf-smoke sweep exercises. */
std::vector<core::CoreParams>
standardConfigs()
{
    return {core::CoreParams::unlimited(), core::CoreParams::baseline(),
            core::CoreParams::contentAware(16),
            core::CoreParams::contentAware(20)};
}

std::vector<workloads::Workload>
miniSuite()
{
    return {workloads::findWorkload("counters"),
            workloads::findWorkload("hash_table"),
            workloads::findWorkload("pointer_chase"),
            workloads::findWorkload("daxpy")};
}

SimOptions
quick(u64 insts = 20000)
{
    SimOptions options;
    options.maxInsts = insts;
    return options;
}

/**
 * Full deterministic comparison: the reported JSON plus the RunResult
 * fields that never reach it (issue-stall and branch counters feed
 * tables only via derived figures, so a bug there would otherwise
 * hide).
 */
void
expectSameRun(const core::RunResult &a, const core::RunResult &b,
              const std::string &what)
{
    EXPECT_EQ(jsonSansTime(a), jsonSansTime(b)) << what;
    EXPECT_EQ(a.issueStallCycles, b.issueStallCycles) << what;
    EXPECT_EQ(a.condBranches, b.condBranches) << what;
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts) << what;
}

} // namespace

TEST(Lockstep, GroupedMatchesSerialForStandardConfigs)
{
    emu::TraceCache cache;
    auto options = quick();
    options.traceCache = &cache;
    auto configs = standardConfigs();

    for (const auto &w : miniSuite()) {
        auto grouped = simulateGroup(w, configs, options);
        ASSERT_EQ(grouped.size(), configs.size()) << w.name;
        for (size_t i = 0; i < configs.size(); ++i) {
            auto serial = simulate(w, configs[i], options);
            expectSameRun(grouped[i], serial,
                          w.name + " config " + std::to_string(i));
            // Host-time attribution stays self-consistent.
            EXPECT_EQ(grouped[i].wallSeconds,
                      grouped[i].traceBuildSeconds +
                          grouped[i].simSeconds);
        }
    }
}

TEST(Lockstep, MixedBackendGroupMatchesSolo)
{
    // One lockstep group mixing every registered register-file
    // backend: grouped replay must stay bit-identical to solo runs
    // even when the lanes disagree about the register-file model
    // (including the port-reduction backend's issue-side stalls).
    emu::TraceCache cache;
    auto options = quick();
    options.traceCache = &cache;
    std::vector<core::CoreParams> configs;
    for (const std::string &name : regfile::registry().names())
        configs.push_back(core::CoreParams::forBackend(name));
    ASSERT_GE(configs.size(), 4u);

    for (const auto &w : miniSuite()) {
        auto grouped = simulateGroup(w, configs, options);
        ASSERT_EQ(grouped.size(), configs.size()) << w.name;
        for (size_t i = 0; i < configs.size(); ++i) {
            auto serial = simulate(w, configs[i], options);
            expectSameRun(grouped[i], serial,
                          w.name + " backend " +
                              configs[i].regFileBackend);
        }
    }
}

TEST(Lockstep, FastForwardGroupMatchesSerial)
{
    emu::TraceCache cache;
    auto options = quick(12000);
    options.fastForward = 6000;
    options.traceCache = &cache;
    auto configs = standardConfigs();
    const auto &w = workloads::findWorkload("graph_walk");

    auto grouped = simulateGroup(w, configs, options);
    for (size_t i = 0; i < configs.size(); ++i) {
        auto serial = simulate(w, configs[i], options);
        expectSameRun(grouped[i], serial,
                      "ff config " + std::to_string(i));
    }
}

TEST(Lockstep, NoCacheGroupMatchesSerial)
{
    // Without a trace cache the group materializes a private buffer;
    // solo simulate() streams. Results must still match.
    auto options = quick(8000);
    auto configs = standardConfigs();
    const auto &w = workloads::findWorkload("crc");

    auto grouped = simulateGroup(w, configs, options);
    for (size_t i = 0; i < configs.size(); ++i) {
        auto serial = simulate(w, configs[i], options);
        expectSameRun(grouped[i], serial,
                      "nocache config " + std::to_string(i));
    }
}

TEST(Lockstep, BranchGeometryMismatchFallsBackCorrectly)
{
    // Mismatched predictor geometry cannot share a front end; the
    // group must transparently fall back to per-config runs.
    auto options = quick(8000);
    std::vector<core::CoreParams> configs = {
        core::CoreParams::baseline(), core::CoreParams::contentAware(20)};
    configs[1].gshareHistoryBits += 2;
    const auto &w = workloads::findWorkload("bst_search");

    auto grouped = simulateGroup(w, configs, options);
    for (size_t i = 0; i < configs.size(); ++i) {
        auto serial = simulate(w, configs[i], options);
        expectSameRun(grouped[i], serial,
                      "mismatch config " + std::to_string(i));
    }
}

TEST(Lockstep, RunnerGroupsJobsAndKeepsSubmissionOrder)
{
    // A config-major batch over two workloads: the runner must return
    // exactly what the ungrouped (lockstep=0) batch returns, slot for
    // slot, and acquire each workload's trace only once.
    emu::TraceCache grouped_cache;
    emu::TraceCache solo_cache;
    auto grouped_options = quick();
    grouped_options.traceCache = &grouped_cache;
    auto solo_options = quick();
    solo_options.traceCache = &solo_cache;
    solo_options.lockstep = false;

    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters"),
        workloads::findWorkload("rle"),
    };
    std::vector<ExperimentJob> grouped_jobs, solo_jobs;
    for (const auto &params : standardConfigs()) {
        for (const auto &w : mini) {
            grouped_jobs.push_back(
                {w, params, grouped_options, "g", nullptr});
            solo_jobs.push_back({w, params, solo_options, "s", nullptr});
        }
    }

    auto grouped = ExperimentRunner(1).run(grouped_jobs);
    auto solo = ExperimentRunner(1).run(solo_jobs);
    ASSERT_EQ(grouped.size(), solo.size());
    for (size_t i = 0; i < grouped.size(); ++i)
        expectSameRun(grouped[i], solo[i], "slot " + std::to_string(i));

    // One lockstep group per workload: one acquire each, zero hits.
    EXPECT_EQ(grouped_cache.stats().builds, mini.size());
    EXPECT_EQ(grouped_cache.stats().hits, 0u);
    // The ungrouped batch acquires once per job.
    EXPECT_EQ(solo_cache.stats().hits,
              solo_jobs.size() - mini.size());
}

TEST(Lockstep, MixedBatchGroupsOnlyCompatibleJobs)
{
    // Jobs differing in workload, budget, or lockstep opt-out must
    // not land in one group, and every result must match its solo
    // reference.
    emu::TraceCache cache;
    auto base = quick();
    base.traceCache = &cache;
    auto opted_out = base;
    opted_out.lockstep = false;
    auto bigger = base;
    bigger.maxInsts = 30000;

    const auto &w1 = workloads::findWorkload("counters");
    const auto &w2 = workloads::findWorkload("dfa_scan");
    std::vector<ExperimentJob> jobs = {
        {w1, core::CoreParams::baseline(), base, "", nullptr},
        {w2, core::CoreParams::baseline(), base, "", nullptr},
        {w1, core::CoreParams::contentAware(20), opted_out, "", nullptr},
        {w1, core::CoreParams::contentAware(16), base, "", nullptr},
        {w1, core::CoreParams::baseline(), bigger, "", nullptr},
        {w2, core::CoreParams::contentAware(20), base, "", nullptr},
    };

    auto results = ExperimentRunner(1).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto solo_options = jobs[i].options;
        solo_options.traceCache = nullptr;
        solo_options.lockstep = false;
        auto reference =
            simulate(jobs[i].workload, jobs[i].params, solo_options);
        expectSameRun(results[i], reference,
                      "mixed slot " + std::to_string(i));
    }
}

TEST(Lockstep, MaxGroupCapSplitsGroups)
{
    // With a cap of 2, four compatible configs form two groups, each
    // acquiring the trace once: one build plus one hit.
    emu::TraceCache cache;
    auto options = quick();
    options.traceCache = &cache;
    options.lockstepMaxGroup = 2;
    const auto &w = workloads::findWorkload("counters");

    std::vector<ExperimentJob> jobs;
    for (const auto &params : standardConfigs())
        jobs.push_back({w, params, options, "", nullptr});
    auto capped = ExperimentRunner(1).run(jobs);

    EXPECT_EQ(cache.stats().builds, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    auto uncapped_options = options;
    uncapped_options.lockstepMaxGroup = 0;
    for (auto &job : jobs)
        job.options = uncapped_options;
    auto uncapped = ExperimentRunner(1).run(jobs);
    for (size_t i = 0; i < jobs.size(); ++i)
        expectSameRun(capped[i], uncapped[i],
                      "cap slot " + std::to_string(i));
}

TEST(Lockstep, EightWorkerContentionMatchesSingleWorker)
{
    // Grouped units scheduled across an 8-thread pool (the TSan job
    // runs this suite): results must match the 1-worker run slot for
    // slot.
    emu::TraceCache cache8;
    emu::TraceCache cache1;
    auto options = quick();
    options.traceCache = &cache8;

    std::vector<ExperimentJob> jobs;
    for (const auto &params : standardConfigs())
        for (const auto &w : miniSuite())
            jobs.push_back({w, params, options, "", nullptr});

    auto parallel = ExperimentRunner(8).run(jobs);
    for (auto &job : jobs)
        job.options.traceCache = &cache1;
    auto serial = ExperimentRunner(1).run(jobs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        expectSameRun(parallel[i], serial[i],
                      "contention slot " + std::to_string(i));
}

} // namespace carf::sim
