/**
 * @file
 * Tests for the sim layer: the facade, suite aggregation, relative
 * IPC, and frequency scaling.
 */

#include <gtest/gtest.h>

#include "sim/experiments.hh"
#include "sim/frequency.hh"
#include "sim/reporting.hh"

namespace carf::sim
{

namespace
{

SimOptions
quick(u64 insts = 15000)
{
    SimOptions options;
    options.maxInsts = insts;
    return options;
}

} // namespace

TEST(Simulator, FacadeRunsAndLabels)
{
    auto result = simulate(workloads::findWorkload("counters"),
                           core::CoreParams::baseline(), quick());
    EXPECT_EQ(result.workload, "counters");
    EXPECT_EQ(result.config, "baseline");
    EXPECT_EQ(result.committedInsts, 15000u);
}

TEST(Simulator, OracleHookReceivesSamplesThroughFacade)
{
    SimOptions options = quick();
    options.oracleSamplePeriod = 8;
    LiveValueOracle oracle;
    simulate(workloads::findWorkload("counters"),
             core::CoreParams::baseline(), options, &oracle);
    EXPECT_GT(oracle.samples(), 100u);
}

TEST(Experiments, SuiteRunAggregates)
{
    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters"),
        workloads::findWorkload("crc"),
    };
    auto run = runSuite(mini, core::CoreParams::contentAware(), quick());
    ASSERT_EQ(run.results.size(), 2u);
    EXPECT_GT(run.meanIpc(), 0.0);
    EXPECT_GT(run.totalAccesses().totalWrites(), 0u);
    EXPECT_GT(run.bypassFraction(), 0.0);
    EXPECT_LT(run.bypassFraction(), 1.0);
}

TEST(Experiments, MeanRelativeIpcIdentityIsOne)
{
    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters")};
    auto run = runSuite(mini, core::CoreParams::baseline(), quick());
    EXPECT_DOUBLE_EQ(meanRelativeIpc(run, run), 1.0);
}

TEST(ExperimentsDeathTest, MismatchedSuitesAreFatal)
{
    std::vector<workloads::Workload> a = {
        workloads::findWorkload("counters")};
    std::vector<workloads::Workload> b = {
        workloads::findWorkload("crc")};
    auto ra = runSuite(a, core::CoreParams::baseline(), quick(5000));
    auto rb = runSuite(b, core::CoreParams::baseline(), quick(5000));
    EXPECT_DEATH((void)meanRelativeIpc(ra, rb), "mismatch");
}

TEST(Frequency, GainFromAccessTimes)
{
    EXPECT_NEAR(potentialFrequencyGain(100.0, 85.0), 0.176, 0.001);
    EXPECT_DOUBLE_EQ(potentialFrequencyGain(100.0, 120.0), 0.0);
}

TEST(Frequency, SpeedupComposition)
{
    // Paper §5: 1.5% IPC loss + 5% clock -> ~+3%; +15% -> ~+13%.
    EXPECT_NEAR(frequencyScaledSpeedup(0.985, 0.05), 0.034, 0.002);
    EXPECT_NEAR(frequencyScaledSpeedup(0.985, 0.15), 0.133, 0.002);
    EXPECT_NEAR(frequencyScaledSpeedup(0.983, 0.0), -0.017, 0.001);
}

TEST(Reporting, DescribeConfigMentionsGeometry)
{
    auto params = core::CoreParams::contentAware(20);
    std::string desc = describeConfig(params);
    EXPECT_NE(desc.find("content-aware"), std::string::npos);
    EXPECT_NE(desc.find("d+n=20"), std::string::npos);
    EXPECT_NE(desc.find("K=48"), std::string::npos);
}

TEST(Reporting, JsonContainsStableFields)
{
    auto result = simulate(workloads::findWorkload("crc"),
                           core::CoreParams::contentAware(),
                           quick(8000));
    std::string json = runResultJson(result);
    for (const char *key :
         {"\"workload\":\"crc\"", "\"config\":\"content-aware\"",
          "\"cycles\":", "\"insts\":8000", "\"ipc\":",
          "\"rf_reads\":[", "\"rf_writes\":[", "\"recoveries\":",
          "\"avg_live_long\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Reporting, SuiteJsonIsArray)
{
    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters"),
        workloads::findWorkload("crc"),
    };
    auto run = runSuite(mini, core::CoreParams::baseline(), quick(5000));
    std::string json = suiteRunJson(run);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"workload\":\"counters\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"crc\""), std::string::npos);
}

TEST(Reporting, SuiteTableHasRowPerWorkload)
{
    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters"),
        workloads::findWorkload("rle"),
    };
    auto run = runSuite(mini, core::CoreParams::baseline(), quick(5000));
    Table table = suiteIpcTable("t", run);
    EXPECT_EQ(table.rowCount(), 2u);
    EXPECT_EQ(table.cell(0, 0), "counters");
    EXPECT_EQ(table.cell(1, 0), "rle");
}

} // namespace carf::sim
