/**
 * @file
 * Tests for the Rixner-style area/delay/energy model: monotonicity
 * properties, the paper's calibration anchors, and the content-aware
 * geometry builder.
 */

#include <gtest/gtest.h>

#include "energy/report.hh"
#include "energy/rixner.hh"

namespace carf::energy
{

namespace
{

regfile::ContentAwareParams
paperCa(unsigned dn = 20)
{
    regfile::ContentAwareParams p;
    p.sim = {dn - 3, 3};
    p.longEntries = 48;
    return p;
}

} // namespace

TEST(RixnerModel, AreaMonotonicInEntriesWidthPorts)
{
    RixnerModel model;
    RegFileGeometry base{64, 32, 8, 4};
    EXPECT_GT(model.area({128, 32, 8, 4}), model.area(base));
    EXPECT_GT(model.area({64, 64, 8, 4}), model.area(base));
    EXPECT_GT(model.area({64, 32, 16, 4}), model.area(base));
    EXPECT_GT(model.area({64, 32, 8, 8}), model.area(base));
}

TEST(RixnerModel, EnergyMonotonicInEntriesWidthPorts)
{
    RixnerModel model;
    RegFileGeometry base{64, 32, 8, 4};
    EXPECT_GT(model.readEnergy({128, 32, 8, 4}),
              model.readEnergy(base));
    EXPECT_GT(model.readEnergy({64, 64, 8, 4}), model.readEnergy(base));
    EXPECT_GT(model.readEnergy({64, 32, 16, 4}),
              model.readEnergy(base));
}

TEST(RixnerModel, DelayMonotonicInEntriesAndWidth)
{
    RixnerModel model;
    RegFileGeometry base{64, 32, 8, 4};
    EXPECT_GT(model.accessTime({256, 32, 8, 4}),
              model.accessTime(base));
    EXPECT_GT(model.accessTime({64, 128, 8, 4}),
              model.accessTime(base));
}

TEST(RixnerModel, WriteCostsMoreThanRead)
{
    RixnerModel model;
    RegFileGeometry g{112, 64, 8, 6};
    EXPECT_GT(model.writeEnergy(g), model.readEnergy(g));
}

TEST(RixnerModel, PortScalingIsSuperlinearInArea)
{
    // Doubling ports should more than double cell area contribution
    // for port-dominated cells (the classic P^2 effect).
    RixnerModel model;
    double a1 = model.area({64, 64, 8, 4});  // 12 ports
    double a2 = model.area({64, 64, 16, 8}); // 24 ports
    EXPECT_GT(a2 / a1, 1.7);
}

TEST(Calibration, BaselinePerAccessEnergyNearPaper)
{
    // Paper Table 3: baseline = 48.8% of the unlimited file.
    RixnerModel model;
    double ratio = model.readEnergy(baselineGeometry()) /
                   model.readEnergy(unlimitedGeometry());
    EXPECT_NEAR(ratio, 0.488, 0.02);
}

TEST(Calibration, SubFileEnergiesNearPaperAtChosenPoint)
{
    // Paper Table 3 at d+n=20: simple 10.8%, short 2.9%, long 16.9%.
    RixnerModel model;
    double unlimited = model.readEnergy(unlimitedGeometry());
    auto geom = caGeometry(112, paperCa());
    EXPECT_NEAR(model.readEnergy(geom.simple) / unlimited, 0.108, 0.02);
    EXPECT_NEAR(model.readEnergy(geom.shortFile) / unlimited, 0.029,
                0.02);
    EXPECT_NEAR(model.readEnergy(geom.longFile) / unlimited, 0.169,
                0.02);
}

TEST(Calibration, AreaReductionNearPaper)
{
    // Paper Figure 8: content-aware = 82.1% of baseline.
    RixnerModel model;
    double ratio = caTotalArea(model, caGeometry(112, paperCa())) /
                   model.area(baselineGeometry());
    EXPECT_NEAR(ratio, 0.821, 0.04);
}

TEST(Calibration, AccessTimeHeadroomNearPaper)
{
    // Paper Figure 9 / §5: up to ~15% clock headroom.
    RixnerModel model;
    double slowest = caMaxAccessTime(model, caGeometry(112, paperCa()));
    double baseline = model.accessTime(baselineGeometry());
    double headroom = baseline / slowest - 1.0;
    EXPECT_GT(headroom, 0.10);
    EXPECT_LT(headroom, 0.25);
}

TEST(Calibration, EverySubFileFasterThanBaseline)
{
    RixnerModel model;
    double baseline = model.accessTime(baselineGeometry());
    for (unsigned dn : {8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
        auto geom = caGeometry(112, paperCa(dn));
        EXPECT_LT(model.accessTime(geom.simple), baseline) << dn;
        EXPECT_LT(model.accessTime(geom.shortFile), baseline) << dn;
        EXPECT_LT(model.accessTime(geom.longFile), baseline) << dn;
    }
}

TEST(CaGeometry, WidthsFollowDefinition)
{
    auto geom = caGeometry(112, paperCa());
    // Simple: d+n value field + 2-bit RD.
    EXPECT_EQ(geom.simple.entries, 112u);
    EXPECT_EQ(geom.simple.widthBits, 22u);
    // Short: 2^n entries of 64-d-n bits, extra probe read ports.
    EXPECT_EQ(geom.shortFile.entries, 8u);
    EXPECT_EQ(geom.shortFile.widthBits, 44u);
    EXPECT_EQ(geom.shortFile.readPorts, 14u);
    // Long: K entries of 64-d-n+m bits.
    EXPECT_EQ(geom.longFile.entries, 48u);
    EXPECT_EQ(geom.longFile.widthBits, 50u);
}

TEST(CaGeometry, TrendsAcrossDn)
{
    RixnerModel model;
    double prev_simple = 0.0;
    double prev_long = 1e18;
    for (unsigned dn : {8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
        auto geom = caGeometry(112, paperCa(dn));
        double simple = model.readEnergy(geom.simple);
        double long_e = model.readEnergy(geom.longFile);
        EXPECT_GT(simple, prev_simple) << dn; // wider simple field
        EXPECT_LT(long_e, prev_long) << dn;   // narrower long entries
        prev_simple = simple;
        prev_long = long_e;
    }
}

TEST(EnergyAccounting, ConventionalUsesReadsAndWrites)
{
    RixnerModel model;
    RegFileGeometry g = baselineGeometry();
    regfile::AccessCounts counts;
    counts.reads[0] = 10;
    counts.writes[2] = 5;
    double expected =
        10 * model.readEnergy(g) + 5 * model.writeEnergy(g);
    EXPECT_DOUBLE_EQ(conventionalEnergy(model, g, counts), expected);
}

TEST(EnergyAccounting, ContentAwareChargesSubFiles)
{
    RixnerModel model;
    auto geom = caGeometry(112, paperCa());
    regfile::AccessCounts counts;
    counts.reads[0] = 4; // simple-typed reads: simple file only
    counts.reads[2] = 2; // long-typed reads: simple + long
    counts.writes[1] = 3; // short-typed writes: simple file only
    counts.shortProbeReads = 3;
    double expected = 6 * model.readEnergy(geom.simple) +
                      2 * model.readEnergy(geom.longFile) +
                      3 * model.writeEnergy(geom.simple) +
                      3 * model.readEnergy(geom.shortFile) +
                      1 * model.writeEnergy(geom.shortFile);
    EXPECT_DOUBLE_EQ(contentAwareEnergy(model, geom, counts, 1),
                     expected);
}

TEST(EnergyAccounting, ContentAwareBeatsBaselineOnTypicalMix)
{
    // With the paper's access mix (mostly simple/short), the
    // content-aware file must use less energy per access overall.
    RixnerModel model;
    auto geom = caGeometry(112, paperCa());
    regfile::AccessCounts counts;
    counts.reads[0] = 400;
    counts.reads[1] = 350;
    counts.reads[2] = 250;
    counts.writes[0] = 300;
    counts.writes[1] = 250;
    counts.writes[2] = 150;
    counts.shortProbeReads = 700;
    double ca = contentAwareEnergy(model, geom, counts, 50);
    double baseline =
        conventionalEnergy(model, baselineGeometry(), counts);
    EXPECT_LT(ca, 0.75 * baseline);
}

} // namespace carf::energy
