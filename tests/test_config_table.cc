/**
 * @file
 * Tests for the configuration store and the table renderer.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/table.hh"

namespace carf
{

TEST(Config, SetAndGetString)
{
    Config c;
    EXPECT_FALSE(c.has("k"));
    c.set("k", "v");
    EXPECT_TRUE(c.has("k"));
    EXPECT_EQ(c.getString("k"), "v");
    EXPECT_EQ(c.getString("missing", "def"), "def");
}

TEST(Config, TypedSettersAndGetters)
{
    Config c;
    c.setU64("u", 1234567890123ull);
    c.setDouble("d", 2.5);
    c.setBool("b", true);
    EXPECT_EQ(c.getU64("u", 0), 1234567890123ull);
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("b", false));
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getU64("missing", 7), 7u);
    EXPECT_EQ(c.getI64("missing", -7), -7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
}

TEST(Config, HexAndNegativeParsing)
{
    Config c;
    c.set("hex", "0x40");
    c.set("neg", "-12");
    EXPECT_EQ(c.getU64("hex", 0), 64u);
    EXPECT_EQ(c.getI64("neg", 0), -12);
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *s : {"true", "1", "yes", "on"}) {
        c.set("b", s);
        EXPECT_TRUE(c.getBool("b", false)) << s;
    }
    for (const char *s : {"false", "0", "no", "off"}) {
        c.set("b", s);
        EXPECT_FALSE(c.getBool("b", true)) << s;
    }
}

TEST(Config, ParseTokenRejectsMalformed)
{
    Config c;
    EXPECT_TRUE(c.parseToken("a=b"));
    EXPECT_FALSE(c.parseToken("nokey"));
    EXPECT_FALSE(c.parseToken("=value"));
    EXPECT_TRUE(c.parseToken("empty="));
    EXPECT_EQ(c.getString("empty", "x"), "");
}

TEST(Config, DumpListsKeysSorted)
{
    Config c;
    c.set("b", "2");
    c.set("a", "1");
    EXPECT_EQ(c.dump(), "a=1\nb=2\n");
}

TEST(ConfigDeathTest, BadIntegerIsFatal)
{
    Config c;
    c.set("n", "abc");
    EXPECT_DEATH((void)c.getU64("n", 0), "not an unsigned integer");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.4567), "45.7%");
    EXPECT_EQ(Table::pct(0.5, 0), "50%");
    EXPECT_EQ(Table::intNum(-12), "-12");
}

TEST(Table, RenderAlignsColumns)
{
    Table t("demo");
    t.setColumns({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header and both rows plus separator.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.setColumns({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "x,y\n1,2\n");
}

TEST(Table, CellAccess)
{
    Table t;
    t.setColumns({"a"});
    t.addRow({"v"});
    EXPECT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.columnCount(), 1u);
    EXPECT_EQ(t.cell(0, 0), "v");
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    Table t("t");
    t.setColumns({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row with 1 cells");
}

} // namespace carf
