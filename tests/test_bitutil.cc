/**
 * @file
 * Unit tests for the bit-manipulation helpers underlying the value
 * classifier.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

namespace carf
{

TEST(BitUtil, BitsExtractsField)
{
    EXPECT_EQ(bits(0xdeadbeefcafef00dull, 0, 8), 0x0dull);
    EXPECT_EQ(bits(0xdeadbeefcafef00dull, 8, 8), 0xf0ull);
    EXPECT_EQ(bits(0xdeadbeefcafef00dull, 32, 32), 0xdeadbeefull);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(BitUtil, MaskCoversRange)
{
    EXPECT_EQ(mask(0, 4), 0xfull);
    EXPECT_EQ(mask(4, 4), 0xf0ull);
    EXPECT_EQ(mask(0, 64), ~0ull);
    EXPECT_EQ(mask(63, 1), 0x8000000000000000ull);
}

TEST(BitUtil, SignExtendPositive)
{
    EXPECT_EQ(signExtend(0x7f, 8), 0x7full);
    EXPECT_EQ(signExtend(0x0123, 16), 0x0123ull);
}

TEST(BitUtil, SignExtendNegative)
{
    EXPECT_EQ(signExtend(0x80, 8), 0xffffffffffffff80ull);
    EXPECT_EQ(signExtend(0xffff, 16), ~0ull);
}

TEST(BitUtil, SignExtendFullWidthIsIdentity)
{
    EXPECT_EQ(signExtend(0x8000000000000000ull, 64),
              0x8000000000000000ull);
}

TEST(BitUtil, FitsSignedBoundaries)
{
    EXPECT_TRUE(fitsSigned(0, 8));
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_TRUE(fitsSigned(static_cast<u64>(-128), 8));
    EXPECT_FALSE(fitsSigned(static_cast<u64>(-129), 8));
    EXPECT_TRUE(fitsSigned(~0ull, 1));
    EXPECT_TRUE(fitsSigned(0x12345678ull, 64));
}

TEST(BitUtil, FitsSignedTwentyBits)
{
    // The paper's chosen d+n = 20.
    EXPECT_TRUE(fitsSigned((1ull << 19) - 1, 20));
    EXPECT_FALSE(fitsSigned(1ull << 19, 20));
    EXPECT_TRUE(fitsSigned(static_cast<u64>(-(1ll << 19)), 20));
    EXPECT_FALSE(fitsSigned(static_cast<u64>(-(1ll << 19) - 1), 20));
}

TEST(BitUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(48), 6u);
    EXPECT_EQ(log2Ceil(64), 6u);
    EXPECT_EQ(log2Ceil(65), 7u);
    EXPECT_EQ(log2Ceil(112), 7u);
    EXPECT_EQ(log2Ceil(160), 8u);
}

TEST(BitUtil, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(BitUtil, SimilarityTagMatchesDefinition)
{
    // Two values are (64-d)-similar iff their top 64-d bits match.
    u64 a = 0x0000123400567890ull;
    u64 b = 0x000012340056ffffull;
    EXPECT_EQ(similarityTag(a, 16), similarityTag(b, 16));
    EXPECT_NE(similarityTag(a, 8), similarityTag(b, 8));
}

TEST(BitUtil, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(~0ull), 64u);
    EXPECT_EQ(popCount(0xf0f0ull), 8u);
}

} // namespace carf
