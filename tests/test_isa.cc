/**
 * @file
 * Tests for the ISA metadata, the assembler (labels, fixups,
 * encoding), and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace carf::isa
{

class OpcodeMetadata : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OpcodeMetadata, EveryOpcodeIsSelfConsistent)
{
    auto op = static_cast<Opcode>(GetParam());
    const OpInfo &info = opInfo(op);
    EXPECT_NE(info.mnemonic, nullptr);
    EXPECT_GE(info.latency, 1);

    if (info.opClass == OpClass::Load || info.opClass == OpClass::Store)
        EXPECT_GT(info.memBytes, 0) << info.mnemonic;
    else
        EXPECT_EQ(info.memBytes, 0) << info.mnemonic;

    if (info.opClass == OpClass::Load)
        EXPECT_NE(info.rdClass, RegClass::None) << info.mnemonic;
    if (info.opClass == OpClass::Store) {
        EXPECT_EQ(info.rdClass, RegClass::None) << info.mnemonic;
        EXPECT_NE(info.rs2Class, RegClass::None) << info.mnemonic;
    }
    if (info.opClass == OpClass::Branch) {
        EXPECT_EQ(info.rdClass, RegClass::None) << info.mnemonic;
        EXPECT_TRUE(info.usesImm) << info.mnemonic;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeMetadata,
    ::testing::Range(0u, static_cast<unsigned>(Opcode::NumOpcodes)));

TEST(Opcode, ClassPredicates)
{
    EXPECT_TRUE(isLoad(Opcode::LD));
    EXPECT_TRUE(isLoad(Opcode::FLD));
    EXPECT_FALSE(isLoad(Opcode::ST));
    EXPECT_TRUE(isStore(Opcode::SB));
    EXPECT_TRUE(isMem(Opcode::FST));
    EXPECT_TRUE(isBranch(Opcode::BEQ));
    EXPECT_TRUE(isBranch(Opcode::JAL));
    EXPECT_TRUE(isConditionalBranch(Opcode::BLTU));
    EXPECT_FALSE(isConditionalBranch(Opcode::JALR));
    EXPECT_TRUE(writesIntReg(Opcode::ADD));
    EXPECT_FALSE(writesIntReg(Opcode::FADD));
    EXPECT_TRUE(writesFpReg(Opcode::FCVTIF));
    EXPECT_TRUE(writesIntReg(Opcode::FCVTFI));
}

TEST(Assembler, BackwardLabelResolves)
{
    Assembler a;
    a.label("top");
    a.addi(R1, R1, 1);
    a.jmp("top");
    Program p = a.finish();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).imm, 0);
}

TEST(Assembler, ForwardLabelResolves)
{
    Assembler a;
    a.beq(R1, R2, "done");
    a.addi(R1, R1, 1);
    a.label("done");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.at(0).imm, 2);
}

TEST(Assembler, StoreOperandPlacement)
{
    Assembler a;
    a.st(R5, R7, 24); // mem[r7+24] := r5
    a.halt();
    Program p = a.finish();
    const Instruction &st = p.at(0);
    EXPECT_EQ(st.op, Opcode::ST);
    EXPECT_EQ(st.rs1, R7); // base
    EXPECT_EQ(st.rs2, R5); // source
    EXPECT_EQ(st.imm, 24);
}

TEST(Assembler, MovIsAddiZero)
{
    Assembler a;
    a.mov(R3, R4);
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.at(0).op, Opcode::ADDI);
    EXPECT_EQ(p.at(0).rs1, R4);
    EXPECT_EQ(p.at(0).imm, 0);
}

TEST(Assembler, DataSegmentsCarriedThrough)
{
    Assembler a;
    a.dataU64(0x1000, {1, 2, 3});
    a.halt();
    Program p = a.finish();
    ASSERT_EQ(p.dataSegments().size(), 1u);
    EXPECT_EQ(p.dataSegments()[0].base, 0x1000u);
    EXPECT_EQ(p.dataSegments()[0].bytes.size(), 24u);
    EXPECT_EQ(p.dataSegments()[0].bytes[8], 2);
}

TEST(Assembler, LabelLookupOnProgram)
{
    Assembler a;
    a.nop();
    a.label("mid");
    a.halt();
    Program p = a.finish();
    EXPECT_TRUE(p.hasLabel("mid"));
    EXPECT_EQ(p.labelPc("mid"), 1u);
    EXPECT_FALSE(p.hasLabel("nope"));
}

TEST(AssemblerDeathTest, UnresolvedLabelIsFatal)
{
    Assembler a;
    a.jmp("nowhere");
    EXPECT_DEATH((void)a.finish(), "unresolved label");
}

TEST(AssemblerDeathTest, DuplicateLabelIsFatal)
{
    Assembler a;
    a.label("x");
    a.nop();
    a.label("x");
    a.halt();
    EXPECT_DEATH((void)a.finish(), "duplicate label");
}

TEST(AssemblerDeathTest, FinishTwicePanics)
{
    Assembler a;
    a.halt();
    (void)a.finish();
    EXPECT_DEATH((void)a.finish(), "finish called twice");
}

TEST(Disasm, AluFormats)
{
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 3;
    add.rs1 = 1;
    add.rs2 = 2;
    EXPECT_EQ(disassemble(add), "add r3, r1, r2");

    Instruction addi;
    addi.op = Opcode::ADDI;
    addi.rd = 4;
    addi.rs1 = 5;
    addi.imm = -8;
    EXPECT_EQ(disassemble(addi), "addi r4, r5, -8");
}

TEST(Disasm, MemoryFormats)
{
    Instruction ld;
    ld.op = Opcode::LD;
    ld.rd = 2;
    ld.rs1 = 9;
    ld.imm = 16;
    EXPECT_EQ(disassemble(ld), "ld r2, 16(r9)");

    Instruction st;
    st.op = Opcode::ST;
    st.rs1 = 9;
    st.rs2 = 2;
    st.imm = 0;
    EXPECT_EQ(disassemble(st), "st r2, 0(r9)");

    Instruction fld;
    fld.op = Opcode::FLD;
    fld.rd = 1;
    fld.rs1 = 3;
    fld.imm = 8;
    EXPECT_EQ(disassemble(fld), "fld f1, 8(r3)");
}

TEST(Disasm, BranchAndJumpFormats)
{
    Instruction beq;
    beq.op = Opcode::BEQ;
    beq.rs1 = 1;
    beq.rs2 = 2;
    beq.imm = 12;
    EXPECT_EQ(disassemble(beq), "beq r1, r2, @12");

    Instruction jal;
    jal.op = Opcode::JAL;
    jal.rd = 31;
    jal.imm = 4;
    EXPECT_EQ(disassemble(jal), "jal r31, @4");
}

TEST(Disasm, WholeProgramHasLineNumbers)
{
    Assembler a;
    a.nop();
    a.halt();
    std::string text = disassemble(a.finish());
    EXPECT_NE(text.find("0: nop"), std::string::npos);
    EXPECT_NE(text.find("1: halt"), std::string::npos);
}

TEST(ProgramDeathTest, ValidateCatchesBadBranchTarget)
{
    Program p;
    Instruction b;
    b.op = Opcode::BEQ;
    b.imm = 99; // out of range
    p.append(b);
    EXPECT_DEATH(p.validate(), "branch target");
}

} // namespace carf::isa
