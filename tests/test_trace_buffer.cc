/**
 * @file
 * Tests for the in-memory trace subsystem: TraceBuffer's derived-field
 * encoding and replay cursor, the trace-file round trip, TraceCache's
 * build-once/budget/LRU contracts, and — the load-bearing property —
 * bit-identical simulation results between streaming emulation and
 * cached zero-copy replay, serially and under ExperimentRunner
 * contention (the concurrent tests are exercised by the TSan CI job).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "emu/trace_buffer.hh"
#include "emu/trace_cache.hh"
#include "emu/trace_file.hh"
#include "sim/experiment_runner.hh"
#include "sim/reporting.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace carf::emu
{

namespace
{

/**
 * A deterministic, well-formed program-order stream (dense seq, pc
 * chain) that never touches the emulator; keeps the cache unit tests
 * fast and independent of the workload registry.
 */
class SyntheticSource : public TraceSource
{
  public:
    explicit SyntheticSource(u64 count, u64 seed = 1)
        : count_(count), rng_(seed)
    {
    }

    bool next(DynOp &out) override
    {
        if (made_ >= count_)
            return false;
        out = DynOp{};
        out.seq = made_;
        out.pc = pc_;
        out.op = isa::Opcode::NOP;
        out.rd = static_cast<u8>(rng_.nextBounded(32));
        out.rs1 = static_cast<u8>(rng_.nextBounded(32));
        out.rs2 = static_cast<u8>(rng_.nextBounded(32));
        out.rs1Value = rng_.next();
        out.rs2Value = rng_.next();
        out.rdValue = rng_.next();
        out.effAddr = rng_.next();
        out.taken = rng_.chance(0.3);
        out.nextPc = out.taken ? rng_.nextBounded(1u << 20) : pc_ + 1;
        pc_ = out.nextPc;
        ++made_;
        return true;
    }

    std::string name() const override { return "synthetic"; }

  private:
    u64 count_;
    u64 made_ = 0;
    u64 pc_ = 0;
    Rng rng_;
};

void
expectSameOp(const DynOp &a, const DynOp &b, u64 index)
{
    EXPECT_EQ(a.seq, b.seq) << index;
    EXPECT_EQ(a.pc, b.pc) << index;
    EXPECT_EQ(a.op, b.op) << index;
    EXPECT_EQ(a.rd, b.rd) << index;
    EXPECT_EQ(a.rs1, b.rs1) << index;
    EXPECT_EQ(a.rs2, b.rs2) << index;
    EXPECT_EQ(a.rs1Value, b.rs1Value) << index;
    EXPECT_EQ(a.rs2Value, b.rs2Value) << index;
    EXPECT_EQ(a.rdValue, b.rdValue) << index;
    EXPECT_EQ(a.effAddr, b.effAddr) << index;
    EXPECT_EQ(a.taken, b.taken) << index;
    EXPECT_EQ(a.nextPc, b.nextPc) << index;
}

/** Drain both sources in lockstep, expecting identical streams. */
void
expectSameStream(TraceSource &a, TraceSource &b)
{
    DynOp op_a, op_b;
    u64 index = 0;
    for (;;) {
        bool more_a = a.next(op_a);
        bool more_b = b.next(op_b);
        ASSERT_EQ(more_a, more_b) << "length mismatch at " << index;
        if (!more_a)
            return;
        expectSameOp(op_a, op_b, index);
        ++index;
    }
}

/**
 * Deterministic slice of a RunResult's JSON: the host-time fields
 * (wall/trace-build/sim seconds) sit together at the object tail, so
 * one cut removes all of them.
 */
std::string
jsonSansTime(const core::RunResult &result)
{
    std::string json = sim::runResultJson(result);
    auto pos = json.find(",\"wall_seconds\":");
    EXPECT_NE(pos, std::string::npos);
    return json.substr(0, pos) + "}";
}

sim::SimOptions
quick(u64 insts = 20000)
{
    sim::SimOptions options;
    options.maxInsts = insts;
    return options;
}

} // namespace

TEST(TraceBuffer, ReplayMatchesFreshEmulationForEveryWorkload)
{
    constexpr u64 insts = 5000;
    for (const auto &w : workloads::allWorkloads()) {
        auto fresh = workloads::makeTrace(w, insts);
        auto again = workloads::makeTrace(w, insts);
        auto buffer = TraceBuffer::build(*again, w.name, insts);
        TraceBuffer::Cursor cursor(*buffer);
        EXPECT_EQ(cursor.name(), w.name);
        expectSameStream(*fresh, cursor);
    }
}

TEST(TraceBuffer, CursorResetReplaysIdenticalStream)
{
    SyntheticSource source(3000, 7);
    auto buffer = TraceBuffer::build(source, "synthetic", 3000);
    ASSERT_EQ(buffer->size(), 3000u);

    std::vector<DynOp> first;
    TraceBuffer::Cursor cursor(*buffer);
    DynOp op;
    while (cursor.next(op))
        first.push_back(op);
    ASSERT_EQ(first.size(), 3000u);

    cursor.reset();
    EXPECT_EQ(cursor.position(), 0u);
    u64 index = 0;
    while (cursor.next(op))
        expectSameOp(op, first[index], index), ++index;
    EXPECT_EQ(index, 3000u);
}

TEST(TraceBuffer, CursorSkipMatchesDrainingTheSamePrefix)
{
    SyntheticSource source(1000, 3);
    auto buffer = TraceBuffer::build(source, "synthetic", 1000);

    TraceBuffer::Cursor skipped(*buffer);
    skipped.skip(400);
    EXPECT_EQ(skipped.position(), 400u);

    TraceBuffer::Cursor drained(*buffer);
    DynOp op;
    for (int i = 0; i < 400; ++i)
        ASSERT_TRUE(drained.next(op));
    expectSameStream(drained, skipped);

    // Skip clamps at the end instead of running past it.
    skipped.skip(~u64{0});
    EXPECT_EQ(skipped.position(), 1000u);
    EXPECT_FALSE(skipped.next(op));
}

TEST(TraceBuffer, CursorBudgetCapsReplayLikeAFreshEmulation)
{
    SyntheticSource source(2000, 9);
    auto buffer = TraceBuffer::build(source, "synthetic", 2000);
    SyntheticSource capped_source(500, 9);
    TraceBuffer::Cursor capped(*buffer, 500);
    expectSameStream(capped_source, capped);
}

TEST(TraceBuffer, SawHaltDistinguishesShortSourceFromFullBudget)
{
    SyntheticSource halting(100, 5);
    auto halted = TraceBuffer::build(halting, "halted", 5000);
    EXPECT_EQ(halted->size(), 100u);
    EXPECT_TRUE(halted->sawHalt());

    SyntheticSource long_source(5000, 5);
    auto full = TraceBuffer::build(long_source, "full", 5000);
    EXPECT_EQ(full->size(), 5000u);
    EXPECT_FALSE(full->sawHalt());
}

TEST(TraceBuffer, EncodingIsSmallerThanTheNaiveDynOpArray)
{
    SyntheticSource source(10000, 11);
    auto buffer = TraceBuffer::build(source, "synthetic", 10000);
    auto sizes = buffer->fieldSizes();
    EXPECT_GT(sizes.total(), 0u);
    // ~41 B/record vs the 64+ B DynOp: demand at least a 1.5x win.
    EXPECT_LT(sizes.total() * 3, buffer->size() * sizeof(DynOp) * 2);
    EXPECT_GE(buffer->memoryBytes(), sizes.total());
}

TEST(TraceFile, BufferRoundTripsThroughATraceFile)
{
    SyntheticSource source(2500, 13);
    auto buffer = TraceBuffer::build(source, "roundtrip", 2500);

    std::string path = ::testing::TempDir() + "carf_roundtrip.trace";
    EXPECT_EQ(TraceWriter::record(*buffer, path), 2500u);
    auto loaded = readTraceBuffer(path, "roundtrip");
    ASSERT_EQ(loaded->size(), buffer->size());
    EXPECT_EQ(loaded->baseSeq(), buffer->baseSeq());

    TraceBuffer::Cursor a(*buffer), b(*loaded);
    expectSameStream(a, b);
    std::remove(path.c_str());
}

TEST(TraceCache, BuildsOnceThenServesHits)
{
    TraceCache cache;
    auto builder = [] {
        return std::make_unique<SyntheticSource>(2000, 21);
    };
    auto first = cache.acquire("w", 2000, builder);
    ASSERT_TRUE(first);
    auto second = cache.acquire("w", 2000, builder);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.buildCount("w"), 1u);

    auto stats = cache.stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.fallbacks, 0u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytesCached, 0u);
}

TEST(TraceCache, PrefixPropertyServesSmallerBudgets)
{
    TraceCache cache;
    auto builder = [] {
        return std::make_unique<SyntheticSource>(100000, 23);
    };
    auto big = cache.acquire("w", 10000, builder);
    ASSERT_TRUE(big);
    EXPECT_EQ(big->size(), 10000u);

    // A smaller request is a hit on the existing buffer...
    auto small = cache.acquire("w", 4000, builder);
    EXPECT_EQ(small.get(), big.get());
    EXPECT_EQ(cache.buildCount("w"), 1u);

    // ...while a larger one rebuilds and replaces it.
    auto bigger = cache.acquire("w", 20000, builder);
    ASSERT_TRUE(bigger);
    EXPECT_EQ(bigger->size(), 20000u);
    EXPECT_EQ(cache.buildCount("w"), 2u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // The replacement is a superset prefix of the original stream.
    TraceBuffer::Cursor old_prefix(*big);
    TraceBuffer::Cursor new_prefix(*bigger, big->size());
    expectSameStream(old_prefix, new_prefix);
}

TEST(TraceCache, HaltedTraceServesAnyBudget)
{
    TraceCache cache;
    auto builder = [] {
        return std::make_unique<SyntheticSource>(500, 25);
    };
    auto buffer = cache.acquire("w", 5000, builder);
    ASSERT_TRUE(buffer);
    EXPECT_EQ(buffer->size(), 500u);
    EXPECT_TRUE(buffer->sawHalt());

    // Even a budget the estimator would refuse to build is a hit: the
    // program halted, so the buffer is the whole trace.
    auto huge = cache.acquire("w", ~u64{0} >> 8, builder);
    EXPECT_EQ(huge.get(), buffer.get());
    EXPECT_EQ(cache.buildCount("w"), 1u);
}

TEST(TraceCache, OversizeRequestFallsBackWithoutBuilding)
{
    TraceCache cache(64 << 10); // 64 KiB: ~1.6k records at most
    bool built = false;
    auto builder = [&built] {
        built = true;
        return std::make_unique<SyntheticSource>(1000000, 27);
    };
    EXPECT_FALSE(cache.acquire("w", 1000000, builder));
    EXPECT_FALSE(built); // refused by the up-front estimate
    EXPECT_FALSE(cache.acquire("w", 1000000, builder));
    EXPECT_EQ(cache.buildCount("w"), 0u);
    EXPECT_EQ(cache.stats().fallbacks, 2u);

    // A small request for the same workload still caches normally.
    auto small = cache.acquire("w", 1000, builder);
    ASSERT_TRUE(small);
    EXPECT_TRUE(built);
    EXPECT_EQ(small->size(), 1000u);
}

TEST(TraceCache, LruEvictionKeepsResidencyUnderTheByteBudget)
{
    // Budget fits one ~4k-record trace (~170 KiB) but not two.
    TraceCache cache(300 << 10);
    auto builder = [](u64 seed) {
        return [seed] {
            return std::make_unique<SyntheticSource>(4096, seed);
        };
    };
    ASSERT_TRUE(cache.acquire("a", 4096, builder(1)));
    ASSERT_TRUE(cache.acquire("b", 4096, builder(2)));

    auto stats = cache.stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_LE(stats.bytesCached, cache.byteBudget());
    EXPECT_EQ(stats.entries, 1u);

    // "a" was the LRU victim; reacquiring it is a rebuild, and the
    // build counter survives the eviction.
    ASSERT_TRUE(cache.acquire("a", 4096, builder(1)));
    EXPECT_EQ(cache.buildCount("a"), 2u);
    EXPECT_EQ(cache.buildCount("b"), 1u);
}

TEST(SimulateWithCache, BitIdenticalToStreamingForEveryWorkload)
{
    TraceCache cache;
    auto params = core::CoreParams::contentAware(20);
    auto streaming_options = quick();
    auto cached_options = quick();
    cached_options.traceCache = &cache;

    for (const auto &w : workloads::allWorkloads()) {
        auto streamed = sim::simulate(w, params, streaming_options);
        auto cached = sim::simulate(w, params, cached_options);
        // First cached run builds the trace, second replays the hit;
        // both must match streaming emulation byte-for-byte through
        // the reporting path.
        auto replayed = sim::simulate(w, params, cached_options);
        EXPECT_EQ(jsonSansTime(streamed), jsonSansTime(cached))
            << w.name;
        EXPECT_EQ(jsonSansTime(streamed), jsonSansTime(replayed))
            << w.name;
        EXPECT_EQ(cache.buildCount(w.name), 1u) << w.name;
        EXPECT_EQ(streamed.wallSeconds,
                  streamed.traceBuildSeconds + streamed.simSeconds);
        // Streaming meters the emulator at the source, so its
        // interleaved build cost shows up split out of simSeconds.
        EXPECT_GT(streamed.traceBuildSeconds, 0.0);
        EXPECT_EQ(cached.wallSeconds,
                  cached.traceBuildSeconds + cached.simSeconds);
    }
}

TEST(SimulateWithCache, FastForwardIsBitIdenticalToStreaming)
{
    TraceCache cache;
    auto params = core::CoreParams::contentAware(20);
    sim::SimOptions options = quick(12000);
    options.fastForward = 6000;

    for (const char *name : {"counters", "hash_table", "crc"}) {
        const auto &w = workloads::findWorkload(name);
        auto streamed = sim::simulate(w, params, options);
        auto cached_options = options;
        cached_options.traceCache = &cache;
        auto cached = sim::simulate(w, params, cached_options);
        EXPECT_EQ(jsonSansTime(streamed), jsonSansTime(cached)) << name;
    }
}

TEST(SimulateWithCache, FallbackToStreamingIsTransparent)
{
    // A budget far too small for any real trace: every acquire falls
    // back, and simulate() must stream with identical results.
    TraceCache cache(1 << 10);
    auto params = core::CoreParams::baseline();
    auto options = quick(8000);
    const auto &w = workloads::findWorkload("counters");

    auto streamed = sim::simulate(w, params, options);
    auto fallback_options = options;
    fallback_options.traceCache = &cache;
    auto fallen_back = sim::simulate(w, params, fallback_options);

    EXPECT_EQ(jsonSansTime(streamed), jsonSansTime(fallen_back));
    EXPECT_EQ(cache.buildCount(w.name), 0u);
    EXPECT_GE(cache.stats().fallbacks, 1u);
    // The fallback streams, and streaming meters the emulator's
    // interleaved cost as trace-build time.
    EXPECT_GT(fallen_back.traceBuildSeconds, 0.0);
    EXPECT_EQ(fallen_back.wallSeconds,
              fallen_back.traceBuildSeconds + fallen_back.simSeconds);
}

TEST(SimulateWithCache, ConcurrentSweepEmulatesEachWorkloadOnce)
{
    // A 4-configuration sweep over a few workloads, all jobs sharing
    // one cache under an 8-worker pool: every workload must be
    // emulated exactly once (build-once contract under contention),
    // and every result must match the serial uncached reference.
    TraceCache cache;
    std::vector<workloads::Workload> mini = {
        workloads::findWorkload("counters"),
        workloads::findWorkload("hash_table"),
        workloads::findWorkload("crc"),
    };
    std::vector<core::CoreParams> configs = {
        core::CoreParams::baseline(),
        core::CoreParams::contentAware(16),
        core::CoreParams::contentAware(20),
        core::CoreParams::contentAware(24),
    };

    auto cached_options = quick();
    cached_options.traceCache = &cache;
    // Lockstep grouping would collapse the per-workload jobs into one
    // acquire each; this test is about the cache's build-once contract
    // under raw contention, so keep every job independent.
    cached_options.lockstep = false;
    std::vector<sim::ExperimentJob> jobs;
    for (const auto &params : configs) {
        for (const auto &w : mini)
            jobs.push_back({w, params, cached_options, "sweep", nullptr});
    }

    auto results = sim::ExperimentRunner(8).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto reference =
            sim::simulate(jobs[i].workload, jobs[i].params, quick());
        EXPECT_EQ(jsonSansTime(reference), jsonSansTime(results[i]))
            << i;
    }
    for (const auto &w : mini)
        EXPECT_EQ(cache.buildCount(w.name), 1u) << w.name;

    auto stats = cache.stats();
    EXPECT_EQ(stats.builds, mini.size());
    EXPECT_EQ(stats.hits, jobs.size() - mini.size());
    EXPECT_EQ(stats.fallbacks, 0u);
}

} // namespace carf::emu
