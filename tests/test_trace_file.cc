/**
 * @file
 * Tests for trace file record/replay: lossless round trips, identical
 * timing on replay, cap handling, and corrupt-file rejection.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "emu/trace_file.hh"
#include "workloads/workload.hh"

namespace carf::emu
{

namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

} // namespace

TEST(TraceFile, RoundTripIsLossless)
{
    std::string path = tempPath("roundtrip.carftrc");
    auto source = workloads::makeTrace(
        workloads::findWorkload("graph_walk"), 5000);
    u64 written = TraceWriter::record(*source, path);
    EXPECT_EQ(written, 5000u);

    auto reference = workloads::makeTrace(
        workloads::findWorkload("graph_walk"), 5000);
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 5000u);

    DynOp a, b;
    u64 count = 0;
    while (reference->next(a)) {
        ASSERT_TRUE(reader.next(b)) << count;
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
        EXPECT_EQ(a.rd, b.rd);
        EXPECT_EQ(a.rs1, b.rs1);
        EXPECT_EQ(a.rs2, b.rs2);
        EXPECT_EQ(a.rs1Value, b.rs1Value);
        EXPECT_EQ(a.rs2Value, b.rs2Value);
        EXPECT_EQ(a.rdValue, b.rdValue);
        EXPECT_EQ(a.effAddr, b.effAddr);
        EXPECT_EQ(a.taken, b.taken);
        EXPECT_EQ(a.nextPc, b.nextPc);
        ++count;
    }
    EXPECT_FALSE(reader.next(b));
    EXPECT_EQ(count, 5000u);
}

TEST(TraceFile, ReplayTimesIdenticallyToLiveEmulation)
{
    std::string path = tempPath("replay.carftrc");
    {
        auto source = workloads::makeTrace(
            workloads::findWorkload("hash_table"), 20000);
        TraceWriter::record(*source, path);
    }

    auto live = workloads::makeTrace(
        workloads::findWorkload("hash_table"), 20000);
    core::Pipeline p1(core::CoreParams::contentAware());
    auto live_result = p1.run(*live);

    TraceReader replay(path, "hash_table");
    core::Pipeline p2(core::CoreParams::contentAware());
    auto replay_result = p2.run(replay);

    EXPECT_EQ(live_result.cycles, replay_result.cycles);
    EXPECT_EQ(live_result.committedInsts, replay_result.committedInsts);
    EXPECT_EQ(live_result.intRfAccesses.totalReads(),
              replay_result.intRfAccesses.totalReads());
}

TEST(TraceFile, ReaderHonoursCap)
{
    std::string path = tempPath("cap.carftrc");
    auto source = workloads::makeTrace(
        workloads::findWorkload("counters"), 1000);
    TraceWriter::record(*source, path);

    TraceReader reader(path, "counters", 100);
    DynOp op;
    u64 count = 0;
    while (reader.next(op))
        ++count;
    EXPECT_EQ(count, 100u);
}

TEST(TraceFile, ReaderNamesDefaultToPath)
{
    std::string path = tempPath("named.carftrc");
    auto source = workloads::makeTrace(
        workloads::findWorkload("counters"), 10);
    TraceWriter::record(*source, path);
    TraceReader by_path(path);
    EXPECT_EQ(by_path.name(), path);
    TraceReader by_name(path, "custom");
    EXPECT_EQ(by_name.name(), "custom");
}

TEST(TraceFileDeathTest, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceReader reader("/nonexistent/file.carftrc"),
                 "cannot open");
}

TEST(TraceFileDeathTest, BadMagicIsFatal)
{
    std::string path = tempPath("bad.carftrc");
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACE-------";
    out.close();
    EXPECT_DEATH(TraceReader reader(path), "not a CARF trace");
}

TEST(TraceFileDeathTest, TruncatedRecordIsFatal)
{
    std::string path = tempPath("trunc.carftrc");
    {
        auto source = workloads::makeTrace(
            workloads::findWorkload("counters"), 10);
        TraceWriter::record(*source, path);
    }
    // Chop the last record in half.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 32), 0);

    TraceReader reader(path);
    DynOp op;
    EXPECT_DEATH({
        while (reader.next(op)) {
        }
    }, "truncated");
}

} // namespace carf::emu
