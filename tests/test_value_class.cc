/**
 * @file
 * Tests for the value taxonomy: similarity parameters, the Short
 * file (allocation, reference bits, reclamation), and classification
 * precedence. Includes property-style sweeps over the d+n range.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/random.hh"
#include "regfile/value_class.hh"

namespace carf::regfile
{

TEST(SimilarityParams, DerivedWidths)
{
    SimilarityParams sim{17, 3}; // the paper's d+n = 20
    EXPECT_EQ(sim.simpleFieldBits(), 20u);
    EXPECT_EQ(sim.shortEntryBits(), 44u);
    EXPECT_EQ(sim.shortEntries(), 8u);
}

TEST(SimilarityParams, IndexAndTagFields)
{
    SimilarityParams sim{17, 3};
    u64 value = (u64{0xabcd} << 20) | (u64{5} << 17) | 0x1ffff;
    EXPECT_EQ(sim.shortIndex(value), 5u);
    EXPECT_EQ(sim.shortTag(value), 0xabcdu);
}

TEST(SimilarityParams, SimplePredicateMatchesSignExtension)
{
    SimilarityParams sim{17, 3};
    EXPECT_TRUE(sim.isSimple(0));
    EXPECT_TRUE(sim.isSimple((1ull << 19) - 1));
    EXPECT_FALSE(sim.isSimple(1ull << 19));
    EXPECT_TRUE(sim.isSimple(static_cast<u64>(-1)));
    EXPECT_TRUE(sim.isSimple(static_cast<u64>(-(1ll << 19))));
    EXPECT_FALSE(sim.isSimple(static_cast<u64>(-(1ll << 19) - 1)));
}

TEST(ShortFile, AllocateAndLookup)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    u64 addr = 0x4000'0000;
    EXPECT_TRUE(file.tryAllocate(addr));
    unsigned idx = 0;
    EXPECT_TRUE(file.lookup(addr, idx));
    EXPECT_EQ(idx, sim.shortIndex(addr));
    // A (64-d)-similar value (same high bits) hits the same entry.
    EXPECT_TRUE(file.lookup(addr + 0x1ffff, idx));
    // A value with different high bits misses.
    EXPECT_FALSE(file.lookup(addr + (1ull << 25), idx));
}

TEST(ShortFile, DirectMappedConflictRejected)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    u64 a = 0x4000'0000;
    u64 b = a + (1ull << 25); // same index bits, different tag
    ASSERT_EQ(sim.shortIndex(a), sim.shortIndex(b));
    EXPECT_TRUE(file.tryAllocate(a));
    EXPECT_FALSE(file.tryAllocate(b));
    // Idempotent for the resident group.
    EXPECT_TRUE(file.tryAllocate(a));
    EXPECT_EQ(file.allocations(), 1u);
}

TEST(ShortFile, AssociativeModeAvoidsIndexConflicts)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim, true);
    u64 a = 0x4000'0000;
    u64 b = a + (1ull << 25);
    EXPECT_TRUE(file.tryAllocate(a));
    EXPECT_TRUE(file.tryAllocate(b)); // any free slot
    unsigned ia = 0, ib = 0;
    EXPECT_TRUE(file.lookup(a, ia));
    EXPECT_TRUE(file.lookup(b, ib));
    EXPECT_NE(ia, ib);
}

TEST(ShortFile, AssociativeFillsAllSlots)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim, true);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(file.tryAllocate((u64{i + 1} << 25)));
    EXPECT_FALSE(file.tryAllocate(u64{100} << 25));
    EXPECT_EQ(file.liveEntries(), 8u);
}

TEST(ShortFile, ReclamationNeedsTwoIdleIntervals)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    u64 addr = 0x4000'0000;
    file.tryAllocate(addr);
    unsigned idx = sim.shortIndex(addr);
    file.touch(idx);

    file.robIntervalTick(); // used this interval -> Told set
    EXPECT_TRUE(file.valid(idx));
    file.robIntervalTick(); // idle, but Told was set -> survives
    EXPECT_TRUE(file.valid(idx));
    file.robIntervalTick(); // idle again -> reclaimed
    EXPECT_FALSE(file.valid(idx));
    EXPECT_EQ(file.reclamations(), 1u);
}

TEST(ShortFile, LiveReferencesBlockReclamation)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    u64 addr = 0x4000'0000;
    file.tryAllocate(addr);
    unsigned idx = sim.shortIndex(addr);
    file.addRef(idx);
    for (int i = 0; i < 5; ++i)
        file.robIntervalTick();
    EXPECT_TRUE(file.valid(idx));
    file.dropRef(idx);
    file.robIntervalTick(); // ref counted as use last interval
    file.robIntervalTick();
    file.robIntervalTick();
    EXPECT_FALSE(file.valid(idx));
}

TEST(ShortFileDeathTest, DropRefUnderflowPanics)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    file.tryAllocate(0x4000'0000);
    EXPECT_DEATH(file.dropRef(sim.shortIndex(0x4000'0000)),
                 "zero refs");
}

TEST(Classify, PrecedenceSimpleOverShort)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    // Resident group covering small values too (tag 0 is the
    // sign-extension group, so allocate value 0's group).
    file.tryAllocate(0x42);
    unsigned idx = 0;
    EXPECT_EQ(classifyValue(0x42, sim, file, idx), ValueType::Simple);
}

TEST(Classify, ShortWhenResident)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    u64 addr = 0x4000'0000;
    file.tryAllocate(addr);
    unsigned idx = 0;
    EXPECT_EQ(classifyValue(addr + 8, sim, file, idx),
              ValueType::Short);
    EXPECT_EQ(idx, sim.shortIndex(addr));
}

TEST(Classify, LongWhenNeitherSimpleNorResident)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    unsigned idx = 0;
    EXPECT_EQ(classifyValue(0xdeadbeefcafef00dull, sim, file, idx),
              ValueType::Long);
}

/** The const overload agrees with the indexed one on every class. */
TEST(Classify, ConstOverloadMatchesIndexedClassification)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    file.tryAllocate(0x4000'0000);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        u64 v = rng.next() >> rng.nextBounded(64);
        if (rng.chance(0.3))
            v = 0x4000'0000 + rng.nextBounded(1 << 17);
        unsigned idx = 0;
        EXPECT_EQ(classifyValue(v, sim, file),
                  classifyValue(v, sim, file, idx));
    }
}

/** ShortFile self-check: clean on normal flows, loud on corruption. */
TEST(ShortFile, CheckInvariantsDetectsLeakedRefs)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    EXPECT_EQ(file.checkInvariants(), "");
    u64 addr = 0x4000'0000;
    ASSERT_TRUE(file.tryAllocate(addr));
    unsigned idx = 0;
    ASSERT_TRUE(file.lookup(addr, idx));
    file.addRef(idx);
    EXPECT_EQ(file.checkInvariants(), "");
    file.dropRef(idx);
    file.robIntervalTick();
    file.robIntervalTick();
    ASSERT_FALSE(file.valid(idx));
    EXPECT_EQ(file.checkInvariants(), "");

    // A ref added to a reclaimed slot is stale bookkeeping.
    file.addRef(idx);
    EXPECT_NE(file.checkInvariants().find("invalid slot"),
              std::string::npos);
}

/** Property sweep over the paper's d+n range. */
class ClassifyProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ClassifyProperty, SimpleIffFitsSigned)
{
    unsigned dn = GetParam();
    SimilarityParams sim{dn - 3, 3};
    ShortFile file(sim);
    Rng rng(dn);
    for (int i = 0; i < 2000; ++i) {
        u64 v = rng.next() >> rng.nextBounded(64);
        unsigned idx = 0;
        bool is_simple =
            classifyValue(v, sim, file, idx) == ValueType::Simple;
        EXPECT_EQ(is_simple, fitsSigned(v, dn)) << v;
    }
}

TEST_P(ClassifyProperty, ShortValuesShareHighBitsWithGroup)
{
    unsigned dn = GetParam();
    SimilarityParams sim{dn - 3, 3};
    ShortFile file(sim);
    Rng rng(dn * 7);
    // Allocate a few groups.
    std::vector<u64> bases;
    for (int i = 0; i < 4; ++i) {
        u64 base = rng.next() | (1ull << 62); // force non-simple
        if (file.tryAllocate(base))
            bases.push_back(base);
    }
    for (u64 base : bases) {
        for (int i = 0; i < 100; ++i) {
            u64 v = (similarityTag(base, sim.d()) << sim.d()) |
                    rng.nextBounded(1ull << sim.d());
            unsigned idx = 0;
            ValueType type = classifyValue(v, sim, file, idx);
            // Must be short (same 64-d high bits) unless simple.
            if (!sim.isSimple(v)) {
                EXPECT_EQ(type, ValueType::Short);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DnSweep, ClassifyProperty,
                         ::testing::Values(8u, 12u, 16u, 20u, 24u, 28u,
                                           32u));

/**
 * Regression for the precomputed classification masks: every mask
 * fast path (isSimple/shortIndex/shortTag) must agree with straight
 * bit arithmetic over the fuzzer's magnitude-biased generator, which
 * concentrates draws on the power-of-two and sign-extension
 * boundaries where an off-by-one in the mask derivation would hide.
 */
TEST(SimilarityParams, MaskPathsMatchBitArithmeticOnBiasedValues)
{
    for (unsigned n : {1u, 2u, 3u, 4u, 6u}) {
        for (unsigned dn : {8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
            if (dn <= n)
                continue;
            unsigned d = dn - n;
            SimilarityParams sim(d, n);
            Rng rng(dn * 131 + n);
            for (int i = 0; i < 4000; ++i) {
                u64 v = rng.nextMagnitudeBiased();
                EXPECT_EQ(sim.isSimple(v), fitsSigned(v, dn))
                    << "d=" << d << " n=" << n << " v=" << v;
                EXPECT_EQ(sim.shortIndex(v),
                          static_cast<unsigned>(
                              (v >> d) & ((u64{1} << n) - 1)))
                    << "d=" << d << " n=" << n << " v=" << v;
                EXPECT_EQ(sim.shortTag(v), v >> dn)
                    << "d=" << d << " n=" << n << " v=" << v;
            }
        }
    }
}

/**
 * Full classifyValue over biased values against an independent
 * bit-arithmetic reference (direct-mapped residency check spelled
 * out with shifts, no SimilarityParams helpers involved).
 */
TEST(Classify, MaskedClassificationMatchesBitArithmeticReference)
{
    SimilarityParams sim{17, 3};
    ShortFile file(sim);
    Rng rng(42);
    // Populate a few resident groups with non-simple bases.
    for (int i = 0; i < 6; ++i)
        file.tryAllocate(rng.next() | (1ull << 62));

    for (int i = 0; i < 8000; ++i) {
        u64 v = rng.nextMagnitudeBiased();
        unsigned idx = 0;
        ValueType type = classifyValue(v, sim, file, idx);

        ValueType expect;
        unsigned idx_ref = static_cast<unsigned>((v >> 17) & 0x7);
        if (fitsSigned(v, 20))
            expect = ValueType::Simple;
        else if (file.valid(idx_ref) && file.tag(idx_ref) == v >> 20)
            expect = ValueType::Short;
        else
            expect = ValueType::Long;

        EXPECT_EQ(type, expect) << v;
        if (type == ValueType::Short) {
            EXPECT_EQ(idx, idx_ref) << v;
        }
    }
}

} // namespace carf::regfile
