/**
 * @file
 * Differential testing: random straight-line ALU programs are
 * executed both by the emulator and by a host-side mirror of the ISA
 * semantics; the architectural results must agree bit-for-bit.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/random.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "workloads/kernel_util.hh"

namespace carf
{

using namespace carf::isa;

namespace
{

/** Host-side mirror of the integer ALU semantics. */
u64
hostAlu(Opcode op, u64 s1, u64 s2, i64 imm)
{
    u64 uimm = static_cast<u64>(imm);
    switch (op) {
      case Opcode::ADD: return s1 + s2;
      case Opcode::SUB: return s1 - s2;
      case Opcode::AND: return s1 & s2;
      case Opcode::OR: return s1 | s2;
      case Opcode::XOR: return s1 ^ s2;
      case Opcode::SLL: return s1 << (s2 & 63);
      case Opcode::SRL: return s1 >> (s2 & 63);
      case Opcode::SRA:
        return static_cast<u64>(static_cast<i64>(s1) >> (s2 & 63));
      case Opcode::SLT:
        return static_cast<i64>(s1) < static_cast<i64>(s2) ? 1 : 0;
      case Opcode::SLTU: return s1 < s2 ? 1 : 0;
      case Opcode::MUL: return s1 * s2;
      case Opcode::ADDI: return s1 + uimm;
      case Opcode::ANDI: return s1 & uimm;
      case Opcode::ORI: return s1 | uimm;
      case Opcode::XORI: return s1 ^ uimm;
      case Opcode::SLLI: return s1 << (uimm & 63);
      case Opcode::SRLI: return s1 >> (uimm & 63);
      case Opcode::SRAI:
        return static_cast<u64>(static_cast<i64>(s1) >> (uimm & 63));
      case Opcode::SLTI:
        return static_cast<i64>(s1) < imm ? 1 : 0;
      default:
        ADD_FAILURE() << "unexpected opcode";
        return 0;
    }
}

const Opcode kRegRegOps[] = {Opcode::ADD, Opcode::SUB, Opcode::AND,
                             Opcode::OR, Opcode::XOR, Opcode::SLL,
                             Opcode::SRL, Opcode::SRA, Opcode::SLT,
                             Opcode::SLTU, Opcode::MUL};
const Opcode kRegImmOps[] = {Opcode::ADDI, Opcode::ANDI, Opcode::ORI,
                             Opcode::XORI, Opcode::SLLI, Opcode::SRLI,
                             Opcode::SRAI, Opcode::SLTI};

} // namespace

class DifferentialAlu : public ::testing::TestWithParam<u64>
{
};

TEST_P(DifferentialAlu, RandomProgramMatchesHostMirror)
{
    Rng rng(GetParam());
    u64 host_regs[isa::numArchRegs] = {};

    Assembler a;
    // Seed registers r1..r15 with random values, mirrored on the
    // host.
    for (u8 r = 1; r <= 15; ++r) {
        u64 v = rng.next() >> rng.nextBounded(56);
        a.movi(r, static_cast<i64>(v));
        host_regs[r] = v;
    }

    // 300 random ALU ops over r1..r15.
    for (int i = 0; i < 300; ++i) {
        u8 rd = static_cast<u8>(1 + rng.nextBounded(15));
        u8 rs1 = static_cast<u8>(rng.nextBounded(16));
        if (rng.chance(0.6)) {
            Opcode op = kRegRegOps[rng.nextBounded(
                sizeof(kRegRegOps) / sizeof(kRegRegOps[0]))];
            u8 rs2 = static_cast<u8>(rng.nextBounded(16));
            switch (op) {
              case Opcode::ADD: a.add(rd, rs1, rs2); break;
              case Opcode::SUB: a.sub(rd, rs1, rs2); break;
              case Opcode::AND: a.and_(rd, rs1, rs2); break;
              case Opcode::OR: a.or_(rd, rs1, rs2); break;
              case Opcode::XOR: a.xor_(rd, rs1, rs2); break;
              case Opcode::SLL: a.sll(rd, rs1, rs2); break;
              case Opcode::SRL: a.srl(rd, rs1, rs2); break;
              case Opcode::SRA: a.sra(rd, rs1, rs2); break;
              case Opcode::SLT: a.slt(rd, rs1, rs2); break;
              case Opcode::SLTU: a.sltu(rd, rs1, rs2); break;
              default: a.mul(rd, rs1, rs2); break;
            }
            host_regs[rd] =
                hostAlu(op, host_regs[rs1], host_regs[rs2], 0);
        } else {
            Opcode op = kRegImmOps[rng.nextBounded(
                sizeof(kRegImmOps) / sizeof(kRegImmOps[0]))];
            bool shift = op == Opcode::SLLI || op == Opcode::SRLI ||
                         op == Opcode::SRAI;
            i64 imm = shift ? static_cast<i64>(rng.nextBounded(64))
                            : rng.nextRange(-(1 << 20), 1 << 20);
            switch (op) {
              case Opcode::ADDI: a.addi(rd, rs1, imm); break;
              case Opcode::ANDI: a.andi(rd, rs1, imm); break;
              case Opcode::ORI: a.ori(rd, rs1, imm); break;
              case Opcode::XORI: a.xori(rd, rs1, imm); break;
              case Opcode::SLLI: a.slli(rd, rs1, imm); break;
              case Opcode::SRLI: a.srli(rd, rs1, imm); break;
              case Opcode::SRAI: a.srai(rd, rs1, imm); break;
              default: a.slti(rd, rs1, imm); break;
            }
            host_regs[rd] = hostAlu(op, host_regs[rs1], 0, imm);
        }
    }
    a.halt();

    emu::Emulator emulator(a.finish(), "diff");
    emu::DynOp op;
    while (emulator.next(op)) {
    }

    for (unsigned r = 0; r < isa::numArchRegs; ++r)
        EXPECT_EQ(emulator.intReg(r), host_regs[r]) << "r" << r;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialAlu,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

TEST(EnvironmentPrologue, PopulatesUpperRegisters)
{
    isa::Assembler a;
    workloads::environmentPrologue(a, 0x123);
    a.halt();
    emu::Emulator emulator(a.finish(), "prologue");
    emu::DynOp op;
    while (emulator.next(op)) {
    }

    // All of r16..r30 hold nonzero values...
    unsigned nonzero = 0, wide = 0, small = 0;
    for (unsigned r = 16; r <= 30; ++r) {
        u64 v = emulator.intReg(r);
        nonzero += v != 0;
        wide += v > (u64{1} << 40);
        small += v != 0 && v < (1 << 20);
    }
    EXPECT_EQ(nonzero, 15u);
    // ...with a mix of magnitudes (pointers, wide hashes, small ints).
    EXPECT_GE(wide, 4u);
    EXPECT_GE(small, 2u);
}

TEST(EnvironmentPrologue, StackPointersFormSimilarityGroup)
{
    isa::Assembler a;
    workloads::environmentPrologue(a, 0x456);
    a.halt();
    emu::Emulator emulator(a.finish(), "prologue");
    emu::DynOp op;
    while (emulator.next(op)) {
    }
    // r29/r30/r28 are stack-frame pointers: (64-16)-similar.
    u64 sp = emulator.intReg(29);
    EXPECT_EQ(similarityTag(sp, 16),
              similarityTag(emulator.intReg(30), 16));
    EXPECT_EQ(similarityTag(sp, 16),
              similarityTag(emulator.intReg(28), 16));
}

} // namespace carf
