/**
 * @file
 * Functional tests of the emulator: per-opcode semantics, memory,
 * control flow, the zero register, and the trace records.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "isa/assembler.hh"

namespace carf
{

using namespace carf::isa;
using emu::DynOp;
using emu::Emulator;

namespace
{

/** Run a halting program to completion; return the emulator. */
Emulator
runProgram(Program program)
{
    Emulator emulator(std::move(program), "test");
    DynOp op;
    while (emulator.next(op)) {
    }
    EXPECT_TRUE(emulator.halted());
    return emulator;
}

} // namespace

TEST(Emulator, ArithmeticBasics)
{
    Assembler a;
    a.movi(R1, 20);
    a.movi(R2, 22);
    a.add(R3, R1, R2);
    a.sub(R4, R1, R2);
    a.mul(R5, R1, R2);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R3), 42u);
    EXPECT_EQ(emulator.intReg(R4), static_cast<u64>(-2));
    EXPECT_EQ(emulator.intReg(R5), 440u);
}

TEST(Emulator, LogicAndShifts)
{
    Assembler a;
    a.movi(R1, 0xf0f0);
    a.movi(R2, 0x0ff0);
    a.and_(R3, R1, R2);
    a.or_(R4, R1, R2);
    a.xor_(R5, R1, R2);
    a.slli(R6, R1, 4);
    a.srli(R7, R1, 4);
    a.movi(R8, -16);
    a.srai(R9, R8, 2);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R3), 0x00f0u);
    EXPECT_EQ(emulator.intReg(R4), 0xfff0u);
    EXPECT_EQ(emulator.intReg(R5), 0xff00u);
    EXPECT_EQ(emulator.intReg(R6), 0xf0f00u);
    EXPECT_EQ(emulator.intReg(R7), 0xf0fu);
    EXPECT_EQ(emulator.intReg(R9), static_cast<u64>(-4));
}

TEST(Emulator, Comparisons)
{
    Assembler a;
    a.movi(R1, -5);
    a.movi(R2, 3);
    a.slt(R3, R1, R2);  // signed: -5 < 3 -> 1
    a.sltu(R4, R1, R2); // unsigned: huge < 3 -> 0
    a.slti(R5, R2, 10);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R3), 1u);
    EXPECT_EQ(emulator.intReg(R4), 0u);
    EXPECT_EQ(emulator.intReg(R5), 1u);
}

TEST(Emulator, DivisionAndRemainderIncludingZeroDivisor)
{
    Assembler a;
    a.movi(R1, -7);
    a.movi(R2, 2);
    a.divx(R3, R1, R2);
    a.remx(R4, R1, R2);
    a.divx(R5, R1, R0); // divide by zero: all ones
    a.remx(R6, R1, R0); // remainder by zero: dividend
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R3), static_cast<u64>(-3));
    EXPECT_EQ(emulator.intReg(R4), static_cast<u64>(-1));
    EXPECT_EQ(emulator.intReg(R5), ~0ull);
    EXPECT_EQ(emulator.intReg(R6), static_cast<u64>(-7));
}

TEST(Emulator, ZeroRegisterIsImmutable)
{
    Assembler a;
    a.movi(R0, 99);
    a.addi(R0, R0, 5);
    a.add(R1, R0, R0);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R0), 0u);
    EXPECT_EQ(emulator.intReg(R1), 0u);
}

TEST(Emulator, MemoryRoundTripAllWidths)
{
    Assembler a;
    a.movi(R1, 0x5000);
    a.movi(R2, -2);        // 0xfff...fe
    a.st(R2, R1, 0);
    a.ld(R3, R1, 0);
    a.sw(R2, R1, 16);
    a.lw(R4, R1, 16);      // sign-extended 32-bit
    a.sb(R2, R1, 32);
    a.lb(R5, R1, 32);      // sign-extended 8-bit
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R3), static_cast<u64>(-2));
    EXPECT_EQ(emulator.intReg(R4), static_cast<u64>(-2));
    EXPECT_EQ(emulator.intReg(R5), static_cast<u64>(-2));
}

TEST(Emulator, DataSegmentPreloaded)
{
    Assembler a;
    a.dataU64(0x2000, {0x1111, 0x2222});
    a.movi(R1, 0x2000);
    a.ld(R2, R1, 8);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R2), 0x2222u);
}

TEST(Emulator, BranchTakenAndNotTaken)
{
    Assembler a;
    a.movi(R1, 1);
    a.beq(R1, R0, "skip"); // not taken
    a.addi(R2, R2, 10);
    a.label("skip");
    a.bne(R1, R0, "skip2"); // taken
    a.addi(R2, R2, 100);    // skipped
    a.label("skip2");
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R2), 10u);
}

TEST(Emulator, AllConditionalBranchPredicates)
{
    Assembler a;
    a.movi(R1, -1);
    a.movi(R2, 1);
    a.movi(R10, 0);
    a.blt(R1, R2, "l1"); // signed taken
    a.halt();
    a.label("l1");
    a.bge(R2, R1, "l2"); // signed taken
    a.halt();
    a.label("l2");
    a.bltu(R2, R1, "l3"); // unsigned: 1 < huge, taken
    a.halt();
    a.label("l3");
    a.bgeu(R1, R2, "l4"); // unsigned taken
    a.halt();
    a.label("l4");
    a.addi(R10, R10, 1);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R10), 1u);
}

TEST(Emulator, JalAndJalrLinkage)
{
    Assembler a;
    a.jal(R31, "func"); // pc 0 -> link 1
    a.addi(R2, R2, 1);  // pc 1 (return lands here)
    a.halt();           // pc 2
    a.label("func");    // pc 3
    a.addi(R3, R3, 1);
    a.jalr(R0, R31, 0); // return
    auto emulator = runProgram(a.finish());
    EXPECT_EQ(emulator.intReg(R2), 1u);
    EXPECT_EQ(emulator.intReg(R3), 1u);
    EXPECT_EQ(emulator.intReg(R31), 1u);
}

TEST(Emulator, FloatingPointArithmetic)
{
    Assembler a;
    a.dataF64(0x3000, {1.5, 2.5});
    a.movi(R1, 0x3000);
    a.fld(F1, R1, 0);
    a.fld(F2, R1, 8);
    a.fadd(F3, F1, F2);
    a.fmul(F4, F1, F2);
    a.fsub(F5, F2, F1);
    a.fdiv(F6, F2, F1);
    a.fneg(F7, F1);
    a.fst(F3, R1, 16);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_DOUBLE_EQ(emulator.fpReg(F3), 4.0);
    EXPECT_DOUBLE_EQ(emulator.fpReg(F4), 3.75);
    EXPECT_DOUBLE_EQ(emulator.fpReg(F5), 1.0);
    EXPECT_DOUBLE_EQ(emulator.fpReg(F6), 2.5 / 1.5);
    EXPECT_DOUBLE_EQ(emulator.fpReg(F7), -1.5);
    EXPECT_DOUBLE_EQ(emulator.memory().readF64(0x3010), 4.0);
}

TEST(Emulator, IntFpConversions)
{
    Assembler a;
    a.movi(R1, -3);
    a.fcvtif(F1, R1);
    a.fcvtfi(R2, F1);
    a.halt();
    auto emulator = runProgram(a.finish());
    EXPECT_DOUBLE_EQ(emulator.fpReg(F1), -3.0);
    EXPECT_EQ(emulator.intReg(R2), static_cast<u64>(-3));
}

TEST(Emulator, TraceRecordsCarryValues)
{
    Assembler a;
    a.movi(R1, 5);
    a.movi(R2, 7);
    a.add(R3, R1, R2);
    a.st(R3, R1, 3);
    a.halt();
    Emulator emulator(a.finish(), "trace-test");

    DynOp op;
    ASSERT_TRUE(emulator.next(op)); // movi r1
    EXPECT_EQ(op.rdValue, 5u);
    EXPECT_EQ(op.seq, 0u);
    ASSERT_TRUE(emulator.next(op)); // movi r2
    ASSERT_TRUE(emulator.next(op)); // add
    EXPECT_EQ(op.rs1Value, 5u);
    EXPECT_EQ(op.rs2Value, 7u);
    EXPECT_EQ(op.rdValue, 12u);
    EXPECT_TRUE(op.writesIntReg());
    ASSERT_TRUE(emulator.next(op)); // store
    EXPECT_EQ(op.effAddr, 8u);
    EXPECT_EQ(op.rs2Value, 12u);
    EXPECT_FALSE(op.writesReg());
    ASSERT_TRUE(emulator.next(op)); // halt
    EXPECT_FALSE(emulator.next(op));
}

TEST(Emulator, BranchTraceRecordsOutcome)
{
    Assembler a;
    a.movi(R1, 1);
    a.bne(R1, R0, "t");
    a.nop();
    a.label("t");
    a.halt();
    Emulator emulator(a.finish(), "branch-test");
    DynOp op;
    emulator.next(op);
    emulator.next(op);
    EXPECT_TRUE(op.isBranch());
    EXPECT_TRUE(op.taken);
    EXPECT_EQ(op.nextPc, 3u);
}

TEST(Emulator, InstructionBudgetCapsStream)
{
    Assembler a;
    a.label("spin");
    a.addi(R1, R1, 1);
    a.jmp("spin");
    Emulator emulator(a.finish(), "cap-test", 100);
    DynOp op;
    u64 count = 0;
    while (emulator.next(op))
        ++count;
    EXPECT_EQ(count, 100u);
    EXPECT_EQ(emulator.executedInsts(), 100u);
}

TEST(Emulator, WritesIntRegFalseForR0Dest)
{
    Assembler a;
    a.jal(R0, "next");
    a.label("next");
    a.halt();
    Emulator emulator(a.finish(), "r0-test");
    DynOp op;
    emulator.next(op);
    EXPECT_FALSE(op.writesIntReg());
}

} // namespace carf
