/**
 * @file
 * Tests for the register-file backend registry and the RegFileModel
 * hook contract: built-in registration, factory construction, fatal
 * diagnostics for unknown/duplicate names, external self-registration
 * through RegFileRegistrar, the port-reduction backend's conflict
 * arbitration, and bit-identity of the model-hook energy/area/delay
 * evaluation against the legacy content-aware/conventional helpers.
 */

#include <gtest/gtest.h>

#include "core/params.hh"
#include "core/pipeline.hh"
#include "energy/report.hh"
#include "regfile/baseline.hh"
#include "regfile/port_reduction.hh"
#include "regfile/registry.hh"
#include "sim/reporting.hh"
#include "sim/simulator.hh"

namespace carf
{

namespace
{

std::vector<std::string>
builtinNames()
{
    return {"baseline", "content-aware", "port-reduction", "unlimited"};
}

} // namespace

TEST(Registry, ListsBuiltinBackendsSorted)
{
    auto names = regfile::registry().names();
    ASSERT_GE(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const std::string &name : builtinNames())
        EXPECT_NE(regfile::registry().find(name), nullptr) << name;
}

TEST(Registry, FactoryConstructsEveryRegisteredBackend)
{
    for (const std::string &name : regfile::registry().names()) {
        auto params = core::CoreParams::forBackend(name);
        auto rf = regfile::makeRegFile(name, params.regFileParams());
        ASSERT_NE(rf, nullptr) << name;
        EXPECT_EQ(rf->entries(), params.physIntRegs) << name;
        EXPECT_FALSE(rf->banks().empty()) << name;
        // The hook contract holds on a fresh instance of any model.
        EXPECT_EQ(rf->checkInvariants(), "") << name;
        EXPECT_TRUE(rf->canServeReads(1)) << name;
        regfile::AccessCounts counts;
        EXPECT_FALSE(rf->energyTerms(counts, 0).empty()) << name;
    }
}

TEST(Registry, FindReturnsNullForUnknownName)
{
    EXPECT_EQ(regfile::registry().find("no-such-model"), nullptr);
}

TEST(RegistryDeathTest, UnknownBackendNameIsFatal)
{
    auto params = core::CoreParams::baseline();
    EXPECT_DEATH(
        regfile::makeRegFile("no-such-model", params.regFileParams()),
        "unknown register-file backend");
}

TEST(RegistryDeathTest, UnknownBackendInCoreParamsIsFatal)
{
    // The compatibility path: a CoreParams naming a missing backend
    // dies at pipeline construction with the registry diagnostic.
    auto params = core::CoreParams::forBackend("typo-backend");
    EXPECT_DEATH(core::Pipeline pipeline(params),
                 "unknown register-file backend");
}

TEST(RegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_DEATH(regfile::registry().add(
                     "baseline", "dup",
                     [](const std::string &,
                        const regfile::RegFileParams &)
                         -> std::unique_ptr<regfile::RegisterFile> {
                         return nullptr;
                     }),
                 "registered twice");
}

TEST(RegistryDeathTest, PortReductionValidatesSharedPorts)
{
    auto params = core::CoreParams::portReduction(1);
    EXPECT_DEATH(regfile::makeRegFile("port-reduction",
                                      params.regFileParams()),
                 "at least 2 shared read ports");
}

// --- external self-registration (the add-a-backend recipe) ---

namespace
{

/** A trivial out-of-tree model: flat file with a name of its own. */
class TestZooRegFile : public regfile::BaselineRegFile
{
  public:
    using BaselineRegFile::BaselineRegFile;
};

const regfile::RegFileRegistrar testZooRegistrar(
    "test-zoo", "registry test backend",
    [](const std::string &instance, const regfile::RegFileParams &p) {
        auto rf = std::make_unique<TestZooRegFile>(instance, p.entries);
        rf->setPortGeometry(p.readPorts, p.writePorts);
        return rf;
    });

} // namespace

TEST(Registry, ExternalBackendSelfRegistersAndSimulates)
{
    ASSERT_NE(regfile::registry().find("test-zoo"), nullptr);
    auto rf = regfile::makeRegFile(
        "test-zoo", core::CoreParams::baseline().regFileParams());
    EXPECT_EQ(rf->entries(), 112u);

    // End to end: the whole pipeline runs on the new backend purely
    // by name, no core changes.
    sim::SimOptions options;
    options.maxInsts = 5000;
    auto result = sim::simulate(workloads::findWorkload("counters"),
                                core::CoreParams::forBackend("test-zoo"),
                                options);
    EXPECT_EQ(result.committedInsts, options.maxInsts);
    EXPECT_EQ(result.config, "test-zoo");
}

// --- port-reduction conflict arbitration ---

TEST(PortReduction, CountsConflictOpsAndCycles)
{
    regfile::PortReductionParams pr;
    pr.sharedReadPorts = 2;
    regfile::PortReductionRegFile rf("t", 16, pr);

    rf.beginCycle();
    EXPECT_TRUE(rf.canServeReads(2));
    rf.consumeReadPorts(2);
    EXPECT_FALSE(rf.canServeReads(1)); // pool exhausted: refusal 1
    EXPECT_FALSE(rf.canServeReads(1)); // refusal 2, same cycle
    EXPECT_EQ(rf.portStats().conflictOps, 2u);
    EXPECT_EQ(rf.portStats().conflictCycles, 1u);

    rf.beginCycle(); // pool refills; no new conflict yet
    EXPECT_TRUE(rf.canServeReads(2));
    EXPECT_EQ(rf.portStats().conflictCycles, 1u);

    // Requests wider than the whole pool can never be served.
    EXPECT_FALSE(rf.canServeReads(3));
    EXPECT_EQ(rf.portStats().conflictCycles, 2u);
}

TEST(PortReduction, BanksReportSharedReadPorts)
{
    auto params = core::CoreParams::portReduction(3);
    auto rf = regfile::makeRegFile("port-reduction",
                                   params.regFileParams());
    auto banks = rf->banks();
    ASSERT_EQ(banks.size(), 1u);
    EXPECT_EQ(banks[0].readPorts, 3u);
    EXPECT_EQ(banks[0].writePorts, params.intRfWritePorts);
    EXPECT_EQ(banks[0].entries, params.physIntRegs);
}

TEST(PortReduction, FewerPortsCostIpcButNeverCorrectness)
{
    sim::SimOptions options;
    options.maxInsts = 20000;
    const auto &w = workloads::findWorkload("hash_table");
    auto wide = sim::simulate(w, core::CoreParams::baseline(), options);
    auto narrow =
        sim::simulate(w, core::CoreParams::portReduction(2), options);
    EXPECT_EQ(narrow.committedInsts, options.maxInsts);
    EXPECT_LE(narrow.ipc, wide.ipc);
    EXPECT_GT(narrow.portConflictCycles, 0u);
}

// --- model-hook evaluation vs the legacy energy/area/delay helpers ---

TEST(ModelHooks, ContentAwareEnergyAreaDelayMatchLegacy)
{
    energy::RixnerModel model;
    auto params = core::CoreParams::contentAware();
    auto rf = regfile::makeRegFile("content-aware",
                                   params.regFileParams());
    auto geom = energy::caGeometry(params.physIntRegs, params.ca,
                                   params.intRfReadPorts,
                                   params.intRfWritePorts);

    EXPECT_EQ(energy::modelArea(model, rf->banks()),
              energy::caTotalArea(model, geom));
    EXPECT_EQ(energy::modelMaxAccessTime(model, rf->banks()),
              energy::caMaxAccessTime(model, geom));

    regfile::AccessCounts counts;
    counts.reads[0] = 101; counts.reads[1] = 53; counts.reads[2] = 29;
    counts.writes[0] = 97; counts.writes[1] = 41; counts.writes[2] = 17;
    counts.shortProbeReads = 211;
    EXPECT_EQ(energy::modelEnergy(model, rf->energyTerms(counts, 777)),
              energy::contentAwareEnergy(model, geom, counts, 777));
}

TEST(ModelHooks, FlatBackendEnergyMatchesConventional)
{
    energy::RixnerModel model;
    regfile::AccessCounts counts;
    counts.reads[0] = 12345;
    counts.writes[0] = 6789;

    auto baseline = regfile::makeRegFile(
        "baseline", core::CoreParams::baseline().regFileParams());
    EXPECT_EQ(energy::modelEnergy(model,
                                  baseline->energyTerms(counts, 0)),
              energy::conventionalEnergy(
                  model, energy::baselineGeometry(), counts));

    auto unlimited = regfile::makeRegFile(
        "unlimited", core::CoreParams::unlimited().regFileParams());
    EXPECT_EQ(energy::modelEnergy(model,
                                  unlimited->energyTerms(counts, 0)),
              energy::conventionalEnergy(
                  model, energy::unlimitedGeometry(), counts));
}

TEST(ModelHooks, DescribeConfigMatchesLegacyStrings)
{
    EXPECT_EQ(sim::describeConfig(core::CoreParams::unlimited()),
              "unlimited (160 regs, 16R/8W)");
    EXPECT_EQ(sim::describeConfig(core::CoreParams::baseline()),
              "baseline (112 regs, 8R/6W)");
    EXPECT_EQ(sim::describeConfig(core::CoreParams::contentAware()),
              "content-aware (112 regs, 8R/6W, d+n=20, M=8, K=48)");
    EXPECT_EQ(sim::describeConfig(core::CoreParams::portReduction()),
              "port-reduction (112 regs, 8R/6W, shared-rd=4)");
}

} // namespace carf
