/**
 * @file
 * Tests for the workload suite: every kernel builds a valid program,
 * produces the expected dynamic behaviour, and streams deterministic
 * traces. Includes functional spot checks of individual kernels.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "workloads/fp_kernels.hh"
#include "workloads/int_kernels.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

namespace carf::workloads
{

TEST(WorkloadRegistry, SuitesArePopulated)
{
    EXPECT_GE(intSuite().size(), 12u);
    EXPECT_GE(fpSuite().size(), 8u);
    EXPECT_GE(stallSuite().size(), 3u);
    EXPECT_EQ(allWorkloads().size(), intSuite().size() +
                                         fpSuite().size() +
                                         stallSuite().size());
    for (const auto &w : intSuite())
        EXPECT_EQ(static_cast<int>(w.suite), static_cast<int>(Suite::Int));
    for (const auto &w : fpSuite())
        EXPECT_EQ(static_cast<int>(w.suite), static_cast<int>(Suite::Fp));
    for (const auto &w : stallSuite())
        EXPECT_EQ(static_cast<int>(w.suite),
                  static_cast<int>(Suite::Stall));
}

TEST(WorkloadRegistry, NamesAreUnique)
{
    std::vector<std::string> names;
    for (const auto &w : allWorkloads())
        names.push_back(w.name);
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()),
              names.end());
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)findWorkload("no_such_kernel"), "unknown");
}

class EveryWorkload : public ::testing::TestWithParam<size_t>
{
};

TEST_P(EveryWorkload, StreamsFullBudgetWithoutFaults)
{
    const Workload &w = allWorkloads()[GetParam()];
    auto trace = makeTrace(w, 30000);
    emu::DynOp op;
    u64 count = 0;
    u64 branches = 0, mem_ops = 0;
    while (trace->next(op)) {
        ++count;
        branches += op.isBranch();
        mem_ops += op.isLoad() || op.isStore();
    }
    EXPECT_EQ(count, 30000u) << w.name;
    // Every kernel loops (has branches); every kernel except pure
    // counter loops touches memory.
    EXPECT_GT(branches, 0u) << w.name;
    EXPECT_GT(mem_ops, 0u) << w.name;
}

TEST_P(EveryWorkload, TracesAreDeterministic)
{
    const Workload &w = allWorkloads()[GetParam()];
    auto t1 = makeTrace(w, 5000);
    auto t2 = makeTrace(w, 5000);
    emu::DynOp a, b;
    while (true) {
        bool ok1 = t1->next(a);
        bool ok2 = t2->next(b);
        ASSERT_EQ(ok1, ok2);
        if (!ok1)
            break;
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.rdValue, b.rdValue);
        ASSERT_EQ(a.effAddr, b.effAddr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EveryWorkload,
    ::testing::Range(size_t{0}, allWorkloads().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return allWorkloads()[info.param].name;
    });

TEST(PointerChase, VisitsEveryNodeOnce)
{
    // With N nodes linked in a single cycle, the traversal must visit
    // N distinct addresses before repeating.
    unsigned nodes = 256;
    emu::Emulator emulator(buildPointerChase(nodes), "chase");
    emu::DynOp op;
    std::vector<Addr> next_ptrs;
    while (next_ptrs.size() < nodes + 1 && emulator.next(op)) {
        if (op.isLoad() && op.effAddr % 16 == 0) // next-pointer loads
            next_ptrs.push_back(op.effAddr);
    }
    ASSERT_EQ(next_ptrs.size(), nodes + 1);
    auto unique_until_wrap = next_ptrs;
    unique_until_wrap.pop_back();
    std::sort(unique_until_wrap.begin(), unique_until_wrap.end());
    EXPECT_EQ(std::adjacent_find(unique_until_wrap.begin(),
                                 unique_until_wrap.end()),
              unique_until_wrap.end());
    // The N+1-th next-pointer load closes the cycle.
    EXPECT_EQ(next_ptrs.back(), next_ptrs.front());
}

TEST(Counters, ValuesStaySimple)
{
    emu::Emulator emulator(buildCounters(64), "counters");
    emu::DynOp op;
    for (int i = 0; i < 20000 && emulator.next(op); ++i) {
        if (op.writesIntReg() && op.pc > 20) { // skip prologue movis
            // Counter kernel register values stay far below 2^19.
            EXPECT_LT(op.rdValue, 1ull << 19) << "pc " << op.pc;
        }
    }
}

TEST(Crc, ProducesWideValues)
{
    emu::Emulator emulator(buildCrc(1 << 12), "crc");
    emu::DynOp op;
    u64 wide = 0, total = 0;
    for (int i = 0; i < 20000 && emulator.next(op); ++i) {
        if (op.writesIntReg()) {
            ++total;
            wide += op.rdValue > (1ull << 40);
        }
    }
    // CRC state updates dominate: a large share of results are wide.
    EXPECT_GT(static_cast<double>(wide) / total, 0.3);
}

TEST(Synthetic, RespectsOperationMix)
{
    SyntheticParams params;
    params.loadFraction = 0.3;
    params.storeFraction = 0.1;
    params.bodyLength = 2000;
    emu::Emulator emulator(buildSynthetic(params), "syn");
    emu::DynOp op;
    u64 loads = 0, stores = 0, total = 0;
    while (total < 100000 && emulator.next(op)) {
        ++total;
        loads += op.isLoad();
        stores += op.isStore();
    }
    // Each load pattern emits 4 instructions (1 load), each store
    // pattern 4 (1 store); with the other patterns the dynamic load
    // share lands near loadFraction/avg-pattern-length. Just check
    // ordering and nonzero presence with generous bounds.
    EXPECT_GT(loads, stores);
    EXPECT_GT(static_cast<double>(loads) / total, 0.04);
    EXPECT_GT(static_cast<double>(stores) / total, 0.01);
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticParams p1, p2;
    p2.seed = p1.seed + 1;
    isa::Program a = buildSynthetic(p1);
    isa::Program b = buildSynthetic(p2);
    bool differ = a.size() != b.size();
    for (size_t i = 0; !differ && i < a.size(); ++i)
        differ = !(a.at(i).op == b.at(i).op && a.at(i).imm == b.at(i).imm);
    EXPECT_TRUE(differ);
}

TEST(SyntheticDeathTest, TooManyRegionsIsFatal)
{
    SyntheticParams params;
    params.regions = 9;
    EXPECT_DEATH((void)buildSynthetic(params), "regions");
}

TEST(FpKernels, MonteCarloCountsConverge)
{
    emu::Emulator emulator(buildMonteCarlo(), "mc", 400000);
    emu::DynOp op;
    while (emulator.next(op)) {
    }
    u64 inside = emulator.memory().readU64(0xd2f8'8000);
    u64 total = emulator.memory().readU64(0xd2f8'8008);
    ASSERT_GT(total, 1000u);
    double ratio = static_cast<double>(inside) / total;
    // pi/4 ~ 0.785.
    EXPECT_NEAR(ratio, 0.785, 0.05);
}

TEST(FpKernels, DaxpyWritesExpectedValues)
{
    emu::Emulator emulator(buildDaxpy(1 << 8), "daxpy", 10000);
    // Run one full pass over 256 elements (~9 insts each).
    emu::DynOp op;
    u64 fp_stores = 0;
    while (fp_stores < 256 && emulator.next(op))
        fp_stores += op.op == isa::Opcode::FST;
    EXPECT_EQ(fp_stores, 256u);
}

} // namespace carf::workloads
