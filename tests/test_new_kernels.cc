/**
 * @file
 * Functional spot checks of the second-wave kernels (BST search, DFA
 * scan, bit packing, FFT butterflies, N-body) — each kernel's claimed
 * behaviour is verified against a host-side reference.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "workloads/fp_kernels.hh"
#include "workloads/int_kernels.hh"

namespace carf::workloads
{

using namespace carf::isa;

TEST(BstSearch, HitRateNearConfiguredMix)
{
    // Queries are drawn half from present keys, half at random from
    // a 24-bit space holding ~nodes keys, so the hit counter (r10)
    // should track ~50% of completed queries.
    emu::Emulator emulator(buildBstSearch(1 << 10), "bst", 400000);
    emu::DynOp op;
    u64 queries = 0;
    while (emulator.next(op)) {
        // One "addi r4, r4, 8" per query loop iteration.
        if (op.op == Opcode::ADDI && op.rd == R4 && op.rs1 == R4)
            ++queries;
    }
    u64 hits = emulator.intReg(R10);
    ASSERT_GT(queries, 1000u);
    double hit_rate = static_cast<double>(hits) / queries;
    EXPECT_NEAR(hit_rate, 0.5, 0.1);
}

TEST(BstSearch, SearchDepthIsLogarithmic)
{
    // A balanced tree of 2^10 nodes has depth ~10: the per-query
    // node-key loads (offset-0 loads from the BST region) must
    // average well below the linear-scan depth.
    emu::Emulator emulator(buildBstSearch(1 << 10), "bst", 200000);
    emu::DynOp op;
    u64 key_loads = 0, queries = 0;
    while (emulator.next(op)) {
        if (op.op == Opcode::LD && op.effAddr >= 0x4102'c000 &&
            op.effAddr < 0x4102'c000 + (1 << 10) * 32) {
            key_loads += op.effAddr % 32 == 0;
        }
        if (op.op == Opcode::ADDI && op.rd == R4 && op.rs1 == R4)
            ++queries;
    }
    ASSERT_GT(queries, 500u);
    double avg_depth = static_cast<double>(key_loads) / queries;
    EXPECT_LT(avg_depth, 14.0);
    EXPECT_GT(avg_depth, 5.0);
}

TEST(DfaScan, StateStaysInRange)
{
    const unsigned states = 16;
    emu::Emulator emulator(buildDfaScan(1 << 12, states), "dfa",
                           100000);
    emu::DynOp op;
    while (emulator.next(op)) {
        // r4 holds the DFA state after each transition.
        if (op.writesIntReg() && op.rd == R4)
            EXPECT_LT(op.rdValue, states);
    }
}

TEST(DfaScan, AcceptCounterMatchesUniformExpectation)
{
    // Random transition tables visit state 0 about 1/states of the
    // time once mixed.
    const unsigned states = 16;
    emu::Emulator emulator(buildDfaScan(1 << 12, states), "dfa",
                           300000);
    emu::DynOp op;
    u64 transitions = 0;
    while (emulator.next(op)) {
        if (op.op == Opcode::ANDI && op.rd == R4)
            ++transitions;
    }
    double accept_rate =
        static_cast<double>(emulator.intReg(R9)) / transitions;
    EXPECT_NEAR(accept_rate, 1.0 / states, 0.05);
}

TEST(BitPack, OutputBitsMatchInputWidths)
{
    // Total bits flushed (32 per output-word store) plus bits still
    // in the accumulator must equal the sum of packed widths.
    emu::Emulator emulator(buildBitPack(1 << 10), "pack", 30000);
    emu::DynOp op;
    u64 flushes = 0, symbols = 0, width_sum = 0, pending_width = 0;
    bool done_one_pass = false;
    while (!done_one_pass && emulator.next(op)) {
        if (op.op == Opcode::SW)
            ++flushes;
        if (op.op == Opcode::SRLI && op.rd == R8)
            pending_width = op.rdValue; // the extracted width field
        // The cursor advance marks the symbol fully packed (and any
        // flush for it already performed).
        if (op.op == Opcode::ADDI && op.rd == R4 && op.rs1 == R4) {
            width_sum += pending_width;
            ++symbols;
        }
        if (symbols == 1 << 10)
            done_one_pass = true;
    }
    ASSERT_TRUE(done_one_pass);
    u64 residual = emulator.intReg(R6); // bit count in accumulator
    EXPECT_EQ(flushes * 32 + residual, width_sum);
}

TEST(FftButterfly, EnergyStaysBounded)
{
    // The 1/sqrt(2) scaling keeps magnitudes statistically stable:
    // after many passes every stored value remains finite and within
    // a loose envelope.
    emu::Emulator emulator(buildFftButterfly(8), "fft", 500000);
    emu::DynOp op;
    while (emulator.next(op)) {
        if (op.op == Opcode::FST) {
            double v;
            u64 bits = op.rs2Value;
            static_assert(sizeof(v) == sizeof(bits));
            std::memcpy(&v, &bits, sizeof(v));
            ASSERT_TRUE(std::isfinite(v));
            ASSERT_LT(std::fabs(v), 1e3);
        }
    }
}

TEST(Nbody, PositionsDriftSlowly)
{
    // With dt=1e-7 the positions must stay near their initial box
    // over a short run (no numerical blow-up).
    emu::Emulator emulator(buildNbody(32), "nbody", 300000);
    emu::DynOp op;
    while (emulator.next(op)) {
        if (op.op == Opcode::FST) {
            double v;
            u64 bits = op.rs2Value;
            std::memcpy(&v, &bits, sizeof(v));
            ASSERT_TRUE(std::isfinite(v));
            ASSERT_LT(std::fabs(v), 1e4);
        }
    }
}

} // namespace carf::workloads
