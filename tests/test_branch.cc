/**
 * @file
 * Tests for the gshare predictor, BTB, and RAS.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/ras.hh"

namespace carf::branch
{

TEST(Gshare, LearnsAlwaysTaken)
{
    // Train long enough for the global history to saturate (all
    // ones) so the final prediction indexes a trained counter.
    Gshare predictor(10);
    u64 pc = 0x40;
    for (int i = 0; i < 30; ++i)
        predictor.update(pc, true);
    EXPECT_TRUE(predictor.predict(pc));
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    Gshare predictor(10);
    u64 pc = 0x44;
    for (int i = 0; i < 8; ++i)
        predictor.update(pc, false);
    EXPECT_FALSE(predictor.predict(pc));
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory)
{
    // A strict T/NT alternation is captured by global history: after
    // warm-up, prediction accuracy should be near-perfect.
    Gshare predictor(12);
    u64 pc = 0x80;
    bool taken = false;
    int correct = 0;
    const int total = 2000, warmup = 500;
    for (int i = 0; i < total; ++i) {
        bool pred = predictor.predict(pc);
        if (i >= warmup && pred == taken)
            ++correct;
        predictor.update(pc, taken);
        taken = !taken;
    }
    EXPECT_GT(correct, (total - warmup) * 95 / 100);
}

TEST(Gshare, RecoversQuicklyAfterSingleFlip)
{
    // Saturated 2-bit counters absorb a single contrary outcome: a
    // heavily-taken branch mispredicts at most a couple of times
    // after one not-taken event (history perturbation included).
    // A 4-bit history limits the perturbation to four rounds.
    Gshare predictor(4);
    u64 pc = 0;
    for (int i = 0; i < 100; ++i)
        predictor.update(pc, true);
    predictor.update(pc, false);
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        if (predictor.predict(pc))
            ++correct;
        predictor.update(pc, true);
    }
    EXPECT_GE(correct, 14);
}

TEST(Btb, MissThenHit)
{
    Btb btb(64);
    u64 target = 0;
    EXPECT_FALSE(btb.lookup(0x10, target));
    btb.update(0x10, 0x99);
    EXPECT_TRUE(btb.lookup(0x10, target));
    EXPECT_EQ(target, 0x99u);
}

TEST(Btb, TagDisambiguatesAliases)
{
    Btb btb(64);
    btb.update(0x10, 0x1);
    // 0x10 + 64 aliases to the same set but has a different tag.
    u64 target = 0;
    EXPECT_FALSE(btb.lookup(0x10 + 64, target));
    btb.update(0x10 + 64, 0x2);
    EXPECT_TRUE(btb.lookup(0x10 + 64, target));
    EXPECT_EQ(target, 0x2u);
    // The original entry was evicted (direct-mapped).
    EXPECT_FALSE(btb.lookup(0x10, target));
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(16);
    btb.update(5, 100);
    btb.update(5, 200);
    u64 target = 0;
    ASSERT_TRUE(btb.lookup(5, target));
    EXPECT_EQ(target, 200u);
}

TEST(BtbDeathTest, NonPowerOfTwoIsFatal)
{
    EXPECT_DEATH(Btb btb(100), "power of two");
}

TEST(Ras, LifoOrder)
{
    Ras ras(8);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    u64 pc = 0;
    EXPECT_TRUE(ras.pop(pc));
    EXPECT_EQ(pc, 3u);
    EXPECT_TRUE(ras.pop(pc));
    EXPECT_EQ(pc, 2u);
    EXPECT_TRUE(ras.pop(pc));
    EXPECT_EQ(pc, 1u);
    EXPECT_FALSE(ras.pop(pc));
}

TEST(Ras, OverflowDropsOldest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // evicts 1
    u64 pc = 0;
    EXPECT_TRUE(ras.pop(pc));
    EXPECT_EQ(pc, 3u);
    EXPECT_TRUE(ras.pop(pc));
    EXPECT_EQ(pc, 2u);
    EXPECT_FALSE(ras.pop(pc));
}

TEST(Ras, EmptyInitially)
{
    Ras ras(4);
    EXPECT_TRUE(ras.empty());
    u64 pc;
    EXPECT_FALSE(ras.pop(pc));
}

} // namespace carf::branch
