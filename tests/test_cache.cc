/**
 * @file
 * Tests for the cache model and the two-level hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace carf::mem
{

namespace
{

CacheParams
tinyCache()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    return {"tiny", 512, 2, 64, 1};
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x103f)); // same line
    EXPECT_FALSE(cache.access(0x1040)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache cache(tinyCache());
    // Three lines mapping to the same set (stride = sets * line = 256).
    cache.access(0x0000);
    cache.access(0x0100);
    cache.access(0x0000); // refresh LRU of line 0
    cache.access(0x0200); // evicts 0x0100
    EXPECT_TRUE(cache.probe(0x0000));
    EXPECT_FALSE(cache.probe(0x0100));
    EXPECT_TRUE(cache.probe(0x0200));
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.probe(0x42));
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
    EXPECT_FALSE(cache.probe(0x42));
}

TEST(Cache, MissRate)
{
    Cache cache(tinyCache());
    cache.access(0);
    cache.access(0);
    cache.access(0);
    cache.access(64);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache cache(tinyCache());
    for (Addr addr = 0; addr < 512; addr += 64)
        cache.access(addr);
    for (Addr addr = 0; addr < 512; addr += 64)
        EXPECT_TRUE(cache.probe(addr)) << addr;
}

TEST(CacheDeathTest, BadGeometryIsFatal)
{
    CacheParams p{"bad", 500, 2, 64, 1};
    EXPECT_DEATH(Cache cache(p), "divisible");
}

TEST(Hierarchy, LatenciesCompose)
{
    HierarchyParams params; // Table 1 defaults
    Hierarchy memory(params);
    // Cold: L1 miss + L2 miss + memory.
    EXPECT_EQ(memory.dataAccess(0x8000), 1u + 10u + 100u);
    // Warm L1.
    EXPECT_EQ(memory.dataAccess(0x8000), 1u);
    // A different line in the same L2 after L1 eviction would be
    // 1 + 10; emulate by thrashing L1 with 32KB/4-way conflicts.
    for (Addr addr = 0; addr < 8 * 32 * 1024; addr += 8 * 1024)
        memory.dataAccess(0x100000 + addr);
    Cycle lat = memory.dataAccess(0x8000);
    EXPECT_TRUE(lat == 1 || lat == 11) << lat;
}

TEST(Hierarchy, InstAndDataStreamsAreSplit)
{
    Hierarchy memory;
    memory.instAccess(0x4000);
    // Same address on the data side still misses L1 (split caches)
    // but hits the unified L2.
    EXPECT_EQ(memory.dataAccess(0x4000), 1u + 10u);
}

TEST(Hierarchy, Dl1PortCount)
{
    HierarchyParams params;
    params.dl1Ports = 2;
    Hierarchy memory(params);
    EXPECT_EQ(memory.dl1Ports(), 2u);
}

} // namespace carf::mem
