/**
 * @file
 * §4 baseline-selection study: the paper justifies its baseline
 * (112 registers, 8 read / 6 write ports) by showing each reduction
 * from the unlimited file (160 regs, 16R/8W) costs almost nothing:
 * 112 registers ~1% IPC, 8 read ports 0.17%, 6 write ports 0.21%.
 */

#include "bench_util.hh"

using namespace carf;

namespace
{

double
relIpc(const core::CoreParams &params, const sim::SuiteRun &reference,
       const bench::BenchArgs &args, const std::string &label)
{
    auto run = args.runSuite(workloads::intSuite(), params, label);
    return sim::meanRelativeIpc(run, reference);
}

} // namespace

int
main(int argc, char **argv)
{
    auto args =
        bench::BenchArgs::parse("tab1_baseline_selection", argc, argv);
    bench::printHeader(
        "§4: baseline register file selection (INT suite)",
        "112 regs cost ~1%; 8R costs 0.17%; 6W costs 0.21% vs "
        "unlimited");

    auto unlimited = args.runSuite(workloads::intSuite(),
                                   core::CoreParams::unlimited(),
                                   "unlimited INT");

    Table table("relative IPC vs unlimited (160 regs, 16R/8W)");
    table.setColumns({"configuration", "relative IPC"});

    // Register count sweep at full ports.
    for (unsigned regs : {160u, 128u, 112u, 96u}) {
        auto params = core::CoreParams::unlimited();
        params.physIntRegs = regs;
        auto label = strprintf("%u regs, 16R/8W", regs);
        table.addRow({label,
                      Table::pct(relIpc(params, unlimited, args, label),
                                 2)});
    }

    // Read port sweep at 112 regs.
    for (unsigned rd : {16u, 8u, 4u}) {
        auto params = core::CoreParams::unlimited();
        params.physIntRegs = 112;
        params.intRfReadPorts = rd;
        auto label = strprintf("112 regs, %uR/8W", rd);
        table.addRow({label,
                      Table::pct(relIpc(params, unlimited, args, label),
                                 2)});
    }

    // Write port sweep at 112 regs, 8 read ports.
    for (unsigned wr : {8u, 6u, 4u}) {
        auto params = core::CoreParams::unlimited();
        params.physIntRegs = 112;
        params.intRfReadPorts = 8;
        params.intRfWritePorts = wr;
        auto label = strprintf("112 regs, 8R/%uW", wr);
        table.addRow({label,
                      Table::pct(relIpc(params, unlimited, args, label),
                                 2)});
    }

    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
