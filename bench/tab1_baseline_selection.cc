/**
 * @file
 * §4 baseline-selection study: the paper justifies its baseline
 * (112 registers, 8 read / 6 write ports) by showing each reduction
 * from the unlimited file (160 regs, 16R/8W) costs almost nothing:
 * 112 registers ~1% IPC, 8 read ports 0.17%, 6 write ports 0.21%.
 *
 * The eleven configurations run as one grouped batch: each workload's
 * trace is decoded once and stepped through every configuration in
 * lockstep.
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args =
        bench::BenchArgs::parse("tab1_baseline_selection", argc, argv);
    bench::printHeader(
        "§4: baseline register file selection (INT suite)",
        "112 regs cost ~1%; 8R costs 0.17%; 6W costs 0.21% vs "
        "unlimited");

    std::vector<std::pair<std::string, core::CoreParams>> configs = {
        {"unlimited INT", core::CoreParams::unlimited()},
    };

    // Register count sweep at full ports.
    for (unsigned regs : {160u, 128u, 112u, 96u}) {
        auto params = core::CoreParams::unlimited();
        params.physIntRegs = regs;
        configs.push_back({strprintf("%u regs, 16R/8W", regs), params});
    }

    // Read port sweep at 112 regs.
    for (unsigned rd : {16u, 8u, 4u}) {
        auto params = core::CoreParams::unlimited();
        params.physIntRegs = 112;
        params.intRfReadPorts = rd;
        configs.push_back({strprintf("112 regs, %uR/8W", rd), params});
    }

    // Write port sweep at 112 regs, 8 read ports.
    for (unsigned wr : {8u, 6u, 4u}) {
        auto params = core::CoreParams::unlimited();
        params.physIntRegs = 112;
        params.intRfReadPorts = 8;
        params.intRfWritePorts = wr;
        configs.push_back({strprintf("112 regs, 8R/%uW", wr), params});
    }

    auto runs = args.runSuites(workloads::intSuite(), configs);
    const auto &unlimited = runs[0];

    Table table("relative IPC vs unlimited (160 regs, 16R/8W)");
    table.setColumns({"configuration", "relative IPC"});
    for (size_t i = 1; i < configs.size(); ++i) {
        table.addRow({configs[i].first,
                      Table::pct(sim::meanRelativeIpc(runs[i], unlimited),
                                 2)});
    }

    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
