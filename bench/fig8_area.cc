/**
 * @file
 * Figure 8: total register file area relative to the unlimited file,
 * as a function of d+n.
 *
 * The paper reports the content-aware organization at 82.1% of the
 * baseline file's area (an ~18% reduction).
 */

#include "bench_util.hh"
#include "energy/report.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fig8_area", argc, argv);
    bench::printHeader(
        "Figure 8: relative register file area vs d+n",
        "content-aware total = 82.1% of baseline at d+n=20");

    energy::RixnerModel model;
    double unlimited_area = model.area(energy::unlimitedGeometry());
    double baseline_area = model.area(energy::baselineGeometry());

    Table table("Fig 8: area (100% = unlimited)");
    table.setColumns({"config", "simple", "short", "long", "total",
                      "total vs baseline"});
    table.addRow({"baseline", "-", "-", "-",
                  Table::pct(baseline_area / unlimited_area),
                  Table::pct(1.0)});

    for (unsigned dn : bench::kDnSweep) {
        auto params = core::CoreParams::contentAware(dn);
        auto geom = energy::caGeometry(params.physIntRegs, params.ca);
        double total = energy::caTotalArea(model, geom);
        table.addRow({strprintf("d+n=%u", dn),
                      Table::pct(model.area(geom.simple) /
                                 unlimited_area),
                      Table::pct(model.area(geom.shortFile) /
                                 unlimited_area),
                      Table::pct(model.area(geom.longFile) /
                                 unlimited_area),
                      Table::pct(total / unlimited_area),
                      Table::pct(total / baseline_area)});
    }
    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
