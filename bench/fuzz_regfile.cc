/**
 * @file
 * Long-running register-file fuzz driver for nightly CI.
 *
 * Runs seeded fuzz rounds over every registered register-file backend
 * (plus the content-aware ablation variants) on the ExperimentRunner
 * worker pool — one seed
 * stream per task, fully deterministic given seed= — until a
 * wall-time budget expires or a counterexample is found. On failure
 * the shrunk counterexample is written as a seed file and the driver
 * exits nonzero; re-execute it with `carf_fuzz_replay <file>`.
 *
 * Keys (key=value args):
 *   seconds=N  wall-time budget (default 10)
 *   ops=N      ops per generated sequence (default 20000)
 *   seed=N     base seed of the deterministic seed schedule (default 1)
 *   jobs=N     worker threads (default: hardware threads)
 *   out=PATH   failing-seed file (default fuzz_fail_<seed>.carfseed)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "sim/experiment_runner.hh"
#include "testing/fuzzer.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    double seconds = static_cast<double>(config.getU64("seconds", 10));
    testing::FuzzGenOptions gen;
    gen.ops = config.getU64("ops", 20000);
    u64 base_seed = config.getU64("seed", 1);
    unsigned jobs = static_cast<unsigned>(config.getU64(
        "jobs", sim::ExperimentRunner::hardwareJobs()));
    sim::ExperimentRunner runner(jobs ? jobs : 1);

    std::vector<testing::FuzzConfig> configs =
        testing::standardFuzzConfigs();

    auto start = std::chrono::steady_clock::now();
    auto elapsed = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    u64 sequences = 0;
    u64 total_ops = 0;
    u64 next_seed = base_seed;

    std::printf("fuzz_regfile: %u jobs, %zu ops/sequence, %.0fs "
                "budget, base seed %llu\n",
                runner.jobs(), gen.ops, seconds,
                (unsigned long long)base_seed);

    while (elapsed() < seconds) {
        // One deterministic round: 2 sequences per worker, seeds
        // assigned by index so the schedule is independent of timing.
        size_t round = runner.jobs() * 2;
        std::vector<u64> seeds(round);
        for (size_t i = 0; i < round; ++i)
            seeds[i] = next_seed++;

        std::vector<testing::FuzzRoundResult> results(round);
        runner.runTasks(round, [&](size_t i) {
            const testing::FuzzConfig &fc =
                configs[seeds[i] % configs.size()];
            results[i] = testing::fuzzOneSeed(fc, seeds[i], gen);
        });

        for (size_t i = 0; i < round; ++i) {
            sequences++;
            total_ops += results[i].opsRun;
            if (!results[i].failure)
                continue;

            const testing::FuzzFailure &failure = *results[i].failure;
            std::string path = config.getString(
                "out", strprintf("fuzz_fail_%llu.carfseed",
                                 (unsigned long long)seeds[i]));
            std::string error;
            if (!results[i].shrunk.writeFile(path, &error))
                warn("cannot write failing seed: %s", error.c_str());
            std::printf("FAIL seed %llu (%s): op %zu (%s): %s\n",
                        (unsigned long long)seeds[i],
                        results[i].shrunk.config.backend.c_str(),
                        failure.opIndex, fuzzOpName(failure.op.kind),
                        failure.message.c_str());
            std::printf("shrunk to %zu ops -> %s\n",
                        results[i].shrunk.ops.size(), path.c_str());
            std::printf("replay: carf_fuzz_replay %s\n", path.c_str());
            return EXIT_FAILURE;
        }
    }

    std::printf("fuzz_regfile: PASS — %llu sequences, %llu ops, "
                "%.1fs\n",
                (unsigned long long)sequences,
                (unsigned long long)total_ops, elapsed());
    return EXIT_SUCCESS;
}
