/**
 * @file
 * Google-benchmark microbenchmarks of the register file models and
 * the value classifier — measures the *simulator's* own speed (useful
 * when scaling runs toward the paper's 300M-instruction windows).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "regfile/baseline.hh"
#include "regfile/content_aware.hh"
#include "sim/simulator.hh"

using namespace carf;

namespace
{

void
BM_ClassifyValue(benchmark::State &state)
{
    regfile::SimilarityParams sim{17, 3};
    regfile::ShortFile short_file(sim);
    Rng rng(1);
    for (int i = 0; i < 6; ++i)
        short_file.tryAllocate(rng.next());
    std::vector<u64> values(1024);
    for (auto &v : values)
        v = rng.next() >> rng.nextBounded(48);
    size_t i = 0;
    for (auto _ : state) {
        unsigned idx;
        benchmark::DoNotOptimize(
            regfile::classifyValue(values[i++ & 1023], sim, short_file,
                                   idx));
    }
}
BENCHMARK(BM_ClassifyValue);

void
BM_BaselineWriteReadRelease(benchmark::State &state)
{
    regfile::BaselineRegFile rf("bench", 112);
    Rng rng(2);
    u32 tag = 40;
    for (auto _ : state) {
        rf.write(tag, rng.next());
        benchmark::DoNotOptimize(rf.read(tag));
        rf.release(tag);
    }
}
BENCHMARK(BM_BaselineWriteReadRelease);

void
BM_ContentAwareWriteReadRelease(benchmark::State &state)
{
    regfile::ContentAwareParams params;
    params.sim = {17, 3};
    regfile::ContentAwareRegFile rf("bench", 112, params);
    Rng rng(3);
    u32 tag = 40;
    for (auto _ : state) {
        // Mix of simple / short-able / long values.
        u64 v = rng.next() >> (rng.nextBounded(3) * 24);
        rf.noteAddress(v);
        rf.write(tag, v);
        benchmark::DoNotOptimize(rf.read(tag));
        rf.release(tag);
    }
}
BENCHMARK(BM_ContentAwareWriteReadRelease);

void
BM_PipelineThroughput(benchmark::State &state)
{
    // End-to-end simulated instructions per second on one kernel.
    for (auto _ : state) {
        sim::SimOptions options;
        options.maxInsts = 50000;
        auto result =
            sim::simulate(workloads::findWorkload("counters"),
                          core::CoreParams::contentAware(), options);
        benchmark::DoNotOptimize(result.cycles);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<i64>(result.committedInsts));
    }
}
BENCHMARK(BM_PipelineThroughput)->Unit(benchmark::kMillisecond);

} // namespace

// Expanded BENCHMARK_MAIN() that defaults --benchmark_out to the
// same per-harness JSON convention the other bench drivers use.
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_regfile.json";
    std::string format_flag = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    }
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(format_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
