/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Every harness accepts "key=value" overrides; the universal keys are
 *   insts=N   dynamic instruction budget per workload (default 500k)
 *   csv=1     additionally print tables as CSV
 */

#ifndef CARF_BENCH_BENCH_UTIL_HH
#define CARF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/experiments.hh"
#include "sim/reporting.hh"

namespace carf::bench
{

/** The paper's d+n sweep (Figures 5-7, Table 3). */
inline const std::vector<unsigned> kDnSweep = {8, 12, 16, 20, 24, 28, 32};

struct BenchArgs
{
    Config config;
    sim::SimOptions options;
    bool csv = false;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        args.config.parseArgs(argc, argv);
        args.options.maxInsts = args.config.getU64("insts", 500000);
        args.csv = args.config.getBool("csv", false);
        return args;
    }
};

inline void
printTable(const Table &table, const BenchArgs &args)
{
    std::fputs(table.render().c_str(), stdout);
    if (args.csv)
        std::fputs(table.renderCsv().c_str(), stdout);
    std::fputs("\n", stdout);
}

inline void
printHeader(const char *experiment, const char *paper_claim)
{
    std::printf("### %s\n", experiment);
    std::printf("paper: %s\n\n", paper_claim);
}

} // namespace carf::bench

#endif // CARF_BENCH_BENCH_UTIL_HH
