/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Every harness accepts "key=value" overrides; the universal keys are
 *   insts=N    dynamic instruction budget per workload (default 500k)
 *   csv=1      additionally print tables as CSV
 *   jobs=N     simulation worker threads (default: hardware threads;
 *              jobs=1 forces the serial path — output is identical)
 *   progress=1 log per-job completion lines to stderr
 *   out=PATH   where to write the JSON report
 *              (default BENCH_<name>.json in the working directory)
 *   trace_cache=0     disable the shared trace cache (default on;
 *                     results are bit-identical either way)
 *   trace_cache_mb=N  cache byte budget in MiB (default 512)
 *   lockstep=0        disable config-parallel lockstep replay
 *                     (default on; results are bit-identical either
 *                     way — lockstep=0 is for A/B wall-time runs)
 *   lockstep_group=N  cap lockstep groups at N pipeline lanes
 *                     (default 0 = unbounded)
 *   fast_path=0       disable the exact idle-cycle skip (default on;
 *                     results are bit-identical either way —
 *                     fast_path=0 is for A/B wall-time runs)
 *   sampling_period=N SMARTS-style statistical sampling: instructions
 *                     per period (default 0 = full detail). Implies
 *                     lockstep=0 (sampled lanes alternate functional
 *                     and detailed phases, so there is no shared
 *                     front end). Sampled results are estimates, not
 *                     bit-identical to full runs.
 *   sampling_warmup=N   detailed warm-up instructions per period
 *                       (default 2000)
 *   sampling_measure=N  measured instructions per period
 *                       (default 1000)
 *   regfile=NAME[,NAME...]
 *                     register-file backend selection. A single name
 *                     re-runs the harness with that registered backend
 *                     substituted into every configuration (labels and
 *                     the JSON report gain a " [regfile=NAME]" suffix
 *                     so the output cannot be mistaken for the stock
 *                     run). Harnesses that sweep the whole backend zoo
 *                     (compare_backends) accept a comma-separated list
 *                     to restrict the sweep. Unknown names are fatal,
 *                     listing what is registered.
 *   store_dir=PATH    content-addressed result store directory (see
 *                     sim/result_store.hh). Every suite job reads
 *                     through the store: cached (config, workload,
 *                     code-version) points are served from disk
 *                     bit-identically instead of re-simulated, and
 *                     misses are written back — so repeated runs, and
 *                     different harnesses sharing one store_dir,
 *                     never recompute shared points (the `unlimited`
 *                     reference suite, say). Hit/miss counts print to
 *                     stderr at exit.
 *   result_store=1    as above with the default directory
 *                     "carf_result_store" (result_store=0 disables an
 *                     explicit store_dir=).
 *
 * Tables printed through printTable() and suite runs executed through
 * BenchArgs::runSuite() are also captured into a machine-readable
 * per-harness JSON report; call args.writeReport() at the end of
 * main. See README "Experiment engine" for the schema.
 */

#ifndef CARF_BENCH_BENCH_UTIL_HH
#define CARF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "common/config.hh"
#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "emu/trace_cache.hh"
#include "regfile/registry.hh"
#include "sim/experiment_runner.hh"
#include "sim/experiments.hh"
#include "sim/reporting.hh"
#include "sim/result_store.hh"

namespace carf::bench
{

/** The paper's d+n sweep (Figures 5-7, Table 3). */
inline const std::vector<unsigned> kDnSweep = {8, 12, 16, 20, 24, 28, 32};

/** Accumulates one harness's results for the BENCH_<name>.json file. */
class BenchReport
{
  public:
    void
    begin(std::string name, unsigned jobs, u64 max_insts)
    {
        name_ = std::move(name);
        jobs_ = jobs;
        maxInsts_ = max_insts;
    }

    const std::string &name() const { return name_; }

    /** Record one labelled suite run (full per-workload results). */
    void
    addSuite(const std::string &label, const sim::SuiteRun &run)
    {
        suites_.push_back("{\"label\":" + sim::jsonString(label) +
                          ",\"results\":" + sim::suiteRunJson(run) + "}");
    }

    /** Record one rendered table (what the harness printed). */
    void
    addTable(const Table &table)
    {
        tables_.push_back(sim::tableJson(table));
    }

    std::string
    json() const
    {
        std::string out = "{\"bench\":" + sim::jsonString(name_);
        out += strprintf(",\"jobs\":%u", jobs_);
        out += strprintf(",\"max_insts\":%llu",
                         (unsigned long long)maxInsts_);
        out += ",\"suites\":[";
        for (size_t i = 0; i < suites_.size(); ++i)
            out += (i ? "," : "") + suites_[i];
        out += "],\"tables\":[";
        for (size_t i = 0; i < tables_.size(); ++i)
            out += (i ? "," : "") + tables_[i];
        out += "]}";
        return out;
    }

    /** Write the report to @p path; fatal() when the write fails. */
    void
    write(const std::string &path) const
    {
        std::ofstream file(path, std::ios::trunc);
        if (!file)
            fatal("BenchReport: cannot open '%s' for writing",
                  path.c_str());
        file << json() << "\n";
        if (!file.flush())
            fatal("BenchReport: short write to '%s'", path.c_str());
    }

  private:
    std::string name_;
    unsigned jobs_ = 1;
    u64 maxInsts_ = 0;
    std::vector<std::string> suites_;
    std::vector<std::string> tables_;
};

struct BenchArgs
{
    Config config;
    sim::SimOptions options;
    bool csv = false;
    bool progress = false;
    unsigned jobs = 1;
    sim::ExperimentRunner runner;
    /**
     * Trace cache shared by every suite run this harness performs, so
     * each workload is emulated once no matter how many configurations
     * sweep over it. Owned here; options.traceCache points at it.
     */
    std::shared_ptr<emu::TraceCache> traceCache;
    /**
     * Content-addressed result store (store_dir=/result_store= keys);
     * null for a stock run. Owned here; options.resultStore points at
     * it, so every suite job this harness submits reads through it.
     */
    std::shared_ptr<sim::ResultStore> resultStore;
    /**
     * Backends named by the regfile= key, registry-validated, in
     * argument order; empty when the key is absent (stock run).
     */
    std::vector<std::string> regfileOverrides;
    /**
     * Set once backendConfigs() consumes the regfile= selection; the
     * generic per-suite override then stands down so a sweep harness
     * does not apply the list twice.
     */
    mutable bool regfileOverrideConsumed = false;
    mutable BenchReport report;

    static BenchArgs
    parse(const char *bench_name, int argc, char **argv)
    {
        BenchArgs args;
        args.config.parseArgs(argc, argv);
        args.options.maxInsts = args.config.getU64("insts", 500000);
        args.csv = args.config.getBool("csv", false);
        args.progress = args.config.getBool("progress", false);
        args.jobs = static_cast<unsigned>(args.config.getU64(
            "jobs", sim::ExperimentRunner::hardwareJobs()));
        args.runner = sim::ExperimentRunner(args.jobs ? args.jobs : 1);
        if (args.config.getBool("trace_cache", true)) {
            u64 budget_mb =
                args.config.getU64("trace_cache_mb",
                                   emu::TraceCache::kDefaultByteBudget >>
                                       20);
            args.traceCache =
                std::make_shared<emu::TraceCache>(budget_mb << 20);
            args.options.traceCache = args.traceCache.get();
        }
        args.options.lockstep = args.config.getBool("lockstep", true);
        args.options.lockstepMaxGroup = static_cast<unsigned>(
            args.config.getU64("lockstep_group", 0));
        args.options.fastPath = args.config.getBool("fast_path", true);
        args.options.samplingPeriod =
            args.config.getU64("sampling_period", 0);
        args.options.samplingWarmup = args.config.getU64(
            "sampling_warmup", args.options.samplingWarmup);
        args.options.samplingMeasure = args.config.getU64(
            "sampling_measure", args.options.samplingMeasure);
        if (args.options.samplingPeriod > 0)
            args.options.lockstep = false;
        args.options.validate();
        std::string store_dir = args.config.getString("store_dir", "");
        if (args.config.getBool("result_store", !store_dir.empty())) {
            if (store_dir.empty())
                store_dir = "carf_result_store";
            args.resultStore = std::make_shared<sim::ResultStore>(
                store_dir, buildFingerprint());
            args.options.resultStore = args.resultStore.get();
        }
        std::string regfile = args.config.getString("regfile", "");
        for (size_t start = 0; start < regfile.size();) {
            size_t comma = regfile.find(',', start);
            if (comma == std::string::npos)
                comma = regfile.size();
            std::string name = regfile.substr(start, comma - start);
            if (!name.empty()) {
                regfile::registry().at(name); // fatal on unknown names
                args.regfileOverrides.push_back(name);
            }
            start = comma + 1;
        }
        args.report.begin(bench_name, args.runner.jobs(),
                          args.options.maxInsts);
        return args;
    }

    /**
     * Apply the regfile= override to @p params: a single named
     * backend replaces the configuration's model, everything else
     * (timing knobs, ports, sub-file geometry) untouched. Harnesses
     * that run fixed configurations take at most one override name;
     * lists are reserved for backendConfigs() sweeps.
     */
    core::CoreParams
    applyRegfileOverride(core::CoreParams params) const
    {
        if (regfileOverrides.empty() || regfileOverrideConsumed)
            return params;
        if (regfileOverrides.size() > 1)
            fatal("regfile=: this harness runs fixed configurations "
                  "and takes a single backend name, not a list");
        params.regFileBackend = regfileOverrides[0];
        return params;
    }

    /** Label decoration matching applyRegfileOverride(). */
    std::string
    decorateLabel(const std::string &label) const
    {
        if (regfileOverrides.empty() || regfileOverrideConsumed)
            return label;
        return label + " [regfile=" + regfileOverrides[0] + "]";
    }

    /**
     * One labelled configuration per selected backend — the
     * comma-separated regfile= list, or every registered backend when
     * the key is absent — each built by CoreParams::forBackend() so
     * the label is exactly the registry name.
     */
    std::vector<std::pair<std::string, core::CoreParams>>
    backendConfigs() const
    {
        std::vector<std::string> names = regfileOverrides;
        regfileOverrideConsumed = true;
        if (names.empty())
            names = regfile::registry().names();
        std::vector<std::pair<std::string, core::CoreParams>> configs;
        configs.reserve(names.size());
        for (const std::string &name : names)
            configs.emplace_back(name, core::CoreParams::forBackend(name));
        return configs;
    }

    /**
     * Run @p suite under @p params on the shared worker pool and
     * record the per-workload results into the JSON report under
     * @p label. Result order (and every table derived from it) is
     * independent of the jobs= setting. The regfile= override, when
     * present, swaps the backend and decorates the label.
     */
    sim::SuiteRun
    runSuite(const std::vector<workloads::Workload> &suite,
             const core::CoreParams &params,
             const std::string &label) const
    {
        std::string tag = decorateLabel(label);
        sim::ExperimentRunner::ProgressFn fn;
        if (progress) {
            fn = [tag](const sim::ExperimentProgress &p) {
                inform("[%s] %zu/%zu %s (%.2fs)", tag.c_str(),
                       p.completed, p.total,
                       p.job.workload.name.c_str(),
                       p.result.wallSeconds);
            };
        }
        auto run = sim::runSuite(suite, applyRegfileOverride(params),
                                 options, runner, fn);
        report.addSuite(tag, run);
        return run;
    }

    /**
     * Run @p suite under every labelled configuration in @p configs
     * as ONE job batch, so configurations sharing a workload collapse
     * into lockstep groups (decode once, step every config — see
     * ExperimentRunner::run). Per-config SuiteRuns come back in
     * @p configs order, each bit-identical to a lone runSuite() call,
     * and are recorded into the JSON report under their labels.
     */
    std::vector<sim::SuiteRun>
    runSuites(const std::vector<workloads::Workload> &suite,
              const std::vector<std::pair<std::string, core::CoreParams>>
                  &configs) const
    {
        std::vector<sim::ExperimentJob> batch;
        batch.reserve(suite.size() * configs.size());
        for (const auto &[label, params] : configs) {
            core::CoreParams effective = applyRegfileOverride(params);
            for (const auto &w : suite)
                batch.push_back({w, effective, options,
                                 decorateLabel(label), nullptr});
        }

        sim::ExperimentRunner::ProgressFn fn;
        if (progress) {
            fn = [](const sim::ExperimentProgress &p) {
                inform("[%s] %zu/%zu %s (%.2fs)", p.job.tag.c_str(),
                       p.completed, p.total,
                       p.job.workload.name.c_str(),
                       p.result.wallSeconds);
            };
        }
        auto results = runner.run(batch, fn);

        std::vector<sim::SuiteRun> runs(configs.size());
        for (size_t c = 0; c < configs.size(); ++c) {
            auto first = results.begin() +
                         static_cast<long>(c * suite.size());
            runs[c].results.assign(first,
                                   first + static_cast<long>(
                                               suite.size()));
            report.addSuite(decorateLabel(configs[c].first), runs[c]);
        }
        return runs;
    }

    /** Where the JSON report goes (out= override). */
    std::string
    reportPath() const
    {
        return config.getString("out", "BENCH_" + report.name() +
                                           ".json");
    }

    void
    writeReport() const
    {
        report.write(reportPath());
        std::printf("wrote %s\n", reportPath().c_str());
        // Stderr, so table-equivalence diffs of captured stdout stay
        // clean across cold and warm runs.
        if (resultStore) {
            resultStore->writeIndex();
            std::fprintf(stderr,
                         "result store: %llu hits, %llu misses (%s)\n",
                         (unsigned long long)resultStore->hits(),
                         (unsigned long long)resultStore->misses(),
                         resultStore->dir().c_str());
        }
    }
};

inline void
printTable(const Table &table, const BenchArgs &args)
{
    std::fputs(table.render().c_str(), stdout);
    if (args.csv)
        std::fputs(table.renderCsv().c_str(), stdout);
    std::fputs("\n", stdout);
    args.report.addTable(table);
}

inline void
printHeader(const char *experiment, const char *paper_claim)
{
    std::printf("### %s\n", experiment);
    std::printf("paper: %s\n\n", paper_claim);
}

} // namespace carf::bench

#endif // CARF_BENCH_BENCH_UTIL_HH
