/**
 * @file
 * Figure 1: distribution of live integer register values by
 * exact-value frequency group, for the INT and FP suites.
 *
 * The paper reports (SPECint): group1 14%, with the top groups
 * covering roughly half of all live values and REST 55%; SPECfp is
 * more concentrated in REST (63%).
 */

#include "bench_util.hh"
#include "sim/oracle.hh"

using namespace carf;

namespace
{

sim::LiveValueOracle
runSuiteWithOracle(const std::vector<workloads::Workload> &suite,
                   const bench::BenchArgs &args)
{
    sim::LiveValueOracle oracle;
    sim::SimOptions options = args.options;
    options.oracleSamplePeriod =
        static_cast<unsigned>(args.config.getU64("sample", 16));
    for (const auto &w : suite)
        sim::simulate(w, core::CoreParams::baseline(), options, &oracle);
    return oracle;
}

void
report(const char *title, const sim::LiveValueOracle &oracle,
       const bench::BenchArgs &args)
{
    Table table(title);
    table.setColumns({"group", "share"});
    for (unsigned b = 0; b < sim::GroupAccumulator::numBuckets; ++b) {
        table.addRow({sim::GroupAccumulator::bucketName(b),
                      Table::pct(oracle.exactGroups().fraction(b))});
    }
    bench::printTable(table, args);
    std::printf("avg live integer registers per cycle: %.1f\n\n",
                oracle.avgLiveRegs());
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader(
        "Figure 1: distribution of live integer data values",
        "SPECint: top value 14%, REST 55%; SPECfp: REST 63%");

    auto int_oracle = runSuiteWithOracle(workloads::intSuite(), args);
    report("Fig 1a: INT suite (exact-value groups)", int_oracle, args);

    auto fp_oracle = runSuiteWithOracle(workloads::fpSuite(), args);
    report("Fig 1b: FP suite (exact-value groups)", fp_oracle, args);
    return 0;
}
