/**
 * @file
 * Figure 1: distribution of live integer register values by
 * exact-value frequency group, for the INT and FP suites.
 *
 * The paper reports (SPECint): group1 14%, with the top groups
 * covering roughly half of all live values and REST 55%; SPECfp is
 * more concentrated in REST (63%).
 */

#include <memory>

#include "bench_util.hh"
#include "sim/oracle.hh"

using namespace carf;

namespace
{

/**
 * One job per workload, each sampling into its own oracle; the
 * per-workload oracles are merged in suite order, which reproduces
 * the serial shared-oracle accumulation exactly (all accumulators
 * are integer sums).
 */
sim::LiveValueOracle
runSuiteWithOracle(const std::vector<workloads::Workload> &suite,
                   const bench::BenchArgs &args, const char *label)
{
    sim::SimOptions options = args.options;
    options.oracleSamplePeriod =
        static_cast<unsigned>(args.config.getU64("sample", 16));

    std::vector<std::unique_ptr<sim::LiveValueOracle>> oracles;
    std::vector<sim::ExperimentJob> jobs;
    for (const auto &w : suite) {
        oracles.push_back(std::make_unique<sim::LiveValueOracle>());
        jobs.push_back({w, core::CoreParams::baseline(), options,
                        label, oracles.back().get()});
    }
    sim::SuiteRun run;
    run.results = args.runner.run(jobs);
    args.report.addSuite(label, run);

    sim::LiveValueOracle merged;
    for (const auto &oracle : oracles)
        merged.merge(*oracle);
    return merged;
}

void
report(const char *title, const sim::LiveValueOracle &oracle,
       const bench::BenchArgs &args)
{
    Table table(title);
    table.setColumns({"group", "share"});
    for (unsigned b = 0; b < sim::GroupAccumulator::numBuckets; ++b) {
        table.addRow({sim::GroupAccumulator::bucketName(b),
                      Table::pct(oracle.exactGroups().fraction(b))});
    }
    bench::printTable(table, args);
    std::printf("avg live integer registers per cycle: %.1f\n\n",
                oracle.avgLiveRegs());
}

} // namespace

int
main(int argc, char **argv)
{
    auto args =
        bench::BenchArgs::parse("fig1_value_distribution", argc, argv);
    bench::printHeader(
        "Figure 1: distribution of live integer data values",
        "SPECint: top value 14%, REST 55%; SPECfp: REST 63%");

    auto int_oracle =
        runSuiteWithOracle(workloads::intSuite(), args, "baseline INT");
    report("Fig 1a: INT suite (exact-value groups)", int_oracle, args);

    auto fp_oracle =
        runSuiteWithOracle(workloads::fpSuite(), args, "baseline FP");
    report("Fig 1b: FP suite (exact-value groups)", fp_oracle, args);
    args.writeReport();
    return 0;
}
