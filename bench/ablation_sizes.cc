/**
 * @file
 * §4 sensitivity studies and the DESIGN.md ablations:
 *  - Short file size (2 / 8 / 32 entries; paper picks 8),
 *  - Long file size (40 / 48 / 56 / 112; paper picks 48, noting FP
 *    wants 56 and 40 costs 0.6% IPC),
 *  - Short allocation policy (address-only vs any-result; the paper
 *    reports any-result thrashes),
 *  - direct-mapped vs fully-associative Short file,
 *  - issue-stall threshold (pseudo-deadlock avoidance) and the extra
 *    bypass level.
 *
 * All variants run as one grouped batch per suite: each workload's
 * trace is decoded once and stepped through every variant in
 * lockstep.
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_sizes", argc, argv);
    bench::printHeader(
        "Ablations: sub-file sizing and design choices (d+n=20)",
        "paper picks M=8, K=48; address-only Short allocation; "
        "direct-mapped Short; threshold = issue width");

    std::vector<std::pair<std::string, core::CoreParams>> variants;

    // Short file size sweep (n = log2 M). d is adjusted to keep
    // d+n=20 so the Simple field width is constant.
    for (unsigned n : {1u, 3u, 5u}) {
        variants.push_back({strprintf("short M=%u", 1u << n),
                            core::CoreParams::contentAware(20, n)});
    }

    // Long file size sweep.
    for (unsigned k : {40u, 48u, 56u, 112u}) {
        variants.push_back({strprintf("long K=%u", k),
                            core::CoreParams::contentAware(20, 3, k)});
    }

    // Allocation policy: any-result thrashes the Short file.
    {
        auto params = core::CoreParams::contentAware(20);
        params.ca.allocShortOnAnyResult = true;
        variants.push_back({"alloc-on-any-result", params});
    }

    // Fully-associative Short file (paper: tiny IPC gain, CAM cost).
    {
        auto params = core::CoreParams::contentAware(20);
        params.ca.associativeShort = true;
        variants.push_back({"associative short", params});
    }

    // Issue-stall threshold off: recoveries must absorb the pressure.
    {
        auto params = core::CoreParams::contentAware(20);
        params.ca.issueStallThreshold = 0;
        variants.push_back({"stall threshold=0", params});
    }

    // Extra bypass level off (paper: optional, small effect).
    {
        auto params = core::CoreParams::contentAware(20);
        params.extraBypassLevel = false;
        variants.push_back({"no extra bypass", params});
    }

    std::vector<std::pair<std::string, core::CoreParams>> int_configs = {
        {"baseline INT", core::CoreParams::baseline()},
    };
    std::vector<std::pair<std::string, core::CoreParams>> fp_configs = {
        {"baseline FP", core::CoreParams::baseline()},
    };
    for (const auto &[label, params] : variants) {
        int_configs.push_back({label + " INT", params});
        fp_configs.push_back({label + " FP", params});
    }

    auto int_runs = args.runSuites(workloads::intSuite(), int_configs);
    auto fp_runs = args.runSuites(workloads::fpSuite(), fp_configs);
    const auto &base_int = int_runs[0];
    const auto &base_fp = fp_runs[0];

    Table table("relative IPC vs baseline, long-file pressure");
    table.setColumns({"variant", "INT", "FP", "long stalls",
                      "recoveries", "avg live long"});
    for (size_t i = 0; i < variants.size(); ++i) {
        const auto &run_int = int_runs[1 + i];
        const auto &run_fp = fp_runs[1 + i];
        table.addRow(
            {variants[i].first,
             Table::pct(sim::meanRelativeIpc(run_int, base_int), 2),
             Table::pct(sim::meanRelativeIpc(run_fp, base_fp), 2),
             Table::intNum(static_cast<long long>(
                 run_int.totalLongAllocStalls() +
                 run_fp.totalLongAllocStalls())),
             Table::intNum(static_cast<long long>(
                 run_int.totalRecoveries() + run_fp.totalRecoveries())),
             Table::num(run_int.meanAvgLiveLong(), 1)});
    }

    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
