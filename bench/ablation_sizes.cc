/**
 * @file
 * §4 sensitivity studies and the DESIGN.md ablations:
 *  - Short file size (2 / 8 / 32 entries; paper picks 8),
 *  - Long file size (40 / 48 / 56 / 112; paper picks 48, noting FP
 *    wants 56 and 40 costs 0.6% IPC),
 *  - Short allocation policy (address-only vs any-result; the paper
 *    reports any-result thrashes),
 *  - direct-mapped vs fully-associative Short file,
 *  - issue-stall threshold (pseudo-deadlock avoidance) and the extra
 *    bypass level.
 */

#include "bench_util.hh"

using namespace carf;

namespace
{

void
reportRow(Table &table, const std::string &label,
          const core::CoreParams &params, const sim::SuiteRun &base_int,
          const sim::SuiteRun &base_fp, const bench::BenchArgs &args)
{
    auto run_int =
        args.runSuite(workloads::intSuite(), params, label + " INT");
    auto run_fp =
        args.runSuite(workloads::fpSuite(), params, label + " FP");
    table.addRow({label,
                  Table::pct(sim::meanRelativeIpc(run_int, base_int), 2),
                  Table::pct(sim::meanRelativeIpc(run_fp, base_fp), 2),
                  Table::intNum(static_cast<long long>(
                      run_int.totalLongAllocStalls() +
                      run_fp.totalLongAllocStalls())),
                  Table::intNum(static_cast<long long>(
                      run_int.totalRecoveries() +
                      run_fp.totalRecoveries())),
                  Table::num(run_int.meanAvgLiveLong(), 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_sizes", argc, argv);
    bench::printHeader(
        "Ablations: sub-file sizing and design choices (d+n=20)",
        "paper picks M=8, K=48; address-only Short allocation; "
        "direct-mapped Short; threshold = issue width");

    auto base_int = args.runSuite(workloads::intSuite(),
                                  core::CoreParams::baseline(),
                                  "baseline INT");
    auto base_fp = args.runSuite(workloads::fpSuite(),
                                 core::CoreParams::baseline(),
                                 "baseline FP");

    Table table("relative IPC vs baseline, long-file pressure");
    table.setColumns({"variant", "INT", "FP", "long stalls",
                      "recoveries", "avg live long"});

    // Short file size sweep (n = log2 M). d is adjusted to keep
    // d+n=20 so the Simple field width is constant.
    for (unsigned n : {1u, 3u, 5u}) {
        auto params = core::CoreParams::contentAware(20, n);
        reportRow(table, strprintf("short M=%u", 1u << n), params,
                  base_int, base_fp, args);
    }

    // Long file size sweep.
    for (unsigned k : {40u, 48u, 56u, 112u}) {
        auto params = core::CoreParams::contentAware(20, 3, k);
        reportRow(table, strprintf("long K=%u", k), params, base_int,
                  base_fp, args);
    }

    // Allocation policy: any-result thrashes the Short file.
    {
        auto params = core::CoreParams::contentAware(20);
        params.ca.allocShortOnAnyResult = true;
        reportRow(table, "alloc-on-any-result", params, base_int,
                  base_fp, args);
    }

    // Fully-associative Short file (paper: tiny IPC gain, CAM cost).
    {
        auto params = core::CoreParams::contentAware(20);
        params.ca.associativeShort = true;
        reportRow(table, "associative short", params, base_int, base_fp,
                  args);
    }

    // Issue-stall threshold off: recoveries must absorb the pressure.
    {
        auto params = core::CoreParams::contentAware(20);
        params.ca.issueStallThreshold = 0;
        reportRow(table, "stall threshold=0", params, base_int, base_fp,
                  args);
    }

    // Extra bypass level off (paper: optional, small effect).
    {
        auto params = core::CoreParams::contentAware(20);
        params.extraBypassLevel = false;
        reportRow(table, "no extra bypass", params, base_int, base_fp,
                  args);
    }

    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
