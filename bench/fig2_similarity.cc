/**
 * @file
 * Figure 2: distribution of (64-d)-similar live integer values as a
 * function of d (8, 12, 16), for the INT suite.
 *
 * The paper reports that for d=16 the top similarity group holds 42%
 * of live values and REST shrinks to 13% — i.e.\ partial value
 * locality far exceeds exact value locality, and grows with d.
 */

#include <memory>

#include "bench_util.hh"
#include "sim/oracle.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fig2_similarity", argc, argv);
    bench::printHeader(
        "Figure 2: (64-d)-similar live integer values vs d",
        "d=8: 35% in group 1, REST 35%; d=16: 42% in group 1, REST 13%");

    sim::SimOptions options = args.options;
    options.oracleSamplePeriod =
        static_cast<unsigned>(args.config.getU64("sample", 16));

    // One job per workload with a private oracle; merging in suite
    // order reproduces the serial shared-oracle accumulation.
    std::vector<std::unique_ptr<sim::LiveValueOracle>> oracles;
    std::vector<sim::ExperimentJob> jobs;
    for (const auto &w : workloads::intSuite()) {
        oracles.push_back(std::make_unique<sim::LiveValueOracle>(
            std::vector<unsigned>{8, 12, 16}));
        jobs.push_back({w, core::CoreParams::baseline(), options,
                        "baseline INT", oracles.back().get()});
    }
    sim::SuiteRun suite_run;
    suite_run.results = args.runner.run(jobs);
    args.report.addSuite("baseline INT", suite_run);

    sim::LiveValueOracle oracle({8, 12, 16});
    for (const auto &o : oracles)
        oracle.merge(*o);

    Table table("Fig 2: similarity-group shares (INT suite)");
    table.setColumns({"group", "d=8", "d=12", "d=16"});
    for (unsigned b = 0; b < sim::GroupAccumulator::numBuckets; ++b) {
        table.addRow({sim::GroupAccumulator::bucketName(b),
                      Table::pct(oracle.similarityGroups(0).fraction(b)),
                      Table::pct(oracle.similarityGroups(1).fraction(b)),
                      Table::pct(oracle.similarityGroups(2).fraction(b))});
    }
    bench::printTable(table, args);

    // Cumulative capture by the top groups (the paper: tracking the
    // top four groups captures ~70% of values at d=16).
    Table cumulative("Cumulative capture by top-ranked groups");
    cumulative.setColumns({"top groups", "d=8", "d=12", "d=16"});
    const char *labels[] = {"1", "2", "4", "8", "16"};
    for (unsigned upto = 0; upto < 5; ++upto) {
        std::vector<std::string> row = {labels[upto]};
        for (unsigned di = 0; di < 3; ++di) {
            double sum = 0.0;
            for (unsigned b = 0; b <= upto; ++b)
                sum += oracle.similarityGroups(di).fraction(b);
            row.push_back(Table::pct(sum));
        }
        cumulative.addRow(row);
    }
    bench::printTable(cumulative, args);
    args.writeReport();
    return 0;
}
