/**
 * @file
 * Fast-path engine harness: measures the two simulation accelerators
 * added in DESIGN.md §4.8 and fails loudly when they regress.
 *
 * Section 1 A/Bs the exact idle-cycle skip (fast_path=0 vs 1) over
 * the stall suite plus the integer suite, verifies the two runs are
 * bit-identical (stripped full-fidelity JSON), and reports skip
 * coverage, the dominant cycle bucket, and the honest wall-clock
 * speedup. Section 2 compares SMARTS-style sampled runs against full
 * detailed runs over the integer suite and reports IPC error,
 * confidence interval, and speedup.
 *
 * Extra keys (beyond bench_util.hh):
 *   skip_suite=stall|int|both  section-1 workloads (default both)
 *   min_speedup=X       fatal if the stall-suite geomean skip speedup
 *                       falls below X (default 0 = report only)
 *   max_ipc_err=X       fatal if any sampled-vs-full IPC error
 *                       exceeds X, a fraction (default 0 = report
 *                       only)
 *   min_sampling_speedup=X  fatal if the sampling geomean wall
 *                       speedup falls below X (default 0)
 * The sampling_period= key defaults to 10000 here (elsewhere 0).
 */

#include <chrono>
#include <cmath>

#include "bench_util.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace carf;

namespace
{

double
secondsOf(const std::function<void()> &fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Highest-count cycle bucket, as "name p%". */
std::string
dominantBucket(const core::RunResult &r)
{
    unsigned best = 0;
    for (unsigned b = 1; b < core::CycleAccounting::NumBuckets; ++b)
        if (r.cycleAccounting.counts[b] >
            r.cycleAccounting.counts[best])
            best = b;
    double share = r.cycles ? double(r.cycleAccounting.counts[best]) /
                                  double(r.cycles)
                            : 0.0;
    return std::string(core::CycleAccounting::bucketName(best)) + " " +
           Table::pct(share);
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fastpath", argc, argv);
    bench::printHeader(
        "Fast-path engine: exact idle-cycle skip + SMARTS sampling",
        "simulator engineering (no paper figure); results must stay "
        "bit-identical (skip) / statistically faithful (sampling)");

    core::CoreParams params =
        args.applyRegfileOverride(core::CoreParams::contentAware(20));

    // Section 1: exact skip A/B. Direct simulate() calls (no runner,
    // no store) so the wall-clock numbers are honest single-thread
    // measurements; the shared trace cache keeps trace construction
    // out of both sides.
    std::string skip_suite =
        args.config.getString("skip_suite", "both");
    std::vector<workloads::Workload> section1;
    if (skip_suite == "stall" || skip_suite == "both")
        for (const auto &w : workloads::stallSuite())
            section1.push_back(w);
    if (skip_suite == "int" || skip_suite == "both")
        for (const auto &w : workloads::intSuite())
            section1.push_back(w);
    if (section1.empty())
        fatal("fastpath: unknown skip_suite '%s' (stall, int, both)",
              skip_suite.c_str());

    sim::SimOptions stepped = args.options;
    stepped.samplingPeriod = 0;
    stepped.fastPath = false;
    sim::SimOptions skipping = stepped;
    skipping.fastPath = true;

    Table skip_table("Exact idle-cycle skip: stepped vs skipping");
    skip_table.setColumns({"workload", "suite", "ipc", "skips",
                           "cycles skipped", "dominant bucket",
                           "stepped s", "skipping s", "speedup"});
    double stall_log_sum = 0.0;
    unsigned stall_n = 0;
    sim::SuiteRun stepped_run, skipping_run;
    for (const auto &w : section1) {
        core::RunResult off, on;
        double t_off =
            secondsOf([&] { off = sim::simulate(w, params, stepped); });
        double t_on =
            secondsOf([&] { on = sim::simulate(w, params, skipping); });
        if (sim::runResultJsonFull(off, false) !=
            sim::runResultJsonFull(on, false))
            fatal("fastpath: skip run diverged from stepped run on "
                  "'%s'",
                  w.name.c_str());
        double skip_frac =
            on.cycles ? double(on.fastPathSkippedCycles) /
                            double(on.cycles)
                      : 0.0;
        double speedup = t_on > 0.0 ? t_off / t_on : 0.0;
        if (w.suite == workloads::Suite::Stall && speedup > 0.0) {
            stall_log_sum += std::log(speedup);
            ++stall_n;
        }
        skip_table.addRow(
            {w.name, workloads::suiteName(w.suite),
             Table::num(on.ipc, 3),
             strprintf("%llu", (unsigned long long)on.fastPathSkips),
             strprintf("%llu (%s)",
                       (unsigned long long)on.fastPathSkippedCycles,
                       Table::pct(skip_frac).c_str()),
             dominantBucket(on), Table::num(t_off, 3),
             Table::num(t_on, 3), Table::num(speedup, 2)});
        stepped_run.results.push_back(off);
        skipping_run.results.push_back(on);
    }
    bench::printTable(skip_table, args);
    args.report.addSuite("stepped [fast_path=0]", stepped_run);
    args.report.addSuite("skipping [fast_path=1]", skipping_run);

    double stall_geomean =
        stall_n ? std::exp(stall_log_sum / stall_n) : 0.0;
    if (stall_n)
        std::printf("stall-suite geomean speedup: %.2fx\n\n",
                    stall_geomean);
    double min_speedup = args.config.getDouble("min_speedup", 0.0);
    if (min_speedup > 0.0 && stall_geomean < min_speedup)
        fatal("fastpath: stall-suite geomean speedup %.2fx below "
              "required %.2fx",
              stall_geomean, min_speedup);

    // Section 2: sampled vs full detailed runs. The full runs keep
    // the skip enabled — sampling must beat the *already accelerated*
    // simulator to earn its accuracy loss.
    u64 period = args.config.getU64("sampling_period", 10000);
    sim::SimOptions full = args.options;
    full.samplingPeriod = 0;
    full.fastPath = true;
    sim::SimOptions sampled = full;
    sampled.samplingPeriod = period;
    sampled.lockstep = false;
    sampled.validate();

    Table s_table(strprintf(
        "SMARTS sampling vs full detail (period=%llu warmup=%llu "
        "measure=%llu)",
        (unsigned long long)period,
        (unsigned long long)sampled.samplingWarmup,
        (unsigned long long)sampled.samplingMeasure));
    s_table.setColumns({"workload", "full ipc", "sampled ipc",
                        "err %", "ci95", "intervals", "full s",
                        "sampled s", "speedup"});
    double err_worst = 0.0;
    double samp_log_sum = 0.0;
    unsigned samp_n = 0;
    sim::SuiteRun full_run, sampled_run;
    for (const auto &w : workloads::intSuite()) {
        core::RunResult f, s;
        double t_full =
            secondsOf([&] { f = sim::simulate(w, params, full); });
        double t_samp = secondsOf(
            [&] { s = sim::simulateSampled(w, params, sampled); });
        double err = f.ipc > 0.0 ? std::fabs(s.ipc - f.ipc) / f.ipc
                                 : 0.0;
        err_worst = std::max(err_worst, err);
        double speedup = t_samp > 0.0 ? t_full / t_samp : 0.0;
        if (speedup > 0.0) {
            samp_log_sum += std::log(speedup);
            ++samp_n;
        }
        s_table.addRow(
            {w.name, Table::num(f.ipc, 3), Table::num(s.ipc, 3),
             Table::num(err * 100.0, 2),
             Table::num(s.samplingIpcCi95, 4),
             strprintf("%llu",
                       (unsigned long long)s.samplingIntervals),
             Table::num(t_full, 3), Table::num(t_samp, 3),
             Table::num(speedup, 2)});
        full_run.results.push_back(f);
        sampled_run.results.push_back(s);
    }
    bench::printTable(s_table, args);
    args.report.addSuite("full detail", full_run);
    args.report.addSuite(
        strprintf("sampled [period=%llu]", (unsigned long long)period),
        sampled_run);

    double samp_geomean =
        samp_n ? std::exp(samp_log_sum / samp_n) : 0.0;
    std::printf("sampling: worst IPC error %.2f%%, geomean speedup "
                "%.2fx\n\n",
                err_worst * 100.0, samp_geomean);
    double max_err = args.config.getDouble("max_ipc_err", 0.0);
    if (max_err > 0.0 && err_worst > max_err)
        fatal("fastpath: sampled IPC error %.4f above allowed %.4f",
              err_worst, max_err);
    double min_samp = args.config.getDouble("min_sampling_speedup", 0.0);
    if (min_samp > 0.0 && samp_geomean < min_samp)
        fatal("fastpath: sampling geomean speedup %.2fx below "
              "required %.2fx",
              samp_geomean, min_samp);

    args.writeReport();
    return 0;
}
