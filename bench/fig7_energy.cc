/**
 * @file
 * Figure 7: total register file energy (reads + writes) relative to
 * the unlimited-resource file, as a function of d+n, against the
 * baseline.
 *
 * The paper reports the baseline at ~48.8% of unlimited and the
 * content-aware organization at roughly half the baseline again
 * (~25% of unlimited at the chosen d+n=20).
 */

#include "bench_util.hh"
#include "energy/report.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse(argc, argv);
    bench::printHeader(
        "Figure 7: relative register file energy vs d+n",
        "baseline ~48.8% of unlimited; content-aware ~half of baseline");

    energy::RixnerModel model;
    auto unlimited_geom = energy::unlimitedGeometry();
    auto baseline_geom = energy::baselineGeometry();

    for (auto [title, suite] :
         {std::pair{"Fig 7 INT suite", &workloads::intSuite()},
          std::pair{"Fig 7 FP suite", &workloads::fpSuite()}}) {
        // Reference energies use the unlimited run's access counts.
        auto unlimited_run = sim::runSuite(
            *suite, core::CoreParams::unlimited(), args.options);
        double unlimited_energy = energy::conventionalEnergy(
            model, unlimited_geom, unlimited_run.totalAccesses());

        auto baseline_run = sim::runSuite(
            *suite, core::CoreParams::baseline(), args.options);
        double baseline_energy = energy::conventionalEnergy(
            model, baseline_geom, baseline_run.totalAccesses());

        Table table(title);
        table.setColumns({"config", "energy vs unlimited",
                          "energy vs baseline"});
        table.addRow({"baseline",
                      Table::pct(baseline_energy / unlimited_energy),
                      Table::pct(1.0)});

        for (unsigned dn : bench::kDnSweep) {
            auto params = core::CoreParams::contentAware(dn);
            auto run = sim::runSuite(*suite, params, args.options);
            auto geom =
                energy::caGeometry(params.physIntRegs, params.ca);
            double ca_energy = energy::contentAwareEnergy(
                model, geom, run.totalAccesses(),
                run.totalShortWrites());
            table.addRow({strprintf("d+n=%u", dn),
                          Table::pct(ca_energy / unlimited_energy),
                          Table::pct(ca_energy / baseline_energy)});
        }
        bench::printTable(table, args);
    }
    return 0;
}
