/**
 * @file
 * Figure 7: total register file energy (reads + writes) relative to
 * the unlimited-resource file, as a function of d+n, against the
 * baseline.
 *
 * The paper reports the baseline at ~48.8% of unlimited and the
 * content-aware organization at roughly half the baseline again
 * (~25% of unlimited at the chosen d+n=20).
 */

#include <tuple>

#include "bench_util.hh"
#include "energy/report.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fig7_energy", argc, argv);
    bench::printHeader(
        "Figure 7: relative register file energy vs d+n",
        "baseline ~48.8% of unlimited; content-aware ~half of baseline");

    energy::RixnerModel model;
    auto unlimited_geom = energy::unlimitedGeometry();
    auto baseline_geom = energy::baselineGeometry();

    for (auto [title, name, suite] :
         {std::tuple{"Fig 7 INT suite", "INT", &workloads::intSuite()},
          std::tuple{"Fig 7 FP suite", "FP", &workloads::fpSuite()}}) {
        // Reference energies use the unlimited run's access counts.
        auto unlimited_run = args.runSuite(
            *suite, core::CoreParams::unlimited(),
            strprintf("unlimited %s", name));
        double unlimited_energy = energy::conventionalEnergy(
            model, unlimited_geom, unlimited_run.totalAccesses());

        auto baseline_run = args.runSuite(
            *suite, core::CoreParams::baseline(),
            strprintf("baseline %s", name));
        double baseline_energy = energy::conventionalEnergy(
            model, baseline_geom, baseline_run.totalAccesses());

        Table table(title);
        table.setColumns({"config", "energy vs unlimited",
                          "energy vs baseline"});
        table.addRow({"baseline",
                      Table::pct(baseline_energy / unlimited_energy),
                      Table::pct(1.0)});

        for (unsigned dn : bench::kDnSweep) {
            auto params = core::CoreParams::contentAware(dn);
            auto run = args.runSuite(*suite, params,
                                     strprintf("CA %s d+n=%u", name, dn));
            auto geom =
                energy::caGeometry(params.physIntRegs, params.ca);
            double ca_energy = energy::contentAwareEnergy(
                model, geom, run.totalAccesses(),
                run.totalShortWrites());
            table.addRow({strprintf("d+n=%u", dn),
                          Table::pct(ca_energy / unlimited_energy),
                          Table::pct(ca_energy / baseline_energy)});
        }
        bench::printTable(table, args);
    }
    args.writeReport();
    return 0;
}
