/**
 * @file
 * Result-store cold/warm benchmark: the 4-configuration x 21-workload
 * sweep (unlimited, baseline, content-aware, port-reduction over all
 * workloads), run twice through one store directory.
 *
 * The cold pass simulates every point and writes the store; the warm
 * pass reopens the store from disk (fresh ResultStore, fresh runner)
 * and must serve every point as a cache hit, bit-identically. The
 * table and BENCH_sweep_store.json report both wall-clocks and the
 * speedup — the ROADMAP item 2 acceptance number.
 *
 * Extra keys (on top of the universal bench_util keys):
 *   sweep_dir=PATH    store directory
 *                     (default BENCH_sweep_store.store)
 *   fresh=0           keep an existing store directory — the "cold"
 *                     pass is then whatever the store makes of it
 *                     (default 1: wipe it for an honest cold pass)
 *   min_speedup=X     exit nonzero when warm speedup < X (default 0:
 *                     report only)
 *
 * Note store_dir= (the universal key) is deliberately NOT used for
 * the benched store: that key attaches a store to the harness itself,
 * which would serve the cold pass from previous runs.
 */

#include "bench_util.hh"

#include <chrono>
#include <filesystem>

#include "sim/result_store.hh"

using namespace carf;

namespace
{

struct PassStats
{
    double seconds = 0.0;
    u64 hits = 0;
    u64 misses = 0;
    std::vector<core::RunResult> results;
};

PassStats
runPass(const std::vector<sim::ExperimentJob> &batch,
        const std::string &store_dir, const bench::BenchArgs &args)
{
    // A fresh store (reloaded from disk) and a fresh batch per pass:
    // the warm pass must get everything from the shards, not from
    // still-warm process state.
    sim::ResultStore store(store_dir, buildFingerprint());
    std::vector<sim::ExperimentJob> pass_batch = batch;
    for (auto &job : pass_batch)
        job.options.resultStore = &store;

    auto start = std::chrono::steady_clock::now();
    PassStats stats;
    stats.results = args.runner.run(pass_batch);
    stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    stats.hits = store.hits();
    stats.misses = store.misses();
    store.writeIndex();
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("sweep_store", argc, argv);
    bench::printHeader(
        "Result store: cold vs warm sweep "
        "(4 configurations x all workloads)",
        "not a paper figure — ROADMAP item 2: a warm re-run through "
        "the content-addressed store must be >= 10x faster than cold");

    std::string store_dir =
        args.config.getString("sweep_dir", "BENCH_sweep_store.store");
    double min_speedup = args.config.getDouble("min_speedup", 0.0);
    if (args.config.getBool("fresh", true))
        std::filesystem::remove_all(store_dir);

    std::vector<std::pair<std::string, core::CoreParams>> configs = {
        {"unlimited", core::CoreParams::unlimited()},
        {"baseline", core::CoreParams::baseline()},
        {"content-aware", core::CoreParams::contentAware()},
        {"port-reduction", core::CoreParams::portReduction()},
    };
    const auto &suite = workloads::allWorkloads();

    std::vector<sim::ExperimentJob> batch;
    batch.reserve(configs.size() * suite.size());
    for (const auto &[label, params] : configs)
        for (const auto &w : suite)
            batch.push_back({w, args.applyRegfileOverride(params),
                             args.options, args.decorateLabel(label),
                             nullptr});

    PassStats cold = runPass(batch, store_dir, args);
    PassStats warm = runPass(batch, store_dir, args);

    if (warm.hits != batch.size())
        fatal("warm pass expected %zu cache hits, got %llu hits / "
              "%llu misses",
              batch.size(), (unsigned long long)warm.hits,
              (unsigned long long)warm.misses);
    for (size_t i = 0; i < batch.size(); ++i) {
        if (sim::runResultJsonFull(cold.results[i], false) !=
            sim::runResultJsonFull(warm.results[i], false))
            fatal("warm result %zu (%s) is not bit-identical to cold",
                  i, batch[i].tag.c_str());
    }

    double speedup =
        warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;

    Table table("sweep store: cold vs warm "
                "(" +
                std::to_string(configs.size()) + " configs x " +
                std::to_string(suite.size()) + " workloads)");
    table.setColumns({"pass", "seconds", "hits", "misses"});
    table.addRow({"cold", strprintf("%.3f", cold.seconds),
                  strprintf("%llu", (unsigned long long)cold.hits),
                  strprintf("%llu", (unsigned long long)cold.misses)});
    table.addRow({"warm", strprintf("%.3f", warm.seconds),
                  strprintf("%llu", (unsigned long long)warm.hits),
                  strprintf("%llu", (unsigned long long)warm.misses)});
    table.addRow({"speedup", strprintf("%.1fx", speedup), "", ""});
    bench::printTable(table, args);

    args.writeReport();

    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: warm speedup %.1fx below required %.1fx\n",
                     speedup, min_speedup);
        return 1;
    }
    return 0;
}
