/**
 * @file
 * Google-benchmark microbenchmarks of the trace subsystem: trace
 * build (emulate + encode) cost, zero-copy cursor replay vs streaming
 * emulation throughput, and the headline experiment-engine number — a
 * 4-configuration sweep over the full workload suite with and without
 * the shared TraceCache. The sweep pair is the before/after evidence
 * for the cache: "Streaming" pays one emulation per (config, workload)
 * job, "Cached" pays one per workload.
 */

#include <benchmark/benchmark.h>

#include "emu/trace_buffer.hh"
#include "emu/trace_cache.hh"
#include "sim/experiment_runner.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace carf;

namespace
{

/** Instruction budget per workload for the sweep benchmarks. */
constexpr u64 kSweepInsts = 200000;

/** The sweep's configuration axis (baseline + three d+n points). */
std::vector<core::CoreParams>
sweepConfigs()
{
    return {
        core::CoreParams::baseline(),
        core::CoreParams::contentAware(16),
        core::CoreParams::contentAware(20),
        core::CoreParams::contentAware(24),
    };
}

void
BM_TraceBuild(benchmark::State &state)
{
    // Emulate + encode one workload into a TraceBuffer: the one-time
    // cost a cache hit amortizes away.
    const auto &w = workloads::findWorkload("hash_table");
    u64 insts = static_cast<u64>(state.range(0));
    for (auto _ : state) {
        auto source = workloads::makeTrace(w, insts);
        auto buffer = emu::TraceBuffer::build(*source, w.name, insts);
        benchmark::DoNotOptimize(buffer->size());
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<i64>(buffer->size()));
    }
}
BENCHMARK(BM_TraceBuild)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

void
BM_StreamingEmulation(benchmark::State &state)
{
    // Baseline trace delivery rate: the functional emulator streaming
    // DynOps record by record.
    const auto &w = workloads::findWorkload("hash_table");
    u64 insts = static_cast<u64>(state.range(0));
    for (auto _ : state) {
        auto source = workloads::makeTrace(w, insts);
        emu::DynOp op;
        u64 count = 0;
        while (source->next(op))
            ++count;
        benchmark::DoNotOptimize(count);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<i64>(count));
    }
}
BENCHMARK(BM_StreamingEmulation)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);

void
BM_CursorReplay(benchmark::State &state)
{
    // Zero-copy replay rate from an already-built buffer (the per-run
    // trace cost after a cache hit). Compare against
    // BM_StreamingEmulation at the same record count.
    const auto &w = workloads::findWorkload("hash_table");
    u64 insts = static_cast<u64>(state.range(0));
    auto source = workloads::makeTrace(w, insts);
    auto buffer = emu::TraceBuffer::build(*source, w.name, insts);
    for (auto _ : state) {
        emu::TraceBuffer::Cursor cursor(*buffer);
        emu::DynOp op;
        u64 count = 0;
        while (cursor.next(op))
            ++count;
        benchmark::DoNotOptimize(count);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<i64>(count));
    }
}
BENCHMARK(BM_CursorReplay)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

/** One 4-config x full-suite sweep on @p jobs workers. */
void
runSweep(unsigned jobs, emu::TraceCache *cache, benchmark::State &state)
{
    sim::SimOptions options;
    options.maxInsts = kSweepInsts;
    options.traceCache = cache;

    std::vector<sim::ExperimentJob> batch;
    for (const auto &params : sweepConfigs()) {
        for (const auto &w : workloads::allWorkloads())
            batch.push_back({w, params, options, "sweep", nullptr});
    }
    auto results = sim::ExperimentRunner(jobs).run(batch);
    u64 insts = 0;
    for (const auto &r : results)
        insts += r.committedInsts;
    benchmark::DoNotOptimize(insts);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<i64>(insts));
}

void
BM_SweepStreaming(benchmark::State &state)
{
    // The pre-cache experiment engine: every job re-emulates its
    // workload inside the cycle loop.
    for (auto _ : state)
        runSweep(static_cast<unsigned>(state.range(0)), nullptr, state);
}
BENCHMARK(BM_SweepStreaming)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_SweepCached(benchmark::State &state)
{
    // Same grid with a fresh shared cache per iteration: each
    // workload is emulated once, then replayed zero-copy by the other
    // configurations (results are bit-identical — see
    // tests/test_trace_buffer.cc).
    for (auto _ : state) {
        emu::TraceCache cache;
        runSweep(static_cast<unsigned>(state.range(0)), &cache, state);
    }
}
BENCHMARK(BM_SweepCached)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Expanded BENCHMARK_MAIN() that defaults --benchmark_out to the
// same per-harness JSON convention the other bench drivers use.
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_tracecache.json";
    std::string format_flag = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    }
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(format_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
