/**
 * @file
 * §6 third direction: partial value locality in the *memory* stream.
 *
 * The paper notes that both addresses and data in the cache hierarchy
 * show considerable partial value locality, suggesting content-aware
 * techniques beyond the register file. This harness scans the
 * dynamic trace directly (no timing model needed) and groups load/
 * store effective addresses and stored data values by
 * (64-d)-similarity over sliding windows, reporting the share of
 * references whose high bits match the window's dominant groups.
 */

#include <algorithm>
#include <unordered_map>

#include "bench_util.hh"
#include "common/bitutil.hh"

using namespace carf;

namespace
{

/** Window-based top-group coverage for a value stream. */
class WindowLocality
{
  public:
    explicit WindowLocality(unsigned d) : d_(d) {}

    void
    add(u64 value)
    {
        window_.push_back(similarityTag(value, d_));
        if (window_.size() >= 4096)
            flush();
    }

    void
    flush()
    {
        if (window_.empty())
            return;
        std::unordered_map<u64, u32> groups;
        for (u64 tag : window_)
            ++groups[tag];
        std::vector<u32> sizes;
        sizes.reserve(groups.size());
        for (const auto &[tag, count] : groups)
            sizes.push_back(count);
        std::sort(sizes.begin(), sizes.end(), std::greater<u32>());
        u64 top4 = 0;
        for (size_t i = 0; i < sizes.size() && i < 4; ++i)
            top4 += sizes[i];
        covered_ += top4;
        total_ += window_.size();
        window_.clear();
    }

    double
    coverage() const
    {
        return total_ ? static_cast<double>(covered_) / total_ : 0.0;
    }

    u64 total() const { return total_; }

  private:
    unsigned d_;
    std::vector<u64> window_;
    u64 covered_ = 0;
    u64 total_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    auto args =
        bench::BenchArgs::parse("ablation_memory_locality", argc, argv);
    bench::printHeader(
        "Memory-stream partial value locality (§6 future direction)",
        "addresses and data both exhibit considerable partial value "
        "locality");

    const unsigned ds[] = {8, 12, 16};
    Table table("share of references covered by the top-4 "
                "(64-d)-similar groups per 4096-reference window");
    table.setColumns({"workload", "addr d=8", "addr d=12", "addr d=16",
                      "data d=8", "data d=12", "data d=16"});

    for (const char *name :
         {"pointer_chase", "hash_table", "graph_walk", "bst_search",
          "rle", "counters", "bit_pack", "daxpy", "jacobi"}) {
        std::vector<WindowLocality> addr_loc;
        std::vector<WindowLocality> data_loc;
        for (unsigned d : ds) {
            addr_loc.emplace_back(d);
            data_loc.emplace_back(d);
        }

        auto trace = workloads::makeTrace(workloads::findWorkload(name),
                                          args.options.maxInsts);
        emu::DynOp op;
        while (trace->next(op)) {
            if (op.isLoad() || op.isStore()) {
                for (auto &loc : addr_loc)
                    loc.add(op.effAddr);
            }
            if (op.isStore()) {
                for (auto &loc : data_loc)
                    loc.add(op.rs2Value);
            }
        }
        std::vector<std::string> row = {name};
        for (auto &loc : addr_loc) {
            loc.flush();
            row.push_back(loc.total() ? Table::pct(loc.coverage())
                                      : "-");
        }
        for (auto &loc : data_loc) {
            loc.flush();
            row.push_back(loc.total() ? Table::pct(loc.coverage())
                                      : "-");
        }
        table.addRow(row);
    }
    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
