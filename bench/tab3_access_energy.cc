/**
 * @file
 * Table 3: single-access energy of each register sub-file as a
 * function of d+n, normalized to the unlimited-resource file.
 *
 * Paper values at d+n=20: simple 10.8%, short 2.9%, long 16.9%;
 * baseline 48.8%.
 */

#include "bench_util.hh"
#include "energy/report.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("tab3_access_energy", argc, argv);
    bench::printHeader(
        "Table 3: single-access energy normalized to unlimited",
        "at d+n=20: simple 10.8%, short 2.9%, long 16.9%; "
        "baseline 48.8%");

    energy::RixnerModel model;
    double unlimited = model.readEnergy(energy::unlimitedGeometry());
    double baseline = model.readEnergy(energy::baselineGeometry());

    Table table("Tab 3: per-access read energy (100% = unlimited)");
    table.setColumns({"d+n", "simple", "short", "long", "baseline"});
    for (unsigned dn : bench::kDnSweep) {
        auto params = core::CoreParams::contentAware(dn);
        auto geom = energy::caGeometry(params.physIntRegs, params.ca);
        table.addRow({strprintf("%u", dn),
                      Table::pct(model.readEnergy(geom.simple) /
                                 unlimited),
                      Table::pct(model.readEnergy(geom.shortFile) /
                                 unlimited),
                      Table::pct(model.readEnergy(geom.longFile) /
                                 unlimited),
                      Table::pct(baseline / unlimited)});
    }
    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
