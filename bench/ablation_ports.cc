/**
 * @file
 * §4 port-reduction ablation. The paper argues port-count reduction
 * (à la Park/Powell/Vijaykumar, Tseng/Asanović) is orthogonal to the
 * content-aware organization, and that further reducing the CA
 * sub-files' ports would add "relatively low" energy savings at added
 * control complexity. This harness quantifies both directions:
 * IPC and register file energy for the baseline and the content-aware
 * file across read/write port counts.
 *
 * All seven configurations run as one grouped batch: each workload's
 * trace is decoded once and stepped through every configuration in
 * lockstep.
 */

#include "bench_util.hh"
#include "energy/report.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_ports", argc, argv);
    bench::printHeader(
        "Port reduction x organization (INT suite)",
        "port reduction is orthogonal; extra savings on the CA file "
        "are relatively low");

    struct PortPoint
    {
        unsigned rd, wr;
    };
    const PortPoint points[] = {{8, 6}, {6, 4}, {4, 3}};

    std::vector<std::pair<std::string, core::CoreParams>> configs = {
        {"unlimited INT", core::CoreParams::unlimited()},
    };
    for (const PortPoint &p : points) {
        auto base = core::CoreParams::baseline();
        base.intRfReadPorts = p.rd;
        base.intRfWritePorts = p.wr;
        configs.push_back(
            {strprintf("baseline %uR/%uW", p.rd, p.wr), base});

        auto ca = core::CoreParams::contentAware(20);
        ca.intRfReadPorts = p.rd;
        ca.intRfWritePorts = p.wr;
        configs.push_back({strprintf("CA %uR/%uW", p.rd, p.wr), ca});
    }

    auto runs = args.runSuites(workloads::intSuite(), configs);
    const auto &unlimited_run = runs[0];

    energy::RixnerModel model;
    double unlimited_energy = energy::conventionalEnergy(
        model, energy::unlimitedGeometry(),
        unlimited_run.totalAccesses());

    Table table("relative IPC (vs unlimited) and RF energy "
                "(vs unlimited) per port configuration");
    table.setColumns({"organization", "ports", "rel IPC",
                      "rel energy"});

    for (size_t i = 0; i < std::size(points); ++i) {
        const PortPoint &p = points[i];
        const auto &base_run = runs[1 + 2 * i];
        const auto &ca_run = runs[2 + 2 * i];
        const core::CoreParams &base = configs[1 + 2 * i].second;
        const core::CoreParams &ca = configs[2 + 2 * i].second;

        energy::RegFileGeometry geom{base.physIntRegs, 64, p.rd, p.wr};
        double base_energy = energy::conventionalEnergy(
            model, geom, base_run.totalAccesses());
        table.addRow({"baseline", strprintf("%uR/%uW", p.rd, p.wr),
                      Table::pct(sim::meanRelativeIpc(base_run,
                                                      unlimited_run),
                                 2),
                      Table::pct(base_energy / unlimited_energy)});

        auto ca_geom = energy::caGeometry(ca.physIntRegs, ca.ca, p.rd,
                                          p.wr);
        double ca_energy = energy::contentAwareEnergy(
            model, ca_geom, ca_run.totalAccesses(),
            ca_run.totalShortWrites());
        table.addRow({"content-aware",
                      strprintf("%uR/%uW", p.rd, p.wr),
                      Table::pct(sim::meanRelativeIpc(ca_run,
                                                      unlimited_run),
                                 2),
                      Table::pct(ca_energy / unlimited_energy)});
    }
    bench::printTable(table, args);

    std::printf("Reading: moving down rows trades IPC for port "
                "energy; the CA column's energy\ndeltas from port "
                "reduction are small next to the organization's own "
                "savings,\nmatching the paper's 'relatively low' "
                "assessment.\n");
    args.writeReport();
    return 0;
}
