/**
 * @file
 * §4 port-reduction ablation. The paper argues port-count reduction
 * (à la Park/Powell/Vijaykumar, Tseng/Asanović) is orthogonal to the
 * content-aware organization, and that further reducing the CA
 * sub-files' ports would add "relatively low" energy savings at added
 * control complexity. This harness quantifies both directions:
 * IPC and register file energy for the baseline and the content-aware
 * file across read/write port counts.
 */

#include "bench_util.hh"
#include "energy/report.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_ports", argc, argv);
    bench::printHeader(
        "Port reduction x organization (INT suite)",
        "port reduction is orthogonal; extra savings on the CA file "
        "are relatively low");

    energy::RixnerModel model;
    auto unlimited_run = args.runSuite(workloads::intSuite(),
                                       core::CoreParams::unlimited(),
                                       "unlimited INT");
    double unlimited_energy = energy::conventionalEnergy(
        model, energy::unlimitedGeometry(),
        unlimited_run.totalAccesses());

    Table table("relative IPC (vs unlimited) and RF energy "
                "(vs unlimited) per port configuration");
    table.setColumns({"organization", "ports", "rel IPC",
                      "rel energy"});

    struct PortPoint
    {
        unsigned rd, wr;
    };
    const PortPoint points[] = {{8, 6}, {6, 4}, {4, 3}};

    for (const PortPoint &p : points) {
        // Baseline file with reduced ports.
        auto base = core::CoreParams::baseline();
        base.intRfReadPorts = p.rd;
        base.intRfWritePorts = p.wr;
        auto base_run =
            args.runSuite(workloads::intSuite(), base,
                          strprintf("baseline %uR/%uW", p.rd, p.wr));
        energy::RegFileGeometry geom{base.physIntRegs, 64, p.rd, p.wr};
        double base_energy = energy::conventionalEnergy(
            model, geom, base_run.totalAccesses());
        table.addRow({"baseline", strprintf("%uR/%uW", p.rd, p.wr),
                      Table::pct(sim::meanRelativeIpc(base_run,
                                                      unlimited_run),
                                 2),
                      Table::pct(base_energy / unlimited_energy)});

        // Content-aware file with the same reduced ports.
        auto ca = core::CoreParams::contentAware(20);
        ca.intRfReadPorts = p.rd;
        ca.intRfWritePorts = p.wr;
        auto ca_run =
            args.runSuite(workloads::intSuite(), ca,
                          strprintf("CA %uR/%uW", p.rd, p.wr));
        auto ca_geom = energy::caGeometry(ca.physIntRegs, ca.ca, p.rd,
                                          p.wr);
        double ca_energy = energy::contentAwareEnergy(
            model, ca_geom, ca_run.totalAccesses(),
            ca_run.totalShortWrites());
        table.addRow({"content-aware",
                      strprintf("%uR/%uW", p.rd, p.wr),
                      Table::pct(sim::meanRelativeIpc(ca_run,
                                                      unlimited_run),
                                 2),
                      Table::pct(ca_energy / unlimited_energy)});
    }
    bench::printTable(table, args);

    std::printf("Reading: moving down rows trades IPC for port "
                "energy; the CA column's energy\ndeltas from port "
                "reduction are small next to the organization's own "
                "savings,\nmatching the paper's 'relatively low' "
                "assessment.\n");
    args.writeReport();
    return 0;
}
