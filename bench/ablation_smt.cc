/**
 * @file
 * §6 extension study: N SMT threads sharing one content-aware integer
 * register file.
 *
 * The paper argues that because the *average* number of live Long
 * registers is far below the Long file's peak-sized capacity, a
 * single Long file can feed more than one thread. This harness scales
 * that claim along the thread axis: a T x (backend, K) grid of SMT
 * runs through the experiment runner, reporting aggregate IPC,
 * per-thread fairness, the cross-thread Short-share rate (how often
 * one thread's value group feeds another), and live-Long occupancy.
 *
 * Extra keys beyond the bench_util universals:
 *   smt_threads=T[,T...]  thread counts to sweep (default 1,2,4,8)
 *   mix=W[,W...]          workload mix; thread t runs mix[t % len]
 *                         (default counters,crc,hash_table,rle —
 *                         alternating high- and low-similarity)
 * The physical register files scale with T (80 + 32*T integer
 * registers for the sized backends) so the rename pool never becomes
 * the bottleneck the study is not about; the Long file does NOT scale
 * — sharing it is the experiment.
 *
 * Every cell is one ExperimentRunner job, so store_dir= resume works:
 * a warm rerun serves the whole grid from the result store.
 */

#include <algorithm>
#include <cstdlib>

#include "bench_util.hh"

using namespace carf;

namespace
{

/** One grid row: a register-file organization label + base params. */
struct Org
{
    std::string label;
    core::CoreParams params;
};

/** Scale the rename pools with the thread count (see file comment). */
core::CoreParams
scaledForThreads(const core::CoreParams &base, unsigned threads)
{
    core::CoreParams p = base;
    p.smtThreads = threads;
    if (p.regFileBackend == "unlimited") {
        p.physIntRegs = 128 + 32 * threads;
        p.physFpRegs = 128 + 32 * threads;
    } else {
        p.physIntRegs = 80 + 32 * threads;
        p.physFpRegs = 96 + 32 * threads;
    }
    return p;
}

double
crossShareRate(const core::RunResult &r)
{
    return r.smtShortHits
               ? static_cast<double>(r.smtCrossShortHits) / r.smtShortHits
               : 0.0;
}

double
fairness(const core::RunResult &r)
{
    if (r.smtThreadIpc.empty())
        return 1.0; // solo run: trivially fair
    double lo = r.smtThreadIpc[0], hi = r.smtThreadIpc[0];
    for (double ipc : r.smtThreadIpc) {
        lo = std::min(lo, ipc);
        hi = std::max(hi, ipc);
    }
    return hi > 0.0 ? lo / hi : 0.0;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    for (size_t start = 0; start < csv.size();) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_smt", argc, argv);
    bench::printHeader(
        "SMT sharing of the content-aware register file (§6)",
        "avg live Long registers (~13) << K, so one Long file can "
        "feed multiple threads");

    std::vector<unsigned> thread_counts;
    for (const std::string &t :
         splitList(args.config.getString("smt_threads", "1,2,4,8"))) {
        unsigned n = static_cast<unsigned>(std::strtoul(t.c_str(),
                                                        nullptr, 10));
        if (!n)
            fatal("smt_threads=: '%s' is not a positive thread count",
                  t.c_str());
        thread_counts.push_back(n);
    }

    std::vector<std::string> mix = splitList(
        args.config.getString("mix", "counters,crc,hash_table,rle"));
    if (mix.empty())
        fatal("mix=: need at least one workload name");
    for (const std::string &name : mix)
        workloads::findWorkload(name); // fatal on unknown names

    // Thread 0 runs mix[0]; simulateSmt assigns thread t > 0 from
    // smtMix[(t-1) % len], so rotating the mix by one gives thread t
    // exactly mix[t % len].
    args.options.smtMix.clear();
    for (size_t i = 1; i <= mix.size(); ++i)
        args.options.smtMix.push_back(mix[i % mix.size()]);

    // Grid rows: the fixed-capacity organizations plus the
    // content-aware K sweep (the Long file deliberately does not
    // scale with T).
    std::vector<Org> orgs;
    orgs.push_back({"baseline", core::CoreParams::baseline()});
    orgs.push_back({"port-reduction", core::CoreParams::portReduction()});
    for (unsigned k : {32u, 48u, 64u})
        orgs.push_back({strprintf("CA K=%u", k),
                        core::CoreParams::contentAware(20, 3, k)});
    orgs.push_back({"unlimited", core::CoreParams::unlimited()});

    // One batch for the whole grid, so the runner's pool, trace
    // cache, and result store all see every cell at once.
    std::vector<sim::ExperimentJob> jobs;
    for (const Org &org : orgs)
        for (unsigned t : thread_counts)
            jobs.push_back({workloads::findWorkload(mix[0]),
                            scaledForThreads(
                                args.applyRegfileOverride(org.params), t),
                            args.options,
                            args.decorateLabel(
                                strprintf("%s T=%u", org.label.c_str(),
                                          t)),
                            nullptr});

    sim::ExperimentRunner::ProgressFn fn;
    if (args.progress) {
        fn = [](const sim::ExperimentProgress &p) {
            inform("[%s] %zu/%zu %s (%.2fs)", p.job.tag.c_str(),
                   p.completed, p.total, p.job.workload.name.c_str(),
                   p.result.wallSeconds);
        };
    }
    std::vector<core::RunResult> results = args.runner.run(jobs, fn);

    // Record per-organization rows into the JSON report.
    for (size_t o = 0; o < orgs.size(); ++o) {
        sim::SuiteRun run;
        for (size_t t = 0; t < thread_counts.size(); ++t)
            run.results.push_back(
                results[o * thread_counts.size() + t]);
        args.report.addSuite(args.decorateLabel(orgs[o].label), run);
    }

    auto cell = [&](size_t o, size_t t) -> const core::RunResult & {
        return results[o * thread_counts.size() + t];
    };

    std::vector<std::string> columns = {"organization"};
    for (unsigned t : thread_counts)
        columns.push_back(strprintf("T=%u", t));

    std::string mix_desc = mix[0];
    for (size_t i = 1; i < mix.size(); ++i)
        mix_desc += "+" + mix[i];

    Table ipc_table("aggregate IPC (mix " + mix_desc + ")");
    ipc_table.setColumns(columns);
    Table fair_table("fairness: min/max per-thread IPC");
    fair_table.setColumns(columns);
    Table share_table("cross-thread Short-share rate");
    share_table.setColumns(columns);
    Table long_table("avg live Long registers");
    long_table.setColumns(columns);

    for (size_t o = 0; o < orgs.size(); ++o) {
        std::vector<std::string> ipc_row = {orgs[o].label};
        std::vector<std::string> fair_row = {orgs[o].label};
        std::vector<std::string> share_row = {orgs[o].label};
        std::vector<std::string> long_row = {orgs[o].label};
        for (size_t t = 0; t < thread_counts.size(); ++t) {
            const core::RunResult &r = cell(o, t);
            ipc_row.push_back(Table::num(r.ipc, 2));
            fair_row.push_back(thread_counts[t] > 1
                                   ? Table::num(fairness(r), 2)
                                   : "-");
            share_row.push_back(r.smtShortHits
                                    ? Table::pct(crossShareRate(r))
                                    : "-");
            long_row.push_back(r.avgLiveLong > 0.0
                                   ? Table::num(r.avgLiveLong, 1)
                                   : "-");
        }
        ipc_table.addRow(ipc_row);
        fair_table.addRow(fair_row);
        share_table.addRow(share_row);
        long_table.addRow(long_row);
    }
    bench::printTable(ipc_table, args);
    bench::printTable(fair_table, args);
    bench::printTable(share_table, args);
    bench::printTable(long_table, args);

    std::printf(
        "Reading: aggregate IPC that keeps growing with T while avg "
        "live Long stays\nwell under K supports the sharing claim; the "
        "cross-thread share rate shows how\nmuch of the Short file's "
        "value similarity crosses thread boundaries.\n");
    args.writeReport();
    return 0;
}
