/**
 * @file
 * §6 extension study: SMT threads sharing one content-aware integer
 * register file.
 *
 * The paper argues that because the *average* number of live Long
 * registers is far below the Long file's peak-sized capacity, a
 * single Long file can feed more than one thread. This harness runs
 * two-thread mixes over the K (Long size) sweep and compares
 * aggregate throughput against the single-thread runs, for both the
 * baseline and content-aware organizations.
 */

#include <map>

#include "bench_util.hh"
#include "core/smt.hh"

using namespace carf;

namespace
{

struct Mix
{
    const char *name;
    const char *a;
    const char *b;
};

double
smtThroughput(const core::CoreParams &params, const Mix &mix,
              u64 insts)
{
    auto ta = workloads::makeTrace(workloads::findWorkload(mix.a),
                                   insts);
    auto tb = workloads::makeTrace(workloads::findWorkload(mix.b),
                                   insts);
    core::SmtPipeline pipeline(params, 2);
    auto result = pipeline.run({ta.get(), tb.get()});
    return result.totalIpc();
}

/**
 * Every (organization, workload) single-thread run the mix table
 * needs, executed once as one parallel batch and looked up by
 * (organization label, workload name).
 */
class SingleRuns
{
  public:
    void
    request(const std::string &org, const core::CoreParams &params,
            const char *workload)
    {
        if (ipc_.count({org, workload}))
            return;
        ipc_[{org, workload}] = 0.0;
        params_.push_back({org, params, workload});
    }

    void
    run(const bench::BenchArgs &args)
    {
        std::vector<sim::ExperimentJob> jobs;
        for (const auto &r : params_)
            jobs.push_back({workloads::findWorkload(r.workload),
                            r.params, args.options, r.org, nullptr});
        sim::SuiteRun suite;
        suite.results = args.runner.run(jobs);
        args.report.addSuite("single-thread runs", suite);
        for (size_t i = 0; i < params_.size(); ++i)
            ipc_[{params_[i].org, params_[i].workload}] =
                suite.results[i].ipc;
    }

    double
    ipc(const std::string &org, const char *workload) const
    {
        return ipc_.at({org, workload});
    }

  private:
    struct Request
    {
        std::string org;
        core::CoreParams params;
        const char *workload;
    };
    std::vector<Request> params_;
    std::map<std::pair<std::string, std::string>, double> ipc_;
};

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_smt", argc, argv);
    u64 insts = args.options.maxInsts;
    bench::printHeader(
        "SMT sharing of the content-aware register file (§6)",
        "avg live Long registers (~13) << K, so one Long file can "
        "feed two threads");

    // Cache-light mixes isolate register file sharing; cache-heavy
    // mixes add L2 contention on top (both regimes are real).
    const Mix mixes[] = {
        {"light int+int", "counters", "crc"},
        {"light int+int 2", "rle", "string_ops"},
        {"heavy int+int", "pointer_chase", "hash_table"},
        {"heavy int+fp", "graph_walk", "daxpy"},
        {"heavy fp+fp", "stencil", "dot_reduce"},
    };

    Table table("2-thread aggregate IPC (and % of summed 1-thread "
                "IPC on the same organization)");
    table.setColumns({"mix", "baseline", "CA K=32", "CA K=48",
                      "CA K=64"});

    // Gather every single-thread reference run first so the whole
    // set executes as one parallel batch.
    SingleRuns singles;
    for (const Mix &mix : mixes) {
        singles.request("baseline", core::CoreParams::baseline(),
                        mix.a);
        singles.request("baseline", core::CoreParams::baseline(),
                        mix.b);
        for (unsigned k : {32u, 48u, 64u}) {
            auto ca = core::CoreParams::contentAware(20, 3, k);
            singles.request(strprintf("CA K=%u", k), ca, mix.a);
            singles.request(strprintf("CA K=%u", k), ca, mix.b);
        }
    }
    singles.run(args);

    for (const Mix &mix : mixes) {
        std::vector<std::string> row = {mix.name};

        auto baseline = core::CoreParams::baseline();
        double base_sum = singles.ipc("baseline", mix.a) +
                          singles.ipc("baseline", mix.b);
        double base_smt = smtThroughput(baseline, mix, insts);
        row.push_back(Table::num(base_smt, 2) + " (" +
                      Table::pct(base_smt / base_sum) + ")");

        for (unsigned k : {32u, 48u, 64u}) {
            auto ca = core::CoreParams::contentAware(20, 3, k);
            std::string org = strprintf("CA K=%u", k);
            double ca_sum = singles.ipc(org, mix.a) +
                            singles.ipc(org, mix.b);
            double ca_smt = smtThroughput(ca, mix, insts);
            row.push_back(Table::num(ca_smt, 2) + " (" +
                          Table::pct(ca_smt / ca_sum) + ")");
        }
        table.addRow(row);
    }
    bench::printTable(table, args);

    std::printf("Reading: SMT throughput below 100%% of the summed "
                "single-thread IPC reflects\nsharing losses; the CA "
                "columns show how much Long capacity two threads "
                "need.\n");
    args.writeReport();
    return 0;
}
