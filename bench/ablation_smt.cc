/**
 * @file
 * §6 extension study: SMT threads sharing one content-aware integer
 * register file.
 *
 * The paper argues that because the *average* number of live Long
 * registers is far below the Long file's peak-sized capacity, a
 * single Long file can feed more than one thread. This harness runs
 * two-thread mixes over the K (Long size) sweep and compares
 * aggregate throughput against the single-thread runs, for both the
 * baseline and content-aware organizations.
 */

#include "bench_util.hh"
#include "core/smt.hh"

using namespace carf;

namespace
{

struct Mix
{
    const char *name;
    const char *a;
    const char *b;
};

double
smtThroughput(const core::CoreParams &params, const Mix &mix,
              u64 insts)
{
    auto ta = workloads::makeTrace(workloads::findWorkload(mix.a),
                                   insts);
    auto tb = workloads::makeTrace(workloads::findWorkload(mix.b),
                                   insts);
    core::SmtPipeline pipeline(params, 2);
    auto result = pipeline.run({ta.get(), tb.get()});
    return result.totalIpc();
}

double
singleIpc(const core::CoreParams &params, const char *name, u64 insts)
{
    sim::SimOptions options;
    options.maxInsts = insts;
    return sim::simulate(workloads::findWorkload(name), params, options)
        .ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse(argc, argv);
    u64 insts = args.options.maxInsts;
    bench::printHeader(
        "SMT sharing of the content-aware register file (§6)",
        "avg live Long registers (~13) << K, so one Long file can "
        "feed two threads");

    // Cache-light mixes isolate register file sharing; cache-heavy
    // mixes add L2 contention on top (both regimes are real).
    const Mix mixes[] = {
        {"light int+int", "counters", "crc"},
        {"light int+int 2", "rle", "string_ops"},
        {"heavy int+int", "pointer_chase", "hash_table"},
        {"heavy int+fp", "graph_walk", "daxpy"},
        {"heavy fp+fp", "stencil", "dot_reduce"},
    };

    Table table("2-thread aggregate IPC (and % of summed 1-thread "
                "IPC on the same organization)");
    table.setColumns({"mix", "baseline", "CA K=32", "CA K=48",
                      "CA K=64"});

    for (const Mix &mix : mixes) {
        std::vector<std::string> row = {mix.name};

        auto baseline = core::CoreParams::baseline();
        double base_sum = singleIpc(baseline, mix.a, insts) +
                          singleIpc(baseline, mix.b, insts);
        double base_smt = smtThroughput(baseline, mix, insts);
        row.push_back(Table::num(base_smt, 2) + " (" +
                      Table::pct(base_smt / base_sum) + ")");

        for (unsigned k : {32u, 48u, 64u}) {
            auto ca = core::CoreParams::contentAware(20, 3, k);
            double ca_sum = singleIpc(ca, mix.a, insts) +
                            singleIpc(ca, mix.b, insts);
            double ca_smt = smtThroughput(ca, mix, insts);
            row.push_back(Table::num(ca_smt, 2) + " (" +
                          Table::pct(ca_smt / ca_sum) + ")");
        }
        table.addRow(row);
    }
    bench::printTable(table, args);

    std::printf("Reading: SMT throughput below 100%% of the summed "
                "single-thread IPC reflects\nsharing losses; the CA "
                "columns show how much Long capacity two threads "
                "need.\n");
    return 0;
}
