/**
 * @file
 * Cross-model comparison bench: every register-file backend in the
 * registry (or the regfile= selection) over the shared INT workload
 * suite, in one lockstep-grouped batch. For each model the report
 * carries IPC, the per-sub-file access counts, model-level port
 * conflicts, and the Rixner energy/area/access-time numbers — all
 * obtained through the RegFileModel hooks (banks()/energyTerms()),
 * with no backend special cases, so a newly registered backend shows
 * up in the comparison with zero harness changes.
 *
 * Extra key (on top of the universal bench_util keys):
 *   regfile=NAME[,NAME...]  restrict the sweep to the named backends
 */

#include "bench_util.hh"

#include "energy/report.hh"
#include "regfile/registry.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("compare_backends", argc, argv);
    bench::printHeader(
        "Backend zoo: IPC / access / energy / area / delay per "
        "registered register-file model",
        "content-aware trades ~1-2% IPC for large energy and area "
        "wins; port reduction trades conflict stalls for ports");

    auto configs = args.backendConfigs();
    auto runs = args.runSuites(workloads::intSuite(), configs);

    // Normalize IPC against the unlimited model when it is part of
    // the sweep, otherwise against the first selected backend.
    size_t ref = 0;
    for (size_t c = 0; c < configs.size(); ++c)
        if (configs[c].first == "unlimited")
            ref = c;

    energy::RixnerModel model;

    Table table("backend comparison (INT suite)");
    table.setColumns({"backend", "IPC", "rel IPC", "RF reads",
                      "RF writes", "conflict cycles", "energy",
                      "area", "access time"});
    for (size_t c = 0; c < configs.size(); ++c) {
        const std::string &name = configs[c].first;
        const core::CoreParams &params = configs[c].second;
        const sim::SuiteRun &run = runs[c];

        auto rf = regfile::makeRegFile(name, params.regFileParams(),
                                       "compare");
        regfile::AccessCounts counts = run.totalAccesses();
        double joules = energy::modelEnergy(
            model, rf->energyTerms(counts, run.totalShortWrites()));
        double area = energy::modelArea(model, rf->banks());
        double access = energy::modelMaxAccessTime(model, rf->banks());
        u64 conflict_cycles = 0;
        for (const auto &r : run.results)
            conflict_cycles += r.portConflictCycles;

        table.addRow({name, strprintf("%.3f", run.meanIpc()),
                      Table::pct(sim::meanRelativeIpc(run, runs[ref]), 2),
                      strprintf("%llu",
                                (unsigned long long)counts.totalReads()),
                      strprintf("%llu",
                                (unsigned long long)counts.totalWrites()),
                      strprintf("%llu",
                                (unsigned long long)conflict_cycles),
                      strprintf("%.4g", joules),
                      strprintf("%.4g", area),
                      strprintf("%.4g", access)});
    }
    bench::printTable(table, args);

    Table geom("backend geometries (registry descriptions)");
    geom.setColumns({"backend", "description", "banks"});
    for (const auto &[name, params] : configs) {
        auto rf = regfile::makeRegFile(name, params.regFileParams(),
                                       "describe");
        std::string banks;
        for (const regfile::BankGeometry &b : rf->banks())
            banks += strprintf("%s%s %ux%ub %uR/%uW",
                               banks.empty() ? "" : "; ",
                               b.label.c_str(), b.entries, b.widthBits,
                               b.readPorts, b.writePorts);
        geom.addRow({name, regfile::registry().at(name).description,
                     banks});
    }
    bench::printTable(geom, args);

    args.writeReport();
    return 0;
}
