/**
 * @file
 * Table 4: source-operand type-combination distribution for integer
 * instructions at d+n=20.
 *
 * Paper: only-simple 47.4%, only-short 21.7%, only-long 17.5%,
 * simple+short 6.3%, simple+long 6.2%, short+long 1.0% — i.e.\ both
 * operands share a type for >86% of instructions, motivating the §6
 * value-type-clustered microarchitecture.
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("tab4_operand_mix", argc, argv);
    bench::printHeader(
        "Table 4: operation distribution by source operand types "
        "(d+n=20)",
        "same-type operands for >86% of integer instructions");

    auto run = args.runSuite(workloads::intSuite(),
                             core::CoreParams::contentAware(20),
                             "CA INT d+n=20");
    auto mix = run.totalOperandMix();

    Table table("Tab 4: integer-instruction source operand mix");
    table.setColumns({"operand types", "share"});
    double same_type = 0.0;
    for (unsigned b = 0; b < core::OperandMix::NumBuckets; ++b) {
        table.addRow({core::OperandMix::bucketName(b),
                      Table::pct(mix.fraction(b))});
        if (b <= core::OperandMix::OnlyLong)
            same_type += mix.fraction(b);
    }
    bench::printTable(table, args);
    std::printf("same-type instructions: %s (paper: >86%%)\n",
                Table::pct(same_type).c_str());
    args.writeReport();
    return 0;
}
