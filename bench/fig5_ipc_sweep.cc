/**
 * @file
 * Figure 5: average relative IPC (vs the unlimited-resource register
 * file) as a function of d+n, for the INT and FP suites, with 8 Short
 * and 48 Long registers.
 *
 * The paper reports the baseline at ~99% of unlimited, and the
 * content-aware organization climbing toward the baseline as d+n
 * grows: ~98.3% INT / ~99.7% FP at d+n=20.
 *
 * All configurations of a suite go in as one grouped batch, so each
 * workload's trace is decoded once and replayed through every
 * configuration in lockstep (lockstep=0 reverts to per-job runs).
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fig5_ipc_sweep", argc, argv);
    bench::printHeader(
        "Figure 5: average relative IPC vs d+n (8 short, 48 long)",
        "INT reaches ~98.3% and FP ~99.7% of unlimited at d+n=20; "
        "baseline ~99%");

    std::vector<std::pair<std::string, core::CoreParams>> int_configs = {
        {"unlimited INT", core::CoreParams::unlimited()},
        {"baseline INT", core::CoreParams::baseline()},
    };
    std::vector<std::pair<std::string, core::CoreParams>> fp_configs = {
        {"unlimited FP", core::CoreParams::unlimited()},
        {"baseline FP", core::CoreParams::baseline()},
    };
    for (unsigned dn : bench::kDnSweep) {
        auto params = core::CoreParams::contentAware(dn);
        auto label = strprintf("d+n=%u", dn);
        int_configs.push_back({"CA INT " + label, params});
        fp_configs.push_back({"CA FP " + label, params});
    }

    auto int_runs = args.runSuites(workloads::intSuite(), int_configs);
    auto fp_runs = args.runSuites(workloads::fpSuite(), fp_configs);
    const auto &unlimited_int = int_runs[0];
    const auto &unlimited_fp = fp_runs[0];

    Table table("Fig 5: relative IPC (100% = unlimited)");
    table.setColumns({"config", "INT", "FP"});
    table.addRow({"baseline",
                  Table::pct(sim::meanRelativeIpc(int_runs[1],
                                                  unlimited_int), 2),
                  Table::pct(sim::meanRelativeIpc(fp_runs[1],
                                                  unlimited_fp), 2)});

    for (size_t i = 0; i < bench::kDnSweep.size(); ++i) {
        table.addRow({strprintf("d+n=%u", bench::kDnSweep[i]),
                      Table::pct(sim::meanRelativeIpc(int_runs[2 + i],
                                                      unlimited_int), 2),
                      Table::pct(sim::meanRelativeIpc(fp_runs[2 + i],
                                                      unlimited_fp), 2)});
    }
    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
