/**
 * @file
 * Figure 5: average relative IPC (vs the unlimited-resource register
 * file) as a function of d+n, for the INT and FP suites, with 8 Short
 * and 48 Long registers.
 *
 * The paper reports the baseline at ~99% of unlimited, and the
 * content-aware organization climbing toward the baseline as d+n
 * grows: ~98.3% INT / ~99.7% FP at d+n=20.
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fig5_ipc_sweep", argc, argv);
    bench::printHeader(
        "Figure 5: average relative IPC vs d+n (8 short, 48 long)",
        "INT reaches ~98.3% and FP ~99.7% of unlimited at d+n=20; "
        "baseline ~99%");

    const auto &ints = workloads::intSuite();
    const auto &fps = workloads::fpSuite();

    auto unlimited_int =
        args.runSuite(ints, core::CoreParams::unlimited(), "unlimited INT");
    auto unlimited_fp =
        args.runSuite(fps, core::CoreParams::unlimited(), "unlimited FP");
    auto baseline_int =
        args.runSuite(ints, core::CoreParams::baseline(), "baseline INT");
    auto baseline_fp =
        args.runSuite(fps, core::CoreParams::baseline(), "baseline FP");

    Table table("Fig 5: relative IPC (100% = unlimited)");
    table.setColumns({"config", "INT", "FP"});
    table.addRow({"baseline",
                  Table::pct(sim::meanRelativeIpc(baseline_int,
                                                  unlimited_int), 2),
                  Table::pct(sim::meanRelativeIpc(baseline_fp,
                                                  unlimited_fp), 2)});

    for (unsigned dn : bench::kDnSweep) {
        auto params = core::CoreParams::contentAware(dn);
        auto label = strprintf("d+n=%u", dn);
        auto ca_int = args.runSuite(ints, params, "CA INT " + label);
        auto ca_fp = args.runSuite(fps, params, "CA FP " + label);
        table.addRow({label,
                      Table::pct(sim::meanRelativeIpc(ca_int,
                                                      unlimited_int), 2),
                      Table::pct(sim::meanRelativeIpc(ca_fp,
                                                      unlimited_fp), 2)});
    }
    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
