/**
 * @file
 * §6 extension study: value-type-based clustering.
 *
 * Table 4 shows that both source operands of most integer
 * instructions share one value type, so a clustered microarchitecture
 * steered by result type would see little inter-cluster traffic. This
 * harness quantifies that: each instruction is (notionally) steered
 * to the cluster of its result's value type, and every register
 * source operand of a different type counts as one inter-cluster
 * transfer.
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("ablation_clustering", argc, argv);
    bench::printHeader(
        "Value-type clustering estimate (§6, derived from Table 4)",
        ">86% same-type operands implies little inter-cluster "
        "communication");

    Table table("inter-cluster operand transfers under result-type "
                "steering (d+n sweep)");
    table.setColumns({"config", "INT cross-ops", "FP cross-ops"});

    for (unsigned dn : {12u, 16u, 20u, 24u}) {
        auto params = core::CoreParams::contentAware(dn);
        auto run_int = args.runSuite(workloads::intSuite(), params,
                                     strprintf("CA INT d+n=%u", dn));
        auto run_fp = args.runSuite(workloads::fpSuite(), params,
                                    strprintf("CA FP d+n=%u", dn));
        table.addRow({strprintf("d+n=%u", dn),
                      Table::pct(run_int.totalClusterStats()
                                     .crossFraction()),
                      Table::pct(run_fp.totalClusterStats()
                                     .crossFraction())});
    }
    bench::printTable(table, args);

    std::printf("Reading: a cross-operand needs one inter-cluster "
                "transfer; low fractions support\nthe paper's claim "
                "that value-type clusters need little "
                "communication.\n");
    args.writeReport();
    return 0;
}
