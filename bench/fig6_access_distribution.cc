/**
 * @file
 * Figure 6: register file READ and WRITE access distribution by value
 * type as a function of d+n (n=3, 8 short, 48 long registers).
 *
 * The paper reports that larger d+n shifts accesses from long toward
 * short/simple; at d+n=24 over 50% of accesses are short-typed and
 * under 20% long-typed.
 */

#include <tuple>

#include "bench_util.hh"

using namespace carf;

namespace
{

void
addRows(Table &table, unsigned dn, const sim::SuiteRun &run)
{
    const auto counts = run.totalAccesses();
    u64 reads = counts.totalReads();
    u64 writes = counts.totalWrites();
    auto frac = [](u64 part, u64 whole) {
        return whole ? static_cast<double>(part) / whole : 0.0;
    };
    table.addRow({strprintf("d+n=%u", dn),
                  Table::pct(frac(counts.reads[0], reads)),
                  Table::pct(frac(counts.reads[1], reads)),
                  Table::pct(frac(counts.reads[2], reads)),
                  Table::pct(frac(counts.writes[0], writes)),
                  Table::pct(frac(counts.writes[1], writes)),
                  Table::pct(frac(counts.writes[2], writes))});
}

} // namespace

int
main(int argc, char **argv)
{
    auto args =
        bench::BenchArgs::parse("fig6_access_distribution", argc, argv);
    bench::printHeader(
        "Figure 6: access distribution by value type vs d+n",
        "long share falls with d+n; at d+n=24, >50% short, <20% long");

    for (auto [title, name, suite] :
         {std::tuple{"Fig 6 INT suite", "INT", &workloads::intSuite()},
          std::tuple{"Fig 6 FP suite", "FP", &workloads::fpSuite()}}) {
        Table table(title);
        table.setColumns({"config", "rd simple", "rd short", "rd long",
                          "wr simple", "wr short", "wr long"});
        for (unsigned dn : bench::kDnSweep) {
            auto run = args.runSuite(
                *suite, core::CoreParams::contentAware(dn),
                strprintf("CA %s d+n=%u", name, dn));
            addRows(table, dn, run);
        }
        bench::printTable(table, args);
    }
    args.writeReport();
    return 0;
}
