/**
 * @file
 * Table 2: percentage of bypassed source operands, baseline vs
 * content-aware (whose extra bypass level raises the fraction).
 *
 * Paper: SPECint 38.1% -> 47.9%; SPECfp 21.1% -> 28.4%. Our kernels
 * are more dependence-dense than SPEC, so absolute fractions are
 * higher; the content-aware > baseline ordering is the claim under
 * test.
 */

#include "bench_util.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("tab2_bypass", argc, argv);
    bench::printHeader(
        "Table 2: percentage of bypassed operands",
        "baseline INT 38.1% / FP 21.1%; content-aware 47.9% / 28.4%");

    Table table("Tab 2: bypassed source operands");
    table.setColumns({"suite", "baseline", "content-aware"});
    for (auto [name, suite] :
         {std::pair{"INT", &workloads::intSuite()},
          std::pair{"FP", &workloads::fpSuite()}}) {
        auto baseline_run =
            args.runSuite(*suite, core::CoreParams::baseline(),
                          strprintf("baseline %s", name));
        auto ca_run =
            args.runSuite(*suite, core::CoreParams::contentAware(20),
                          strprintf("CA %s d+n=20", name));
        table.addRow({name, Table::pct(baseline_run.bypassFraction()),
                      Table::pct(ca_run.bypassFraction())});
    }
    bench::printTable(table, args);
    args.writeReport();
    return 0;
}
