/**
 * @file
 * Figure 9: relative access time of the register sub-files vs d+n,
 * plus the §5 frequency-scaled speed-up estimate.
 *
 * The paper reports every content-aware sub-file faster than the
 * baseline file, enabling up to a 15% clock increase; with the
 * measured ~1.5% IPC loss, a 5% clock gain yields ~+3% speed-up and
 * 10-15% yields +8..13%.
 */

#include "bench_util.hh"
#include "energy/report.hh"
#include "sim/frequency.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    auto args = bench::BenchArgs::parse("fig9_access_time", argc, argv);
    bench::printHeader(
        "Figure 9: relative access time of the register files vs d+n",
        "all sub-files faster than baseline; up to ~15% clock headroom");

    energy::RixnerModel model;
    double unlimited_time =
        model.accessTime(energy::unlimitedGeometry());
    double baseline_time = model.accessTime(energy::baselineGeometry());

    Table table("Fig 9: access time (100% = unlimited)");
    table.setColumns({"config", "simple", "short", "long",
                      "slowest vs baseline"});
    table.addRow({"baseline", "-", "-", "-",
                  Table::pct(baseline_time / baseline_time)});

    for (unsigned dn : bench::kDnSweep) {
        auto params = core::CoreParams::contentAware(dn);
        auto geom = energy::caGeometry(params.physIntRegs, params.ca);
        double slowest = energy::caMaxAccessTime(model, geom);
        table.addRow({strprintf("d+n=%u", dn),
                      Table::pct(model.accessTime(geom.simple) /
                                 unlimited_time),
                      Table::pct(model.accessTime(geom.shortFile) /
                                 unlimited_time),
                      Table::pct(model.accessTime(geom.longFile) /
                                 unlimited_time),
                      Table::pct(slowest / baseline_time)});
    }
    bench::printTable(table, args);

    // §5 speed-up estimate at the paper's chosen point (d+n=20),
    // using the measured INT relative IPC.
    auto params = core::CoreParams::contentAware(20);
    auto baseline_run = args.runSuite(workloads::intSuite(),
                                      core::CoreParams::baseline(),
                                      "baseline INT");
    auto ca_run = args.runSuite(workloads::intSuite(), params,
                                "CA INT d+n=20");
    double rel_ipc = sim::meanRelativeIpc(ca_run, baseline_run);

    auto geom = energy::caGeometry(params.physIntRegs, params.ca);
    double max_gain = sim::potentialFrequencyGain(
        baseline_time, energy::caMaxAccessTime(model, geom));

    Table speedup("§5: frequency-scaled speed-up estimate (INT, "
                  "d+n=20, relative IPC " +
                  Table::pct(rel_ipc) + ")");
    speedup.setColumns({"clock gain", "speed-up vs baseline"});
    for (double gain : {0.05, 0.10, 0.15}) {
        speedup.addRow({Table::pct(gain, 0),
                        Table::pct(sim::frequencyScaledSpeedup(rel_ipc,
                                                               gain))});
    }
    speedup.addRow({"model max (" + Table::pct(max_gain) + ")",
                    Table::pct(sim::frequencyScaledSpeedup(rel_ipc,
                                                           max_gain))});
    bench::printTable(speedup, args);
    args.writeReport();
    return 0;
}
