/**
 * @file
 * Design-space exploration: sweep the content-aware parameters
 * (d+n, Short size M, Long size K) and rank configurations by
 * energy-delay product against the baseline — the study an architect
 * would run before committing to §4's chosen point (d+n=20, M=8,
 * K=48).
 *
 * Usage: design_space [insts=300000] [suite=int|fp]
 */

#include <algorithm>
#include <cstdio>

#include "common/config.hh"
#include "common/table.hh"
#include "energy/report.hh"
#include "sim/experiments.hh"

using namespace carf;

namespace
{

struct Point
{
    unsigned dn, n, k;
    double relIpc;
    double relEnergy;
    double edp; // energy x delay, both relative to baseline
};

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    sim::SimOptions options;
    options.maxInsts = config.getU64("insts", 300000);
    const bool use_fp = config.getString("suite", "int") == "fp";
    const auto &suite =
        use_fp ? workloads::fpSuite() : workloads::intSuite();

    auto baseline_run =
        sim::runSuite(suite, core::CoreParams::baseline(), options);

    energy::RixnerModel model;
    auto baseline_geom = energy::baselineGeometry();
    double baseline_energy = energy::conventionalEnergy(
        model, baseline_geom, baseline_run.totalAccesses());

    std::vector<Point> points;
    for (unsigned dn : {12u, 16u, 20u, 24u}) {
        for (unsigned n : {2u, 3u, 4u}) {
            for (unsigned k : {32u, 48u, 64u}) {
                auto params = core::CoreParams::contentAware(dn, n, k);
                auto run = sim::runSuite(suite, params, options);
                auto geom =
                    energy::caGeometry(params.physIntRegs, params.ca);
                double rel_ipc =
                    sim::meanRelativeIpc(run, baseline_run);
                double rel_energy =
                    energy::contentAwareEnergy(model, geom,
                                               run.totalAccesses(),
                                               run.totalShortWrites()) /
                    baseline_energy;
                // Delay ~ 1/IPC at fixed frequency.
                points.push_back(
                    {dn, n, k, rel_ipc, rel_energy,
                     rel_energy / rel_ipc});
            }
        }
    }

    std::sort(points.begin(), points.end(),
              [](const Point &a, const Point &b) { return a.edp < b.edp; });

    Table table("Design space ranked by energy-delay product "
                "(relative to baseline, suite=" +
                std::string(use_fp ? "fp" : "int") + ")");
    table.setColumns({"d+n", "M", "K", "rel IPC", "rel energy", "EDP"});
    for (const Point &p : points) {
        table.addRow({std::to_string(p.dn),
                      std::to_string(1u << p.n), std::to_string(p.k),
                      Table::pct(p.relIpc, 2), Table::pct(p.relEnergy, 1),
                      Table::num(p.edp, 3)});
    }
    std::fputs(table.render().c_str(), stdout);

    const Point &best = points.front();
    std::printf("\nbest EDP point: d+n=%u M=%u K=%u "
                "(paper's choice: d+n=20 M=8 K=48)\n",
                best.dn, 1u << best.n, best.k);
    return 0;
}
