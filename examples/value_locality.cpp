/**
 * @file
 * Workload characterization: run the live-value oracle on a chosen
 * workload and print its partial-value-locality profile — the
 * Figure 1/Figure 2 analysis for a single program, which is how one
 * decides whether the content-aware organization suits a workload.
 *
 * Usage: value_locality [workload=pointer_chase] [insts=300000]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    const std::string name =
        config.getString("workload", "pointer_chase");

    sim::SimOptions options;
    options.maxInsts = config.getU64("insts", 300000);
    options.oracleSamplePeriod =
        static_cast<unsigned>(config.getU64("sample", 8));

    sim::LiveValueOracle oracle({8, 12, 16, 20});
    auto result = sim::simulate(workloads::findWorkload(name),
                                core::CoreParams::baseline(), options,
                                &oracle);

    std::printf("%s: IPC %.3f, %.1f live integer registers/cycle, "
                "%llu oracle samples\n\n",
                name.c_str(), result.ipc, oracle.avgLiveRegs(),
                (unsigned long long)oracle.samples());

    Table table("value-group shares (rank buckets x grouping)");
    table.setColumns({"group", "exact", "d=8", "d=12", "d=16", "d=20"});
    for (unsigned b = 0; b < sim::GroupAccumulator::numBuckets; ++b) {
        std::vector<std::string> row = {
            sim::GroupAccumulator::bucketName(b),
            Table::pct(oracle.exactGroups().fraction(b))};
        for (unsigned di = 0; di < 4; ++di)
            row.push_back(
                Table::pct(oracle.similarityGroups(di).fraction(b)));
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);

    double rest16 = oracle.similarityGroups(2).fraction(5);
    std::printf("\nverdict: %s partial value locality "
                "(REST at d=16 is %.1f%%; below ~25%% the "
                "content-aware file captures most live values)\n",
                rest16 < 0.25 ? "HIGH" : "MODERATE", 100.0 * rest16);
    return 0;
}
