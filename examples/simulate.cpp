/**
 * @file
 * Full-surface simulator driver: any workload, any register file
 * organization, every option — the binary a downstream user scripts
 * against.
 *
 * Usage examples:
 *   simulate workload=pointer_chase config=ca insts=1000000
 *   simulate workload=crc config=baseline ff=500000 insts=500000
 *   simulate workload=graph_walk config=ca dplusn=24 k=56 oracle=16
 *   simulate workload=crc config=port-reduction shared_read_ports=3
 *   simulate workload=daxpy record=/tmp/daxpy.carftrc insts=200000
 *   simulate replay=/tmp/daxpy.carftrc config=ca
 *   simulate workload=counters smt_with=crc config=ca
 *   simulate list=1                  # list available workloads
 */

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "core/smt.hh"
#include "emu/trace_file.hh"
#include "energy/report.hh"
#include "regfile/registry.hh"
#include "sim/reporting.hh"
#include "sim/simulator.hh"

using namespace carf;

namespace
{

core::CoreParams
paramsFromConfig(const Config &config)
{
    std::string kind = config.getString("config", "baseline");
    core::CoreParams params;
    if (kind == "unlimited") {
        params = core::CoreParams::unlimited();
    } else if (kind == "baseline") {
        params = core::CoreParams::baseline();
    } else if (kind == "ca" || kind == "content-aware") {
        params = core::CoreParams::contentAware(
            static_cast<unsigned>(config.getU64("dplusn", 20)),
            static_cast<unsigned>(config.getU64("n", 3)),
            static_cast<unsigned>(config.getU64("k", 48)));
        params.ca.associativeShort =
            config.getBool("assoc_short", false);
        params.ca.allocShortOnAnyResult =
            config.getBool("alloc_any", false);
        params.ca.issueStallThreshold = static_cast<unsigned>(
            config.getU64("stall_threshold", params.issueWidth));
        params.extraBypassLevel =
            config.getBool("extra_bypass", true);
    } else if (kind == "port-reduction") {
        params = core::CoreParams::portReduction(static_cast<unsigned>(
            config.getU64("shared_read_ports", 4)));
    } else if (regfile::registry().find(kind)) {
        // Any other registered backend runs with baseline timing.
        params = core::CoreParams::forBackend(kind);
    } else {
        std::string names;
        for (const std::string &name : regfile::registry().names())
            names += (names.empty() ? "" : "|") + name;
        fatal("unknown config '%s' (%s)", kind.c_str(), names.c_str());
    }
    params.physIntRegs = static_cast<unsigned>(
        config.getU64("int_regs", params.physIntRegs));
    params.intRfReadPorts = static_cast<unsigned>(
        config.getU64("read_ports", params.intRfReadPorts));
    params.intRfWritePorts = static_cast<unsigned>(
        config.getU64("write_ports", params.intRfWritePorts));
    return params;
}

void
printResult(const core::RunResult &result,
            const core::CoreParams &params)
{
    std::printf("%s\n", sim::summarizeRun(result).c_str());
    const auto &counts = result.intRfAccesses;
    if (counts.totalWrites() == 0) {
        // SMT threads share one file; the counts ride on thread 0.
        return;
    }
    std::printf("  int RF reads  %llu (simple %llu, short %llu, "
                "long %llu)\n",
                (unsigned long long)counts.totalReads(),
                (unsigned long long)counts.reads[0],
                (unsigned long long)counts.reads[1],
                (unsigned long long)counts.reads[2]);
    std::printf("  int RF writes %llu (simple %llu, short %llu, "
                "long %llu)\n",
                (unsigned long long)counts.totalWrites(),
                (unsigned long long)counts.writes[0],
                (unsigned long long)counts.writes[1],
                (unsigned long long)counts.writes[2]);
    auto rf = regfile::makeRegFile(params.regFileBackend,
                                   params.regFileParams(), "report");
    if (rf->hasValueTaxonomy()) {
        std::printf("  long stalls %llu, recoveries %llu, avg live "
                    "long %.1f, avg live short %.1f\n",
                    (unsigned long long)result.longAllocStalls,
                    (unsigned long long)result.recoveries,
                    result.avgLiveLong, result.avgLiveShort);
        energy::RixnerModel model;
        double rf_energy = energy::modelEnergy(
            model, rf->energyTerms(counts, result.shortFileWrites));
        double base_energy = energy::conventionalEnergy(
            model, energy::baselineGeometry(), counts);
        std::printf("  RF energy vs same-traffic baseline file: "
                    "%.1f%%\n", 100.0 * rf_energy / base_energy);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    if (config.getBool("list", false)) {
        std::printf("workloads:\n");
        for (const auto &w : workloads::allWorkloads()) {
            std::printf("  %-16s (%s)\n", w.name.c_str(),
                        workloads::suiteName(w.suite));
        }
        return 0;
    }

    core::CoreParams params = paramsFromConfig(config);
    std::printf("config: %s\n", sim::describeConfig(params).c_str());

    sim::SimOptions options;
    options.maxInsts = config.getU64("insts", 1000000);
    options.fastForward = config.getU64("ff", 0);
    options.oracleSamplePeriod =
        static_cast<unsigned>(config.getU64("oracle", 0));

    // Record mode: emulate and write a trace file, no timing.
    if (config.has("record")) {
        const auto &workload =
            workloads::findWorkload(config.getString("workload"));
        auto source = workloads::makeTrace(workload, options.maxInsts);
        u64 written = emu::TraceWriter::record(
            *source, config.getString("record"));
        std::printf("recorded %llu instructions of %s to %s\n",
                    (unsigned long long)written,
                    workload.name.c_str(),
                    config.getString("record").c_str());
        return 0;
    }

    // Replay mode: time a previously recorded trace.
    if (config.has("replay")) {
        emu::TraceReader reader(config.getString("replay"), "",
                                options.maxInsts);
        core::Pipeline pipeline(params);
        auto result = pipeline.run(reader);
        printResult(result, params);
        return 0;
    }

    const auto &workload =
        workloads::findWorkload(config.getString("workload",
                                                 "counters"));

    // SMT mode: co-run a second workload on a shared core.
    if (config.has("smt_with")) {
        const auto &other =
            workloads::findWorkload(config.getString("smt_with"));
        auto ta = workloads::makeTrace(workload, options.maxInsts);
        auto tb = workloads::makeTrace(other, options.maxInsts);
        core::SmtPipeline smt(params, 2);
        auto result = smt.run({ta.get(), tb.get()});
        std::printf("SMT (%llu shared cycles, aggregate IPC %.3f):\n",
                    (unsigned long long)result.cycles,
                    result.totalIpc());
        for (const auto &t : result.threads)
            printResult(t, params);
        return 0;
    }

    // Plain single-thread run, optionally with the value oracle.
    sim::LiveValueOracle oracle;
    bool use_oracle = options.oracleSamplePeriod > 0;
    auto result = sim::simulate(workload, params, options,
                                use_oracle ? &oracle : nullptr);
    printResult(result, params);

    if (use_oracle) {
        std::printf("  live values: %.1f regs/cycle; exact group-1 "
                    "%.1f%%; d=16 group-1 %.1f%%\n",
                    oracle.avgLiveRegs(),
                    100.0 * oracle.exactGroups().fraction(0),
                    100.0 * oracle.similarityGroups(2).fraction(0));
    }
    return 0;
}
