/**
 * @file
 * Quickstart: simulate one workload on the baseline and content-aware
 * register files and print the headline comparison.
 *
 * Usage: quickstart [workload=counters] [insts=500000] [dplusn=20]
 */

#include <cstdio>

#include "common/config.hh"
#include "energy/report.hh"
#include "sim/frequency.hh"
#include "sim/reporting.hh"
#include "sim/simulator.hh"

using namespace carf;

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    const std::string workload_name =
        config.getString("workload", "counters");
    sim::SimOptions options;
    options.maxInsts = config.getU64("insts", 500000);
    unsigned d_plus_n =
        static_cast<unsigned>(config.getU64("dplusn", 20));

    const auto &workload = workloads::findWorkload(workload_name);

    auto baseline_params = core::CoreParams::baseline();
    auto ca_params = core::CoreParams::contentAware(d_plus_n);

    std::printf("workload: %s, budget: %llu instructions\n\n",
                workload_name.c_str(),
                (unsigned long long)options.maxInsts);

    auto baseline = sim::simulate(workload, baseline_params, options);
    auto ca = sim::simulate(workload, ca_params, options);

    std::printf("%s\n", sim::summarizeRun(baseline).c_str());
    std::printf("%s\n\n", sim::summarizeRun(ca).c_str());

    double rel_ipc = ca.ipc / baseline.ipc;
    std::printf("relative IPC (content-aware / baseline): %.4f\n",
                rel_ipc);

    // Energy/area/time comparison from the Rixner-style model.
    energy::RixnerModel model;
    auto base_geom = energy::baselineGeometry();
    auto ca_geom = energy::caGeometry(ca_params.physIntRegs,
                                      ca_params.ca);

    double base_energy =
        energy::conventionalEnergy(model, base_geom,
                                   baseline.intRfAccesses);
    double ca_energy = energy::contentAwareEnergy(
        model, ca_geom, ca.intRfAccesses, ca.shortFileWrites);
    std::printf("register file energy vs baseline: %.1f%%\n",
                100.0 * ca_energy / base_energy);

    double base_area = model.area(base_geom);
    double ca_area = energy::caTotalArea(model, ca_geom);
    std::printf("register file area vs baseline: %.1f%%\n",
                100.0 * ca_area / base_area);

    double base_time = model.accessTime(base_geom);
    double ca_time = energy::caMaxAccessTime(model, ca_geom);
    double freq_gain = sim::potentialFrequencyGain(base_time, ca_time);
    std::printf("access time vs baseline: %.1f%% "
                "(potential clock gain %.1f%%)\n",
                100.0 * ca_time / base_time, 100.0 * freq_gain);
    std::printf("frequency-scaled speedup estimate: %+.1f%%\n",
                100.0 * sim::frequencyScaledSpeedup(rel_ipc, freq_gain));
    return 0;
}
