/**
 * @file
 * Bring-your-own-kernel: write a program against the assembler API,
 * check it functionally in the emulator, then compare baseline vs
 * content-aware timing and inspect the value-type breakdown.
 *
 * The kernel is a banking ledger: fixed-point balances in a table,
 * a stream of (account, amount) transactions, and an overdraft check
 * — small values (amounts), addresses (table walks), and a running
 * 64-bit audit hash (long values) in one loop.
 */

#include <cstdio>

#include "common/random.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "isa/disasm.hh"
#include "sim/simulator.hh"

using namespace carf;
using namespace carf::isa;

namespace
{

constexpr Addr accountBase = 0x2001'4000;
constexpr Addr txnBase = 0x2113'8000;
constexpr unsigned accounts = 4096;
constexpr unsigned txns = 8192;

isa::Program
buildLedger()
{
    Rng rng(0x1ed6e4);
    std::vector<u64> balances(accounts);
    for (auto &b : balances)
        b = 1000 + rng.nextBounded(100000);
    // Transactions: [account index, signed amount] pairs.
    std::vector<u64> stream(txns * 2);
    for (unsigned t = 0; t < txns; ++t) {
        stream[t * 2] = rng.nextBounded(accounts);
        stream[t * 2 + 1] =
            static_cast<u64>(rng.nextRange(-500, 500));
    }

    Assembler a;
    a.dataU64(accountBase, balances);
    a.dataU64(txnBase, stream);

    a.movi(R1, static_cast<i64>(accountBase));
    a.movi(R2, static_cast<i64>(txnBase));
    a.movi(R3, txns);
    a.movi(R10, 0);                    // overdraft count
    a.movi(R11, 0x9e3779b97f4a7c15ll); // audit hash state
    a.label("restart");
    a.movi(R4, 0); // txn index
    a.label("loop");
    a.slli(R5, R4, 4); // 16 bytes per txn
    a.add(R5, R5, R2);
    a.ld(R6, R5, 0); // account
    a.ld(R7, R5, 8); // amount
    a.slli(R8, R6, 3);
    a.add(R8, R8, R1);
    a.ld(R9, R8, 0); // balance
    a.add(R9, R9, R7);
    a.bge(R9, R0, "solvent");
    a.addi(R10, R10, 1); // overdraft: count and refuse
    a.jmp("next");
    a.label("solvent");
    a.st(R9, R8, 0);
    // Fold the transaction into the audit hash.
    a.xor_(R11, R11, R9);
    a.mul(R11, R11, R11);
    a.ori(R11, R11, 1);
    a.label("next");
    a.addi(R4, R4, 1);
    a.blt(R4, R3, "loop");
    a.jmp("restart");
    return a.finish();
}

} // namespace

int
main()
{
    isa::Program program = buildLedger();
    std::printf("ledger kernel: %zu static instructions\n",
                program.size());
    std::printf("first instructions:\n%s\n",
                isa::disassemble(program).substr(0, 400).c_str());

    // Functional check: run the emulator alone and inspect state.
    emu::Emulator emulator(program, "ledger", 200000);
    emu::DynOp op;
    while (emulator.next(op)) {
    }
    std::printf("after 200k instructions: overdrafts=%llu "
                "audit=%016llx\n\n",
                (unsigned long long)emulator.intReg(R10),
                (unsigned long long)emulator.intReg(R11));

    // Timing comparison through the simulator facade.
    workloads::Workload workload{"ledger", workloads::Suite::Int,
                                 buildLedger};
    sim::SimOptions options;
    options.maxInsts = 500000;
    auto baseline = sim::simulate(
        workload, core::CoreParams::baseline(), options);
    auto ca = sim::simulate(
        workload, core::CoreParams::contentAware(), options);

    std::printf("baseline IPC %.3f, content-aware IPC %.3f "
                "(relative %.1f%%)\n",
                baseline.ipc, ca.ipc, 100.0 * ca.ipc / baseline.ipc);

    const auto &counts = ca.intRfAccesses;
    u64 reads = counts.totalReads();
    u64 writes = counts.totalWrites();
    std::printf("reads by type: simple %.1f%% short %.1f%% long %.1f%%\n",
                100.0 * counts.reads[0] / reads,
                100.0 * counts.reads[1] / reads,
                100.0 * counts.reads[2] / reads);
    std::printf("writes by type: simple %.1f%% short %.1f%% long %.1f%%\n",
                100.0 * counts.writes[0] / writes,
                100.0 * counts.writes[1] / writes,
                100.0 * counts.writes[2] / writes);
    return 0;
}
